#!/usr/bin/env python
"""Full HPCG-style run: multigrid-preconditioned PCG on the accelerator.

The paper's driving benchmark, HPCG [27], preconditions CG with a
geometric multigrid V-cycle whose smoother at *every* level is SymGS —
so the data-dependent kernel Alrescha accelerates is entered once per
level per cycle.  This example runs:

  1. a plain HPCG-style rating (single-level SymGS preconditioner),
  2. the same system with a 3-level multigrid preconditioner,

both entirely on simulated accelerator backends, and compares iteration
counts, simulated time and the kernel mix.

Run:  python examples/hpcg_multigrid.py [grid_dim]
"""

import sys

import numpy as np

from repro.solvers import (
    AcceleratorBackend,
    MultigridBackend,
    pcg,
    run_hpcg,
)


def main() -> None:
    dim = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    if dim % 4:
        raise SystemExit("grid dim must be a multiple of 4 for 3 levels")

    # 1. HPCG rating with the single-level SymGS preconditioner.
    rating = run_hpcg(dim, dim, dim, iterations=20)
    print(f"HPCG rating ({dim}^3 grid, n={rating.n}, "
          f"nnz={rating.nnz}):")
    print(f"  {rating.gflops:.2f} GFLOP/s simulated, "
          f"BW utilization {rating.bandwidth_utilization:.1%}, "
          f"energy {rating.energy_j * 1e6:.1f} uJ")

    # 2. Multigrid vs single-level preconditioning, accelerated.
    mg = MultigridBackend(dim, dim, dim, n_levels=3, backend="alrescha")
    b = np.random.default_rng(42).normal(size=mg.n)
    mg_result = pcg(mg, b, tol=1e-8, max_iter=80)

    gs = AcceleratorBackend(mg.matrix)
    gs_result = pcg(gs, b, tol=1e-8, max_iter=80)

    print("\npreconditioner comparison (same system, tol 1e-8):")
    print(f"  {'':22s}{'iterations':>11s}{'simulated us':>14s}"
          f"{'seq fraction':>14s}")
    for label, result in (("multigrid (3 levels)", mg_result),
                          ("single-level SymGS", gs_result)):
        rep = result.report
        print(f"  {label:22s}{result.iterations:11d}"
              f"{rep.seconds * 1e6:14.1f}"
              f"{rep.sequential_fraction:14.2%}")
    assert np.allclose(mg_result.x, gs_result.x, atol=1e-5)
    print("\nsolutions agree; every V-cycle level ran its SymGS "
          "smoother through the accelerator's D-SymGS data path.")

    cycles = mg.report().datapath_cycles
    total = sum(cycles.values())
    print("\nmultigrid data-path mix:")
    for dp, cy in sorted(cycles.items(), key=lambda kv: -kv[1]):
        print(f"  {dp:8s} {cy / total:6.1%}")


if __name__ == "__main__":
    main()
