#!/usr/bin/env python
"""Multi-vector SpMM: amortising the matrix stream across a panel.

Block-Krylov solvers, multiple right-hand sides and embedding lookups
all apply one sparse matrix to many vectors.  On Alrescha the matrix
payload — the dominant cost — streams from memory *once* per panel, so
energy per product collapses as the panel widens while the ALU row
bounds the cycle gain.

Run:  python examples/spmm_panel.py [dataset] [scale]
"""

import sys

import numpy as np

from repro.core import Alrescha, KernelType
from repro.datasets import load_dataset


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "stencil27"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    ds = load_dataset(name, scale=scale)
    matrix = ds.matrix if ds.kind == "scientific" \
        else ds.matrix.T.tocsr()
    acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
    n = matrix.shape[0]
    rng = np.random.default_rng(13)

    print(f"dataset: {ds.name} (n={n}, nnz={ds.nnz})")
    print(f"\n{'panel k':>8s}{'cycles':>12s}{'cycles/col':>12s}"
          f"{'DRAM KiB':>10s}{'uJ/col':>10s}")
    base = None
    for k in (1, 2, 4, 8, 16, 32):
        x = rng.normal(size=(n, k))
        y, report = acc.run_spmm(x)
        assert np.allclose(y, matrix @ x, atol=1e-8)
        if base is None:
            base = report.energy_j
        print(f"{k:8d}{report.cycles:12.0f}{report.cycles / k:12.1f}"
              f"{report.counters.get('dram_bytes') / 1024:10.1f}"
              f"{report.energy_j * 1e6 / k:10.2f}")
    print("\nthe payload streams once per panel: energy per column "
          "collapses with k, while cycles/column saturate at the ALU "
          "row's throughput.")


if __name__ == "__main__":
    main()
