#!/usr/bin/env python
"""Walk through the Alrescha storage format on the paper's example.

Reproduces Figure 8 / Figure 13 on a small 9x9 matrix with 3x3 blocks:
prints the BCSR layout, the Alrescha stream order (non-diagonal blocks
first, diagonal last, upper blocks column-reversed, diagonal extracted),
the configuration table rows, and the Figure 12 meta-data survey across
structures.

Run:  python examples/storage_formats.py
"""

import numpy as np

from repro.core import KernelType, convert
from repro.datasets import random_spd, stencil27, structural_like, \
    tridiagonal
from repro.formats import format_survey


def build_example() -> np.ndarray:
    """A 9x9 SymGS example in the spirit of Figure 8 (n=9, omega=3)."""
    a = np.zeros((9, 9))
    # Diagonal blocks (with in-block couplings).
    for base in (0, 3, 6):
        for i in range(3):
            a[base + i, base + i] = 10.0 + base + i
        a[base + 1, base] = a[base, base + 1] = -1.0
    # Off-diagonal blocks: (0,1), (1,0), (1,2), (2,1), (0,2), (2,0).
    a[0, 4] = a[4, 0] = -2.0   # blocks (0,1)/(1,0)
    a[5, 7] = a[7, 5] = -3.0   # blocks (1,2)/(2,1)
    a[1, 8] = a[8, 1] = -4.0   # blocks (0,2)/(2,0)
    return a


def main() -> None:
    a = build_example()
    conv = convert(KernelType.SYMGS, a, omega=3)

    print("Figure 8/13 example: n = 9, omega = 3")
    print("\nmatrix:")
    for row in a:
        print("  " + " ".join(f"{v:5.1f}" for v in row))

    print("\nAlrescha stream order "
          "(non-diagonal blocks first, diagonal last):")
    for i, block in enumerate(conv.matrix.stream()):
        kind = "DIAG" if block.is_diagonal else "gemv"
        rev = " cols-reversed" if block.reversed_cols else ""
        print(f"  [{i}] block({block.block_row},{block.block_col}) "
              f"{kind}{rev}")
        for r in block.values:
            print("        " + " ".join(f"{v:5.1f}" for v in r))

    print(f"\nextracted diagonal (stored separately, §4.5): "
          f"{conv.matrix.diagonal}")

    print(f"\nconfiguration table "
          f"({conv.table.entry_bits()} bits/row = "
          f"2*ceil(log2(n/omega)) + 3):")
    print(f"  {'DP':8s} {'Inx_in':>6s} {'Inx_out':>7s} "
          f"{'order':>5s} {'port':>6s}")
    for e in conv.table:
        print(f"  {e.dp.value:8s} {e.inx_in:6d} {e.inx_out:7d} "
              f"{e.order.value:>5s} {e.op.value:>6s}")
    print(f"  total: {len(conv.table)} rows, "
          f"{conv.table.total_bits()} bits (written once; zero runtime "
          f"meta-data)")

    print("\nFigure 12: meta-data bits per non-zero across structures")
    structures = {
        "diagonal (tridiag n=256)": tridiagonal(256),
        "stencil27 (6x6x6)": stencil27(6, 6, 6),
        "blocked FEM (n=240)": structural_like(240),
        "scattered (n=256)": random_spd(256, density=0.01),
    }
    formats = ["DIA", "ELL", "CSR", "COO", "BCSR", "Alrescha",
               "Alrescha (runtime)"]
    header = f"  {'structure':26s}" + "".join(f"{f:>12s}" for f in formats)
    print(header)
    for label, matrix in structures.items():
        survey = format_survey(matrix)
        cells = "".join(f"{survey[f]:12.2f}" for f in formats)
        print(f"  {label:26s}{cells}")


if __name__ == "__main__":
    main()
