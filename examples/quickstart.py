#!/usr/bin/env python
"""Quickstart: accelerate one SpMV on the ALRESCHA model.

Builds an HPCG-style 27-point stencil matrix, converts it with
Algorithm 1 into a configuration table plus the locally-dense storage
format, runs SpMV on the simulated accelerator, verifies the result
against the golden kernel, and prints the simulation report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Alrescha, KernelType
from repro.datasets import load_dataset
from repro.kernels import spmv as golden_spmv


def main() -> None:
    # 1. A scientific matrix (synthetic SuiteSparse analogue).
    ds = load_dataset("stencil27", scale=0.2)
    a = ds.matrix
    print(f"dataset: {ds.name} — {ds.description}")
    print(f"  n = {ds.n}, nnz = {ds.nnz}")

    # 2. Program the accelerator: Algorithm 1 builds the configuration
    #    table and reformats the matrix into the Alrescha format.
    acc = Alrescha.from_matrix(KernelType.SPMV, a)
    conv = acc.conversion
    print(f"\nconversion (Algorithm 1):")
    print(f"  dense data paths : {len(conv.table)} "
          f"({conv.table.entry_bits()} bits/entry, "
          f"{conv.table.total_bits()} bits total, written once)")
    print(f"  stream blocks    : {conv.matrix.n_blocks} x "
          f"{conv.omega}x{conv.omega} "
          f"(block density {conv.matrix.block_density:.2f})")
    print(f"  runtime meta-data: "
          f"{conv.matrix.runtime_metadata_bits()} bits")

    # 3. Run SpMV and verify against the golden kernel.
    x = np.random.default_rng(7).normal(size=ds.n)
    y, report = acc.run_spmv(x)
    assert np.allclose(y, golden_spmv(a, x)), "accelerator mismatch!"
    print("\nresult verified against the golden SpMV kernel")

    # 4. The simulation report.
    print("\nsimulation report:")
    print(f"  cycles                : {report.cycles:,.0f}")
    print(f"  time @ 2.5 GHz        : {report.seconds * 1e6:.2f} us")
    print(f"  payload streamed      : {report.streamed_bytes / 1024:.1f} KiB")
    print(f"  bandwidth utilization : "
          f"{report.bandwidth_utilization * 100:.1f}% "
          f"(useful non-zero bytes / peak)")
    print(f"  cache-time share      : "
          f"{report.cache_time_fraction * 100:.1f}%")
    print(f"  energy                : {report.energy_j * 1e6:.2f} uJ")


if __name__ == "__main__":
    main()
