#!/usr/bin/env python
"""Trace the GEMV <-> D-SymGS switching of a SymGS sweep (Figure 11).

Runs one forward SymGS sweep on a small matrix and narrates what the
hardware does per block row: which blocks stream into the GEMV data
path, the partial results pushed onto the LIFO link stack, the
reconfiguration into D-SymGS (hidden under the reduction-tree drain),
and the chunk of x^t the dependent data path produces.  Then quantifies
the cost of reconfiguration with the hide/expose and reordering
ablations.

Run:  python examples/reconfiguration_trace.py
"""

import numpy as np

from repro.analysis import reconfiguration_ablation, reordering_ablation
from repro.core import Alrescha, AlreschaConfig, DataPathType, KernelType
from repro.core.datapaths import dsymgs_block, gemv_block
from repro.core.config import OperandPort
from repro.datasets import stencil5
from repro.kernels import forward_sweep


def narrate_sweep(a, b, x_prev, omega=4) -> None:
    """Re-run the sweep dataflow step by step, printing the trace."""
    config = AlreschaConfig(omega=omega, n_alus=max(16, omega))
    acc = Alrescha.from_matrix(KernelType.SYMGS, a, config=config)
    conv = acc.conversion
    fcu = config.make_fcu()
    rcu = config.make_rcu()
    timing = config.timing()
    n = a.shape[0]
    diag = conv.matrix.diagonal

    rcu.load_operand("x_prev", x_prev)
    rcu.load_operand("x_curr", x_prev.copy())
    x_curr = rcu.operand("x_curr")

    block_map = {(s.block_row, s.block_col): s
                 for s in conv.matrix.stream()}
    current_dp = None
    print(f"n={n}, omega={omega}: "
          f"{len(conv.table)} data paths, "
          f"{conv.table.switch_count()} switches in table order\n")
    for entry in conv.table:
        sb = block_map[(entry.block_row, entry.block_col)]
        if current_dp is not entry.dp:
            drain = timing.drain(current_dp) if current_dp else 8
            exposed = rcu.reconfigure(entry.dp, drain)
            print(f"  ~~ reconfigure -> {entry.dp.value} "
                  f"(drain {drain:.0f} cy hides switch; "
                  f"exposed {exposed:.0f} cy)")
            current_dp = entry.dp
        start = entry.block_row * omega
        if entry.dp is DataPathType.GEMV:
            space = ("x_curr" if entry.op is OperandPort.PORT1
                     else "x_prev")
            chunk = rcu.read_chunk(space, entry.inx_in, omega)
            partial = gemv_block(fcu, sb.values, chunk, sb.reversed_cols)
            rcu.link.push(partial)
            rev = " (cols reversed, read r2l)" if sb.reversed_cols else ""
            print(f"  GEMV    block({entry.block_row},{entry.block_col}) "
                  f"x {space}[{entry.inx_in}:{entry.inx_in + omega}]{rev}"
                  f" -> push link (depth {len(rcu.link)})")
        else:
            acc_vec = np.zeros(omega)
            pops = 0
            while not rcu.link.empty:
                acc_vec += rcu.link.pop()
                pops += 1
            valid = max(0, min(omega, n - start))
            d_chunk = np.zeros(omega)
            d_chunk[:valid] = diag[start:start + valid]
            b_chunk = np.zeros(omega)
            b_chunk[:valid] = b[start:start + valid]
            x_old = rcu.read_chunk("x_prev", start, omega)
            x_new = dsymgs_block(fcu, rcu, sb.values, d_chunk, b_chunk,
                                 x_old, acc_vec, valid)
            x_curr[start:start + valid] = x_new[:valid]
            print(f"  D-SymGS block({entry.block_row},{entry.block_col}) "
                  f"pop x{pops} from link -> x^t"
                  f"[{start}:{start + valid}] = "
                  + np.array2string(x_new[:valid], precision=3))
    expected = forward_sweep(a, b, x_prev)
    assert np.allclose(x_curr, expected, atol=1e-10)
    print("\nsweep verified against the golden forward Gauss-Seidel\n")


def main() -> None:
    rng = np.random.default_rng(3)
    a = stencil5(4, 3).toarray()  # 12x12, omega=4 -> 3 block rows
    b = rng.normal(size=12)
    x_prev = rng.normal(size=12)
    narrate_sweep(a, b, x_prev)

    big = stencil5(24, 24)
    reconf = reconfiguration_ablation(big)
    print("reconfiguration ablation (24x24-grid Laplacian):")
    for mode, data in reconf.items():
        print(f"  {mode:8s} sweep {data['sweep_cycles']:9.1f} cy, "
              f"exposed reconfig {data['exposed_reconfig_cycles']:7.1f} cy")

    reorder = reordering_ablation(big)
    print("\ndata-path reordering ablation:")
    for mode, data in reorder.items():
        print(f"  {mode:10s} sweep {data['sweep_cycles']:9.1f} cy "
              f"({int(data['switches'])} switches)")


if __name__ == "__main__":
    main()
