#!/usr/bin/env python
"""Solve a sparse PDE system with PCG on the accelerator (Figure 2/15).

Runs the full preconditioned-conjugate-gradient loop — SpMV + symmetric
Gauss-Seidel smoother per iteration — on the simulated ALRESCHA
accelerator, prints the kernel-time breakdown (the Figure 3 shape), and
compares the per-iteration time against the GPU and Memristive baseline
models (one row of Figure 15).

Run:  python examples/pcg_scientific.py [dataset] [scale]
"""

import sys

import numpy as np

from repro.baselines import GPUModel, MatrixProfile, MemristiveModel
from repro.datasets import load_dataset
from repro.solvers import AcceleratorBackend, pcg


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "stencil27"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15
    ds = load_dataset(name, scale=scale)
    if ds.kind != "scientific":
        raise SystemExit(f"{name} is a graph dataset; pick a scientific one")
    a = ds.matrix
    print(f"dataset: {ds.name} — n={ds.n}, nnz={ds.nnz}")

    rng = np.random.default_rng(11)
    x_true = rng.normal(size=ds.n)
    b = a @ x_true

    backend = AcceleratorBackend(a)
    result = pcg(backend, b, tol=1e-8, max_iter=100)
    print(f"\nPCG: converged={result.converged} in "
          f"{result.iterations} iterations "
          f"(final residual {result.final_residual:.2e})")
    err = np.abs(result.x - x_true).max()
    print(f"max |x - x_true| = {err:.2e}")

    report = result.report
    print(f"\naccelerator totals: {report.cycles:,.0f} cycles "
          f"= {report.seconds * 1e6:.1f} us, "
          f"energy {report.energy_j * 1e6:.1f} uJ")
    print(f"bandwidth utilization {report.bandwidth_utilization:.2%}, "
          f"sequential fraction {report.sequential_fraction:.2%}")

    print("\nkernel breakdown (the Figure 3 shape):")
    breakdown = backend.kernel_breakdown()
    total = sum(breakdown.values())
    for kernel, cycles in sorted(breakdown.items(),
                                 key=lambda kv: -kv[1]):
        print(f"  {kernel:8s} {cycles / total:6.1%}")

    # One row of Figure 15: per-iteration time vs the baselines.
    profile = MatrixProfile(a)
    t_alr = report.seconds / max(1, result.iterations)
    t_gpu = GPUModel().pcg_iteration_seconds(profile)
    t_mem = MemristiveModel().pcg_iteration_seconds(profile)
    print("\nper-PCG-iteration comparison (Figure 15 row):")
    print(f"  GPU (K40c + row reordering) : {t_gpu * 1e6:9.2f} us   1.0x")
    print(f"  Memristive accelerator      : {t_mem * 1e6:9.2f} us "
          f"{t_gpu / t_mem:5.1f}x")
    print(f"  Alrescha (this simulation)  : {t_alr * 1e6:9.2f} us "
          f"{t_gpu / t_alr:5.1f}x")


if __name__ == "__main__":
    main()
