#!/usr/bin/env python
"""Graph analytics on the accelerator: BFS, SSSP and PageRank.

Runs the three vertex-centric algorithms of Table 1 on synthetic
analogues of the paper's Table 3 datasets, verifies each result against
its golden implementation, and prints per-algorithm speedups over the
CPU framework model (one slice of Figure 17).

Run:  python examples/graph_analytics.py [dataset] [scale]
"""

import sys

import numpy as np

from repro.baselines import CPUModel, MatrixProfile
from repro.datasets import load_dataset
from repro.graph import (
    bfs_reference,
    pagerank_reference,
    run_bfs,
    run_pagerank,
    run_sssp,
    sssp_reference,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "com-orkut"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.1
    ds = load_dataset(name, scale=scale)
    if ds.kind != "graph":
        raise SystemExit(f"{name} is not a graph dataset")
    adj = ds.matrix
    print(f"dataset: {ds.name} — {ds.description}")
    print(f"  |V| = {ds.n}, |E| = {ds.nnz}, weighted = {ds.weighted}")

    cpu = CPUModel()
    profile = MatrixProfile(adj.T.tocsr())
    src = 0

    # BFS ---------------------------------------------------------------
    bfs = run_bfs(adj, src)
    ref = bfs_reference((adj != 0).astype(float), src)
    assert np.array_equal(np.nan_to_num(bfs.values, posinf=-1),
                          np.nan_to_num(ref, posinf=-1))
    reached = int(np.isfinite(bfs.values).sum())
    t_cpu = cpu.graph_pass_seconds(profile, "bfs")
    print(f"\nBFS from {src}: reached {reached}/{ds.n} vertices in "
          f"{bfs.iterations} passes "
          f"({bfs.report.seconds * 1e6:.2f} us simulated)")
    print(f"  speedup over CPU framework: "
          f"{t_cpu / bfs.report.seconds:.1f}x")

    # SSSP ---------------------------------------------------------------
    if ds.weighted:
        weighted = adj
    else:
        weighted = adj.copy()
        weighted.data = 1.0 + (np.arange(weighted.nnz) % 7).astype(float)
    sssp = run_sssp(weighted, src)
    ref = sssp_reference(weighted, src)
    assert np.allclose(np.nan_to_num(sssp.values, posinf=-1),
                       np.nan_to_num(ref, posinf=-1))
    t_cpu = cpu.graph_pass_seconds(profile, "sssp")
    finite = sssp.values[np.isfinite(sssp.values)]
    print(f"\nSSSP from {src}: mean shortest path "
          f"{finite[finite > 0].mean():.2f} "
          f"({sssp.iterations} passes, "
          f"{sssp.report.seconds * 1e6:.2f} us simulated)")
    print(f"  speedup over CPU framework: "
          f"{t_cpu / sssp.report.seconds:.1f}x")

    # PageRank ------------------------------------------------------------
    pr = run_pagerank(adj, tol=1e-9)
    ref = pagerank_reference(adj, tol=1e-9)
    assert np.allclose(pr.values, ref, atol=1e-7)
    t_cpu = cpu.graph_pass_seconds(profile, "pagerank") * pr.iterations
    top = np.argsort(pr.values)[::-1][:5]
    print(f"\nPageRank: {pr.iterations} iterations, sum = "
          f"{pr.values.sum():.6f} "
          f"({pr.report.seconds * 1e6:.2f} us simulated)")
    print(f"  top-5 vertices: {list(map(int, top))}")
    print(f"  speedup over CPU framework: "
          f"{t_cpu / pr.report.seconds:.1f}x")


if __name__ == "__main__":
    main()
