#!/usr/bin/env python
"""The Figure 7 host flow, end to end: compile -> ship -> program -> run.

The host converts a sparse kernel with Algorithm 1, serialises the
configuration table into the bit-packed *program binary* and the
reformatted matrix into the *device memory image*, writes both to disk
(the 'binary file' of §4), and a fresh accelerator loaded purely from
those bytes produces bit-identical results.

Run:  python examples/compile_and_run.py [dataset] [scale]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import Alrescha, KernelType
from repro.datasets import load_dataset
from repro.host import compile_kernel, load_kernel, program_accelerator


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "af_shell"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.12
    ds = load_dataset(name, scale=scale)
    if ds.kind != "scientific":
        raise SystemExit(f"{name} is not a scientific dataset")
    matrix = ds.matrix
    n = matrix.shape[0]
    rng = np.random.default_rng(3)

    # 1. Host: compile (Algorithm 1 + serialisation).
    compiled = compile_kernel(KernelType.SYMGS, matrix)
    print(f"compiled SymGS on {ds.name} (n={n}, nnz={ds.nnz}):")
    print(f"  program binary : {len(compiled.program):8d} B "
          f"(one-time write through the program interface)")
    print(f"  device image   : {len(compiled.image):8d} B "
          f"(stream-ordered payload through the data interface)")
    ratio = len(compiled.program) / len(compiled.image)
    print(f"  program/image  : {ratio:.4f} — the meta-data that would "
          f"otherwise stream every iteration")

    # 2. Ship through the filesystem.
    with tempfile.TemporaryDirectory() as tmp:
        prefix = str(Path(tmp) / ds.name)
        compiled.save(prefix)
        loaded = load_kernel(prefix)
        print(f"\nround-tripped through {Path(tmp).name}/: "
              f"{loaded.total_bytes} bytes")

        # 3. Program a fresh device purely from bytes and run.
        acc_bytes = program_accelerator(loaded)
        acc_direct = Alrescha.from_matrix(KernelType.SYMGS, matrix)
        b = rng.normal(size=n)
        x0 = rng.normal(size=n)
        x_bytes, rep = acc_bytes.run_symgs_sweep(b, x0)
        x_direct, _ = acc_direct.run_symgs_sweep(b, x0)
        assert np.array_equal(x_bytes, x_direct)
        print(f"\nSymGS sweep from the shipped artefacts: "
              f"{rep.cycles:,.0f} cycles, bit-identical to the directly "
              f"programmed device")


if __name__ == "__main__":
    main()
