"""Content-addressed artifact store (:class:`ArtifactStore`).

Persists the programming phase — compiled plans' conversion state,
device images, and report/span templates — keyed by content hash, so
warm starts skip compilation entirely.  See :mod:`repro.store.store`.
"""

from repro.store.envelope import (
    STORE_SCHEMA_VERSION,
    pack_envelope,
    unpack_envelope,
)
from repro.store.store import (
    ARTIFACT_SUFFIX,
    ArtifactStore,
    StoreReport,
    config_fingerprint,
    content_key,
    matrix_crc,
    store_report_json,
)

__all__ = [
    "ARTIFACT_SUFFIX",
    "ArtifactStore",
    "STORE_SCHEMA_VERSION",
    "StoreReport",
    "config_fingerprint",
    "content_key",
    "matrix_crc",
    "pack_envelope",
    "store_report_json",
    "unpack_envelope",
]
