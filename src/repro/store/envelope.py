"""Checksummed, schema-versioned container for stored artifacts.

One artifact file holds everything a warm process needs to skip the
programming phase for one ``(matrix, config, kernel)`` content key: the
program binary, the device image, the raw BCSR arrays and the captured
report/span templates.  Sections are opaque byte strings; this module
only frames them — a fixed header, a canonical-JSON *manifest* (key,
identity metadata, section directory) and the concatenated payloads.

Layout::

    magic "ALRA" | version u16 | reserved u16 | manifest_len u32
    | manifest_crc u32 | manifest JSON | section payloads ...

Every load is verified before any byte is trusted: the magic and schema
version first (:class:`~repro.errors.StoreVersionError` on mismatch),
then the manifest CRC, then one CRC32 per section
(:class:`~repro.errors.StoreCorruptionError` on any damage).  The
manifest is canonical JSON — sorted keys, fixed separators — so
re-encoding an unpacked envelope is byte-identical, which is what lets
``repro cache verify`` diff artifacts at the byte level.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, Tuple

from repro.errors import StoreCorruptionError, StoreVersionError

#: Artifact magic: "ALRA" (ALRescha Artifact).
MAGIC = b"ALRA"

#: Schema version of the artifact container.  Bump on any layout or
#: manifest-shape change; loaders refuse every other version.
STORE_SCHEMA_VERSION = 1

_FIXED = ">4sHHII"  # magic, version, reserved, manifest_len, manifest_crc
_FIXED_SIZE = struct.calcsize(_FIXED)


def pack_envelope(manifest: Dict[str, object],
                  sections: Dict[str, bytes]) -> bytes:
    """Frame ``sections`` behind a checksummed manifest.

    ``manifest`` is augmented (not mutated) with the section directory:
    name, offset into the payload area, length, and CRC32 per section,
    in sorted-name order so the layout is deterministic.
    """
    payloads = []
    directory = []
    offset = 0
    for name in sorted(sections):
        raw = sections[name]
        directory.append({
            "name": name,
            "offset": offset,
            "length": len(raw),
            "crc32": zlib.crc32(raw),
        })
        payloads.append(raw)
        offset += len(raw)
    body = dict(manifest)
    body["sections"] = directory
    manifest_raw = json.dumps(body, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    fixed = struct.pack(_FIXED, MAGIC, STORE_SCHEMA_VERSION, 0,
                        len(manifest_raw), zlib.crc32(manifest_raw))
    return b"".join([fixed, manifest_raw] + payloads)


def unpack_envelope(data: bytes,
                    context: str = "artifact"
                    ) -> Tuple[Dict[str, object], Dict[str, bytes]]:
    """Verify and open an envelope; returns ``(manifest, sections)``.

    ``context`` names the artifact (key or path) in error messages.
    Raises :class:`~repro.errors.StoreVersionError` on a schema
    mismatch and :class:`~repro.errors.StoreCorruptionError` on any
    structural damage or checksum failure.
    """
    if len(data) < _FIXED_SIZE:
        raise StoreCorruptionError(
            f"{context}: truncated before the fixed header "
            f"({len(data)} bytes)")
    magic, version, _reserved, manifest_len, manifest_crc = struct.unpack(
        _FIXED, data[:_FIXED_SIZE])
    if magic != MAGIC:
        raise StoreCorruptionError(
            f"{context}: bad artifact magic {magic!r}")
    if version != STORE_SCHEMA_VERSION:
        raise StoreVersionError(
            f"{context}: schema version {version} unsupported "
            f"(this store reads version {STORE_SCHEMA_VERSION})")
    manifest_end = _FIXED_SIZE + manifest_len
    if len(data) < manifest_end:
        raise StoreCorruptionError(
            f"{context}: truncated inside the manifest")
    manifest_raw = data[_FIXED_SIZE:manifest_end]
    if zlib.crc32(manifest_raw) != manifest_crc:
        raise StoreCorruptionError(
            f"{context}: manifest fails its checksum")
    try:
        manifest = json.loads(manifest_raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptionError(
            f"{context}: manifest is not valid JSON ({exc})") from exc
    if not isinstance(manifest, dict) or "sections" not in manifest:
        raise StoreCorruptionError(
            f"{context}: manifest lacks a section directory")
    payload = data[manifest_end:]
    sections: Dict[str, bytes] = {}
    for entry in manifest["sections"]:
        try:
            name = entry["name"]
            off = entry["offset"]
            length = entry["length"]
            crc = entry["crc32"]
        except (TypeError, KeyError) as exc:
            raise StoreCorruptionError(
                f"{context}: malformed section directory entry "
                f"{entry!r}") from exc
        if off + length > len(payload):
            raise StoreCorruptionError(
                f"{context}: section {name!r} truncated "
                f"(needs {off + length} payload bytes, "
                f"have {len(payload)})")
        raw = payload[off:off + length]
        if zlib.crc32(raw) != crc:
            raise StoreCorruptionError(
                f"{context}: section {name!r} fails its checksum")
        sections[name] = raw
    return manifest, sections
