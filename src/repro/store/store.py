"""Content-addressed artifact store for compiled accelerator state.

The programming phase — Algorithm 1's conversion, ``encode_image()``,
and the per-pass/per-width template captures — is a pure function of the
matrix content, the compile-relevant hardware configuration, and the
kernel.  This store keys that state by content hash
(``<kernel>-w<ω>-<r|n>-<matrix crc32>-<config crc32>``), persists it to
disk in the checksummed envelope of :mod:`repro.store.envelope`, and
fronts the directory with an in-process LRU — so a warm process (or a
second device in the same one) starts answering traffic with zero
compilations, the paper's one-time-configuration amortization (§4)
extended across process lifetimes.

Trust model: a loaded artifact is *never* assumed intact.  The envelope
verifies a CRC per section before any byte is decoded, the decoded
pieces are cross-checked against the manifest, and corruption or a
schema-version mismatch degrades to recompilation (counted in the
:class:`StoreReport`) under the default ``on_error="recompile"`` policy
— never to a wrong answer.  ``on_error="raise"`` surfaces the typed
:class:`~repro.errors.StoreError` instead, for tests and batch audits.
"""

from __future__ import annotations

import json
import os
import zlib
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.binary import decode_program, encode_program
from repro.core.convert import ConversionResult, convert
from repro.core.device_image import decode_image, encode_image
from repro.errors import (
    ConfigError,
    CorruptionError,
    FormatError,
    ReproError,
    StoreCorruptionError,
    StoreError,
)
from repro.formats import BCSRMatrix
from repro.formats.base import SparseFormat
from repro.store.envelope import pack_envelope, unpack_envelope
from repro.store.templates import decode_templates, encode_templates

#: Stored-file suffix; one file per content key.
ARTIFACT_SUFFIX = ".alra"

#: Sections every artifact must carry.
_REQUIRED_SECTIONS = ("program", "image", "bcsr_indptr", "bcsr_cols",
                      "bcsr_blocks", "templates")

#: ``AlreschaConfig`` fields that shape compiled artifacts.  Runtime-only
#: knobs — fault model, tracer, plan cross-checking, checksum
#: verification, and the store attachment itself — are deliberately
#: excluded: templates are captured on the clean, untraced path, so all
#: devices of a pool share one artifact regardless of their fault wiring.
_FINGERPRINT_FIELDS = (
    "omega", "n_alus", "frequency_hz", "bandwidth_bytes_per_s",
    "cache_bytes", "cache_line_bytes", "cache_ways", "cache_hit_latency",
    "cache_miss_latency", "alu_latency", "re_sum_latency",
    "re_min_latency", "dsymgs_step_latency", "reconfig_cycles",
    "hide_reconfig_under_drain", "element_bytes",
    "memory_capacity_bytes", "guard_nonfinite",
)


# ---------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------
def matrix_crc(matrix) -> int:
    """CRC32 of a matrix operand's content.

    Deterministic per representation — the same CSR (or dense array, or
    BCSR) always hashes the same across processes; distinct
    representations of equal values may hash differently, which only
    costs a duplicate store entry, never a wrong hit.
    """
    if isinstance(matrix, BCSRMatrix):
        crc = zlib.crc32(
            f"bcsr:{matrix.shape[0]}:{matrix.shape[1]}:"
            f"{matrix.omega}".encode())
        for arr, dt in ((matrix.block_indptr, "<i8"),
                        (matrix.block_cols, "<i8"),
                        (matrix.blocks, "<f8")):
            crc = zlib.crc32(
                np.ascontiguousarray(arr, dtype=dt).tobytes(), crc)
        return crc
    if hasattr(matrix, "tocsr"):  # scipy.sparse, duck-typed
        csr = matrix.tocsr()
        if not csr.has_sorted_indices:
            csr = csr.sorted_indices()
        crc = zlib.crc32(
            f"csr:{csr.shape[0]}:{csr.shape[1]}".encode())
        for arr, dt in ((csr.indptr, "<i8"), (csr.indices, "<i8"),
                        (csr.data, "<f8")):
            crc = zlib.crc32(
                np.ascontiguousarray(arr, dtype=dt).tobytes(), crc)
        return crc
    if isinstance(matrix, SparseFormat):
        dense = matrix.to_dense()
    else:
        dense = np.asarray(matrix, dtype=np.float64)
    dense = np.ascontiguousarray(dense, dtype=np.float64)
    crc = zlib.crc32(
        f"dense:{dense.shape[0]}:{dense.shape[1]}".encode())
    return zlib.crc32(dense.tobytes(), crc)


def config_fingerprint(config) -> int:
    """CRC32 of the compile-relevant ``AlreschaConfig`` surface.

    Canonical JSON over :data:`_FINGERPRINT_FIELDS` plus the energy
    model (its constants are baked into captured report templates).
    """
    body: Dict[str, object] = {
        f: getattr(config, f) for f in _FINGERPRINT_FIELDS}
    body["energy_model"] = {
        "event_energy_pj": dict(
            sorted(config.energy_model.event_energy_pj.items())),
        "static_power_w": config.energy_model.static_power_w,
    }
    raw = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(raw.encode("utf-8"))


def content_key(kernel, matrix, config, reorder: bool = True) -> str:
    """The content address of one ``(kernel, matrix, config)`` artifact."""
    return (f"{kernel.value}-w{config.omega}-"
            f"{'r' if reorder else 'n'}-"
            f"{matrix_crc(matrix):08x}-{config_fingerprint(config):08x}")


# ---------------------------------------------------------------------
# Store accounting
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class StoreReport:
    """Counters of one :class:`ArtifactStore`'s lifetime.

    The warm-start contract is asserted on two of these: a serve
    against a primed store must finish with ``conversions_compiled == 0``
    and ``templates_captured == 0``.
    """

    #: Algorithm-1 conversions actually run (cold compiles).
    conversions_compiled: int = 0
    #: Artifacts loaded (and verified) from disk.
    conversions_loaded: int = 0
    #: Conversions served straight from the in-process LRU.
    memory_hits: int = 0
    #: Device images encoded while storing a cold compile.
    images_encoded: int = 0
    #: Artifacts written to disk (cold compiles persisted).
    artifacts_stored: int = 0
    #: Report/span templates served from the store.
    templates_loaded: int = 0
    #: Templates captured by the interpreter replay (store misses).
    templates_captured: int = 0
    #: Template captures that could not be persisted (artifact file
    #: missing or unreadable at save time); the capture is still used.
    template_store_skips: int = 0
    #: Loads abandoned to recompilation on a checksum/structure failure.
    corrupt_fallbacks: int = 0
    #: Loads abandoned to recompilation on a schema-version mismatch.
    version_fallbacks: int = 0
    #: LRU entries dropped to respect ``capacity``.
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    #: Entries resident in the LRU when the report was taken.
    entries_in_memory: int = 0

    def summary(self) -> str:
        """One grep-able line (printed by ``repro serve --store``)."""
        return (f"store: compiled={self.conversions_compiled} "
                f"loaded={self.conversions_loaded} "
                f"mem_hits={self.memory_hits} "
                f"captured={self.templates_captured} "
                f"tmpl_loaded={self.templates_loaded} "
                f"stored={self.artifacts_stored} "
                f"corrupt={self.corrupt_fallbacks} "
                f"version={self.version_fallbacks} "
                f"evicted={self.evictions}")


def store_report_json(report: StoreReport) -> str:
    """Canonical JSON (sorted keys, no spaces, trailing newline)."""
    return json.dumps(asdict(report), sort_keys=True,
                      separators=(",", ":")) + "\n"


class _Entry:
    """One resident LRU entry: the conversion plus its template map."""

    __slots__ = ("conv", "templates")

    def __init__(self, conv: ConversionResult,
                 templates: Dict[str, tuple]) -> None:
        self.conv = conv
        self.templates = templates


# ---------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------
class ArtifactStore:
    """Content-addressed artifact store with an in-process LRU.

    Parameters
    ----------
    root:
        Directory holding one ``<key>.alra`` file per artifact; created
        if absent.
    capacity:
        Maximum conversions resident in the in-process LRU.  Eviction
        is deterministic: least-recently-used first.
    on_error:
        ``"recompile"`` (default) degrades corrupt/mismatched loads to a
        fresh compile, counted in the :class:`StoreReport`; ``"raise"``
        surfaces the typed :class:`~repro.errors.StoreError` instead.
    """

    def __init__(self, root, capacity: int = 16,
                 on_error: str = "recompile") -> None:
        if on_error not in ("recompile", "raise"):
            raise ConfigError(
                f"on_error must be 'recompile' or 'raise', "
                f"got {on_error!r}")
        if int(capacity) < 1:
            raise ConfigError(
                f"store capacity must be >= 1, got {capacity!r}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity = int(capacity)
        self.on_error = on_error
        self._mem: "OrderedDict[str, _Entry]" = OrderedDict()
        self._counts: Dict[str, int] = {}

    # -- accounting ----------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def report(self) -> StoreReport:
        """Snapshot of the store's counters."""
        return StoreReport(entries_in_memory=len(self._mem),
                           **self._counts)

    # -- paths ---------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{ARTIFACT_SUFFIX}"

    def keys(self) -> List[str]:
        """Sorted content keys present on disk."""
        return sorted(p.name[:-len(ARTIFACT_SUFFIX)]
                      for p in self.root.glob(f"*{ARTIFACT_SUFFIX}"))

    # -- conversions ---------------------------------------------------
    def conversion(self, kernel, matrix, config, reorder: bool = True,
                   source: Optional[Dict[str, object]] = None
                   ) -> Tuple[ConversionResult, str]:
        """Resolve one programming-phase conversion through the store.

        Memory LRU first, then the verified disk artifact, then a cold
        ``convert()`` whose outcome is persisted.  ``source`` (e.g.
        ``{"dataset": ..., "scale": ...}``) is recorded in the manifest
        so ``repro cache verify`` can recompile and byte-diff later.
        Returns ``(conversion, key)``.
        """
        key = content_key(kernel, matrix, config, reorder)
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            self._bump("memory_hits")
            return entry.conv, key
        path = self.path_for(key)
        if path.exists():
            entry = self._load_entry(path, key)
            if entry is not None:
                self._bump("conversions_loaded")
                self._remember(key, entry)
                return entry.conv, key
        conv = convert(kernel, matrix, omega=config.omega,
                       reorder=reorder)
        self._bump("conversions_compiled")
        self._store_artifact(key, conv, source)
        self._remember(key, _Entry(conv, {}))
        return conv, key

    # -- templates -----------------------------------------------------
    @staticmethod
    def _template_name(kind: str, k: Optional[int]) -> str:
        return kind if k is None else f"{kind}@k{int(k)}"

    def load_template(self, key: str, kind: str,
                      k: Optional[int] = None,
                      want_spans: bool = False):
        """A stored ``(report, spans)`` template, or None on miss.

        ``want_spans`` is set by traced accelerators; a template stored
        without spans is then a miss (the capture re-runs traced and the
        richer template overwrites the stored one).
        """
        entry = self._mem.get(key)
        if entry is None:
            path = self.path_for(key)
            if not path.exists():
                return None
            entry = self._load_entry(path, key)
            if entry is None:
                return None
            self._bump("conversions_loaded")
            self._remember(key, entry)
        else:
            self._mem.move_to_end(key)
        stored = entry.templates.get(self._template_name(kind, k))
        if stored is None:
            return None
        report, spans = stored
        if want_spans and spans is None:
            return None
        self._bump("templates_loaded")
        return report.clone(), (list(spans) if spans is not None else [])

    def save_template(self, key: str, kind: str, report, spans,
                      k: Optional[int] = None) -> None:
        """Persist a freshly captured template into the artifact.

        ``spans`` is the captured span list, or None when the capture
        ran untraced.  The on-disk artifact is updated read-modify-write
        behind an atomic rename; if its file is missing or unreadable
        the persist is skipped (counted) — the in-memory copy still
        serves this process.
        """
        name = self._template_name(kind, k)
        self._bump("templates_captured")
        entry = self._mem.get(key)
        stored_spans = None if spans is None else list(spans)
        if entry is not None:
            entry.templates[name] = (report.clone(), stored_spans)
        path = self.path_for(key)
        try:
            data = path.read_bytes()
            manifest, sections = unpack_envelope(data, context=key)
            templates = decode_templates(
                sections["templates"], context=f"{key} templates")
        except (OSError, KeyError, StoreError):
            self._bump("template_store_skips")
            return
        self._bump("bytes_read", len(data))
        templates[name] = (report, stored_spans)
        sections["templates"] = encode_templates(templates)
        manifest.pop("sections", None)
        self._atomic_write(path, pack_envelope(manifest, sections))

    # -- LRU -----------------------------------------------------------
    def _remember(self, key: str, entry: _Entry) -> None:
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.capacity:
            self._mem.popitem(last=False)
            self._bump("evictions")

    # -- persistence ---------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        """Write-temp-then-rename: readers never see a partial file."""
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(data)
        os.replace(tmp, path)
        self._bump("bytes_written", len(data))

    def _store_artifact(self, key: str, conv: ConversionResult,
                        source: Optional[Dict[str, object]]) -> None:
        program = encode_program(conv.kernel, conv.table)
        image = encode_image(conv.matrix)
        self._bump("images_encoded")
        manifest, sections = _serialize_conversion(key, conv, source)
        sections["program"] = program
        sections["image"] = image
        sections["templates"] = encode_templates({})
        self._atomic_write(self.path_for(key),
                           pack_envelope(manifest, sections))
        self._bump("artifacts_stored")

    def _load_entry(self, path: Path, key: str) -> Optional[_Entry]:
        """Verified load, honouring the error policy (None = fall back)."""
        try:
            data = path.read_bytes()
        except OSError as exc:
            if self.on_error == "raise":
                raise StoreCorruptionError(
                    f"{key}: artifact unreadable ({exc})") from exc
            self._bump("corrupt_fallbacks")
            return None
        self._bump("bytes_read", len(data))
        try:
            conv, templates = _deserialize_artifact(data, key)
        except StoreError as exc:
            if self.on_error == "raise":
                raise
            if isinstance(exc, StoreCorruptionError):
                self._bump("corrupt_fallbacks")
            else:
                self._bump("version_fallbacks")
            return None
        return _Entry(conv, templates)

    # -- management (repro cache) --------------------------------------
    def entry_info(self, key: str) -> Dict[str, object]:
        """Manifest-level facts about one stored artifact (for ``ls``)."""
        path = self.path_for(key)
        data = path.read_bytes()
        manifest, sections = unpack_envelope(data, context=key)
        templates = decode_templates(sections["templates"],
                                     context=f"{key} templates")
        return {
            "key": key,
            "bytes": len(data),
            "kernel": manifest.get("kernel"),
            "n": manifest.get("n"),
            "nnz": manifest.get("nnz"),
            "omega": manifest.get("omega"),
            "reordered": manifest.get("reordered"),
            "source": manifest.get("source"),
            "templates": sorted(templates),
        }

    def gc(self, max_bytes: Optional[int] = None,
           remove_all: bool = False) -> Tuple[List[str], int]:
        """Delete stored artifacts; returns ``(removed keys, freed bytes)``.

        ``remove_all`` empties the store; otherwise artifacts are
        removed oldest-modified-first (ties broken by key) until the
        directory fits ``max_bytes``.  Removed keys are also dropped
        from the in-process LRU, and stray temp files from interrupted
        writers are always swept.
        """
        freed = 0
        for tmp in self.root.glob(f"*{ARTIFACT_SUFFIX}.tmp.*"):
            try:
                freed += tmp.stat().st_size
            except OSError:
                pass
            tmp.unlink(missing_ok=True)
        files = [(p.stat().st_mtime, p.name, p)
                 for p in self.root.glob(f"*{ARTIFACT_SUFFIX}")]
        files.sort(key=lambda t: (t[0], t[1]))
        total = sum(p.stat().st_size for _, _, p in files)
        removed: List[str] = []
        for _, name, p in files:
            if not remove_all and (max_bytes is None
                                   or total <= max_bytes):
                break
            size = p.stat().st_size
            p.unlink()
            key = name[:-len(ARTIFACT_SUFFIX)]
            self._mem.pop(key, None)
            removed.append(key)
            freed += size
            total -= size
        return removed, freed

    def verify(self, keys: Optional[List[str]] = None
               ) -> List[Tuple[str, str]]:
        """Deep-verify stored artifacts; returns ``(key, problem)`` pairs.

        Every artifact is envelope- and checksum-verified and fully
        decoded.  Artifacts whose manifest records a ``source`` are
        additionally *recompiled* — the dataset is reloaded and run back
        through Algorithm 1 — and the stored program, image, and BCSR
        sections byte-diffed against the fresh compile.  Templates are
        checksum- and schema-verified only: the capture depends on the
        full runtime configuration, of which the key stores just a
        fingerprint.
        """
        problems: List[Tuple[str, str]] = []
        for key in (keys if keys is not None else self.keys()):
            path = self.path_for(key)
            if not path.exists():
                problems.append((key, "no such artifact"))
                continue
            try:
                data = path.read_bytes()
                conv, _templates = _deserialize_artifact(data, key)
                manifest, sections = unpack_envelope(data, context=key)
            except (OSError, ReproError) as exc:
                problems.append((key, str(exc)))
                continue
            source = manifest.get("source")
            if not source:
                continue
            try:
                fresh = convert(conv.kernel, _load_source(source),
                                omega=manifest["omega"],
                                reorder=manifest["reordered"])
            except ReproError as exc:
                problems.append(
                    (key, f"source recompile failed: {exc}"))
                continue
            _, fresh_sections = _serialize_conversion(key, fresh, source)
            fresh_sections["program"] = encode_program(fresh.kernel,
                                                       fresh.table)
            fresh_sections["image"] = encode_image(fresh.matrix)
            for name in ("program", "image", "bcsr_indptr", "bcsr_cols",
                         "bcsr_blocks"):
                if sections[name] != fresh_sections[name]:
                    problems.append(
                        (key, f"section {name!r} differs from a fresh "
                              f"recompile of {source!r}"))
        return problems


# ---------------------------------------------------------------------
# Artifact [de]serialization
# ---------------------------------------------------------------------
def _serialize_conversion(key: str, conv: ConversionResult,
                          source: Optional[Dict[str, object]]
                          ) -> Tuple[Dict[str, object], Dict[str, bytes]]:
    """Manifest + BCSR sections of a conversion (program/image/templates
    are added by the caller)."""
    bcsr = conv.bcsr
    manifest: Dict[str, object] = {
        "key": key,
        "kernel": conv.kernel.value,
        "omega": conv.omega,
        "n": conv.matrix.shape[0],
        "shape": [int(conv.matrix.shape[0]), int(conv.matrix.shape[1])],
        "nnz": int(bcsr.nnz),
        "reordered": bool(conv.reordered),
        "source": source,
    }
    sections = {
        "bcsr_indptr": np.ascontiguousarray(
            bcsr.block_indptr, dtype="<i8").tobytes(),
        "bcsr_cols": np.ascontiguousarray(
            bcsr.block_cols, dtype="<i8").tobytes(),
        "bcsr_blocks": np.ascontiguousarray(
            bcsr.blocks, dtype="<f8").tobytes(),
    }
    return manifest, sections


def _deserialize_artifact(data: bytes, key: str
                          ) -> Tuple[ConversionResult, Dict[str, tuple]]:
    """Decode and cross-verify a stored artifact's bytes."""
    manifest, sections = unpack_envelope(data, context=key)
    missing = [s for s in _REQUIRED_SECTIONS if s not in sections]
    if missing:
        raise StoreCorruptionError(
            f"{key}: artifact lacks sections {missing}")
    try:
        kernel, table = decode_program(sections["program"])
        matrix = decode_image(sections["image"])
    except (FormatError, CorruptionError, ConfigError) as exc:
        raise StoreCorruptionError(
            f"{key}: stored binary rejected by its decoder "
            f"({exc})") from exc
    omega = manifest.get("omega")
    shape = manifest.get("shape")
    if (not isinstance(omega, int) or not isinstance(shape, list)
            or len(shape) != 2):
        raise StoreCorruptionError(
            f"{key}: manifest omega/shape malformed")
    indptr = np.frombuffer(sections["bcsr_indptr"],
                           dtype="<i8").astype(np.int64)
    cols = np.frombuffer(sections["bcsr_cols"],
                         dtype="<i8").astype(np.int64)
    raw_blocks = sections["bcsr_blocks"]
    n_blocks = len(cols)
    if len(raw_blocks) != n_blocks * omega * omega * 8:
        raise StoreCorruptionError(
            f"{key}: BCSR block payload has {len(raw_blocks)} bytes, "
            f"expected {n_blocks * omega * omega * 8}")
    blocks = np.frombuffer(raw_blocks, dtype="<f8").astype(
        np.float64).reshape(n_blocks, omega, omega)
    try:
        bcsr = BCSRMatrix((int(shape[0]), int(shape[1])), omega,
                          indptr, cols, blocks)
    except ReproError as exc:
        raise StoreCorruptionError(
            f"{key}: stored BCSR arrays are inconsistent "
            f"({exc})") from exc
    if kernel.value != manifest.get("kernel"):
        raise StoreCorruptionError(
            f"{key}: program kernel {kernel.value!r} disagrees with "
            f"manifest {manifest.get('kernel')!r}")
    if matrix.omega != omega or matrix.shape != (shape[0], shape[1]):
        raise StoreCorruptionError(
            f"{key}: device image geometry disagrees with manifest")
    if int(bcsr.nnz) != manifest.get("nnz"):
        raise StoreCorruptionError(
            f"{key}: BCSR nnz {bcsr.nnz} disagrees with manifest "
            f"{manifest.get('nnz')}")
    conv = ConversionResult(kernel=kernel, omega=omega, table=table,
                            matrix=matrix, bcsr=bcsr,
                            reordered=bool(manifest.get("reordered",
                                                        True)))
    templates = decode_templates(sections["templates"],
                                 context=f"{key} templates")
    return conv, templates


def _load_source(source: Dict[str, object]):
    """Reload the matrix a manifest's ``source`` metadata describes."""
    from repro.datasets import load_dataset
    matrix = load_dataset(str(source["dataset"]),
                          scale=float(source["scale"])).matrix
    if source.get("transform") == "reverse":
        import scipy.sparse as sp
        csr = (matrix.tocsr() if sp.issparse(matrix)
               else sp.csr_matrix(np.asarray(matrix, dtype=np.float64)))
        perm = np.arange(csr.shape[0])[::-1]
        matrix = csr[perm][:, perm].tocsr()
    return matrix
