"""JSON [de]serialization for captured report and span templates.

The compiled-plan layer replays each kernel once through the legacy
interpreter to capture a :class:`~repro.core.report.SimReport` and (when
tracing) the :class:`~repro.observe.tracer.Span` timeline; those
templates are then cloned per request.  This module round-trips them
through JSON so the artifact store can persist the capture and a warm
process can skip the replay entirely.

Fidelity rules:

- Every ``SimReport`` field is mapped explicitly — an unknown key in a
  stored template raises :class:`~repro.errors.StoreCorruptionError`
  rather than being silently dropped, so schema drift is caught at load.
- Dict insertion order is preserved (``json.dumps`` without
  ``sort_keys``; JSON objects round-trip key order), because counter and
  ``datapath_cycles`` iteration order feeds byte-identical trace and
  report exports.
- Numbers keep their Python types: ints stay ints, floats round-trip
  exactly through ``repr`` (the default JSON float encoding).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.core.report import SimReport
from repro.errors import StoreCorruptionError
from repro.observe.tracer import Span
from repro.sim.stats import CounterSet

_REPORT_FIELDS = (
    "kernel", "cycles", "frequency_hz", "useful_bytes", "streamed_bytes",
    "sequential_cycles", "cache_busy_cycles", "exposed_reconfig_cycles",
    "n_entries", "n_switches", "energy_j", "bytes_per_cycle",
)

_SPAN_FIELDS = ("span_id", "name", "cat", "track", "begin", "end",
                "args", "parent", "instant")


def report_to_json(report: SimReport) -> Dict[str, object]:
    """A plain-JSON mapping of every ``SimReport`` field."""
    body: Dict[str, object] = {f: getattr(report, f)
                               for f in _REPORT_FIELDS}
    body["counters"] = report.counters.as_dict()
    body["datapath_cycles"] = dict(report.datapath_cycles)
    return body


def report_from_json(body: Dict[str, object],
                     context: str = "template") -> SimReport:
    """Rebuild a ``SimReport``; rejects unknown or missing keys."""
    if not isinstance(body, dict):
        raise StoreCorruptionError(
            f"{context}: report template is not an object "
            f"(got {type(body).__name__})")
    expected = set(_REPORT_FIELDS) | {"counters", "datapath_cycles"}
    unknown = set(body) - expected
    if unknown:
        raise StoreCorruptionError(
            f"{context}: report template has unknown keys "
            f"{sorted(unknown)}")
    missing = expected - set(body)
    if missing:
        raise StoreCorruptionError(
            f"{context}: report template missing keys "
            f"{sorted(missing)}")
    kwargs = {f: body[f] for f in _REPORT_FIELDS}
    kwargs["counters"] = CounterSet(body["counters"])
    kwargs["datapath_cycles"] = dict(body["datapath_cycles"])
    return SimReport(**kwargs)


def span_to_json(span: Span) -> Dict[str, object]:
    return {f: getattr(span, f) for f in _SPAN_FIELDS}


def span_from_json(body: Dict[str, object],
                   context: str = "template") -> Span:
    if not isinstance(body, dict) or set(body) != set(_SPAN_FIELDS):
        raise StoreCorruptionError(
            f"{context}: span template has wrong shape "
            f"(keys {sorted(body) if isinstance(body, dict) else body!r})")
    return Span(**body)


def encode_templates(
        templates: Dict[str, Tuple[SimReport, Optional[List[Span]]]]
        ) -> bytes:
    """Serialize a template map to the artifact's ``templates`` section.

    Keys are ``kind`` for the base template and ``kind@k{width}`` for
    batch-width templates; values pair the captured report with its span
    timeline (``None`` when captured without a tracer).
    """
    body = {
        name: {
            "report": report_to_json(report),
            "spans": (None if spans is None
                      else [span_to_json(s) for s in spans]),
        }
        for name, (report, spans) in templates.items()
    }
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def decode_templates(
        raw: bytes, context: str = "templates"
        ) -> Dict[str, Tuple[SimReport, Optional[List[Span]]]]:
    """Inverse of :func:`encode_templates`; fully validated."""
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptionError(
            f"{context}: template section is not valid JSON "
            f"({exc})") from exc
    if not isinstance(body, dict):
        raise StoreCorruptionError(
            f"{context}: template section is not an object")
    out: Dict[str, Tuple[SimReport, Optional[List[Span]]]] = {}
    for name, entry in body.items():
        if (not isinstance(entry, dict)
                or set(entry) != {"report", "spans"}):
            raise StoreCorruptionError(
                f"{context}: template entry {name!r} has wrong shape")
        where = f"{context}[{name}]"
        report = report_from_json(entry["report"], context=where)
        spans_body = entry["spans"]
        if spans_body is None:
            spans: Optional[List[Span]] = None
        elif isinstance(spans_body, list):
            spans = [span_from_json(s, context=where)
                     for s in spans_body]
        else:
            raise StoreCorruptionError(
                f"{context}: template entry {name!r} spans must be a "
                f"list or null")
        out[name] = (report, spans)
    return out
