"""Named dataset registry.

Maps the paper's dataset names to synthetic analogues at laptop scale.
Scientific matrices follow Figure 14's application mix (circuit
simulation, electromagnetics, fluid dynamics, structural, thermal,
acoustics, economics, chemical); graph datasets follow Table 3.  The
``scale`` argument shrinks/grows every dataset proportionally (0.25
quarters the default node count) so tests stay fast while benchmarks can
run bigger instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import scipy.sparse as sp

from repro.errors import DatasetError
from repro.datasets import graphs, scientific


@dataclass(frozen=True)
class Dataset:
    """A named matrix plus its provenance."""

    name: str
    kind: str  # "scientific" | "graph"
    matrix: sp.csr_matrix
    description: str
    params: Dict[str, object] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.matrix.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def weighted(self) -> bool:
        return bool(self.params.get("weighted", False))


def _dim(base: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(round(base * scale)))


def _sci(name: str, description: str,
         factory: Callable[[float], sp.csr_matrix]):
    return (name, "scientific", description, factory)


def _gra(name: str, description: str,
         factory: Callable[[float], sp.csr_matrix], weighted: bool):
    return (name, "graph", description, factory, weighted)


_SCIENTIFIC = [
    _sci("stencil27", "HPCG-style 27-point 3-D stencil (PDE solving)",
         lambda s: scientific.stencil27(
             _dim(14, s ** (1 / 3)), _dim(14, s ** (1 / 3)),
             _dim(14, s ** (1 / 3)))),
    _sci("parabolic_fem", "2-D diffusion stencil (fluid dynamics analogue)",
         lambda s: scientific.stencil5(_dim(52, math.sqrt(s)),
                                       _dim(52, math.sqrt(s)))),
    _sci("thermal2", "anisotropic 2-D thermal diffusion",
         lambda s: scientific.thermal_like(_dim(48, math.sqrt(s)),
                                           _dim(48, math.sqrt(s)))),
    _sci("apache2", "FEM structural blocks, short-range coupling",
         lambda s: scientific.structural_like(_dim(2400, s), dof=6,
                                              reach=3)),
    _sci("af_shell", "banded shell-structure matrix (acoustics/structural)",
         lambda s: scientific.banded(_dim(2400, s), bandwidth=12,
                                     fill=0.7)),
    _sci("offshore", "wide-band electromagnetics matrix",
         lambda s: scientific.banded(_dim(2000, s), bandwidth=24,
                                     fill=0.35, seed=23)),
    _sci("scircuit", "circuit simulation with dense stripe nets",
         lambda s: scientific.circuit_like(_dim(2400, s), stripe_rows=8)),
    _sci("memplus", "memory-circuit simulation, scattered couplings",
         lambda s: scientific.circuit_like(_dim(2000, s), stripe_rows=4,
                                           local_nnz=6, seed=29)),
    _sci("economics", "fully scattered economics/optimization matrix",
         lambda s: scientific.random_spd(_dim(1600, s), density=0.004)),
    _sci("chem_master", "chemical master equation on a 3-D state space",
         lambda s: scientific.stencil7(
             _dim(13, s ** (1 / 3)), _dim(13, s ** (1 / 3)),
             _dim(13, s ** (1 / 3)))),
]

#: Additional scientific matrices beyond the calibrated Figure-14 suite
#: (the paper's figure shows a wider spread of SuiteSparse problems;
#: these extend the registry without changing the benchmarked suites).
_SCIENTIFIC_EXTRA = [
    _sci("G3_circuit", "large circuit on a grid substrate",
         lambda s: scientific.circuit_like(_dim(3000, s), stripe_rows=10,
                                           local_nnz=3, seed=61,
                                           clump=2)),
    _sci("ecology2", "5-point grid ecology model",
         lambda s: scientific.stencil5(_dim(56, math.sqrt(s)),
                                       _dim(56, math.sqrt(s)))),
    _sci("ship_003", "ship-structure FEM, 3-dof dense blocks",
         lambda s: scientific.structural_like(_dim(2100, s), dof=3,
                                              reach=6, seed=67)),
    _sci("power9", "power-network matrix with hub buses",
         lambda s: scientific.circuit_like(_dim(2600, s), stripe_rows=16,
                                           local_nnz=2, seed=71,
                                           clump=1)),
]

_GRAPHS = [
    _gra("com-orkut", "large social network (power-law)",
         lambda s: graphs.preferential_attachment(_dim(2048, s), m=14,
                                                  seed=41), False),
    _gra("hollywood-2009", "collaboration cliques + heavy tail",
         lambda s: graphs.clustered_power_law(_dim(1792, s),
                                              cluster_size=32, seed=42),
         False),
    _gra("kron-g500-logn21", "Graph500 Kronecker (RMAT)",
         lambda s: graphs.rmat(max(6, int(round(11 + math.log2(max(s, 1e-3))))),
                               edge_factor=16, seed=43), False),
    _gra("roadNet-CA", "near-planar road network, huge diameter",
         lambda s: graphs.road_grid(_dim(48, math.sqrt(s)),
                                    _dim(48, math.sqrt(s)), seed=44),
         True),
    _gra("LiveJournal", "blogging social network (power-law)",
         lambda s: graphs.preferential_attachment(_dim(2304, s), m=10,
                                                  seed=45), False),
    _gra("Youtube", "sparse social network (power-law, low density)",
         lambda s: graphs.preferential_attachment(_dim(2048, s), m=5,
                                                  seed=46), False),
    _gra("Pokec", "dense social network (power-law)",
         lambda s: graphs.preferential_attachment(_dim(1920, s), m=16,
                                                  seed=47), False),
    _gra("sx-stackoverflow", "Q&A interaction graph (clustered power-law)",
         lambda s: graphs.clustered_power_law(_dim(2176, s),
                                              cluster_size=24, seed=48),
         False),
]

_REGISTRY: Dict[str, tuple] = {}
for spec in _SCIENTIFIC:
    _REGISTRY[spec[0]] = spec
for spec in _SCIENTIFIC_EXTRA:
    _REGISTRY[spec[0]] = spec
for spec in _GRAPHS:
    _REGISTRY[spec[0]] = spec


def list_datasets(kind: Optional[str] = None) -> List[str]:
    """Names of all registered datasets, optionally filtered by kind."""
    if kind is not None and kind not in ("scientific", "graph"):
        raise DatasetError(f"unknown dataset kind {kind!r}")
    return [name for name, spec in _REGISTRY.items()
            if kind is None or spec[1] == kind]


#: Keyed dataset cache: ``(name, scale) -> Dataset``.  Generation is the
#: dominant cost of repeated loads (the serving runtime programs the
#: same dataset onto every device of a pool), so instances are reused.
#: Cached matrices are frozen read-only — callers share one instance,
#: and a job that tried to scribble on its operand would corrupt every
#: other job's answer; the write flag turns that bug into a loud
#: ``ValueError`` at the offending statement.
_DATASET_CACHE: "Dict[Tuple[str, float], Dataset]" = {}

#: Bound on cached instances (FIFO eviction); generous for the registry
#: size times the handful of scales tests and benchmarks use.
_DATASET_CACHE_MAX = 64


def clear_dataset_cache() -> None:
    """Drop every cached dataset instance (tests, memory pressure)."""
    _DATASET_CACHE.clear()


def _freeze(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Mark a CSR matrix's buffers read-only (shared-cache safety)."""
    for attr in ("data", "indices", "indptr"):
        getattr(matrix, attr).flags.writeable = False
    return matrix


def load_dataset(name: str, scale: float = 1.0) -> Dataset:
    """Instantiate a registered dataset at the requested scale.

    Results are cached by ``(name, scale)`` and shared: the returned
    :class:`Dataset` is frozen and its matrix buffers are read-only.
    Callers that need to mutate (e.g. reweighting a graph) must
    ``matrix.copy()`` first.  :func:`clear_dataset_cache` empties the
    cache.
    """
    if name not in _REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    key = (name, float(scale))
    cached = _DATASET_CACHE.get(key)
    if cached is not None:
        return cached
    spec = _REGISTRY[name]
    kind = spec[1]
    matrix = _freeze(spec[3](scale))
    weighted = spec[4] if kind == "graph" else False
    ds = Dataset(
        name=name,
        kind=kind,
        matrix=matrix,
        description=spec[2],
        params={"scale": scale, "weighted": weighted},
    )
    if len(_DATASET_CACHE) >= _DATASET_CACHE_MAX:
        _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
    _DATASET_CACHE[key] = ds
    return ds
