"""Synthetic scientific matrices (Figure 14 substitutes).

The paper evaluates PCG/SpMV on SuiteSparse matrices from circuit
simulation, electromagnetics, fluid dynamics, structural mechanics,
thermal, acoustics, economics and chemical problems.  Those exact files
are not redistributable here, so each generator below produces a matrix
with the *structural signature* of its class — what actually drives every
result in the paper: diagonal-heaviness (which controls the sequential
fraction under Gauss-Seidel), block density under ω-blocking (which
controls streamed-payload waste), and non-zero scatter (which controls
baseline cache behaviour).

All generators return symmetric positive-definite scipy CSR matrices
(diagonally dominant), so SymGS converges and PCG is well-posed.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError


def _finalize_spd(coo: sp.coo_matrix, shift: float = 1.0) -> sp.csr_matrix:
    """Symmetrise and make strictly diagonally dominant (hence SPD)."""
    a = coo.tocsr()
    a = (a + a.T) * 0.5
    a = a.tolil()
    a.setdiag(0.0)
    a = a.tocsr()
    a.eliminate_zeros()
    row_abs = np.abs(a).sum(axis=1).A.ravel() if hasattr(
        np.abs(a).sum(axis=1), "A") else np.asarray(
            np.abs(a).sum(axis=1)).ravel()
    diag = row_abs + shift
    return (a + sp.diags(diag)).tocsr()


def _check_positive(n: int, what: str = "size") -> None:
    if n <= 0:
        raise DatasetError(f"{what} must be positive, got {n}")


def stencil27(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """HPCG-style 27-point stencil discretisation of a 3-D PDE.

    Diagonal 26, all 26 neighbours -1 — symmetric positive definite and
    extremely diagonal-heavy under blocking, the structure for which the
    paper reports the largest PCG speedups.
    """
    for v in (nx, ny, nz):
        _check_positive(v, "grid extent")
    n = nx * ny * nz
    idx = np.arange(n)
    iz, iy, ix = idx // (nx * ny), (idx // nx) % ny, idx % nx
    rows, cols = [], []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                if dx == dy == dz == 0:
                    continue
                jx, jy, jz = ix + dx, iy + dy, iz + dz
                ok = ((0 <= jx) & (jx < nx) & (0 <= jy) & (jy < ny)
                      & (0 <= jz) & (jz < nz))
                rows.append(idx[ok])
                cols.append((jz[ok] * ny + jy[ok]) * nx + jx[ok])
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    off = sp.coo_matrix((-np.ones(r.size), (r, c)), shape=(n, n)).tocsr()
    return (off + sp.diags(np.full(n, 26.0))).tocsr()


def stencil7(nx: int, ny: int, nz: int) -> sp.csr_matrix:
    """3-D 7-point stencil (chemical master equation / diffusion chain).

    Nearest-neighbour couplings only: diagonal-heavy like a banded
    chain, but with the three-axis structure that keeps its 8-wide
    blocks partially filled.
    """
    for v in (nx, ny, nz):
        _check_positive(v, "grid extent")
    n = nx * ny * nz
    idx = np.arange(n)
    iz, iy, ix = idx // (nx * ny), (idx // nx) % ny, idx % nx
    rows, cols = [], []
    for dz, dy, dx in ((0, 0, -1), (0, 0, 1), (0, -1, 0), (0, 1, 0),
                       (-1, 0, 0), (1, 0, 0)):
        jx, jy, jz = ix + dx, iy + dy, iz + dz
        ok = ((0 <= jx) & (jx < nx) & (0 <= jy) & (jy < ny)
              & (0 <= jz) & (jz < nz))
        rows.append(idx[ok])
        cols.append((jz[ok] * ny + jy[ok]) * nx + jx[ok])
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    off = sp.coo_matrix((-np.ones(r.size), (r, c)), shape=(n, n)).tocsr()
    return (off + sp.diags(np.full(n, 6.5))).tocsr()


def stencil5(nx: int, ny: int, shift: float = 0.5) -> sp.csr_matrix:
    """2-D 5-point Laplacian (parabolic/elliptic PDE signature).

    ``shift`` adds to the pure-Laplacian diagonal of 4: the default 0.5
    keeps tests fast; a small shift (e.g. 0.02) yields the
    ill-conditioned systems where preconditioning earns its keep.
    """
    _check_positive(nx, "grid extent")
    _check_positive(ny, "grid extent")
    if shift <= 0:
        raise DatasetError(f"shift must be positive, got {shift}")
    n = nx * ny
    idx = np.arange(n)
    iy, ix = idx // nx, idx % nx
    rows, cols = [], []
    for dy, dx in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        jx, jy = ix + dx, iy + dy
        ok = (0 <= jx) & (jx < nx) & (0 <= jy) & (jy < ny)
        rows.append(idx[ok])
        cols.append(jy[ok] * nx + jx[ok])
    r = np.concatenate(rows)
    c = np.concatenate(cols)
    off = sp.coo_matrix((-np.ones(r.size), (r, c)), shape=(n, n)).tocsr()
    return (off + sp.diags(np.full(n, 4.0 + shift))).tocsr()


def tridiagonal(n: int) -> sp.csr_matrix:
    """1-D Laplacian: the fully sequential Gauss-Seidel worst case."""
    _check_positive(n)
    return sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.5), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
    ).tocsr()


def banded(n: int, bandwidth: int, fill: float = 0.6,
           seed: int = 7) -> sp.csr_matrix:
    """Random banded SPD matrix (acoustics / shell-structure signature)."""
    _check_positive(n)
    if bandwidth <= 0 or bandwidth >= n:
        raise DatasetError(f"bandwidth {bandwidth} out of range for n={n}")
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for k in range(1, bandwidth + 1):
        keep = rng.random(n - k) < fill
        i = np.nonzero(keep)[0]
        rows.append(i)
        cols.append(i + k)
        vals.append(rng.normal(scale=1.0, size=i.size))
    r = np.concatenate(rows) if rows else np.zeros(0, int)
    c = np.concatenate(cols) if cols else np.zeros(0, int)
    v = np.concatenate(vals) if vals else np.zeros(0)
    upper = sp.coo_matrix((v, (r, c)), shape=(n, n))
    return _finalize_spd(upper)


def circuit_like(n: int, stripe_rows: int = 6, local_nnz: int = 4,
                 seed: int = 11, clump: int = 2) -> sp.csr_matrix:
    """Circuit-simulation signature (memplus/scircuit analogues).

    Mostly near-diagonal couplings plus a handful of dense rows/columns
    (power and ground nets touching many nodes).  Couplings come in
    small ``clump x clump`` groups — real netlists connect multi-terminal
    devices, which is what gives circuit matrices their locally-dense
    texture under blocking.
    """
    _check_positive(n)
    rng = np.random.default_rng(seed)
    i0 = np.repeat(np.arange(0, n, clump), local_nnz)
    offsets = rng.integers(1, max(2, n // 50), size=i0.size)
    j0 = (i0 + offsets) % n
    di, dj = np.meshgrid(np.arange(clump), np.arange(clump),
                         indexing="ij")
    i = (i0[:, None] + di.ravel()[None, :]).ravel() % n
    j = (j0[:, None] + dj.ravel()[None, :]).ravel() % n
    vals = rng.normal(scale=0.5, size=i.size)
    rows, cols, data = [i], [j], [vals]
    for _ in range(stripe_rows):
        hub = int(rng.integers(0, n))
        touched = rng.choice(n, size=max(2, n // 20), replace=False)
        rows.append(np.full(touched.size, hub))
        cols.append(touched)
        data.append(rng.normal(scale=0.2, size=touched.size))
    coo = sp.coo_matrix(
        (np.concatenate(data),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    return _finalize_spd(coo)


def structural_like(n: int, dof: int = 6, reach: int = 3,
                    seed: int = 13) -> sp.csr_matrix:
    """FEM structural signature: dense dof x dof element blocks coupled
    to a few neighbouring elements — high block density under blocking."""
    _check_positive(n)
    if dof <= 0:
        raise DatasetError(f"dof must be positive, got {dof}")
    rng = np.random.default_rng(seed)
    n_elems = max(1, n // dof)
    rows, cols, vals = [], [], []
    local_r, local_c = np.meshgrid(np.arange(dof), np.arange(dof),
                                   indexing="ij")
    for e in range(n_elems):
        base = e * dof
        neighbours = [e] + [
            e + d for d in range(1, reach + 1) if e + d < n_elems
        ]
        for f in neighbours:
            fb = f * dof
            r = (base + local_r).ravel()
            c = (fb + local_c).ravel()
            ok = (r < n) & (c < n)
            rows.append(r[ok])
            cols.append(c[ok])
            vals.append(rng.normal(scale=1.0, size=int(ok.sum())))
    coo = sp.coo_matrix(
        (np.concatenate(vals),
         (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    return _finalize_spd(coo)


def random_spd(n: int, density: float = 0.003, clump: int = 2,
               seed: int = 17) -> sp.csr_matrix:
    """Scattered SPD matrix (economics/optimization signature).

    Non-zeros land at random positions but in small ``clump x clump``
    groups (economic sectors couple through shared factor blocks), which
    matches the mild local density real economics matrices show.
    """
    _check_positive(n)
    if not 0.0 < density <= 1.0:
        raise DatasetError(f"density must be in (0, 1], got {density}")
    if clump <= 0:
        raise DatasetError(f"clump must be positive, got {clump}")
    rng = np.random.default_rng(seed)
    n_clumps = max(1, int(density * n * n) // (clump * clump))
    r0 = rng.integers(0, n, size=n_clumps)
    # Sector coupling is mostly local (geometric offsets around the
    # diagonal) with a long uniform tail, matching the texture of real
    # economics matrices.
    local = rng.random(n_clumps) < 0.7
    offsets = rng.geometric(p=min(0.5, 16.0 / n), size=n_clumps) \
        * rng.choice((-1, 1), size=n_clumps)
    c0 = np.where(local, (r0 + offsets) % n,
                  rng.integers(0, n, size=n_clumps))
    di, dj = np.meshgrid(np.arange(clump), np.arange(clump),
                         indexing="ij")
    r = (r0[:, None] + di.ravel()[None, :]).ravel() % n
    c = (c0[:, None] + dj.ravel()[None, :]).ravel() % n
    v = rng.normal(size=r.size)
    coo = sp.coo_matrix((v, (r, c)), shape=(n, n))
    return _finalize_spd(coo)


def thermal_like(nx: int, ny: int, anisotropy: float = 0.1,
                 seed: int = 19) -> sp.csr_matrix:
    """Thermal-diffusion signature: 2-D stencil with jittered weights."""
    base = stencil5(nx, ny).tocoo()
    rng = np.random.default_rng(seed)
    off = base.data < 0
    data = base.data.copy()
    data[off] *= 1.0 + anisotropy * rng.random(off.sum())
    coo = sp.coo_matrix((data, (base.row, base.col)), shape=base.shape)
    return _finalize_spd(coo, shift=0.5)
