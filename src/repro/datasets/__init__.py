"""Synthetic datasets standing in for SuiteSparse / SNAP collections.

Scientific matrices (Figure 14 analogues) and graph datasets (Table 3
analogues), all generated deterministically at a configurable scale.
"""

from repro.datasets.graphs import (
    clustered_power_law,
    out_degrees,
    preferential_attachment,
    rmat,
    road_grid,
)
from repro.datasets.registry import (
    Dataset,
    clear_dataset_cache,
    list_datasets,
    load_dataset,
)
from repro.datasets.scientific import (
    banded,
    circuit_like,
    random_spd,
    stencil5,
    stencil7,
    stencil27,
    structural_like,
    thermal_like,
    tridiagonal,
)

__all__ = [
    "Dataset",
    "banded",
    "circuit_like",
    "clear_dataset_cache",
    "clustered_power_law",
    "list_datasets",
    "load_dataset",
    "out_degrees",
    "preferential_attachment",
    "random_spd",
    "rmat",
    "road_grid",
    "stencil27",
    "stencil5",
    "stencil7",
    "structural_like",
    "thermal_like",
    "tridiagonal",
]
