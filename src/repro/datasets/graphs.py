"""Synthetic graph datasets (Table 3 substitutes).

The paper's graph suite (com-orkut, hollywood-2009, kron-g500,
roadNet-CA, LiveJournal, Youtube, Pokec, sx-stackoverflow) spans three
structural families that determine accelerator behaviour: heavy-tailed
social/web graphs (RMAT / preferential attachment), near-planar road
networks (grid-like, huge diameter), and clustered collaboration graphs.
Each generator reproduces one family at laptop scale, returning a
*directed, weighted* adjacency matrix in scipy CSR form
(``A[u, v] = w`` for edge u -> v; weights are 1.0 for unweighted use).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError


def _dedup_edges(src: np.ndarray, dst: np.ndarray,
                 n: int) -> tuple[np.ndarray, np.ndarray]:
    """Drop self-loops and duplicate edges."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    keys = src.astype(np.int64) * n + dst
    _, first = np.unique(keys, return_index=True)
    return src[first], dst[first]


def _weights(n_edges: int, weighted: bool, rng) -> np.ndarray:
    if weighted:
        return rng.uniform(1.0, 10.0, size=n_edges)
    return np.ones(n_edges, dtype=np.float64)


def rmat(scale: int, edge_factor: int = 8,
         probs: tuple = (0.57, 0.19, 0.19, 0.05),
         weighted: bool = False, seed: int = 1) -> sp.csr_matrix:
    """Recursive-MATrix (Kronecker) generator — kron-g500 analogue.

    Produces the heavy-tailed degree distribution of Graph500 matrices;
    ``scale`` is log2 of the vertex count.
    """
    if scale <= 0 or scale > 22:
        raise DatasetError(f"rmat scale {scale} out of supported range")
    if abs(sum(probs) - 1.0) > 1e-9:
        raise DatasetError("rmat quadrant probabilities must sum to 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    n_edges = n * edge_factor
    a, b, c, _d = probs
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(n_edges)
        go_right = (r >= a) & (r < a + b)
        go_down = (r >= a + b) & (r < a + b + c)
        go_diag = r >= a + b + c
        src += ((go_down | go_diag).astype(np.int64)) << bit
        dst += ((go_right | go_diag).astype(np.int64)) << bit
    src, dst = _dedup_edges(src, dst, n)
    w = _weights(src.size, weighted, rng)
    return sp.coo_matrix((w, (src, dst)), shape=(n, n)).tocsr()


def preferential_attachment(n: int, m: int = 4, weighted: bool = False,
                            seed: int = 2) -> sp.csr_matrix:
    """Barabasi-Albert-style power-law graph — social-network analogue
    (com-orkut / LiveJournal / Pokec / Youtube)."""
    if n <= m or m <= 0:
        raise DatasetError(f"need n > m > 0, got n={n}, m={m}")
    rng = np.random.default_rng(seed)
    targets = list(range(m))
    repeated: list = list(range(m))
    src_list, dst_list = [], []
    for v in range(m, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(int(repeated[rng.integers(0, len(repeated))]))
        for t in chosen:
            src_list.append(v)
            dst_list.append(t)
            repeated.append(t)
        repeated.extend([v] * m)
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    # Make it directed both ways with probability 1/2 each direction,
    # mimicking follower-style social graphs.
    flip = rng.random(src.size) < 0.5
    src2 = np.concatenate([src, dst[flip]])
    dst2 = np.concatenate([dst, src[flip]])
    src2, dst2 = _dedup_edges(src2, dst2, n)
    w = _weights(src2.size, weighted, rng)
    return sp.coo_matrix((w, (src2, dst2)), shape=(n, n)).tocsr()


def road_grid(nx: int, ny: int, extra_prob: float = 0.05,
              weighted: bool = True, seed: int = 3) -> sp.csr_matrix:
    """Near-planar road-network analogue (roadNet-CA).

    A 2-D lattice with bidirectional edges plus a sprinkling of diagonal
    shortcuts; max degree ~4, enormous diameter — the opposite regime
    from the social graphs.
    """
    if nx <= 1 or ny <= 1:
        raise DatasetError("road grid needs nx, ny > 1")
    rng = np.random.default_rng(seed)
    n = nx * ny
    idx = np.arange(n)
    iy, ix = idx // nx, idx % nx
    src_list, dst_list = [], []
    for dy, dx in ((0, 1), (1, 0)):
        jx, jy = ix + dx, iy + dy
        ok = (jx < nx) & (jy < ny)
        u, v = idx[ok], jy[ok] * nx + jx[ok]
        src_list.extend([u, v])
        dst_list.extend([v, u])
    # Diagonal shortcuts.
    jx, jy = ix + 1, iy + 1
    ok = (jx < nx) & (jy < ny) & (rng.random(n) < extra_prob)
    u, v = idx[ok], jy[ok] * nx + jx[ok]
    src_list.extend([u, v])
    dst_list.extend([v, u])
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    src, dst = _dedup_edges(src, dst, n)
    w = _weights(src.size, weighted, rng)
    return sp.coo_matrix((w, (src, dst)), shape=(n, n)).tocsr()


def clustered_power_law(n: int, cluster_size: int = 32, m: int = 3,
                        weighted: bool = False,
                        seed: int = 4) -> sp.csr_matrix:
    """Dense-cluster power-law graph — hollywood-2009 / stackoverflow
    analogue: collaboration cliques joined by a heavy-tailed backbone."""
    if cluster_size <= 1 or n <= cluster_size:
        raise DatasetError("need n > cluster_size > 1")
    rng = np.random.default_rng(seed)
    src_list, dst_list = [], []
    # Dense intra-cluster connections (actors in the same movie).
    for start in range(0, n, cluster_size):
        members = np.arange(start, min(start + cluster_size, n))
        if members.size < 2:
            continue
        k = min(members.size - 1, 10)
        for u in members:
            nb = rng.choice(members, size=k, replace=False)
            src_list.append(np.full(nb.size, u))
            dst_list.append(nb)
    # Power-law backbone between clusters.
    backbone = preferential_attachment(
        max(2 * m + 1, n // cluster_size), m=m, seed=seed + 1
    ).tocoo()
    scale_up = cluster_size
    src_list.append(backbone.row * scale_up % n)
    dst_list.append(backbone.col * scale_up % n)
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    src, dst = _dedup_edges(src, dst, n)
    w = _weights(src.size, weighted, rng)
    return sp.coo_matrix((w, (src, dst)), shape=(n, n)).tocsr()


def out_degrees(adj: sp.csr_matrix) -> np.ndarray:
    """Out-degree vector of a directed adjacency matrix."""
    return np.asarray((adj != 0).sum(axis=1)).ravel().astype(np.float64)
