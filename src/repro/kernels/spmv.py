"""Reference sparse matrix-vector multiplication (Equation 1).

``x_j = sum_i b[ind_i] * val_ij`` over the stored non-zeros — the golden
model every accelerator/baseline execution is checked against.
"""

from __future__ import annotations

import numpy as np

from repro.formats import CSRMatrix, SparseFormat
from repro.formats.base import as_dense


def to_csr(matrix) -> CSRMatrix:
    """Coerce dense / scipy / any SparseFormat input to :class:`CSRMatrix`."""
    if isinstance(matrix, CSRMatrix):
        return matrix
    if isinstance(matrix, SparseFormat):
        return CSRMatrix.from_dense(matrix.to_dense())
    if hasattr(matrix, "tocoo"):
        return CSRMatrix.from_scipy(matrix)
    return CSRMatrix.from_dense(as_dense(matrix))


def spmv(matrix, x: np.ndarray) -> np.ndarray:
    """``A @ x`` through our own CSR kernel (no scipy arithmetic)."""
    return to_csr(matrix).spmv(np.asarray(x, dtype=np.float64))
