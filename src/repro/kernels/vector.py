"""Dense vector kernels used by the iterative solvers.

The PCG algorithm (Figure 2 of the paper) spends almost all of its time
in SpMV and SymGS (Figure 3); the remaining kernels — dot products and
scaled vector adds ("waxpby" in HPCG terminology) — are implemented here
and charged to the solver's host/vector unit in the timing models.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def _pair(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ShapeError(f"incompatible vector shapes {x.shape} / {y.shape}")
    return x, y


def dot(x, y) -> float:
    """Inner product ``x . y``."""
    x, y = _pair(x, y)
    return float(np.dot(x, y))


def waxpby(alpha: float, x, beta: float, y) -> np.ndarray:
    """``w = alpha * x + beta * y`` (HPCG's WAXPBY kernel)."""
    x, y = _pair(x, y)
    return alpha * x + beta * y


def axpy(alpha: float, x, y) -> np.ndarray:
    """``y + alpha * x`` without mutating ``y``."""
    x, y = _pair(x, y)
    return y + alpha * x


def norm2(x) -> float:
    """Euclidean norm."""
    x = np.asarray(x, dtype=np.float64)
    return float(np.sqrt(np.dot(x, x)))
