"""Reference symmetric Gauss-Seidel (SymGS) smoother (Equation 2).

A forward sweep computes, row by row,

    x_j^t = (b_j - sum_{i<j} A_ji x_i^t - sum_{i>j} A_ji x_i^{t-1}) / A_jj

so each row *depends on every previously updated row* — the
data-dependency pattern of Figure 1 that motivates the whole paper.
HPCG's SymGS is a forward sweep followed by a backward sweep; both are
implemented here, row-sequentially, as the golden model.

Note on the paper's notation: Equations 2/3 are stated over columns of
``A^T``, i.e. rows of ``A``; the typeset form in the paper garbles the
division by ``A_jj`` into ``1/A_jj - (...)``.  We implement the standard
Gauss-Seidel update (Golub & Van Loan [30]), which is what the equations
denote and what the PCG smoother requires for convergence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.formats import CSRMatrix
from repro.kernels.spmv import to_csr


def _check_system(csr: CSRMatrix, b: np.ndarray,
                  x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    n_rows, n_cols = csr.shape
    if n_rows != n_cols:
        raise ShapeError(f"SymGS needs a square matrix, got {csr.shape}")
    b = np.asarray(b, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if b.shape != (n_rows,) or x.shape != (n_rows,):
        raise ShapeError(
            f"vectors must have shape ({n_rows},), got {b.shape}/{x.shape}"
        )
    return b, x


def forward_sweep(matrix, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One forward Gauss-Seidel sweep; returns the updated vector."""
    csr = to_csr(matrix)
    b, x = _check_system(csr, b, x)
    out = x.copy()
    for j in range(csr.shape[0]):
        cols, vals = csr.row(j)
        diag = 0.0
        acc = 0.0
        for c, v in zip(cols, vals):
            if c == j:
                diag = v
            else:
                acc += v * out[c]
        if diag == 0.0:
            raise ConfigError(f"zero diagonal at row {j}")
        out[j] = (b[j] - acc) / diag
    return out


def backward_sweep(matrix, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One backward Gauss-Seidel sweep (rows in descending order)."""
    csr = to_csr(matrix)
    b, x = _check_system(csr, b, x)
    out = x.copy()
    for j in range(csr.shape[0] - 1, -1, -1):
        cols, vals = csr.row(j)
        diag = 0.0
        acc = 0.0
        for c, v in zip(cols, vals):
            if c == j:
                diag = v
            else:
                acc += v * out[c]
        if diag == 0.0:
            raise ConfigError(f"zero diagonal at row {j}")
        out[j] = (b[j] - acc) / diag
    return out


def symgs(matrix, b: np.ndarray, x: np.ndarray) -> np.ndarray:
    """One symmetric sweep: forward then backward (HPCG's smoother)."""
    return backward_sweep(matrix, b, forward_sweep(matrix, b, x))


def forward_sweep_vectorized(matrix, b: np.ndarray,
                             x: np.ndarray) -> np.ndarray:
    """Forward sweep via a lower-triangular solve.

    Algebraically identical to :func:`forward_sweep` —
    ``x_new = (L + D)^{-1} (b - U x_old)`` — but computed with a
    vectorized triangular substitution over CSR arrays, used for large
    matrices where the row-loop golden model is too slow.
    """
    csr = to_csr(matrix)
    b, x = _check_system(csr, b, x)
    n = csr.shape[0]
    # rhs = b - U @ x_old
    rhs = b.copy()
    diag = np.zeros(n, dtype=np.float64)
    rows = np.repeat(np.arange(n), np.diff(csr.indptr))
    upper = csr.indices > rows
    on_diag = csr.indices == rows
    np.subtract.at(
        rhs, rows[upper], csr.data[upper] * x[csr.indices[upper]]
    )
    diag[rows[on_diag]] = csr.data[on_diag]
    if np.any(diag == 0.0):
        bad = int(np.nonzero(diag == 0.0)[0][0])
        raise ConfigError(f"zero diagonal at row {bad}")
    # Forward substitution with (L + D); sequential by construction.
    out = np.empty(n, dtype=np.float64)
    indptr, indices, data = csr.indptr, csr.indices, csr.data
    for j in range(n):
        lo, hi = int(indptr[j]), int(indptr[j + 1])
        cols = indices[lo:hi]
        vals = data[lo:hi]
        mask = cols < j
        acc = float(np.dot(vals[mask], out[cols[mask]])) if mask.any() else 0.0
        out[j] = (rhs[j] - acc) / diag[j]
    return out
