"""Reference (golden) kernels: SpMV, SymGS and dense vector operations.

These are the functional specifications the accelerator model in
:mod:`repro.core` must reproduce bit-for-bit in structure (and to
floating-point tolerance in value, since the block decomposition reorders
additions).
"""

from repro.kernels.spmv import spmv, to_csr
from repro.kernels.symgs import (
    backward_sweep,
    forward_sweep,
    forward_sweep_vectorized,
    symgs,
)
from repro.kernels.vector import axpy, dot, norm2, waxpby

__all__ = [
    "axpy",
    "backward_sweep",
    "dot",
    "forward_sweep",
    "forward_sweep_vectorized",
    "norm2",
    "spmv",
    "symgs",
    "to_csr",
    "waxpby",
]
