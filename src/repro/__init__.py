"""ALRESCHA: A Lightweight Reconfigurable Sparse-Computation Accelerator.

A complete Python reproduction of the HPCA 2020 paper: the accelerator
model (conversion algorithm, FCU/RCU microarchitecture, locally-dense
storage format), golden sparse kernels, PCG and graph-algorithm drivers,
baseline platform models (CPU, GPU, OuterSPACE, GraphR, Memristive) and
the datasets/benchmarks that regenerate every figure and table of the
paper's evaluation.

Quickstart
----------
>>> import numpy as np
>>> from repro import Alrescha, KernelType
>>> from repro.datasets import load_dataset
>>> ds = load_dataset("stencil27", scale=0.1)
>>> acc = Alrescha.from_matrix(KernelType.SPMV, ds.matrix)
>>> x = np.ones(ds.matrix.shape[0])
>>> y, report = acc.run_spmv(x)
"""

from repro.core import (
    Alrescha,
    AlreschaConfig,
    ConfigTable,
    DataPathType,
    KernelType,
    SimReport,
    convert,
)
from repro.errors import (
    BaselineError,
    ConfigError,
    ConvergenceError,
    DatasetError,
    FormatError,
    ReproError,
    ShapeError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "Alrescha",
    "AlreschaConfig",
    "BaselineError",
    "ConfigError",
    "ConfigTable",
    "ConvergenceError",
    "DataPathType",
    "DatasetError",
    "FormatError",
    "KernelType",
    "ReproError",
    "ShapeError",
    "SimReport",
    "SimulationError",
    "convert",
    "__version__",
]
