"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``list-datasets [--kind scientific|graph]`` — the registered suites.
* ``info NAME [--scale S]`` — structural profile of one dataset.
* ``run KERNEL --dataset NAME [--scale S]`` — execute one kernel on the
  simulated accelerator and print its report (kernels: spmv, symgs,
  pcg, bfs, sssp, pagerank, cc, hpcg).
* ``survey NAME [--scale S]`` — Figure 12 meta-data survey.
* ``experiment FIG [--scale S]`` — regenerate one paper figure
  (fig3, fig6, fig15, fig16, fig17, fig18, fig19).
* ``serve --requests N --devices D --fault-rate R --seed S`` — run a
  seeded workload trace through the multi-device serving runtime and
  print its :class:`~repro.runtime.PoolReport`.  ``--chaos RATE[:SEED[:KINDS]]``
  adds seeded device crashes/hangs, ``--hedge MULT`` enables hedged
  dispatch, ``--report-json FILE`` writes the canonical report, and
  ``--check`` replays the run's trace through the serving invariants.
  ``--pools N --replicas R`` serves the trace over a replicated
  multi-pool fleet (content-keyed routing, pool-outage failover) and
  prints a :class:`~repro.runtime.fleet.FleetReport` instead;
  ``--pool-chaos RATE[:SEED]`` adds seeded whole-pool outages.
  ``--autoscale MIN:MAX[:COOLDOWN]`` makes pool capacity elastic,
  ``--shape bursty+zipf`` shapes the generated arrivals/popularity,
  and ``--record FILE`` captures the served trace for later
  ``--trace-file`` replay.
* ``trace KERNEL [--out FILE] [--check]`` — record a cycle-attributed
  span trace of one kernel run, print the per-phase attribution table,
  optionally export Chrome/Perfetto JSON and run the invariant checks.
  ``run`` and ``serve`` also accept ``--trace FILE`` to export a trace
  of their normal execution.
* ``serve --store DIR`` attaches a content-addressed artifact store:
  compiled plans, device images and captured templates persist under
  DIR, so a second run against the same store performs zero
  programming-phase compilations (the printed ``store:`` line proves
  it) while producing byte-identical reports.
* ``cache {ls,gc,verify} --store DIR`` — manage an artifact store:
  list stored artifacts, delete them (``--all`` or down to
  ``--max-bytes``), or deep-verify every artifact (envelope checksums,
  full decode, and — where source metadata is recorded —
  recompile-and-byte-diff).  ``verify`` exits 1 naming each offending
  key.

Exit codes: 0 success; 1 validation failure (``validate``), trace
invariant violation (``trace --check``, ``serve --check``), or
``cache verify`` finding a damaged/divergent artifact; 2 invalid
input (dataset/format/config/store errors); 3 unrecovered injected
fault; 4 ``serve`` finished with at least one ``FAILED`` job.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _dataset(name: str, scale: float):
    from repro.datasets import load_dataset
    return load_dataset(name, scale=scale)


def cmd_list_datasets(args) -> int:
    from repro.datasets import list_datasets, load_dataset
    for name in list_datasets(args.kind):
        ds = load_dataset(name, scale=0.05)
        print(f"{name:20s} {ds.kind:10s} {ds.description}")
    return 0


def cmd_info(args) -> int:
    from repro.baselines import MatrixProfile
    ds = _dataset(args.name, args.scale)
    profile = MatrixProfile(ds.matrix if ds.kind == "scientific"
                            else ds.matrix.T.tocsr())
    print(f"{ds.name}: {ds.description}")
    print(f"  kind             : {ds.kind}")
    print(f"  n                : {ds.n}")
    print(f"  nnz              : {ds.nnz} ({ds.nnz / ds.n:.1f}/row)")
    print(f"  8x8 block density: {profile.block_density:.3f}")
    print(f"  column locality  : {profile.column_locality:.3f}")
    print(f"  row imbalance    : {profile.row_imbalance:.2f}")
    if ds.kind == "scientific":
        seq, levels = profile.gpu_seq
        print(f"  GS levels        : {levels}")
        print(f"  GPU seq fraction : {seq:.3f}")
        print(f"  Alrescha seq frac: {profile.alrescha_seq_fraction:.3f}")
    return 0


def _print_report(report) -> None:
    print(f"  cycles          : {report.cycles:,.0f}")
    print(f"  time @ 2.5 GHz  : {report.seconds * 1e6:.3f} us")
    print(f"  BW utilization  : {report.bandwidth_utilization:.2%}")
    print(f"  seq fraction    : {report.sequential_fraction:.2%}")
    print(f"  energy          : {report.energy_j * 1e6:.3f} uJ")


def _run_config(args):
    """``(config, tracer)`` for ``run`` from ``--inject-faults``/``--trace``.

    Returns ``(None, None)`` when both are off so every kernel keeps
    its historical default configuration (bit-identical clean path);
    the tracer never changes outputs either way.
    """
    tracer = None
    if getattr(args, "trace", None):
        from repro.observe import Tracer
        tracer = Tracer()
    if not args.inject_faults and tracer is None:
        return None, None
    from repro.core import AlreschaConfig
    from repro.sim.faults import FaultModel
    fault_model = (FaultModel.parse(args.inject_faults)
                   if args.inject_faults else None)
    return AlreschaConfig(fault_model=fault_model, tracer=tracer), tracer


def _write_trace(tracer, path) -> None:
    """Export a recorded trace as Chrome/Perfetto JSON (no-op untraced)."""
    if tracer is None or path is None:
        return
    from repro.observe import write_chrome_trace
    nbytes = write_chrome_trace(tracer, path)
    print(f"trace written: {path} ({len(tracer)} spans, {nbytes} bytes)")


def _print_fault_counters(report) -> None:
    injected = report.counters.get("faults_injected")
    if not injected:
        return
    print(f"  faults injected : {injected:,.0f} "
          f"({report.counters.get('faults_detected'):,.0f} detected, "
          f"{report.counters.get('faults_corrected'):,.0f} corrected)")
    print(f"  retry cycles    : {report.counters.get('retry_cycles'):,.0f}")


def cmd_run(args) -> int:
    from repro.core import Alrescha, KernelType
    from repro.graph import (connected_components, run_bfs, run_pagerank,
                             run_sssp)
    from repro.solvers import AcceleratorBackend, pcg, run_hpcg

    config, tracer = _run_config(args)
    if args.kernel == "hpcg":
        dim = max(4, int(round(16 * args.scale ** (1 / 3))))
        result = run_hpcg(dim, dim, dim, iterations=args.iterations,
                          config=config)
        print(f"HPCG {dim}^3: {result.gflops:.3f} GFLOP/s simulated "
              f"({result.iterations} iterations, "
              f"BW util {result.bandwidth_utilization:.2%})")
        _write_trace(tracer, args.trace)
        return 0

    ds = _dataset(args.dataset, args.scale)
    rng = np.random.default_rng(args.seed)
    if args.kernel in ("spmv", "symgs", "pcg") and ds.kind != "scientific":
        print(f"warning: {args.kernel} on a graph dataset treats the "
              f"adjacency as the matrix operand", file=sys.stderr)

    if args.kernel == "spmv":
        acc = Alrescha.from_matrix(KernelType.SPMV, ds.matrix,
                                   config=config)
        _y, report = acc.run_spmv(rng.normal(size=ds.n))
        print(f"SpMV on {ds.name} (n={ds.n}, nnz={ds.nnz}):")
        _print_report(report)
        _print_fault_counters(report)
    elif args.kernel == "symgs":
        acc = Alrescha.from_matrix(KernelType.SYMGS, ds.matrix,
                                   config=config)
        _x, report = acc.run_symgs_sweep(rng.normal(size=ds.n),
                                         np.zeros(ds.n))
        print(f"SymGS sweep on {ds.name}:")
        _print_report(report)
        _print_fault_counters(report)
    elif args.kernel == "pcg":
        backend = AcceleratorBackend(ds.matrix, config=config)
        # With injection on, arm the solver-side recovery too.
        checkpoint = 5 if args.inject_faults else 0
        result = pcg(backend, rng.normal(size=ds.n), tol=1e-8,
                     max_iter=args.iterations,
                     checkpoint_interval=checkpoint, tracer=tracer)
        extra = (f", {result.restarts} restarts"
                 if args.inject_faults else "")
        print(f"PCG on {ds.name}: converged={result.converged} in "
              f"{result.iterations} iterations "
              f"(residual {result.final_residual:.2e}, "
              f"{backend.kernel_switches} kernel switches{extra})")
        _print_report(result.report)
        _print_fault_counters(result.report)
    elif args.kernel in ("bfs", "sssp"):
        runner = run_bfs if args.kernel == "bfs" else run_sssp
        adj = ds.matrix
        if args.kernel == "sssp" and not ds.weighted:
            adj = adj.copy()
            adj.data = 1.0 + (np.arange(adj.nnz) % 7).astype(float)
        result = runner(adj, args.source, config=config)
        reached = int(np.isfinite(result.values).sum())
        print(f"{args.kernel.upper()} on {ds.name} from {args.source}: "
              f"reached {reached}/{ds.n} in {result.iterations} passes")
        _print_report(result.report)
        _print_fault_counters(result.report)
    elif args.kernel == "pagerank":
        result = run_pagerank(ds.matrix, tol=1e-9, config=config)
        top = np.argsort(result.values)[::-1][:5]
        print(f"PageRank on {ds.name}: {result.iterations} iterations, "
              f"top-5 = {list(map(int, top))}")
        _print_report(result.report)
        _print_fault_counters(result.report)
    elif args.kernel == "cc":
        result = connected_components(ds.matrix, config=config)
        print(f"Connected components on {ds.name}: "
              f"{result.n_components} components "
              f"in {result.iterations} BFS passes")
        _print_report(result.report)
        _print_fault_counters(result.report)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown kernel {args.kernel}")
    _write_trace(tracer, args.trace)
    return 0


def cmd_survey(args) -> int:
    from repro.formats import format_survey
    ds = _dataset(args.name, args.scale)
    survey = format_survey(ds.matrix)
    print(f"meta-data bits per non-zero — {ds.name} "
          f"(n={ds.n}, nnz={ds.nnz}):")
    for fmt, bits in survey.items():
        print(f"  {fmt:20s} {bits:8.2f}")
    return 0


def cmd_validate(args) -> int:
    from repro.analysis import validate
    report = validate(scale=args.scale)
    print(report.summary())
    return 0 if report.passed else 1


def cmd_compile(args) -> int:
    """Host-side compilation (Figure 7): Algorithm 1 + serialisation."""
    from repro.core import KernelType
    from repro.host import compile_kernel

    ds = _dataset(args.dataset, args.scale)
    kernel = KernelType(args.kernel)
    matrix = ds.matrix if ds.kind == "scientific" else ds.matrix.T.tocsr()
    compiled = compile_kernel(kernel, matrix, omega=8)
    prog_path, img_path = compiled.save(args.output)
    print(f"compiled {args.kernel} on {ds.name} (n={ds.n}, "
          f"nnz={ds.nnz}):")
    print(f"  {prog_path}  {len(compiled.program):8d} B (program)")
    print(f"  {img_path}  {len(compiled.image):8d} B (device image)")
    return 0


def cmd_serve(args) -> int:
    """Serve a seeded trace over the device pool.

    Exit 4 when any job FAILED; exit 1 when ``--check`` found trace
    invariant violations.
    """
    from repro.runtime import (AutoscaleConfig, SchedulerConfig,
                               TraceSpec, dump_trace, load_trace,
                               make_trace, serve)
    from repro.runtime.metrics import report_json
    from repro.sim.chaos import ChaosModel

    tracer = None
    if args.trace or args.check:
        from repro.observe import Tracer
        tracer = Tracer()
    workload = None
    n_requests = args.requests
    if args.trace_file:
        workload = load_trace(args.trace_file)
        n_requests = len(workload)
    elif args.shape != "exponential" or args.record:
        # Build the trace explicitly (same spec serve() would build)
        # so shaped arrivals apply and --record can capture exactly
        # what is served.  The plain default path stays inside serve()
        # untouched — the fingerprint corpus pins it.
        workload = make_trace(TraceSpec(n_requests=n_requests,
                                        seed=args.seed,
                                        scale=args.scale,
                                        shape=args.shape))
    if args.record and workload is not None:
        nbytes = dump_trace(workload, args.record)
        print(f"trace recorded: {args.record} ({len(workload)} jobs, "
              f"{nbytes} bytes)")
    autoscale = (AutoscaleConfig.parse(args.autoscale)
                 if args.autoscale else None)
    chaos = ChaosModel.parse(args.chaos) if args.chaos else None
    store = None
    if args.store:
        from repro.store import ArtifactStore
        store = ArtifactStore(args.store, capacity=args.store_capacity)
    sched = SchedulerConfig(queue_depth=args.queue_depth,
                            max_batch=args.batch,
                            hedge_after=args.hedge)
    fleet_mode = (args.pools > 1 or args.replicas > 1
                  or args.pool_chaos is not None)
    if fleet_mode:
        from repro.runtime.fleet import (
            FleetConfig, fleet_report_json, serve_fleet)
        from repro.sim.chaos import PoolChaosModel
        pool_chaos = (PoolChaosModel.parse(args.pool_chaos)
                      if args.pool_chaos else None)
        results, report = serve_fleet(
            n_requests=n_requests, n_devices=args.devices,
            fault_rate=args.fault_rate, seed=args.seed,
            scale=args.scale, trace=workload, scheduler_config=sched,
            tracer=tracer, chaos=chaos, pool_chaos=pool_chaos,
            fleet_config=FleetConfig(n_pools=args.pools,
                                     replicas=args.replicas),
            artifact_store=store, autoscale=autoscale)
    else:
        # pools=1, replicas=1, no pool chaos: the exact solo path the
        # fingerprint corpus pins — no fleet layer in the loop at all.
        results, report = serve(
            n_requests=n_requests, n_devices=args.devices,
            fault_rate=args.fault_rate, seed=args.seed,
            scale=args.scale, trace=workload, scheduler_config=sched,
            tracer=tracer, chaos=chaos, artifact_store=store,
            autoscale=autoscale)
    batched = f", batch {args.batch}" if args.batch > 1 else ""
    stormy = f", chaos {args.chaos}" if args.chaos else ""
    hedged = f", hedge x{args.hedge:g}" if args.hedge else ""
    shaped = (f", shape {args.shape}"
              if args.shape != "exponential" else "")
    elastic = f", autoscale {args.autoscale}" if args.autoscale else ""
    fleety = (f", {args.pools} pool(s) x{args.replicas} replicas"
              if fleet_mode else "")
    pooly = (f", pool-chaos {args.pool_chaos}"
             if args.pool_chaos else "")
    source = (f"{n_requests} replayed requests from {args.trace_file}"
              if args.trace_file else f"{n_requests} requests")
    print(f"served {source} over {args.devices} "
          f"device(s), fault rate {args.fault_rate:g}, "
          f"seed {args.seed}{batched}{shaped}{elastic}{stormy}{hedged}"
          f"{fleety}{pooly}:")
    print(report.render())
    if store is not None:
        print(store.report().summary())
    _write_trace(tracer, args.trace)
    if args.report_json:
        payload = (fleet_report_json(report) if fleet_mode
                   else report_json(report))
        with open(args.report_json, "w") as fh:
            fh.write(payload)
        print(f"report written: {args.report_json} "
              f"({len(payload)} bytes)")
    if report.failed:
        failures = [r for r in results if r.status.value == "failed"]
        for r in failures[:5]:
            print(f"job {r.job_id} FAILED: {r.error}", file=sys.stderr)
        return 4
    if args.check:
        from repro.observe import check_trace
        violations = check_trace(tracer)
        if violations:
            for v in violations[:10]:
                print(f"violation: {v}", file=sys.stderr)
            print(f"trace invariants: {len(violations)} violation(s)",
                  file=sys.stderr)
            return 1
        print("trace invariants: ok")
    return 0


def cmd_cache(args) -> int:
    from repro.errors import StoreError
    from repro.store import ArtifactStore

    store = ArtifactStore(args.store)
    if args.cache_cmd == "ls":
        keys = store.keys()
        total = 0
        for key in keys:
            try:
                info = store.entry_info(key)
            except StoreError as exc:
                print(f"{key}  <unreadable: {exc}>")
                continue
            total += info["bytes"]
            src = info["source"] or {}
            origin = "-"
            if src:
                origin = f"{src.get('dataset')}@{src.get('scale')}"
                if src.get("transform"):
                    origin += f":{src['transform']}"
            tpl = ",".join(info["templates"]) or "-"
            print(f"{key}  {info['bytes']:>9} B  "
                  f"n={info['n']} nnz={info['nnz']}  "
                  f"src={origin}  templates={tpl}")
        print(f"{len(keys)} artifact(s), {total} bytes in {store.root}")
        return 0
    if args.cache_cmd == "gc":
        if not args.all and args.max_bytes is None:
            from repro.errors import ConfigError
            raise ConfigError("cache gc needs --all or --max-bytes N")
        removed, freed = store.gc(max_bytes=args.max_bytes,
                                  remove_all=args.all)
        for key in removed:
            print(f"removed {key}")
        print(f"gc: removed {len(removed)} artifact(s), "
              f"freed {freed} bytes")
        return 0
    # verify
    keys = list(args.keys) or None
    checked = keys if keys is not None else store.keys()
    problems = store.verify(keys)
    if problems:
        for key, problem in problems:
            print(f"FAIL {key}: {problem}", file=sys.stderr)
        print(f"cache verify: {len(problems)} problem(s) in "
              f"{len(checked)} artifact(s)", file=sys.stderr)
        return 1
    print(f"cache verify: {len(checked)} artifact(s) ok")
    return 0


def cmd_trace(args) -> int:
    """Record one traced kernel run; print the attribution table.

    ``--out`` exports Chrome/Perfetto JSON; ``--check`` runs the trace
    invariant suite and exits 1 if any violation is found (so the
    ablation ``--no-hide-reconfig`` fails the reconfig-containment
    check visibly).
    """
    from repro.core import Alrescha, AlreschaConfig, KernelType
    from repro.observe import (
        Tracer,
        attribution_table,
        check_trace,
        write_chrome_trace,
    )
    from repro.solvers import AcceleratorBackend, pcg

    tracer = Tracer()
    config = AlreschaConfig(
        tracer=tracer,
        hide_reconfig_under_drain=not args.no_hide_reconfig)
    ds = _dataset(args.dataset, args.scale)
    rng = np.random.default_rng(args.seed)
    if args.kernel == "spmv":
        acc = Alrescha.from_matrix(KernelType.SPMV, ds.matrix,
                                   config=config)
        _y, report = acc.run_spmv(rng.normal(size=ds.n))
    elif args.kernel == "symgs":
        acc = Alrescha.from_matrix(KernelType.SYMGS, ds.matrix,
                                   config=config)
        _x, report = acc.run_symgs_sweep(rng.normal(size=ds.n),
                                         np.zeros(ds.n))
    else:  # pcg
        backend = AcceleratorBackend(ds.matrix, config=config)
        result = pcg(backend, rng.normal(size=ds.n), tol=1e-8,
                     max_iter=args.iterations, tracer=tracer)
        report = result.report
    print(f"{args.kernel} on {ds.name} (n={ds.n}): "
          f"{len(tracer)} spans, {report.cycles:,.0f} cycles")
    print(attribution_table(tracer))
    if args.out:
        nbytes = write_chrome_trace(tracer, args.out)
        print(f"trace written: {args.out} ({nbytes} bytes)")
    if args.check:
        violations = check_trace(tracer)
        if violations:
            for v in violations[:10]:
                print(f"violation: {v}", file=sys.stderr)
            print(f"trace invariants: {len(violations)} violation(s)",
                  file=sys.stderr)
            return 1
        print("trace invariants: ok")
    return 0


def cmd_experiment(args) -> int:
    from repro import analysis

    runners = {
        "fig3": lambda: analysis.fig3_pcg_breakdown(scale=args.scale),
        "fig6": lambda: analysis.fig6_hpcg_fraction(scale=args.scale),
        "fig15": lambda: analysis.fig15_pcg_speedup(scale=args.scale),
        "fig16": lambda: analysis.fig16_sequential_fraction(
            scale=args.scale),
        "fig17": lambda: analysis.fig17_graph_speedup(scale=args.scale),
        "fig18": lambda: analysis.fig18_spmv_speedup(scale=args.scale),
        "fig19": lambda: analysis.fig19_energy(scale=args.scale),
    }
    result = runners[args.figure]()

    def show(prefix, obj):
        if isinstance(obj, dict):
            scalar = {k: v for k, v in obj.items()
                      if isinstance(v, (int, float))}
            nested = {k: v for k, v in obj.items() if isinstance(v, dict)}
            for k, v in scalar.items():
                print(f"{prefix}{k:30s} {float(v):10.3f}")
            for k, v in nested.items():
                print(f"{prefix}{k}:")
                show(prefix + "  ", v)

    show("", result)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ALRESCHA reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-datasets", help="list registered datasets")
    p.add_argument("--kind", choices=["scientific", "graph"], default=None)
    p.set_defaults(func=cmd_list_datasets)

    p = sub.add_parser("info", help="structural profile of a dataset")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=0.1)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("run", help="run a kernel on the accelerator")
    p.add_argument("kernel", choices=["spmv", "symgs", "pcg", "bfs",
                                      "sssp", "pagerank", "cc", "hpcg"])
    p.add_argument("--dataset", default="stencil27")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--iterations", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--inject-faults", metavar="RATE[:SEED[:KINDS]]", default=None,
        help="inject transfer faults at the given per-block probability "
             "(deterministic under the optional seed), e.g. 0.01:42",
    )
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="export a cycle-attributed Chrome/Perfetto trace to FILE",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("survey", help="Figure 12 format survey")
    p.add_argument("name")
    p.add_argument("--scale", type=float, default=0.1)
    p.set_defaults(func=cmd_survey)

    p = sub.add_parser(
        "validate",
        help="cross-check the accelerator against the golden kernels",
    )
    p.add_argument("--scale", type=float, default=0.05)
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "compile",
        help="compile a kernel to program binary + device image files",
    )
    p.add_argument("kernel", choices=["spmv", "symgs", "bfs", "sssp",
                                      "pagerank"])
    p.add_argument("--dataset", default="stencil27")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--output", "-o", default="kernel")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "serve",
        help="run a workload trace through the multi-device runtime",
    )
    p.add_argument("--requests", type=int, default=100)
    p.add_argument("--devices", type=int, default=4)
    p.add_argument("--fault-rate", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--queue-depth", type=int, default=32)
    p.add_argument(
        "--batch", type=int, default=1, metavar="K",
        help="coalesce up to K compatible queued requests into one "
             "multi-RHS dispatch that streams the matrix payload once "
             "(1 disables coalescing)",
    )
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="export a cycle-attributed Chrome/Perfetto trace to FILE",
    )
    p.add_argument(
        "--trace-file", metavar="FILE", default=None,
        help="replay a canonical-JSON workload trace (written by "
             "repro.runtime.dump_trace) instead of generating one; "
             "overrides --requests",
    )
    p.add_argument(
        "--record", metavar="FILE", default=None,
        help="capture the served workload trace to FILE in the "
             "versioned canonical-JSON format, so a later "
             "--trace-file FILE replays exactly the same jobs",
    )
    p.add_argument(
        "--shape", default="exponential", metavar="SHAPE",
        help="arrival/popularity shape of the generated trace: "
             "'exponential' (the plain default), or '+'-composable "
             "'bursty', 'diurnal', 'zipf' (e.g. bursty+zipf); ignored "
             "when replaying --trace-file",
    )
    p.add_argument(
        "--autoscale", metavar="MIN:MAX[:COOLDOWN]", default=None,
        help="elastic per-pool capacity: --devices is the starting "
             "size, scaled within [MIN, MAX] by queue-depth and "
             "device-health signals with drain-before-remove "
             "semantics (COOLDOWN cycles of hysteresis between "
             "actions)",
    )
    p.add_argument(
        "--pools", type=int, default=1, metavar="N",
        help="serve over N replicated device pools (default 1: the "
             "plain single-pool scheduler, no fleet layer)")
    p.add_argument(
        "--replicas", type=int, default=1, metavar="R",
        help="replica-set width for hot content keys (capped at "
             "--pools; default 1)")
    p.add_argument(
        "--pool-chaos", metavar="RATE[:SEED]", default=None,
        help="inject seeded whole-pool outages; an outage voids the "
             "pool's in-flight work and re-routes its jobs to "
             "surviving replicas, readmission is probe-verified")
    p.add_argument(
        "--chaos", metavar="RATE[:SEED[:KINDS]]", default=None,
        help="inject seeded device-lifecycle chaos (crashes and hangs) "
             "at the given intensity in [0, 1], e.g. 0.2:7; jobs are "
             "salvaged, crashed devices quarantined then probed",
    )
    p.add_argument(
        "--hedge", type=float, default=None, metavar="MULT",
        help="hedged dispatch: once an attempt has run MULT x its "
             "nominal estimate, launch a speculative duplicate on a "
             "second healthy device (first verified answer wins)",
    )
    p.add_argument(
        "--report-json", metavar="FILE", default=None,
        help="write the PoolReport as canonical JSON to FILE "
             "(byte-stable across identical runs)",
    )
    p.add_argument(
        "--check", action="store_true",
        help="record a trace and run the serving invariant checks "
             "(exit 1 on violation)",
    )
    p.add_argument(
        "--store", metavar="DIR", default=None,
        help="content-addressed artifact store directory: compiled "
             "plans, device images and templates persist here, so a "
             "re-run against a primed store does zero programming-phase "
             "compilations (see the printed 'store:' summary line)",
    )
    p.add_argument(
        "--store-capacity", type=int, default=16, metavar="N",
        help="in-process LRU capacity of the artifact store (entries)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "cache",
        help="inspect and maintain a content-addressed artifact store",
    )
    cache_sub = p.add_subparsers(dest="cache_cmd", required=True,
                                 metavar="ACTION")
    c = cache_sub.add_parser("ls", help="list stored artifacts")
    c.add_argument("--store", metavar="DIR", required=True,
                   help="artifact store directory")
    c.set_defaults(func=cmd_cache)
    c = cache_sub.add_parser("gc", help="delete stored artifacts")
    c.add_argument("--store", metavar="DIR", required=True,
                   help="artifact store directory")
    c.add_argument("--max-bytes", type=int, default=None, metavar="N",
                   help="evict oldest artifacts until the store holds "
                        "at most N bytes")
    c.add_argument("--all", action="store_true",
                   help="remove every artifact")
    c.set_defaults(func=cmd_cache)
    c = cache_sub.add_parser(
        "verify",
        help="deep-verify stored artifacts (checksums, full decode, and "
             "recompile-and-byte-diff where source metadata allows); "
             "exit 1 naming each damaged or divergent key",
    )
    c.add_argument("--store", metavar="DIR", required=True,
                   help="artifact store directory")
    c.add_argument("keys", nargs="*", metavar="KEY",
                   help="specific content keys (default: every artifact)")
    c.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "trace",
        help="record a cycle-attributed span trace of one kernel run",
    )
    p.add_argument("kernel", choices=["spmv", "symgs", "pcg"])
    p.add_argument("--dataset", default="stencil27")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iterations", type=int, default=10,
                   help="PCG iteration cap (pcg only)")
    p.add_argument("--out", "-o", metavar="FILE", default=None,
                   help="write Chrome/Perfetto JSON to FILE")
    p.add_argument("--no-hide-reconfig", action="store_true",
                   help="ablation: expose reconfiguration latency "
                        "instead of hiding it under the drain")
    p.add_argument("--check", action="store_true",
                   help="run the trace invariant checks (exit 1 on "
                        "violation)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("experiment", help="regenerate one paper figure")
    p.add_argument("figure", choices=["fig3", "fig6", "fig15", "fig16",
                                      "fig17", "fig18", "fig19"])
    p.add_argument("--scale", type=float, default=0.1)
    p.set_defaults(func=cmd_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.errors import (ConfigError, CorruptionError, DatasetError,
                              FaultError, FormatError, StoreError)

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (FaultError, CorruptionError) as exc:
        # An injected fault exhausted its recovery budget: surfaced as a
        # typed error, distinct exit code so studies can count failures.
        print(f"fault: {exc}", file=sys.stderr)
        return 3
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except (DatasetError, FormatError, ConfigError, StoreError) as exc:
        # User-facing input problems: one line on stderr, no traceback.
        msg = f"error: {exc}"
        if isinstance(exc, DatasetError) and "unknown dataset" in msg \
                and "known:" not in msg:
            from repro.datasets import list_datasets
            msg += "; known datasets: " + ", ".join(sorted(list_datasets()))
        print(msg, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
