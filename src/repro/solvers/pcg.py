"""Preconditioned conjugate gradient (Figure 2 of the paper).

PCG solves ``A x = b`` for symmetric positive-definite ``A``; its inner
loop is dominated by one SpMV and one SymGS application per iteration
(Figure 3), which is why those two kernels are the accelerator's
targets.  The solver is backend-agnostic; see
:mod:`repro.solvers.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import (
    ConvergenceError,
    CorruptionError,
    FaultError,
    ShapeError,
)
from repro.core.report import SimReport
from repro.kernels import dot, norm2, waxpby


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)
    report: Optional[SimReport] = None
    #: Checkpoint rollbacks performed (fault recovery; 0 on clean runs).
    restarts: int = 0

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else np.inf


def pcg(backend, b: np.ndarray, tol: float = 1e-8, max_iter: int = 100,
        x0: Optional[np.ndarray] = None,
        raise_on_stall: bool = False,
        checkpoint_interval: int = 0,
        max_restarts: int = 2,
        divergence_factor: float = 1e4,
        tracer=None) -> SolveResult:
    """Run PCG with the given backend until ``||r|| / ||b|| < tol``.

    Parameters mirror HPCG's driver: ``max_iter`` caps the iteration
    count (the paper's algorithms are run for a fixed budget of
    iterations, so hitting the cap is not an error unless
    ``raise_on_stall`` is set).

    ``tracer`` (a :class:`~repro.observe.tracer.Tracer`) records each
    outer iteration as a span on the ``solver`` track, clocked by the
    backend's accumulated report cycles (falling back to the iteration
    index for untimed backends), with checkpoint snapshots and rollback
    restarts as instant markers.  ``None`` is the untraced path.

    ``checkpoint_interval > 0`` enables fault recovery: the iterate is
    snapshotted every that many iterations, and on detected corruption —
    a :class:`~repro.errors.FaultError`/:class:`~repro.errors.
    CorruptionError` from the backend, a non-finite residual, or the
    residual jumping by more than ``divergence_factor`` in one iteration
    — the solve rolls back to the snapshot and rebuilds its state, up to
    ``max_restarts`` times before the error propagates.  The default
    (``0``) leaves the historical behaviour untouched, except that a
    non-finite residual now raises :class:`~repro.errors.
    ConvergenceError` naming the iteration instead of iterating on NaNs.
    """
    b = np.asarray(b, dtype=np.float64)
    n = backend.n
    if b.shape != (n,):
        raise ShapeError(f"rhs must have shape ({n},), got {b.shape}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ShapeError(f"x0 must have shape ({n},), got {x.shape}")

    norm_b = norm2(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), iterations=0, converged=True,
                           residual_norms=[0.0],
                           report=backend.report())

    r = waxpby(1.0, b, -1.0, backend.spmv(x))
    _charge_vector_ops(backend, 2)
    z = backend.precondition(r)
    p = z.copy()
    rz = dot(r, z)
    _charge_vector_ops(backend, 1)
    residuals = [norm2(r) / norm_b]
    converged = residuals[-1] < tol
    iterations = 0
    checkpointing = checkpoint_interval > 0
    restarts = 0
    checkpoint = x.copy()

    while not converged and iterations < max_iter:
        sid = _iteration_begin(tracer, backend, "pcg_iteration", iterations)
        try:
            iterations += 1
            ap = backend.spmv(p)
            pap = dot(p, ap)
            _charge_vector_ops(backend, 1)
            if pap <= 0.0:
                raise ConvergenceError(
                    "p^T A p <= 0: matrix is not positive definite"
                )
            alpha = rz / pap
            x = waxpby(1.0, x, alpha, p)
            r = waxpby(1.0, r, -alpha, ap)
            _charge_vector_ops(backend, 2)
            res = norm2(r) / norm_b
            if not np.isfinite(res):
                raise ConvergenceError(
                    f"non-finite residual at iteration {iterations}"
                )
            if checkpointing and res > divergence_factor * residuals[-1]:
                raise CorruptionError(
                    f"residual diverged at iteration {iterations}: "
                    f"{res:.3e} from {residuals[-1]:.3e}"
                )
            residuals.append(res)
            if res < tol:
                converged = True
                break
            z = backend.precondition(r)
            rz_new = dot(r, z)
            _charge_vector_ops(backend, 1)
            beta = rz_new / rz
            rz = rz_new
            p = waxpby(1.0, z, beta, p)
            _charge_vector_ops(backend, 1)
            if checkpointing and iterations % checkpoint_interval == 0:
                checkpoint = x.copy()
                _solver_instant(tracer, backend, "checkpoint", "checkpoint",
                                iterations)
        except (FaultError, CorruptionError, ConvergenceError):
            # Detected corruption (typed error from the accelerator, a
            # poisoned or diverged residual, spurious indefiniteness):
            # roll back to the last snapshot and rebuild the CG state.
            recovered = False
            while checkpointing and restarts < max_restarts:
                restarts += 1
                _solver_instant(tracer, backend, "solver_restart", "retry",
                                iterations)
                x = checkpoint.copy()
                try:
                    r = waxpby(1.0, b, -1.0, backend.spmv(x))
                    z = backend.precondition(r)
                    p = z.copy()
                    rz = dot(r, z)
                    _charge_vector_ops(backend, 3)
                except (FaultError, CorruptionError):
                    continue  # the rebuild itself faulted; spend a retry
                res = norm2(r) / norm_b
                if not (np.isfinite(res) and np.isfinite(rz)):
                    continue  # rebuilt from corrupted data; try again
                residuals.append(res)
                recovered = True
                break
            if not recovered:
                raise
        finally:
            _iteration_end(tracer, backend, sid, iterations)

    if not converged and raise_on_stall:
        raise ConvergenceError(
            f"PCG stalled at residual {residuals[-1]:.3e} "
            f"after {iterations} iterations"
        )
    return SolveResult(
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norms=residuals,
        report=backend.report(),
        restarts=restarts,
    )


def _charge_vector_ops(backend, count: int) -> None:
    """Charge ``count`` dense vector kernels if the backend is timed."""
    charge = getattr(backend, "vector_op", None)
    if charge is not None:
        for _ in range(count):
            charge()


def _solver_clock(backend, fallback: float):
    """``(clock, counters)`` for solver-track spans.

    Timed backends are clocked by their accumulated report cycles (so
    iteration spans line up with the engine work they triggered);
    untimed backends fall back to the iteration index, which is still a
    monotone clock.
    """
    rep = backend.report()
    if rep is None:
        return fallback, None
    return rep.cycles, rep.counters


def _iteration_begin(tracer, backend, name: str,
                     iterations: int) -> Optional[int]:
    """Open one outer-iteration span (``None`` when untraced)."""
    if tracer is None:
        return None
    clock, counters = _solver_clock(backend, float(iterations))
    return tracer.begin(name, "solver", clock, track="solver",
                        args={"iteration": float(iterations + 1)},
                        counters=counters)


def _iteration_end(tracer, backend, span_id: Optional[int],
                   iterations: int) -> None:
    """Close an iteration span with the post-iteration clock/counters.

    Runs from ``finally`` so convergence ``break``s and rollback
    re-raises both leave the solver track properly closed.
    """
    if span_id is None:
        return
    clock, counters = _solver_clock(backend, float(iterations))
    tracer.end(span_id, clock, counters=counters)


def _solver_instant(tracer, backend, name: str, cat: str,
                    iterations: int) -> None:
    """Checkpoint/restart marker on the solver track (no-op untraced)."""
    if tracer is None:
        return
    clock, _ = _solver_clock(backend, float(iterations))
    tracer.instant_event(name, cat, clock, "solver")
