"""Preconditioned conjugate gradient (Figure 2 of the paper).

PCG solves ``A x = b`` for symmetric positive-definite ``A``; its inner
loop is dominated by one SpMV and one SymGS application per iteration
(Figure 3), which is why those two kernels are the accelerator's
targets.  The solver is backend-agnostic; see
:mod:`repro.solvers.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.core.report import SimReport
from repro.kernels import dot, norm2, waxpby


@dataclass
class SolveResult:
    """Outcome of an iterative solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: List[float] = field(default_factory=list)
    report: Optional[SimReport] = None

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else np.inf


def pcg(backend, b: np.ndarray, tol: float = 1e-8, max_iter: int = 100,
        x0: Optional[np.ndarray] = None,
        raise_on_stall: bool = False) -> SolveResult:
    """Run PCG with the given backend until ``||r|| / ||b|| < tol``.

    Parameters mirror HPCG's driver: ``max_iter`` caps the iteration
    count (the paper's algorithms are run for a fixed budget of
    iterations, so hitting the cap is not an error unless
    ``raise_on_stall`` is set).
    """
    b = np.asarray(b, dtype=np.float64)
    n = backend.n
    if b.shape != (n,):
        raise ShapeError(f"rhs must have shape ({n},), got {b.shape}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ShapeError(f"x0 must have shape ({n},), got {x.shape}")

    norm_b = norm2(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), iterations=0, converged=True,
                           residual_norms=[0.0],
                           report=backend.report())

    r = waxpby(1.0, b, -1.0, backend.spmv(x))
    _charge_vector_ops(backend, 2)
    z = backend.precondition(r)
    p = z.copy()
    rz = dot(r, z)
    _charge_vector_ops(backend, 1)
    residuals = [norm2(r) / norm_b]
    converged = residuals[-1] < tol
    iterations = 0

    while not converged and iterations < max_iter:
        iterations += 1
        ap = backend.spmv(p)
        pap = dot(p, ap)
        _charge_vector_ops(backend, 1)
        if pap <= 0.0:
            raise ConvergenceError(
                "p^T A p <= 0: matrix is not positive definite"
            )
        alpha = rz / pap
        x = waxpby(1.0, x, alpha, p)
        r = waxpby(1.0, r, -alpha, ap)
        _charge_vector_ops(backend, 2)
        residuals.append(norm2(r) / norm_b)
        if residuals[-1] < tol:
            converged = True
            break
        z = backend.precondition(r)
        rz_new = dot(r, z)
        _charge_vector_ops(backend, 1)
        beta = rz_new / rz
        rz = rz_new
        p = waxpby(1.0, z, beta, p)
        _charge_vector_ops(backend, 1)

    if not converged and raise_on_stall:
        raise ConvergenceError(
            f"PCG stalled at residual {residuals[-1]:.3e} "
            f"after {iterations} iterations"
        )
    return SolveResult(
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norms=residuals,
        report=backend.report(),
    )


def _charge_vector_ops(backend, count: int) -> None:
    """Charge ``count`` dense vector kernels if the backend is timed."""
    charge = getattr(backend, "vector_op", None)
    if charge is not None:
        for _ in range(count):
            charge()
