"""Iterative solvers: PCG (Figure 2), plain CG, Jacobi smoothing."""

from repro.solvers.backends import (
    KNOWN_BACKENDS,
    AcceleratorBackend,
    ReferenceBackend,
    make_backend,
)
from repro.solvers.cg import cg
from repro.solvers.hpcg import HPCGResult, hpcg_flops, run_hpcg
from repro.solvers.jacobi import JacobiBackend, jacobi, jacobi_sweep
from repro.solvers.multigrid import (
    MGLevel,
    MultigridBackend,
    MultigridPreconditioner,
    prolong_constant,
    restrict_injection,
)
from repro.solvers.pcg import SolveResult, pcg

__all__ = [
    "KNOWN_BACKENDS",
    "AcceleratorBackend",
    "JacobiBackend",
    "MGLevel",
    "MultigridBackend",
    "MultigridPreconditioner",
    "prolong_constant",
    "restrict_injection",
    "ReferenceBackend",
    "SolveResult",
    "HPCGResult",
    "cg",
    "hpcg_flops",
    "run_hpcg",
    "jacobi",
    "jacobi_sweep",
    "make_backend",
    "pcg",
]
