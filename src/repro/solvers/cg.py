"""Unpreconditioned conjugate gradient.

Used to demonstrate *why* PCG carries the SymGS smoother: on
ill-conditioned PDE systems plain CG needs far more iterations, each of
which is pure SpMV — so the kernel mix (and hence the right accelerator)
depends on the solver variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import (
    ConvergenceError,
    CorruptionError,
    FaultError,
    ShapeError,
)
from repro.kernels import dot, norm2, waxpby
from repro.solvers.pcg import (
    SolveResult,
    _charge_vector_ops,
    _iteration_begin,
    _iteration_end,
    _solver_instant,
)


def cg(backend, b: np.ndarray, tol: float = 1e-8, max_iter: int = 500,
       x0: Optional[np.ndarray] = None,
       checkpoint_interval: int = 0,
       max_restarts: int = 2,
       divergence_factor: float = 1e4,
       tracer=None) -> SolveResult:
    """Plain CG on the backend's SpMV (no preconditioner).

    Fault recovery mirrors :func:`~repro.solvers.pcg.pcg`:
    ``checkpoint_interval > 0`` snapshots the iterate and rolls back on
    detected corruption, up to ``max_restarts`` times; the default
    keeps the historical behaviour except that a non-finite residual
    raises :class:`~repro.errors.ConvergenceError` naming the
    iteration.  ``tracer`` records iteration spans on the ``solver``
    track exactly as :func:`~repro.solvers.pcg.pcg` does.
    """
    b = np.asarray(b, dtype=np.float64)
    n = backend.n
    if b.shape != (n,):
        raise ShapeError(f"rhs must have shape ({n},), got {b.shape}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

    norm_b = norm2(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), iterations=0, converged=True,
                           residual_norms=[0.0], report=backend.report())
    r = waxpby(1.0, b, -1.0, backend.spmv(x))
    p = r.copy()
    rr = dot(r, r)
    residuals = [norm2(r) / norm_b]
    converged = residuals[-1] < tol
    iterations = 0
    checkpointing = checkpoint_interval > 0
    restarts = 0
    checkpoint = x.copy()
    while not converged and iterations < max_iter:
        sid = _iteration_begin(tracer, backend, "cg_iteration", iterations)
        try:
            iterations += 1
            ap = backend.spmv(p)
            pap = dot(p, ap)
            _charge_vector_ops(backend, 2)
            if pap <= 0.0:
                raise ConvergenceError(
                    "p^T A p <= 0: matrix is not positive definite"
                )
            alpha = rr / pap
            x = waxpby(1.0, x, alpha, p)
            r = waxpby(1.0, r, -alpha, ap)
            _charge_vector_ops(backend, 2)
            res = norm2(r) / norm_b
            if not np.isfinite(res):
                raise ConvergenceError(
                    f"non-finite residual at iteration {iterations}"
                )
            if checkpointing and res > divergence_factor * residuals[-1]:
                raise CorruptionError(
                    f"residual diverged at iteration {iterations}: "
                    f"{res:.3e} from {residuals[-1]:.3e}"
                )
            residuals.append(res)
            if res < tol:
                converged = True
                break
            rr_new = dot(r, r)
            beta = rr_new / rr
            rr = rr_new
            p = waxpby(1.0, r, beta, p)
            _charge_vector_ops(backend, 2)
            if checkpointing and iterations % checkpoint_interval == 0:
                checkpoint = x.copy()
                _solver_instant(tracer, backend, "checkpoint", "checkpoint",
                                iterations)
        except (FaultError, CorruptionError, ConvergenceError):
            recovered = False
            while checkpointing and restarts < max_restarts:
                restarts += 1
                _solver_instant(tracer, backend, "solver_restart", "retry",
                                iterations)
                x = checkpoint.copy()
                try:
                    r = waxpby(1.0, b, -1.0, backend.spmv(x))
                    p = r.copy()
                    rr = dot(r, r)
                    _charge_vector_ops(backend, 2)
                except (FaultError, CorruptionError):
                    continue  # the rebuild itself faulted; spend a retry
                res = norm2(r) / norm_b
                if not (np.isfinite(res) and np.isfinite(rr)):
                    continue  # rebuilt from corrupted data; try again
                residuals.append(res)
                recovered = True
                break
            if not recovered:
                raise
        finally:
            _iteration_end(tracer, backend, sid, iterations)
    return SolveResult(x=x, iterations=iterations, converged=converged,
                       residual_norms=residuals, report=backend.report(),
                       restarts=restarts)
