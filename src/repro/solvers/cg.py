"""Unpreconditioned conjugate gradient.

Used to demonstrate *why* PCG carries the SymGS smoother: on
ill-conditioned PDE systems plain CG needs far more iterations, each of
which is pure SpMV — so the kernel mix (and hence the right accelerator)
depends on the solver variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConvergenceError, ShapeError
from repro.kernels import dot, norm2, waxpby
from repro.solvers.pcg import SolveResult, _charge_vector_ops


def cg(backend, b: np.ndarray, tol: float = 1e-8, max_iter: int = 500,
       x0: Optional[np.ndarray] = None) -> SolveResult:
    """Plain CG on the backend's SpMV (no preconditioner)."""
    b = np.asarray(b, dtype=np.float64)
    n = backend.n
    if b.shape != (n,):
        raise ShapeError(f"rhs must have shape ({n},), got {b.shape}")
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

    norm_b = norm2(b)
    if norm_b == 0.0:
        return SolveResult(x=np.zeros(n), iterations=0, converged=True,
                           residual_norms=[0.0], report=backend.report())
    r = waxpby(1.0, b, -1.0, backend.spmv(x))
    p = r.copy()
    rr = dot(r, r)
    residuals = [norm2(r) / norm_b]
    converged = residuals[-1] < tol
    iterations = 0
    while not converged and iterations < max_iter:
        iterations += 1
        ap = backend.spmv(p)
        pap = dot(p, ap)
        _charge_vector_ops(backend, 2)
        if pap <= 0.0:
            raise ConvergenceError(
                "p^T A p <= 0: matrix is not positive definite"
            )
        alpha = rr / pap
        x = waxpby(1.0, x, alpha, p)
        r = waxpby(1.0, r, -alpha, ap)
        _charge_vector_ops(backend, 2)
        residuals.append(norm2(r) / norm_b)
        if residuals[-1] < tol:
            converged = True
            break
        rr_new = dot(r, r)
        beta = rr_new / rr
        rr = rr_new
        p = waxpby(1.0, r, beta, p)
        _charge_vector_ops(backend, 2)
    return SolveResult(x=x, iterations=iterations, converged=converged,
                       residual_norms=residuals, report=backend.report())
