"""Jacobi smoother — the fully parallel (but weaker) alternative.

A single Jacobi sweep, ``x = x + D^{-1}(b - A x)``, has no data
dependencies at all, which makes it the natural strawman against SymGS:
embarrassingly parallel on any platform, but it smooths high-frequency
error much more slowly, so PCG-with-Jacobi needs more iterations.  The
ablation benchmark uses it to show the *algorithmic* value of resolving
SymGS's dependencies rather than avoiding them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ConvergenceError
from repro.kernels.spmv import to_csr


def jacobi_sweep(matrix, b: np.ndarray, x: np.ndarray,
                 damping: float = 1.0) -> np.ndarray:
    """One (damped) Jacobi sweep; returns the updated vector.

    A zero pivot is a property of the programmed system, not of the
    iteration, so it raises :class:`~repro.errors.ConfigError` — the
    same type the accelerator's SymGS programming check uses.
    """
    csr = to_csr(matrix)
    b = np.asarray(b, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    diag = csr.diagonal()
    if np.any(diag == 0.0):
        bad = int(np.nonzero(diag == 0.0)[0][0])
        raise ConfigError(f"zero diagonal at row {bad}")
    residual = b - csr.spmv(x)
    return x + damping * residual / diag


def jacobi(matrix, b: np.ndarray, sweeps: int = 10,
           damping: float = 2.0 / 3.0) -> np.ndarray:
    """Run ``sweeps`` damped-Jacobi iterations from zero.

    Raises :class:`~repro.errors.ConvergenceError` the first time an
    iterate goes non-finite (overflowing divergence or poisoned
    operands), naming the sweep.
    """
    x = np.zeros_like(np.asarray(b, dtype=np.float64))
    for sweep in range(sweeps):
        x = jacobi_sweep(matrix, b, x, damping)
        if not np.all(np.isfinite(x)):
            raise ConvergenceError(
                f"non-finite iterate at sweep {sweep + 1}"
            )
    return x


class JacobiBackend:
    """A PCG backend whose preconditioner is a Jacobi sweep.

    Shares the reference SpMV; exists for the smoother-choice ablation.
    """

    name = "jacobi"

    def __init__(self, matrix, sweeps: int = 1,
                 damping: float = 2.0 / 3.0) -> None:
        self.csr = to_csr(matrix)
        self.n = self.csr.shape[0]
        self.sweeps = sweeps
        self.damping = damping

    def spmv(self, x: np.ndarray) -> np.ndarray:
        return self.csr.spmv(np.asarray(x, dtype=np.float64))

    def precondition(self, r: np.ndarray) -> np.ndarray:
        z = np.zeros(self.n)
        for _ in range(self.sweeps):
            z = jacobi_sweep(self.csr, r, z, self.damping)
        return z

    def report(self):
        return None
