"""Solver compute backends.

The PCG driver (Figure 2) is backend-agnostic: a backend supplies the two
dominant kernels — SpMV and the SymGS smoother/preconditioner (Figure 3)
— plus cheap vector operations.

* :class:`ReferenceBackend` runs the golden kernels with no timing.
* :class:`AcceleratorBackend` runs both kernels on programmed
  :class:`~repro.core.accelerator.Alrescha` instances and accumulates
  their :class:`~repro.core.report.SimReport`.  The backward half of the
  symmetric sweep runs on a second accelerator programmed with the
  order-reversed matrix ``P A P`` (forward Gauss-Seidel on ``P A P`` is
  exactly backward Gauss-Seidel on ``A``), reusing the same D-SymGS
  hardware path.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.core.report import SimReport, combine
from repro.errors import ConfigError
from repro.kernels import backward_sweep, forward_sweep_vectorized, spmv
from repro.kernels.spmv import to_csr


class ReferenceBackend:
    """Golden kernels; produces values only (no timing reports)."""

    name = "reference"

    def __init__(self, matrix) -> None:
        self.csr = to_csr(matrix)
        self.n = self.csr.shape[0]

    def spmv(self, x: np.ndarray) -> np.ndarray:
        return self.csr.spmv(np.asarray(x, dtype=np.float64))

    def precondition(self, r: np.ndarray) -> np.ndarray:
        """Symmetric Gauss-Seidel applied to ``M z = r`` from ``z = 0``."""
        zero = np.zeros(self.n)
        z = forward_sweep_vectorized(self.csr, r, zero)
        return backward_sweep(self.csr, r, z)

    def report(self) -> Optional[SimReport]:
        return None


class AcceleratorBackend:
    """Alrescha-accelerated SpMV + SymGS with full timing/energy."""

    name = "alrescha"

    def __init__(self, matrix, config: Optional[AlreschaConfig] = None,
                 symmetric_smoother: bool = True,
                 source: Optional[dict] = None) -> None:
        csr = matrix.tocsr() if sp.issparse(matrix) else sp.csr_matrix(
            np.asarray(matrix, dtype=np.float64))
        self.n = csr.shape[0]
        self.config = config or AlreschaConfig()
        self.symmetric_smoother = symmetric_smoother
        self._spmv_acc = Alrescha.from_matrix(
            KernelType.SPMV, csr, config=self.config, source=source)
        self._symgs_acc = Alrescha.from_matrix(
            KernelType.SYMGS, csr, config=self.config, source=source)
        self._symgs_rev_acc: Optional[Alrescha] = None
        if symmetric_smoother:
            perm = np.arange(self.n)[::-1]
            reversed_csr = csr[perm][:, perm].tocsr()
            rev_source = (None if source is None
                          else {**source, "transform": "reverse"})
            self._symgs_rev_acc = Alrescha.from_matrix(
                KernelType.SYMGS, reversed_csr, config=self.config,
                source=rev_source)
        if self.config.use_plan:
            # Compile the pass plans eagerly so the one-off lowering cost
            # is paid at backend construction, not inside the solver loop.
            self._spmv_acc.compile_plans()
            self._symgs_acc.compile_plans()
            if self._symgs_rev_acc is not None:
                self._symgs_rev_acc.compile_plans()
        self._reports: List[SimReport] = []
        self._last_kernel: Optional[str] = None
        self.kernel_switches = 0

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _note_kernel(self, kernel: str) -> None:
        """Account for switching *between kernels* (§5.3: Alrescha's
        reconfigurability enables 'fast switching not only between the
        distinct data paths of a single kernel, but also among the
        sparse kernels').

        Like a data-path switch, the kernel switch rewrites the RCU
        configuration and, by default, hides under the drain of the
        retiring kernel's reduction tree; with the hiding ablation off,
        each switch exposes the full reconfiguration latency.
        """
        if self._last_kernel is not None and self._last_kernel != kernel:
            self.kernel_switches += 1
            exposed = (0.0 if self.config.hide_reconfig_under_drain
                       else float(self.config.reconfig_cycles))
            report = SimReport(
                kernel="kernel-switch",
                cycles=exposed,
                frequency_hz=self.config.frequency_hz,
                exposed_reconfig_cycles=exposed,
                bytes_per_cycle=self.config.bytes_per_cycle,
            )
            report.counters.add("config_write", 1.0)
            report.counters.add("switch_toggle", 1.0)
            report.energy_j = self.config.energy_model.energy_j(
                report.counters, report.seconds)
            self._reports.append(report)
        self._last_kernel = kernel

    def spmv(self, x: np.ndarray) -> np.ndarray:
        self._note_kernel("spmv")
        y, report = self._spmv_acc.run_spmv(np.asarray(x, dtype=np.float64))
        self._reports.append(report)
        return y

    def precondition(self, r: np.ndarray) -> np.ndarray:
        """SymGS smoother on the accelerator: forward (+ backward) sweep
        of ``M z = r`` starting from zero."""
        self._note_kernel("symgs")
        r = np.asarray(r, dtype=np.float64)
        zero = np.zeros(self.n)
        z, rep_f = self._symgs_acc.run_symgs_sweep(r, zero)
        self._reports.append(rep_f)
        if self._symgs_rev_acc is not None:
            z_rev, rep_b = self._symgs_rev_acc.run_symgs_sweep(
                r[::-1].copy(), z[::-1].copy())
            self._reports.append(rep_b)
            z = z_rev[::-1].copy()
        return z

    def vector_op(self, n_vectors_streamed: int = 2) -> None:
        """Charge a dense vector kernel (dot/waxpby) at stream bandwidth.

        These kernels are a "tiny fraction" of PCG time (Figure 3); they
        are charged as pure streaming so the breakdown benchmark can show
        exactly that.
        """
        bytes_moved = float(self.n * 8 * n_vectors_streamed)
        cycles = bytes_moved / self.config.bytes_per_cycle
        report = SimReport(
            kernel="vector",
            cycles=cycles,
            frequency_hz=self.config.frequency_hz,
            useful_bytes=bytes_moved,
            streamed_bytes=bytes_moved,
            bytes_per_cycle=self.config.bytes_per_cycle,
        )
        report.energy_j = self.config.energy_model.energy_j(
            {"dram_bytes": bytes_moved, "alu_op": float(self.n)},
            report.seconds,
        )
        self._reports.append(report)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> SimReport:
        """Combined report over every kernel executed so far."""
        return combine(self._reports, kernel="pcg")

    def kernel_breakdown(self) -> dict:
        """Cycles per kernel name — the Figure 3 quantity."""
        out: dict = {}
        for r in self._reports:
            out[r.kernel] = out.get(r.kernel, 0.0) + r.cycles
        return out

    def fault_summary(self) -> dict:
        """Resilience counters accumulated across every kernel run.

        Keys are always present (zero on clean runs) so callers can
        reconcile against a :class:`~repro.sim.faults.FaultModel` log
        without guarding for missing counters.
        """
        keys = ("faults_injected", "faults_detected", "faults_corrected",
                "faults_silent", "retry_cycles", "fault_restreams",
                "fault_latency_cycles", "crosscheck_rows",
                "crosscheck_mismatches", "plan_fallbacks",
                "crosscheck_wasted_cycles")
        out = {key: 0.0 for key in keys}
        for r in self._reports:
            for key in keys:
                out[key] += r.counters.get(key)
        return out

    def reset_reports(self) -> None:
        self._reports.clear()
        self._last_kernel = None
        self.kernel_switches = 0


#: Backend names :func:`make_backend` accepts.
KNOWN_BACKENDS = ("reference", "alrescha")


def make_backend(matrix, backend: str = "reference",
                 config: Optional[AlreschaConfig] = None,
                 symmetric_smoother: bool = True):
    """Factory: ``"reference"`` or ``"alrescha"``.

    An unknown name raises :class:`~repro.errors.ConfigError` (the
    shared error type for invalid configuration choices) naming the
    known backends.
    """
    if backend == "reference":
        return ReferenceBackend(matrix)
    if backend == "alrescha":
        return AcceleratorBackend(matrix, config=config,
                                  symmetric_smoother=symmetric_smoother)
    raise ConfigError(
        f"unknown backend {backend!r}; known: {', '.join(KNOWN_BACKENDS)}")
