"""HPCG-style benchmark driver (§1/§2: "the high-performance conjugate
gradient benchmark is now a complement to the high-performance Linpack").

Builds the 27-point-stencil system HPCG uses, runs a fixed budget of
PCG iterations on the chosen backend and reports a GFLOP/s rating plus
the fraction-of-peak comparison that motivates Figure 6.

FLOP accounting follows HPCG's convention per iteration:
  * SpMV:                2 * nnz
  * SymGS (fwd + bwd):   4 * nnz
  * vector kernels:      ~6 * 2 * n  (three dots, three waxpbys)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.accelerator import AlreschaConfig
from repro.datasets import stencil27
from repro.errors import ConvergenceError
from repro.solvers.backends import AcceleratorBackend
from repro.solvers.pcg import pcg


@dataclass
class HPCGResult:
    """Rating of one HPCG-style run."""

    nx: int
    ny: int
    nz: int
    n: int
    nnz: int
    iterations: int
    converged: bool
    final_residual: float
    seconds: float
    gflops: float
    bandwidth_utilization: float
    energy_j: float

    def fraction_of_peak(self, peak_flops: float) -> float:
        """This run's rating relative to a platform's peak FLOP/s."""
        if peak_flops <= 0:
            raise ConvergenceError("peak FLOPs must be positive")
        return self.gflops * 1e9 / peak_flops


def hpcg_flops(nnz: int, n: int, iterations: int) -> float:
    """Total floating-point operations of ``iterations`` PCG steps."""
    per_iter = 2.0 * nnz + 4.0 * nnz + 12.0 * n
    return per_iter * iterations


def run_hpcg(nx: int = 16, ny: int = 16, nz: int = 16,
             iterations: int = 25, tol: float = 0.0,
             config: Optional[AlreschaConfig] = None) -> HPCGResult:
    """Run the HPCG-style workload on the simulated accelerator.

    ``tol=0`` runs the full iteration budget (HPCG's timed mode);
    a positive tolerance stops at convergence.
    """
    a = stencil27(nx, ny, nz)
    n = a.shape[0]
    rng = np.random.default_rng(2027)
    x_true = rng.normal(size=n)
    b = a @ x_true

    backend = AcceleratorBackend(a, config=config)
    result = pcg(backend, b, tol=tol if tol > 0 else 1e-300,
                 max_iter=iterations)
    report = result.report
    flops = hpcg_flops(int(a.nnz), n, max(1, result.iterations))
    seconds = report.seconds
    return HPCGResult(
        nx=nx, ny=ny, nz=nz, n=n, nnz=int(a.nnz),
        iterations=result.iterations,
        converged=result.converged,
        final_residual=result.final_residual,
        seconds=seconds,
        gflops=flops / seconds / 1e9 if seconds > 0 else 0.0,
        bandwidth_utilization=report.bandwidth_utilization,
        energy_j=report.energy_j,
    )
