"""Geometric multigrid preconditioner (the full HPCG structure).

The HPCG benchmark the paper builds on [27] does not precondition with a
single SymGS sweep: it runs a small geometric multigrid V-cycle whose
*smoother* at every level is SymGS — which multiplies the importance of
accelerating the data-dependent kernel, because every level of every
V-cycle re-enters it.  This module implements that structure on top of
the accelerator backends:

* levels are rediscretisations of the 27-point operator on 2x-coarsened
  grids (HPCG's approach), built once;
* restriction is injection at even grid points, prolongation is
  piecewise-constant (HPCG's choices);
* pre-/post-smoothing and the coarsest-level solve are SymGS sweeps
  running on per-level :class:`~repro.solvers.backends.AcceleratorBackend`
  instances (or golden reference backends).

The resulting :class:`MultigridBackend` plugs straight into
:func:`repro.solvers.pcg.pcg`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.accelerator import AlreschaConfig
from repro.core.report import SimReport, combine
from repro.datasets import stencil27
from repro.errors import ConfigError, CorruptionError, FaultError
from repro.solvers.backends import AcceleratorBackend, ReferenceBackend


def _check_dims(nx: int, ny: int, nz: int, n_levels: int) -> None:
    for d in (nx, ny, nz):
        if d < 2:
            raise ConfigError(f"grid extent {d} too small for multigrid")
        if d % (1 << (n_levels - 1)) != 0:
            raise ConfigError(
                f"grid extent {d} not divisible by 2^{n_levels - 1}; "
                f"HPCG-style coarsening needs power-of-two multiples"
            )


def _grid_index(ix, iy, iz, nx, ny):
    return (iz * ny + iy) * nx + ix


def restrict_injection(fine: np.ndarray,
                       fine_dims: Tuple[int, int, int]) -> np.ndarray:
    """Injection restriction: sample the even-indexed fine points."""
    nx, ny, nz = fine_dims
    f = fine.reshape(nz, ny, nx)
    return f[::2, ::2, ::2].ravel().copy()


def prolong_constant(coarse: np.ndarray,
                     fine_dims: Tuple[int, int, int]) -> np.ndarray:
    """Piecewise-constant prolongation: each fine point inherits the
    value of its coarse parent cell."""
    nx, ny, nz = fine_dims
    cnx, cny, cnz = nx // 2, ny // 2, nz // 2
    c = coarse.reshape(cnz, cny, cnx)
    fine = np.repeat(np.repeat(np.repeat(c, 2, axis=0), 2, axis=1),
                     2, axis=2)
    return fine[:nz, :ny, :nx].ravel().copy()


@dataclass
class MGLevel:
    """One multigrid level: grid dims, operator and compute backend."""

    dims: Tuple[int, int, int]
    matrix: object            # scipy CSR
    backend: object           # AcceleratorBackend | ReferenceBackend

    @property
    def n(self) -> int:
        nx, ny, nz = self.dims
        return nx * ny * nz


class MultigridPreconditioner:
    """HPCG-style V-cycle with SymGS smoothing at every level."""

    def __init__(self, nx: int, ny: int, nz: int, n_levels: int = 3,
                 backend: str = "reference",
                 config: Optional[AlreschaConfig] = None,
                 coarse_sweeps: int = 4,
                 cycle_retries: int = 0) -> None:
        if n_levels < 1:
            raise ConfigError(f"need at least one level, got {n_levels}")
        _check_dims(nx, ny, nz, n_levels)
        if coarse_sweeps < 1:
            raise ConfigError("coarse_sweeps must be positive")
        if cycle_retries < 0:
            raise ConfigError("cycle_retries must be non-negative")
        self.n_levels = n_levels
        self.coarse_sweeps = coarse_sweeps
        self.cycle_retries = cycle_retries
        #: V-cycles rerun after a detected fault (diagnostic counter).
        self.cycles_retried = 0
        self.levels: List[MGLevel] = []
        dims = (nx, ny, nz)
        for _ in range(n_levels):
            matrix = stencil27(*dims)
            if backend == "alrescha":
                be = AcceleratorBackend(matrix, config=config)
            elif backend == "reference":
                be = ReferenceBackend(matrix)
            else:
                raise ConfigError(f"unknown backend {backend!r}")
            self.levels.append(MGLevel(dims, matrix, be))
            dims = (dims[0] // 2, dims[1] // 2, dims[2] // 2)

    @property
    def fine_matrix(self):
        return self.levels[0].matrix

    # ------------------------------------------------------------------
    # V-cycle
    # ------------------------------------------------------------------
    def apply(self, r: np.ndarray) -> np.ndarray:
        """One V-cycle approximating ``A^{-1} r`` (from a zero guess).

        The V-cycle is stateless given ``r``, so recovery from a
        detected transfer fault is simply a rerun: with
        ``cycle_retries > 0`` a :class:`~repro.errors.FaultError` or
        :class:`~repro.errors.CorruptionError` restarts the cycle from
        the top, up to that many times, before the error propagates.
        """
        r = np.asarray(r, dtype=np.float64)
        attempts = 0
        while True:
            try:
                return self._cycle(0, r)
            except (FaultError, CorruptionError):
                if attempts >= self.cycle_retries:
                    raise
                attempts += 1
                self.cycles_retried += 1

    def _cycle(self, level: int, r: np.ndarray) -> np.ndarray:
        lvl = self.levels[level]
        if level == self.n_levels - 1:
            # Coarsest level: a few SymGS applications of A x = r.
            x = lvl.backend.precondition(r)
            for _ in range(self.coarse_sweeps - 1):
                residual = r - lvl.backend.spmv(x)
                x = x + lvl.backend.precondition(residual)
            return x
        # Pre-smooth from zero (one symmetric SymGS application).
        x = lvl.backend.precondition(r)
        # Coarse-grid correction.
        residual = r - lvl.backend.spmv(x)
        coarse_r = restrict_injection(residual, lvl.dims)
        coarse_e = self._cycle(level + 1, coarse_r)
        x = x + prolong_constant(coarse_e, lvl.dims)
        # Post-smooth.
        residual = r - lvl.backend.spmv(x)
        x = x + lvl.backend.precondition(residual)
        return x

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> Optional[SimReport]:
        reports = []
        for lvl in self.levels:
            rep = lvl.backend.report()
            if rep is not None:
                reports.append(rep)
        if not reports:
            return None
        return combine(reports, kernel="multigrid")


class MultigridBackend:
    """A PCG backend whose preconditioner is the multigrid V-cycle."""

    name = "multigrid"

    def __init__(self, nx: int, ny: int, nz: int, n_levels: int = 3,
                 backend: str = "reference",
                 config: Optional[AlreschaConfig] = None,
                 cycle_retries: int = 0) -> None:
        self.mg = MultigridPreconditioner(
            nx, ny, nz, n_levels=n_levels, backend=backend, config=config,
            cycle_retries=cycle_retries,
        )
        self._fine = self.mg.levels[0].backend
        self.n = self.mg.levels[0].n

    @property
    def matrix(self):
        return self.mg.fine_matrix

    def spmv(self, x: np.ndarray) -> np.ndarray:
        return self._fine.spmv(x)

    def precondition(self, r: np.ndarray) -> np.ndarray:
        return self.mg.apply(r)

    def report(self) -> Optional[SimReport]:
        return self.mg.report()
