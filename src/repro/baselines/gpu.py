"""GPU baseline model (Table 4: NVIDIA Tesla K40c, Kepler, 2880 CUDA
cores, 745 MHz, 12 GB GDDR5 @ 288 GB/s; cuSPARSE + Gunrock, with the row
reordering / colouring optimization [8] and ELL storage).

Mechanistic terms:

* **SpMV** — ELL payload for structured (scientific) matrices includes
  the padding slots; heavy-tailed graphs fall back to CSR.  Vector
  gathers refetch a 128-byte line whenever column locality misses, and
  the scatter/gather pattern caps effective bandwidth well below peak
  (Figure 6).
* **SymGS** — after colouring/level scheduling, operations in levels too
  narrow to fill warps serialise at a latency-bound rate (a dependent
  row per memory round trip), while wide levels stream at the effective
  bandwidth.  This Amdahl split is computed from the *actual* dependency
  levels of each matrix (:mod:`repro.baselines.coloring`), which is why
  diagonal-heavy matrices show the largest Alrescha speedups in
  Figure 15.
* **Graph kernels** — Gunrock-style frontier implementations: each edge
  visited ~once per traversal at a per-edge cost dominated by irregular
  global-memory access.
"""

from __future__ import annotations

from repro.baselines.base import MatrixProfile, PlatformModel
from repro.errors import BaselineError

#: Table 4 hardware constants.
GPU_BANDWIDTH = 288e9
GPU_CUDA_CORES = 2880
GPU_PEAK_DP_FLOPS = 1.43e12   # K40c double precision

#: Effective-bandwidth window for sparse kernels.
GPU_SPMV_EFF_MIN = 0.06
GPU_SPMV_EFF_MAX = 0.35

#: Gather refetch granularity (global-memory transaction).
GPU_GATHER_LINE = 128.0

#: Latency-bound rate for serialised (narrow-level) SymGS work: one
#: dependent row resolved per global-memory round trip.
GPU_SYMGS_SERIAL_RATE = 1.65e9  # bytes/s

#: Per-edge costs of Gunrock-style traversals (seconds/edge) before the
#: locality penalty; frontier management and irregular access dominate.
GPU_EDGE_COST = {
    "bfs": 4.5e-9,
    "sssp": 3.3e-9,
    "pagerank": 1.6e-9,
}
GPU_EDGE_VISITS = {"bfs": 1.0, "sssp": 1.0, "pagerank": 1.0}

#: Per-edge energy (joules) for sparse kernels on a 235 W Kepler part.
GPU_ENERGY_PER_EDGE = 12.5e-9
GPU_VECTOR_EFF = 0.85

#: ELL becomes worse than CSR once padding exceeds this ratio; the
#: baseline (like cuSPARSE users) picks the better of the two.
ELL_PADDING_CUTOFF = 0.65


class GPUModel(PlatformModel):
    """Tesla K40c-class baseline with the paper's optimizations."""

    name = "gpu"

    def _efficiency(self, profile: MatrixProfile) -> float:
        loc = profile.column_locality
        return GPU_SPMV_EFF_MIN + (GPU_SPMV_EFF_MAX
                                   - GPU_SPMV_EFF_MIN) * loc

    def storage_format(self, profile: MatrixProfile) -> str:
        """ELL for structured matrices, CSR once padding explodes."""
        return "ell" if profile.ell_padding <= ELL_PADDING_CUTOFF else "csr"

    def spmv_traffic_bytes(self, profile: MatrixProfile) -> float:
        """Value + meta-data stream plus gather refetch traffic."""
        if self.storage_format(profile) == "ell":
            slots = profile.n * profile.ell.width
            stream = slots * 12.0
        else:
            stream = profile.nnz * 12.0 + profile.n * 16.0
        # At evaluation scale the operand vector dwarfs the L2, so
        # locality only saves a share of the 128 B gather transactions.
        gather = profile.nnz * (1.0 - 0.7 * profile.column_locality) \
            * GPU_GATHER_LINE
        return stream + gather

    def spmv_seconds(self, profile: MatrixProfile) -> float:
        eff = self._efficiency(profile) / profile.row_imbalance
        return self.spmv_traffic_bytes(profile) / (GPU_BANDWIDTH * eff)

    def symgs_sweep_seconds(self, profile: MatrixProfile) -> float:
        """Amdahl split computed from the matrix's dependency levels."""
        s, _levels = profile.gpu_seq
        work = profile.nnz * 12.0
        eff = self._efficiency(profile)
        parallel = (1.0 - s) * work / (GPU_BANDWIDTH * eff)
        serial = s * work / GPU_SYMGS_SERIAL_RATE
        return parallel + serial

    def vector_kernel_seconds(self, profile: MatrixProfile) -> float:
        return profile.n * 16.0 / (GPU_BANDWIDTH * GPU_VECTOR_EFF)

    def graph_pass_seconds(self, profile: MatrixProfile,
                           algorithm: str) -> float:
        if algorithm not in GPU_EDGE_COST:
            raise BaselineError(f"unknown graph algorithm {algorithm!r}")
        locality_penalty = 1.0 + (1.0 - profile.column_locality)
        return (profile.nnz * GPU_EDGE_VISITS[algorithm]
                * GPU_EDGE_COST[algorithm] * locality_penalty)

    def spmv_energy(self, profile: MatrixProfile) -> float:
        return profile.nnz * GPU_ENERGY_PER_EDGE

    def hpcg_fraction_of_peak(self, profile: MatrixProfile) -> float:
        """Achieved/peak FLOPs for one PCG iteration (Figure 6 metric)."""
        flops = 2.0 * profile.nnz * 3.0
        t = self.pcg_iteration_seconds(profile)
        return flops / t / GPU_PEAK_DP_FLOPS
