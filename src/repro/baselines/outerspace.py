"""OuterSPACE [18] behavioural model — the SpMV comparison accelerator.

OuterSPACE executes sparse products by *outer products*: each element of
the vector operand is read once, multiplied against a full compressed
column, and the partial products are scattered into their output
locations through a local cache.  §5.3 of the paper pins down the
behaviour our model reproduces: "unlike Alrescha, the computation engine
of OuterSPACE has to put the partial products in their right location in
the output vector, which may lead to lack of locality in accesses to the
cache" — so its execution time carries a large cache-access component
(the line series of Figure 18) even though its streaming side (CSR, high
data reuse) is efficient.

Per §5.1 the model gets the same compute and memory-bandwidth budget as
Alrescha.
"""

from __future__ import annotations

from repro.baselines.base import MatrixProfile, PlatformModel

#: Same memory budget as Alrescha (Table 5).
OS_BANDWIDTH = 288e9

#: Streaming efficiency of the outer-product pass: sequential CSR reads,
#: so high — the format still carries 4-byte indices per value.
OS_STREAM_EFF = 0.85

#: Cost of scattering one partial product through the local cache
#: hierarchy (seconds).  Partial products land at data-dependent output
#: offsets, so a large share of them miss in the small local cache.
OS_PARTIAL_SCATTER_COST = 0.62e-9

#: Fraction of scatters that hit locally when the output exhibits
#: spatial locality; scales with column locality of the matrix.
OS_HIT_SAVINGS = 0.7

#: Per-edge energy: scatter-heavy cache traffic plus DRAM.
OS_ENERGY_PER_EDGE = 1.9e-9


class OuterSPACEModel(PlatformModel):
    """Outer-product SpMV accelerator model."""

    name = "outerspace"

    def stream_seconds(self, profile: MatrixProfile) -> float:
        """CSR payload + meta-data at high streaming efficiency."""
        traffic = profile.nnz * 12.0 + profile.n * 16.0
        return traffic / (OS_BANDWIDTH * OS_STREAM_EFF)

    def scatter_seconds(self, profile: MatrixProfile) -> float:
        """Partial-product placement through the local cache."""
        hit_fraction = OS_HIT_SAVINGS * profile.column_locality
        effective_cost = OS_PARTIAL_SCATTER_COST * (1.0 - hit_fraction)
        return profile.nnz * effective_cost

    def spmv_seconds(self, profile: MatrixProfile) -> float:
        # Streaming and scattering overlap imperfectly: the scatter unit
        # back-pressures the stream once its buffers fill, so the total
        # is the larger of the two plus half the smaller.
        stream = self.stream_seconds(profile)
        scatter = self.scatter_seconds(profile)
        return max(stream, scatter) + 0.5 * min(stream, scatter)

    def cache_time_fraction(self, profile: MatrixProfile) -> float:
        """Share of execution spent on cache accesses (Figure 18 lines)."""
        total = self.spmv_seconds(profile)
        if total <= 0:
            return 0.0
        return min(1.0, self.scatter_seconds(profile) / total)

    def spmv_energy(self, profile: MatrixProfile) -> float:
        return profile.nnz * OS_ENERGY_PER_EDGE
