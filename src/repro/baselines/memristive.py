"""Memristive scientific-computing accelerator [25] behavioural model.

Feinberg et al.'s accelerator solves PDE systems in heterogeneous
memristive crossbars, processing the matrix in *large* dense blocks
(Table 2: 64x64 up to 512x512).  The behaviours this paper attributes to
it, which our model reproduces:

* blocked storage: every slot of each non-empty block streams/programs,
  so the (low) block density at 64+-wide blocking wastes most of the
  bandwidth — the reason its bandwidth-utilization line in Figure 15
  sits below Alrescha's;
* no dependency resolution ("Resolving Limited Parallelism: x"): its
  SymGS serialises across block rows, paying a full crossbar evaluation
  latency per dependent step;
* per-block meta-data transfer.

The model picks, per matrix, the block width from {64, 128, 256, 512}
that minimises streamed volume — mirroring the original design's
multi-size blocks.
"""

from __future__ import annotations

from repro.baselines.base import MatrixProfile, PlatformModel

#: Same memory budget as Alrescha (§5.1).
MEM_BANDWIDTH = 288e9
MEM_BLOCK_WIDTHS = (64, 128, 256, 512)
MEM_STREAM_EFF = 0.75

#: Crossbar evaluate latency per dependent (diagonal-block) step; the
#: analog solve of one block row cannot start before the previous one
#: finishes.
MEM_SERIAL_STEP = 80e-9

#: Per-edge energy: crossbar programming of mostly-empty large blocks.
MEM_ENERGY_PER_EDGE = 3.4e-9


class MemristiveModel(PlatformModel):
    """Memristive PDE-solver accelerator model."""

    name = "memristive"

    def best_block_width(self, profile: MatrixProfile) -> int:
        """The block width minimising streamed slots for this matrix."""
        best_w, best_slots = MEM_BLOCK_WIDTHS[0], float("inf")
        for w in MEM_BLOCK_WIDTHS:
            slots = profile.blocks_at(w) * w * w
            if slots < best_slots:
                best_w, best_slots = w, float(slots)
        return best_w

    def streamed_bytes(self, profile: MatrixProfile) -> float:
        w = self.best_block_width(profile)
        n_blocks = profile.blocks_at(w)
        return n_blocks * w * w * 8.0 + n_blocks * 8.0

    def spmv_seconds(self, profile: MatrixProfile) -> float:
        return self.streamed_bytes(profile) / (MEM_BANDWIDTH
                                               * MEM_STREAM_EFF)

    def symgs_sweep_seconds(self, profile: MatrixProfile) -> float:
        """Streaming plus a serial crossbar step per dependent block row."""
        w = self.best_block_width(profile)
        n_block_rows = -(-profile.n // w)
        serial = n_block_rows * MEM_SERIAL_STEP
        return self.spmv_seconds(profile) + serial

    def vector_kernel_seconds(self, profile: MatrixProfile) -> float:
        return profile.n * 16.0 / MEM_BANDWIDTH

    def bandwidth_utilization(self, profile: MatrixProfile) -> float:
        """Useful non-zero bytes over peak deliverable (Figure 15 line)."""
        t = self.pcg_iteration_seconds(profile)
        useful = profile.nnz * 8.0 * 3.0  # spmv + 2 sweeps
        return min(1.0, useful / (t * MEM_BANDWIDTH))

    def spmv_energy(self, profile: MatrixProfile) -> float:
        return profile.nnz * MEM_ENERGY_PER_EDGE
