"""Shared machinery for baseline platform models.

Every comparison platform in §5 (CPU, GPU, OuterSPACE, GraphR, the
Memristive accelerator) is modelled *behaviourally*: mechanistic traffic
and parallelism terms computed from the actual matrix, scaled by a small
set of named platform constants.  The paper itself did the same for its
accelerator peers ("we modeled the behavior of the preceding accelerators
based on the information provided in the published papers", §5.1), and
gave everyone "the same computation and memory-bandwidth budget".

:class:`MatrixProfile` precomputes every structural quantity a model
needs (once per matrix), so the models themselves stay small formulas.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from repro.errors import BaselineError
from repro.formats import BCSRMatrix, COOMatrix, CSRMatrix, ELLMatrix
from repro.baselines.coloring import (
    alrescha_sequential_fraction,
    gauss_seidel_levels,
    gpu_sequential_fraction,
)
from repro.kernels.spmv import to_csr


@dataclass(frozen=True)
class EnergyReport:
    """Energy for one kernel execution on a platform (joules)."""

    platform: str
    kernel: str
    joules: float


class MatrixProfile:
    """Structural profile of a sparse matrix, computed lazily."""

    def __init__(self, matrix, omega: int = 8) -> None:
        self.csr: CSRMatrix = to_csr(matrix)
        self.omega = omega

    @property
    def n(self) -> int:
        return self.csr.shape[0]

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @cached_property
    def coo(self) -> COOMatrix:
        return self.csr.to_coo()

    @cached_property
    def bcsr(self) -> BCSRMatrix:
        return BCSRMatrix.from_coo(self.coo, self.omega)

    @cached_property
    def block_density(self) -> float:
        """Mean fill of non-empty ω x ω blocks."""
        return self.bcsr.block_density

    @cached_property
    def ell(self) -> ELLMatrix:
        return ELLMatrix.from_coo(self.coo)

    @cached_property
    def ell_padding(self) -> float:
        return self.ell.padding_ratio

    @cached_property
    def gs_levels(self) -> np.ndarray:
        return gauss_seidel_levels(self.csr)

    @cached_property
    def gpu_seq(self) -> Tuple[float, int]:
        """(sequential fraction, level count) under GPU colouring."""
        return gpu_sequential_fraction(self.csr)

    @cached_property
    def alrescha_seq_fraction(self) -> float:
        return alrescha_sequential_fraction(self.csr, self.omega)

    @cached_property
    def column_locality(self) -> float:
        """Reuse friendliness of the vector gather in [0, 1].

        Measures how often consecutive non-zeros in a row touch nearby
        columns (within half a cache line): narrow-banded matrices score
        high; stencils with far-plane neighbours, wide bands and
        power-law graphs score low.  Drives the gather-traffic term of
        cache-based platforms.
        """
        if self.nnz < 2:
            return 1.0
        cols = self.csr.indices
        same_row = np.repeat(
            np.arange(self.n), np.diff(self.csr.indptr)
        )
        adjacent = same_row[1:] == same_row[:-1]
        if not adjacent.any():
            return 1.0
        near = np.abs(np.diff(cols)) <= 4
        return float((adjacent & near).sum() / adjacent.sum())

    @cached_property
    def row_imbalance(self) -> float:
        """Load imbalance of row lengths, >= 1.

        ``sqrt(max / mean)`` of the row non-zero counts, capped at 2.5 —
        heavy-tailed (power-law) matrices cause warp divergence and
        work-queue imbalance on SIMT platforms proportional to this.
        """
        counts = self.csr.row_nnz().astype(np.float64)
        if counts.size == 0 or counts.mean() == 0:
            return 1.0
        return float(min(2.5, max(1.0, (counts.max()
                                        / counts.mean()) ** 0.5)))

    def blocks_at(self, width: int) -> int:
        """Number of non-empty ``width x width`` blocks."""
        if width <= 0:
            raise BaselineError(f"block width must be positive, got {width}")
        n_bc = -(-self.csr.shape[1] // width)
        keys = (self.coo.rows // width) * n_bc + (self.coo.cols // width)
        return int(np.unique(keys).size) if self.nnz else 0

    def density_at(self, width: int) -> float:
        """Block density for a given blocking width."""
        blocks = self.blocks_at(width)
        if blocks == 0:
            return 0.0
        return self.nnz / float(blocks * width * width)


class PlatformModel(ABC):
    """A baseline platform's timing/energy model."""

    name: str = "abstract"

    @abstractmethod
    def spmv_seconds(self, profile: MatrixProfile) -> float:
        """Wall-clock seconds for one SpMV over the profiled matrix."""

    def symgs_sweep_seconds(self, profile: MatrixProfile) -> float:
        """One forward SymGS sweep; platforms without a SymGS story may
        not override this."""
        raise BaselineError(f"{self.name} does not model SymGS")

    def pcg_iteration_seconds(self, profile: MatrixProfile) -> float:
        """One PCG iteration = 1 SpMV + 2 SymGS sweeps + vector kernels."""
        spmv = self.spmv_seconds(profile)
        symgs = 2.0 * self.symgs_sweep_seconds(profile)
        vectors = self.vector_kernel_seconds(profile) * 6.0
        return spmv + symgs + vectors

    def vector_kernel_seconds(self, profile: MatrixProfile) -> float:
        """One dense dot/waxpby over n elements (default: negligible)."""
        return 0.0

    def graph_pass_seconds(self, profile: MatrixProfile,
                           algorithm: str) -> float:
        """One full edge pass of BFS/SSSP/PR."""
        raise BaselineError(f"{self.name} does not model graph kernels")

    def spmv_energy(self, profile: MatrixProfile) -> float:
        """Joules for one SpMV."""
        raise BaselineError(f"{self.name} does not model energy")
