"""CPU baseline model (Table 4: Intel Xeon E5-2630 v3, 8 cores, 2.4 GHz,
128 GB DDR4 @ 59 GB/s; GridGraph / CuSha frameworks for graphs).

The model is traffic + per-edge-cost mechanistic:

* SpMV moves CSR payload plus gather traffic whose volume depends on the
  matrix's column locality (a cache line is refetched for every
  non-local gather), through an effective bandwidth that sparse access
  patterns leave well below peak — the Figure 6 observation.
* Graph kernels follow the *work-efficient* framework style (frontier
  BFS, priority-queue SSSP): each edge is visited a small number of
  times, but at a per-edge instruction cost tens of ns high.  This is
  the honest comparison point: Alrescha streams *all* blocks every pass
  but at sub-ns per slot.
"""

from __future__ import annotations

from repro.baselines.base import MatrixProfile, PlatformModel
from repro.errors import BaselineError

#: Table 4 hardware constants.
CPU_BANDWIDTH = 59e9           # bytes/s
CPU_FREQUENCY = 2.4e9
CPU_CORES = 8
CPU_PEAK_DP_FLOPS = CPU_CORES * CPU_FREQUENCY * 16   # AVX2 FMA

#: Effective-bandwidth window for sparse streaming: scattered access
#: patterns reach the low end, banded/stencil patterns the high end.
CPU_SPMV_EFF_MIN = 0.12
CPU_SPMV_EFF_MAX = 0.40

#: Serialized Gauss-Seidel processing rate: one dependent row resolved
#: per DRAM-latency-class round trip.
CPU_SYMGS_SERIAL_RATE = 3.0e9  # bytes/s

#: Per-edge costs of the graph frameworks (seconds/edge), before the
#: locality penalty.  Calibrated so that our scaled datasets reproduce
#: the paper's CPU-relative speedups (Figure 17).
CPU_EDGE_COST = {
    # BFS is the most irregular per edge (frontier management, random
    # vertex probes); delta-stepping SSSP amortises bucket work better;
    # PageRank is a near-sequential streaming scan, cheapest per edge.
    "bfs": 13.5e-9,
    "sssp": 10e-9,
    "pagerank": 4.9e-9,
}

#: Edge-visit multiplier of the work-efficient implementations:
#: BFS/SSSP visit each edge roughly once in total; PR visits all edges
#: per iteration (the driver multiplies by iterations itself).
CPU_EDGE_VISITS = {"bfs": 1.0, "sssp": 1.0, "pagerank": 1.0}

#: Per-edge energy (joules): instruction stream + cache hierarchy +
#: DRAM for one sparse edge on a Haswell-class server core.
CPU_ENERGY_PER_EDGE = 66e-9
CPU_VECTOR_EFF = 0.75


class CPUModel(PlatformModel):
    """Xeon E5-2630 v3-class baseline."""

    name = "cpu"

    def _spmv_efficiency(self, profile: MatrixProfile) -> float:
        loc = profile.column_locality
        return CPU_SPMV_EFF_MIN + (CPU_SPMV_EFF_MAX
                                   - CPU_SPMV_EFF_MIN) * loc

    def spmv_traffic_bytes(self, profile: MatrixProfile) -> float:
        """CSR payload + indices + locality-dependent gather refetches.

        As with the GPU model, the operand vector exceeds the cache
        hierarchy at evaluation scale, so locality only saves part of
        the per-gather line refetch.
        """
        payload = profile.nnz * 12.0 + profile.n * 16.0
        gather = profile.nnz * (1.0 - 0.7 * profile.column_locality) * 64.0
        return payload + gather

    def spmv_seconds(self, profile: MatrixProfile) -> float:
        eff = self._spmv_efficiency(profile)
        return self.spmv_traffic_bytes(profile) / (CPU_BANDWIDTH * eff)

    def symgs_sweep_seconds(self, profile: MatrixProfile) -> float:
        """Amdahl split between parallelisable and dependent rows.

        The CPU's 8 threads fill much earlier than a GPU, so the
        parallel threshold is the core count, not a warp.
        """
        s, _levels = profile.gpu_seq  # warp-based fraction (upper bound)
        # Eight cores saturate at width 8 rather than 32: scale the
        # sequential share down accordingly.
        s_cpu = s * (8.0 / 32.0)
        work = profile.nnz * 12.0
        eff = self._spmv_efficiency(profile)
        parallel = (1.0 - s_cpu) * work / (CPU_BANDWIDTH * eff)
        serial = s_cpu * work / CPU_SYMGS_SERIAL_RATE
        return parallel + serial

    def vector_kernel_seconds(self, profile: MatrixProfile) -> float:
        return profile.n * 16.0 / (CPU_BANDWIDTH * CPU_VECTOR_EFF)

    def graph_pass_seconds(self, profile: MatrixProfile,
                           algorithm: str) -> float:
        """One logical pass of the work-efficient CPU implementation.

        For BFS/SSSP this is the *whole traversal* (each edge visited
        ~once in total); for PR it is one power iteration.
        """
        if algorithm not in CPU_EDGE_COST:
            raise BaselineError(f"unknown graph algorithm {algorithm!r}")
        locality_penalty = 1.0 + (1.0 - profile.column_locality)
        return (profile.nnz * CPU_EDGE_VISITS[algorithm]
                * CPU_EDGE_COST[algorithm] * locality_penalty)

    def spmv_energy(self, profile: MatrixProfile) -> float:
        return profile.nnz * CPU_ENERGY_PER_EDGE

    def hpcg_fraction_of_peak(self, profile: MatrixProfile) -> float:
        """Achieved/peak FLOPs for one PCG iteration (Figure 6 metric)."""
        flops = 2.0 * profile.nnz * 3.0  # spmv + 2 symgs sweeps
        t = self.pcg_iteration_seconds(profile)
        return flops / t / CPU_PEAK_DP_FLOPS
