"""GraphR [24] behavioural model — the graph comparison accelerator.

GraphR processes graphs in ReRAM crossbars using a 4x4-block COO layout
(Table 2).  The behaviours our model reproduces, per the descriptions in
this paper:

* blocks of non-zeros are processed instead of individual edges, so the
  engine streams every slot of each non-empty 4x4 block (block density
  at width 4 controls the wasted slots);
* per-block meta-data (the COO block coordinates) *is* transferred at
  runtime, unlike Alrescha's configuration table (Table 2's
  "NOT Transferring Meta-data: x");
* every block pays the ReRAM crossbar read/settle latency, which limits
  throughput relative to a streaming dataflow ("BW Utilization: Low").

Graph algorithms execute as synchronous full passes (like Alrescha),
so per-algorithm totals are driven by the same pass counts.
"""

from __future__ import annotations

from repro.baselines.base import MatrixProfile, PlatformModel

#: Same memory budget as Alrescha (§5.1).
GR_BANDWIDTH = 288e9
GR_BLOCK = 4

#: Crossbar read+settle time per 4x4 block (seconds): ReRAM analog read,
#: ADC conversion and row drive.
GR_BLOCK_LATENCY = 6.0e-9

#: How many crossbar reads proceed concurrently (parallel crossbars).
GR_PARALLEL_CROSSBARS = 10

#: Streaming efficiency for the block payload + coordinates.
GR_STREAM_EFF = 0.35

#: Per-edge energy: ReRAM reads are cheap but ADCs and block padding
#: are not.
GR_ENERGY_PER_EDGE = 2.6e-9


class GraphRModel(PlatformModel):
    """ReRAM graph accelerator model."""

    name = "graphr"

    def blocks(self, profile: MatrixProfile) -> int:
        return profile.blocks_at(GR_BLOCK)

    def stream_seconds(self, profile: MatrixProfile) -> float:
        """Block payload (dense 4x4 slots) + per-block coordinates."""
        n_blocks = self.blocks(profile)
        payload = n_blocks * GR_BLOCK * GR_BLOCK * 8.0
        metadata = n_blocks * 8.0  # two 4-byte block coordinates
        return (payload + metadata) / (GR_BANDWIDTH * GR_STREAM_EFF)

    def crossbar_seconds(self, profile: MatrixProfile) -> float:
        n_blocks = self.blocks(profile)
        return n_blocks * GR_BLOCK_LATENCY / GR_PARALLEL_CROSSBARS

    def graph_pass_seconds(self, profile: MatrixProfile,
                           algorithm: str) -> float:
        """One synchronous pass over all blocks."""
        return max(self.stream_seconds(profile),
                   self.crossbar_seconds(profile))

    def spmv_seconds(self, profile: MatrixProfile) -> float:
        return self.graph_pass_seconds(profile, "pagerank")

    def spmv_energy(self, profile: MatrixProfile) -> float:
        return profile.nnz * GR_ENERGY_PER_EDGE
