"""Baseline platform models: CPU, GPU and the peer accelerators.

All models are behavioural (traffic + parallelism formulas over the real
matrix structure) with named, documented constants — the same
methodology §5.1 of the paper describes for its own comparisons.
"""

from repro.baselines.base import EnergyReport, MatrixProfile, PlatformModel
from repro.baselines.coloring import (
    WARP_WIDTH,
    alrescha_sequential_fraction,
    gauss_seidel_levels,
    gpu_sequential_fraction,
    greedy_coloring,
    level_histogram,
)
from repro.baselines.cpu import CPUModel
from repro.baselines.gpu import GPUModel
from repro.baselines.graphr import GraphRModel
from repro.baselines.memristive import MemristiveModel
from repro.baselines.outerspace import OuterSPACEModel

__all__ = [
    "CPUModel",
    "EnergyReport",
    "GPUModel",
    "GraphRModel",
    "MatrixProfile",
    "MemristiveModel",
    "OuterSPACEModel",
    "PlatformModel",
    "WARP_WIDTH",
    "alrescha_sequential_fraction",
    "gauss_seidel_levels",
    "gpu_sequential_fraction",
    "greedy_coloring",
    "level_histogram",
]
