"""Row reordering / matrix coloring analysis (the GPU-side optimization).

The paper's GPU baseline extracts SymGS parallelism with row reordering
and graph coloring [8]: rows that do not depend on each other execute in
parallel, dependent groups execute sequentially.  This module computes
that structure exactly:

* :func:`gauss_seidel_levels` — wavefront (level-scheduling) depth of the
  forward Gauss-Seidel dependency DAG: ``level[j] = 1 + max(level[i])``
  over lower-triangle neighbours ``i < j``.
* :func:`greedy_coloring` — distance-1 greedy colouring of the symmetric
  adjacency, the classic multi-colour GS decomposition.
* :func:`gpu_sequential_fraction` — Figure 16's baseline series: the
  share of operations that cannot execute with wide parallelism because
  their level is narrower than a warp.
* :func:`alrescha_sequential_fraction` — Figure 16's Alrescha series:
  after the GEMV/D-SymGS decomposition, only the diagonal-block
  operations remain sequential.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.formats import BCSRMatrix, COOMatrix
from repro.kernels.spmv import to_csr

#: Rows per level below which a level cannot even fill a warp — its
#: operations execute effectively sequentially on the GPU.
WARP_WIDTH = 32


def gauss_seidel_levels(matrix) -> np.ndarray:
    """Wavefront level of every row under forward Gauss-Seidel.

    Rows in the same level are mutually independent and can run in
    parallel; levels must run in order.
    """
    csr = to_csr(matrix)
    n = csr.shape[0]
    levels = np.zeros(n, dtype=np.int64)
    for j in range(n):
        cols, _vals = csr.row(j)
        lower = cols[cols < j]
        if lower.size:
            levels[j] = int(levels[lower].max()) + 1
    return levels


def greedy_coloring(matrix) -> np.ndarray:
    """Greedy distance-1 colouring of the symmetrised sparsity pattern."""
    csr = to_csr(matrix)
    n = csr.shape[0]
    # Symmetrise adjacency for colouring purposes.
    coo = csr.to_coo()
    sym = COOMatrix(
        (n, n),
        np.concatenate([coo.rows, coo.cols]),
        np.concatenate([coo.cols, coo.rows]),
        np.concatenate([np.ones(coo.nnz), np.ones(coo.nnz)]),
    )
    sym_csr = to_csr(sym)
    colors = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        cols, _ = sym_csr.row(v)
        neighbour_colors = set(int(colors[c]) for c in cols
                               if c != v and colors[c] >= 0)
        color = 0
        while color in neighbour_colors:
            color += 1
        colors[v] = color
    return colors


def level_histogram(levels: np.ndarray) -> Dict[int, int]:
    """Rows per level."""
    uniq, counts = np.unique(levels, return_counts=True)
    return {int(u): int(c) for u, c in zip(uniq, counts)}


def gpu_sequential_fraction(matrix,
                            warp_width: int = WARP_WIDTH
                            ) -> Tuple[float, int]:
    """(sequential-operation fraction, number of levels) on the GPU.

    Operations of a row are its non-zeros.  A level of width ``w`` keeps
    ``min(1, w / warp_width)`` of the GPU's minimum parallel granularity
    busy; the rest of its operations serialise.  Highly diagonal matrices
    (chains of dependencies) approach 1.0; matrices with many mutually
    independent rows stay low — exactly the spread Figure 16 reports.
    """
    csr = to_csr(matrix)
    levels = gauss_seidel_levels(csr)
    row_ops = csr.row_nnz().astype(np.float64)
    total = row_ops.sum()
    if total == 0:
        return 0.0, 0
    n_levels = int(levels.max()) + 1 if levels.size else 0
    widths = np.bincount(levels, minlength=n_levels).astype(np.float64)
    level_ops = np.bincount(levels, weights=row_ops, minlength=n_levels)
    par_share = np.minimum(1.0, widths / float(warp_width))
    sequential = float((level_ops * (1.0 - par_share)).sum())
    return sequential / total, n_levels


def alrescha_sequential_fraction(matrix, omega: int = 8) -> float:
    """Share of operations left sequential after Algorithm 1.

    The GEMV entries (all non-diagonal blocks) are fully parallel; only
    the diagonal blocks' D-SymGS operations carry the dependency chain.
    The main diagonal itself is excluded: the Alrescha format stores it
    separately (§4.5) and it feeds the PE divide off the dot-product
    stream, so it contributes no sequential dot-product work.
    """
    coo = COOMatrix.from_scipy(matrix) if hasattr(matrix, "tocoo") \
        else COOMatrix.from_dense(matrix)
    bcsr = BCSRMatrix.from_coo(coo, omega)
    if bcsr.nnz == 0:
        return 0.0
    n = min(bcsr.shape)
    main_diag = int(np.count_nonzero(
        coo.vals[coo.rows == coo.cols]
    ))
    seq = max(0, bcsr.diagonal_block_nnz() - main_diag)
    total = max(1, bcsr.nnz - main_diag)
    return seq / total
