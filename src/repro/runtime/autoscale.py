"""Elastic pool capacity on the simulated clock.

ALRESCHA's premise (PAPER.md §4) is that reconfiguration is cheap
enough to chase the workload: the substrate re-programs in a few
cycles, so capacity can follow demand instead of being frozen at its
peak.  This module is that idea lifted to the serving layer — a pool's
*device count* becomes elastic, driven by the same seeded, heap-evented
discrete clock everything else runs on.

The :class:`Autoscaler` samples two signals at a fixed cadence
(``SCALE_EVAL`` events): queue depth per healthy device, and each
device's rolling :class:`~repro.runtime.pool.HealthWindow` failure
rate.  Decisions are hysteretic — a cooldown in cycles separates
consecutive actions, and the scale-up and scale-down thresholds leave a
dead band between them — so a bursty arrival process does not make the
pool thrash.

* **Scale-up** — when load (waiting jobs per healthy device, counting
  capacity already on order) reaches ``queue_high``, a ``DEVICE_ADD``
  is scheduled ``provision_cycles`` later.  When the pool has a shared
  :class:`~repro.store.ArtifactStore`, the added device is *primed*:
  every workload its siblings have programmed is resolved through the
  store before the device takes traffic, so a warm store means the
  scale-up compiles nothing (the report's ``prime_hits`` counter and
  the store's ``conversions_compiled == 0`` prove it).
* **Scale-down** — when load falls to ``queue_low`` with nothing on
  order, the least-busy live device starts *draining*: it finishes its
  in-flight work, takes no new placements, and retires when its
  ``DEVICE_DRAIN`` event finds it idle.  Retired devices stay in
  ``pool.devices`` (heap event keys index that list) but never serve
  again.

Everything is deterministic: decisions read only simulated-clock state,
so one seed + trace + knob set reproduces the identical scale history,
report and trace — the property the autoscale determinism tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.runtime.metrics import AutoscaleReport

#: Default hysteresis cooldown between scale actions, in cycles —
#: a few typical service times, so one burst triggers one action.
DEFAULT_COOLDOWN_CYCLES = 24_000.0
#: Default cadence of SCALE_EVAL sampling.
DEFAULT_EVAL_INTERVAL = 4_000.0
#: Default provisioning delay between a scale-up decision and the
#: DEVICE_ADD landing (boot + program time of a fresh device).
DEFAULT_PROVISION_CYCLES = 2_000.0
#: Default load thresholds (waiting jobs per healthy device).  The gap
#: between them is the hysteresis dead band.
DEFAULT_QUEUE_HIGH = 4.0
DEFAULT_QUEUE_LOW = 0.5
#: A device whose rolling-window failure rate reaches this is not
#: counted as healthy capacity when sizing the pool.
DEFAULT_FAILURE_RATE_HIGH = 0.5


@dataclass(frozen=True)
class AutoscaleConfig:
    """Knobs of the elastic-capacity policy (all cycles simulated)."""

    #: Inclusive device-count bounds the pool scales within.
    min_devices: int = 1
    max_devices: int = 8
    #: Minimum cycles between two scale actions (hysteresis).
    cooldown_cycles: float = DEFAULT_COOLDOWN_CYCLES
    #: Cadence of the SCALE_EVAL sampling events.
    eval_interval_cycles: float = DEFAULT_EVAL_INTERVAL
    #: Delay between a scale-up decision and its DEVICE_ADD landing.
    provision_cycles: float = DEFAULT_PROVISION_CYCLES
    #: Scale up when waiting jobs per healthy device reach this.
    queue_high: float = DEFAULT_QUEUE_HIGH
    #: Scale down when waiting jobs per healthy device fall to this.
    queue_low: float = DEFAULT_QUEUE_LOW
    #: Window failure rate at which a device stops counting as healthy
    #: capacity for sizing purposes.
    failure_rate_high: float = DEFAULT_FAILURE_RATE_HIGH

    def __post_init__(self) -> None:
        if self.min_devices < 1:
            raise ConfigError(
                f"autoscale min_devices must be >= 1, got "
                f"{self.min_devices}")
        if self.max_devices < self.min_devices:
            raise ConfigError(
                f"autoscale max_devices ({self.max_devices}) must be "
                f">= min_devices ({self.min_devices})")
        if self.cooldown_cycles < 0:
            raise ConfigError(
                f"autoscale cooldown_cycles must be >= 0, got "
                f"{self.cooldown_cycles}")
        if self.eval_interval_cycles <= 0:
            raise ConfigError(
                f"autoscale eval_interval_cycles must be positive, "
                f"got {self.eval_interval_cycles}")
        if self.provision_cycles < 0:
            raise ConfigError(
                f"autoscale provision_cycles must be >= 0, got "
                f"{self.provision_cycles}")
        if self.queue_high <= 0:
            raise ConfigError(
                f"autoscale queue_high must be positive, got "
                f"{self.queue_high}")
        if not 0.0 <= self.queue_low < self.queue_high:
            raise ConfigError(
                f"autoscale queue_low ({self.queue_low}) must be in "
                f"[0, queue_high={self.queue_high})")
        if not 0.0 < self.failure_rate_high <= 1.0:
            raise ConfigError(
                f"autoscale failure_rate_high must be in (0, 1], got "
                f"{self.failure_rate_high}")

    @classmethod
    def parse(cls, spec: str) -> "AutoscaleConfig":
        """Build a config from the CLI's ``MIN:MAX[:COOLDOWN]`` syntax.

        Malformed specs raise :class:`~repro.errors.ConfigError`
        naming the offending token, mirroring ``--chaos``'s parser —
        never a bare ``ValueError`` traceback.
        """
        if not isinstance(spec, str) or not spec.strip():
            raise ConfigError(
                "--autoscale expects MIN:MAX[:COOLDOWN], got empty "
                "spec")
        parts = spec.split(":")
        if not 2 <= len(parts) <= 3:
            raise ConfigError(
                f"--autoscale expects MIN:MAX[:COOLDOWN]; {spec!r} "
                f"has {len(parts)} ':'-separated fields")
        try:
            lo = int(parts[0])
        except ValueError:
            raise ConfigError(
                f"--autoscale: min {parts[0]!r} in {spec!r} is not an "
                f"integer") from None
        try:
            hi = int(parts[1])
        except ValueError:
            raise ConfigError(
                f"--autoscale: max {parts[1]!r} in {spec!r} is not an "
                f"integer") from None
        kwargs = {}
        if len(parts) == 3 and parts[2]:
            try:
                kwargs["cooldown_cycles"] = float(parts[2])
            except ValueError:
                raise ConfigError(
                    f"--autoscale: cooldown {parts[2]!r} in {spec!r} "
                    f"is not a number") from None
        return cls(min_devices=lo, max_devices=hi, **kwargs)


class Autoscaler:
    """Per-pool elastic-capacity state machine.

    Owned by one :class:`~repro.runtime.scheduler.Scheduler`; decisions
    are pure functions of pool state at the eval cycle, so the scale
    history is reproducible from seed + trace + knobs.
    """

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        self.evals = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.devices_added = 0
        self.devices_retired = 0
        self.prime_hits = 0
        #: Scale-ups decided but not yet landed (DEVICE_ADD in flight).
        self.pending_adds = 0
        self.last_action_cycle = -float("inf")
        self.devices_peak = 0
        self.devices_final = 0
        # Capacity integral: live devices × cycles, accumulated at
        # every capacity change and closed out by finalize().
        self._capacity = 0
        self._last_mark = 0.0
        self._device_cycles = 0.0

    # ------------------------------------------------------------------
    def note_capacity(self, now: float, delta: int) -> None:
        """Advance the capacity integral and apply a live-count change."""
        self._device_cycles += self._capacity * (now - self._last_mark)
        self._last_mark = now
        self._capacity += delta
        self.devices_peak = max(self.devices_peak, self._capacity)

    def planned(self) -> int:
        """Live capacity counting adds already on order."""
        return self._capacity + self.pending_adds

    # ------------------------------------------------------------------
    def decide(self, now: float, queue_len: int, pool) -> str:
        """One SCALE_EVAL sample: returns ``"up"``, ``"down"`` or ``""``.

        Reads only simulated-clock state: the waiting-queue length and
        each live device's rolling-window failure rate.  The caller
        (the scheduler) applies the decision — this method never
        mutates pool state beyond the eval counter.
        """
        cfg = self.config
        self.evals += 1
        live = [d for d in pool.devices
                if not d.retired and not d.draining]
        healthy = sum(1 for d in live
                      if d.health.failure_rate < cfg.failure_rate_high)
        load = queue_len / max(1, healthy + self.pending_adds)
        if now - self.last_action_cycle < cfg.cooldown_cycles:
            return ""
        if self.planned() < cfg.max_devices and (
                (healthy == 0 and queue_len > 0)
                or load >= cfg.queue_high):
            return "up"
        if (self.planned() > cfg.min_devices
                and self.pending_adds == 0
                and load <= cfg.queue_low):
            return "down"
        return ""

    # ------------------------------------------------------------------
    def finalize(self, makespan: float) -> AutoscaleReport:
        """Close the capacity integral and fold state into a report."""
        self._device_cycles += self._capacity * max(
            0.0, makespan - self._last_mark)
        self._last_mark = max(self._last_mark, makespan)
        self.devices_final = self._capacity
        return AutoscaleReport(
            min_devices=self.config.min_devices,
            max_devices=self.config.max_devices,
            evals=self.evals,
            scale_ups=self.scale_ups,
            scale_downs=self.scale_downs,
            devices_added=self.devices_added,
            devices_retired=self.devices_retired,
            devices_peak=self.devices_peak,
            devices_final=self.devices_final,
            device_cycles_provisioned=self._device_cycles,
            prime_hits=self.prime_hits,
        )
