"""Device pool: health tracking and circuit breaking per device.

A :class:`DevicePool` replicates the single-accelerator substrate into
``n_devices`` independent :class:`Device` instances.  Each device owns

* its own :class:`~repro.sim.faults.FaultModel`, seeded via
  :meth:`~repro.sim.faults.FaultModel.spawn` so fault histories are
  independent yet reproducible from one pool seed;
* a cache of programmed accelerators keyed by ``(dataset, scale,
  kernel)`` — programming is a one-time cost per device, as on real
  hardware where the image stays resident;
* a :class:`HealthWindow` of recent job outcomes and a
  :class:`CircuitBreaker` driven by it.

The breaker is the classic closed → open → half-open machine, with one
twist: its cooldown is charged in *simulated cycles* against the pool's
scheduler clock, never wall time, so breaker behaviour is deterministic
per seed and unit-testable without sleeping.

The pool also owns the *golden* side: a fault-free accelerator per
workload for nominal service-time estimates, and the reference-kernel
execution used for graceful degradation.  Degraded answers are computed
by the same golden kernels the test suite validates against, so a
``DEGRADED`` result is numerically correct by construction.
"""

from __future__ import annotations

import random
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core import Alrescha, AlreschaConfig, KernelType
from repro.errors import ConfigError, CorruptionError, FaultError
from repro.runtime.jobs import JOB_KERNELS, Job
from repro.sim.chaos import ChaosModel
from repro.sim.faults import FaultModel

#: Breaker defaults: open once >= half the last 8 jobs failed (with at
#: least 4 observed), cool down for 8k simulated cycles (a handful of
#: job service times), then probe.
DEFAULT_HEALTH_WINDOW = 8
DEFAULT_FAILURE_THRESHOLD = 0.5
DEFAULT_MIN_SAMPLES = 4
DEFAULT_COOLDOWN_CYCLES = 8_000.0

#: Cycle cost multiplier of the software reference path relative to the
#: accelerator's nominal cycles (the degradation latency model).
DEFAULT_REFERENCE_SLOWDOWN = 8.0

#: Bound on the pool's operand LRU cache, in vectors.  Retried and
#: batched attempts of one job land within a handful of dispatches, so
#: a small bound keeps the hit rate while capping memory on
#: million-job traces.
DEFAULT_OPERAND_CACHE = 1024

#: Execution modes of a pool.  ``simulate`` runs the real accelerator
#: per attempt (cycle- and value-exact).  ``model`` prices attempts
#: from the golden nominal-cycle caches without running kernels or
#: materialising answers (``values=None``, so results carry
#: ``value_crc=0``) — the scheduler sees the same event stream at a
#: tiny fraction of the cost, which is what the trace-scale scheduler
#: load benchmarks need.  Faults in ``model`` mode are a seeded
#: per-attempt Bernoulli draw at the device's fault-model rate.
EXECUTION_MODES = ("simulate", "model")

#: Kernels whose attempts may be fused into one multi-RHS dispatch.
#: Single streaming passes amortize their payload stream across
#: operands; ``pcg`` iterates internally with data-dependent control
#: flow, so it always dispatches solo.
BATCHABLE_KERNELS = ("spmv", "symgs")


def value_crc(values: np.ndarray) -> int:
    """CRC32 of an answer vector's exact float64 bytes."""
    return zlib.crc32(
        np.ascontiguousarray(values, dtype=np.float64).tobytes())


class HealthWindow:
    """Rolling window of job outcomes on one device."""

    def __init__(self, size: int = DEFAULT_HEALTH_WINDOW) -> None:
        if size <= 0:
            raise ConfigError(f"health window must be positive, got {size}")
        self._window: Deque[bool] = deque(maxlen=size)
        self.successes = 0
        self.failures = 0

    def record(self, ok: bool) -> None:
        self._window.append(ok)
        self.tally(ok)

    def tally(self, ok: bool) -> None:
        """Bump the lifetime totals without touching the rolling window.

        For outcomes that must not influence the trip decision — e.g. a
        verdict landing while the breaker is open (no dispatched
        traffic should exist then, so a stray one must not pre-poison
        the fresh-start window the next probe inherits).
        """
        if ok:
            self.successes += 1
        else:
            self.failures += 1

    @property
    def samples(self) -> int:
        return len(self._window)

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the rolling window (0.0 when empty)."""
        if not self._window:
            return 0.0
        return sum(1 for ok in self._window if not ok) / len(self._window)

    def reset(self) -> None:
        """Forget the window (a recovered device starts clean)."""
        self._window.clear()


class CircuitBreaker:
    """Closed → open → half-open breaker on simulated cycles.

    * **closed** — traffic flows; every outcome feeds the health window.
      When the window holds ``min_samples`` or more outcomes and its
      failure rate reaches ``failure_threshold``, the breaker opens.
    * **open** — the device takes no traffic until ``cooldown_cycles``
      of simulated time have elapsed since it opened.
    * **half-open** — exactly one probe job is admitted.  Success closes
      the breaker (window reset); failure re-opens it for a fresh
      cooldown.
    """

    def __init__(self, health: HealthWindow,
                 failure_threshold: float = DEFAULT_FAILURE_THRESHOLD,
                 min_samples: int = DEFAULT_MIN_SAMPLES,
                 cooldown_cycles: float = DEFAULT_COOLDOWN_CYCLES) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigError("failure_threshold must be in (0, 1], got "
                              f"{failure_threshold}")
        if cooldown_cycles <= 0:
            raise ConfigError("cooldown_cycles must be positive, got "
                              f"{cooldown_cycles}")
        if min_samples < 1:
            # Used to be silently clamped to 1, which hid a
            # misconfiguration: a breaker that trips on a single
            # failure is almost never what min_samples=0 meant.
            raise ConfigError(
                f"min_samples must be >= 1, got {min_samples}")
        self.health = health
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown_cycles = cooldown_cycles
        self.state = "closed"
        self.opened_at = 0.0
        self.trips = 0
        self._probe_in_flight = False
        #: Force-open hold (device crashed): while set, the breaker
        #: refuses traffic regardless of elapsed cooldown — only
        #: :meth:`end_quarantine` (device recovery) releases it.
        self.quarantined = False

    # ------------------------------------------------------------------
    def allows(self, now: float) -> bool:
        """Whether a job may be dispatched to this device at ``now``.

        Pure: an open breaker past its cooldown *reports* the probe
        slot as available, but the open → half-open transition happens
        only in :meth:`on_dispatch` — metric and introspection queries
        (e.g. :meth:`DevicePool.open_breakers`) never change state.
        """
        if self.quarantined:
            return False
        if self.state == "closed":
            return True
        if self.state == "half_open":
            return not self._probe_in_flight
        return now >= self.opened_at + self.cooldown_cycles

    @property
    def reopen_at(self) -> Optional[float]:
        """Cycle at which an open breaker becomes probeable (else None).

        ``None`` while quarantined: a crashed device's reopen cycle is
        its recovery, which only :meth:`end_quarantine` knows.
        """
        if self.state != "open" or self.quarantined:
            return None
        return self.opened_at + self.cooldown_cycles

    def force_open(self, now: float) -> None:
        """Quarantine: hold the breaker open until :meth:`end_quarantine`.

        Used when the *device* is known down (lifecycle crash) rather
        than inferred sick from outcomes: no cooldown clock applies and
        no probe is admitted while the hold lasts.  Not counted as a
        trip — crashes are tallied separately.
        """
        self.state = "open"
        self.opened_at = now
        self._probe_in_flight = False
        self.quarantined = True

    def end_quarantine(self, now: float) -> None:
        """Release a quarantine hold: the device recovered at ``now``.

        The breaker stays *open* but immediately probeable — the next
        dispatch transitions it half-open and the probe's outcome
        decides recovery, exactly like a cooldown that elapsed at the
        recovery cycle.
        """
        if not self.quarantined:
            return
        self.quarantined = False
        self.state = "open"
        self.opened_at = now - self.cooldown_cycles

    def on_dispatch(self, now: float) -> None:
        """A job was placed on the device at cycle ``now``.

        This is the explicit transition step :meth:`allows` only
        reports on: an open breaker past its cooldown becomes
        half-open here, and the dispatched job claims the single
        half-open probe slot.
        """
        if (self.state == "open"
                and now >= self.opened_at + self.cooldown_cycles):
            self.state = "half_open"
            self._probe_in_flight = False
        if self.state == "half_open":
            self._probe_in_flight = True

    def release_probe(self) -> None:
        """Free the half-open probe slot without recording an outcome.

        For dispatches that die before producing a device verdict — an
        unserviceable job raising before the accelerator runs says
        nothing about device health, but the probe slot it claimed must
        not stay occupied forever.
        """
        if self.state == "half_open":
            self._probe_in_flight = False

    def on_success(self) -> None:
        if self.state == "open":
            # An open breaker admits no traffic, so a verdict landing
            # now is a straggler (e.g. a quarantined device's voided
            # work resolving late).  Count it in the lifetime totals
            # but keep it out of the rolling window: the window must
            # reflect only outcomes of admitted dispatches, or the
            # fresh start a successful probe grants is pre-poisoned.
            self.health.tally(True)
            return
        self.health.record(True)
        if self.state == "half_open":
            # Probe succeeded: recovered. Start from a clean window so
            # pre-outage history cannot immediately re-trip.
            self.state = "closed"
            self._probe_in_flight = False
            self.health.reset()

    def on_failure(self, now: float) -> None:
        if self.state == "open":
            # Same straggler rule as on_success: lifetime totals only,
            # and never extend the cooldown — re-stamping opened_at
            # from a verdict no dispatch produced would push the probe
            # opportunity out indefinitely.
            self.health.tally(False)
            return
        self.health.record(False)
        if self.state == "half_open":
            self._trip(now)
            return
        if (self.state == "closed"
                and self.health.samples >= self.min_samples
                and self.health.failure_rate >= self.failure_threshold):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.opened_at = now
        self.trips += 1
        self._probe_in_flight = False


@dataclass
class Attempt:
    """Outcome of one accelerator attempt (never raises to callers)."""

    ok: bool
    #: Device-occupancy cycles of the attempt (service time, or wasted
    #: cycles of a failed attempt).
    cycles: float
    values: Optional[np.ndarray] = None
    error: str = ""
    #: DRAM traffic the attempt charged to the memory model (0 for a
    #: failed attempt).  For a batched attempt this is the whole
    #: batch's traffic — the payload stream appears once, not once per
    #: operand — which is what the scheduler's stream-savings
    #: accounting reads off.
    dram_bytes: float = 0.0


class Device:
    """One simulated accelerator with its own fault stream and breaker."""

    def __init__(self, device_id: int, fault_model: Optional[FaultModel],
                 health_window: int = DEFAULT_HEALTH_WINDOW,
                 failure_threshold: float = DEFAULT_FAILURE_THRESHOLD,
                 min_samples: int = DEFAULT_MIN_SAMPLES,
                 cooldown_cycles: float = DEFAULT_COOLDOWN_CYCLES) -> None:
        self.device_id = device_id
        self.fault_model = fault_model
        self.health = HealthWindow(health_window)
        self.breaker = CircuitBreaker(
            self.health, failure_threshold=failure_threshold,
            min_samples=min_samples, cooldown_cycles=cooldown_cycles)
        #: Simulated cycle at which the device next becomes idle.
        self.busy_until = 0.0
        self.busy_cycles = 0.0
        self.jobs_run = 0
        # ---- lifecycle state (driven by the scheduler's chaos events)
        #: False while crashed (between DEVICE_CRASH and DEVICE_RECOVER).
        self.up = True
        #: Cycle a current hang clears (0.0 when not hanging).
        self.hang_until = 0.0
        #: Cycle the current crash began (meaningful while ``not up``).
        self.down_since = 0.0
        #: Total cycles spent crashed or hung, for :class:`DeviceStats`.
        self.downtime_cycles = 0.0
        self.crashes = 0
        self.hangs = 0
        self.recoveries = 0
        #: Per-device :class:`~repro.sim.chaos.ChaosModel` sibling
        #: (None when the pool has no chaos configured).
        self.chaos = None
        # ---- elastic-capacity state (driven by the autoscaler)
        #: True once a scale-down picked this device: it finishes its
        #: in-flight work but takes no new placements.
        self.draining = False
        #: True once the drain completed; the device slot stays in
        #: ``pool.devices`` (event keys index it) but never serves.
        self.retired = False
        #: Cycle the drain decision landed (the begin of the trace's
        #: ``drain`` span; meaningful while draining/retired).
        self.drain_began = 0.0
        #: Cycle the autoscaler provisioned this device (0.0 for
        #: devices present since construction).
        self.added_at = 0.0
        #: The live DEVICE_DRAIN event for this device, so a re-armed
        #: drain invalidates the superseded one (lazy deletion).
        self.drain_event = None
        #: The scheduler's in-flight record while an attempt is being
        #: deferred to its DISPATCH_COMPLETE (lifecycle mode only).
        self.inflight = None
        #: Dispatch cycle of the first attempt (None until one runs) —
        #: the begin of the device's trace summary span.
        self.first_dispatch: Optional[float] = None
        self._executors: Dict[Tuple[str, float, str], object] = {}
        #: Monotonic id of batched dispatches on this device; tags the
        #: member job spans of one fused attempt in the trace.
        self._batch_seq = 0
        #: Seeded Bernoulli stream for ``model``-mode fault draws
        #: (lazily created; independent of the real fault model's draw
        #: sequence but derived from the same device seed).
        self._model_rng: Optional[random.Random] = None

    # ------------------------------------------------------------------
    def available(self, now: float) -> bool:
        """Whether the device may accept a dispatch at ``now``.

        Combines the lifecycle state the chaos events drive (crashed or
        mid-hang devices refuse) with the elastic-capacity state the
        autoscaler drives (draining and retired devices take no new
        placements) and the breaker's verdict.  Busyness is
        deliberately *not* part of this: the scheduler separates
        "who is free" from "who is healthy".
        """
        return (self.up and not self.retired and not self.draining
                and now >= self.hang_until
                and self.breaker.allows(now))

    # ------------------------------------------------------------------
    def _executor(self, job: Job, pool: "DevicePool"):
        key = (job.dataset, job.scale, job.kernel)
        if key not in self._executors:
            if self.device_id >= 0:
                pool.note_workload(key)
            matrix = pool.matrix(job.dataset, job.scale)
            config = AlreschaConfig(fault_model=self.fault_model,
                                    artifact_store=pool.artifact_store)
            source = {"dataset": job.dataset, "scale": job.scale}
            if job.kernel == "spmv":
                exe = Alrescha.from_matrix(KernelType.SPMV, matrix,
                                           config=config, source=source)
            elif job.kernel == "symgs":
                exe = Alrescha.from_matrix(KernelType.SYMGS, matrix,
                                           config=config, source=source)
            elif job.kernel == "pcg":
                from repro.solvers import AcceleratorBackend
                exe = AcceleratorBackend(matrix, config=config,
                                         source=source)
            else:
                raise ConfigError(
                    f"unknown job kernel {job.kernel!r}; "
                    f"known: {JOB_KERNELS}")
            self._executors[key] = exe
        return self._executors[key]

    def _model_fault(self, pool: "DevicePool") -> bool:
        """``model``-mode fault draw: seeded Bernoulli at the device's
        fault-model rate (no fault model ⇒ never faults)."""
        fm = self.fault_model
        if fm is None or fm.rate <= 0.0:
            return False
        if self._model_rng is None:
            self._model_rng = random.Random(fm.seed)
        return self._model_rng.random() < fm.rate

    def _attempt_model(self, job: Job, pool: "DevicePool",
                       now: float, record: bool = True) -> Attempt:
        """Price one attempt from the golden caches without running it.

        The scheduler-visible contract matches :meth:`attempt` — same
        occupancy accounting, same Attempt shape — except ``values`` is
        None (no answer is materialised) and a modelled fault charges
        nominal cycles plus one backoff-budget's worth of retries.
        """
        self.jobs_run += 1
        if self.first_dispatch is None:
            self.first_dispatch = now
        cycles = pool.nominal_cycles(job)
        if self._model_fault(pool):
            fm = self.fault_model
            wasted = cycles + fm.backoff_cycles * (2 ** fm.max_retries - 1)
            att = Attempt(ok=False, cycles=wasted,
                          error="FaultError: modelled stream fault")
        else:
            att = Attempt(ok=True, cycles=cycles,
                          dram_bytes=pool.nominal_dram_bytes(job))
        if record:
            self._record(job, pool, now, att)
        return att

    def _attempt_model_batch(self, jobs: "List[Job]", pool: "DevicePool",
                             now: float, record: bool = True) -> Attempt:
        """``model``-mode analogue of :meth:`attempt_batch`."""
        lead = jobs[0]
        self.jobs_run += len(jobs)
        if self.first_dispatch is None:
            self.first_dispatch = now
        cycles = pool.nominal_batch_cycles(lead, len(jobs))
        if self._model_fault(pool):
            fm = self.fault_model
            wasted = cycles + fm.backoff_cycles * (2 ** fm.max_retries - 1)
            att = Attempt(ok=False, cycles=wasted,
                          error="FaultError: modelled stream fault")
        else:
            # One payload stream for the whole batch: charge the solo
            # payload once plus nothing per extra operand (the per-RHS
            # vector traffic is negligible next to the payload).
            att = Attempt(ok=True, cycles=cycles,
                          dram_bytes=pool.nominal_dram_bytes(lead))
        if record:
            self._record_batch(jobs, pool, now, att)
        return att

    def attempt(self, job: Job, pool: "DevicePool",
                now: float = 0.0, record: bool = True) -> Attempt:
        """Run one accelerator attempt; faults become a failed Attempt.

        A failed attempt still occupied the device: it is charged the
        workload's nominal cycles plus every retry/backoff cycle the
        fault model logged during the attempt.  ``now`` is the dispatch
        cycle on the scheduler clock, used only to place the attempt's
        trace span — it never changes the outcome.

        In a ``model``-execution pool the attempt is priced from the
        golden caches instead of running the kernel (the golden pricing
        device itself always simulates).

        ``record=False`` suppresses the dispatch-time trace span; the
        scheduler's lifecycle mode uses it and records the span itself
        once the attempt's true extent is known (a hang may stretch it,
        a crash or hedge cancellation may cut it short).
        """
        if pool.execution == "model" and self.device_id >= 0:
            return self._attempt_model(job, pool, now, record=record)
        exe = self._executor(job, pool)
        operand = pool.operand(job)
        fm = self.fault_model
        retry_before = fm.total_retry_cycles if fm is not None else 0.0
        self.jobs_run += 1
        if self.first_dispatch is None:
            self.first_dispatch = now
        try:
            if job.kernel == "spmv":
                values, report = exe.run_spmv(operand)
                cycles = report.cycles
            elif job.kernel == "symgs":
                values, report = exe.run_symgs_sweep(
                    operand, np.zeros(operand.size))
                cycles = report.cycles
            else:  # pcg
                from repro.solvers import pcg
                exe.reset_reports()
                result = pcg(exe, operand, tol=1e-6, max_iter=25,
                             checkpoint_interval=5, max_restarts=2)
                values = result.x
                report = result.report
                cycles = report.cycles
            att = Attempt(ok=True, cycles=cycles, values=values,
                          dram_bytes=report.counters.get("dram_bytes"))
        except (FaultError, CorruptionError) as exc:
            retry_after = fm.total_retry_cycles if fm is not None else 0.0
            wasted = pool.nominal_cycles(job) + (retry_after - retry_before)
            att = Attempt(ok=False, cycles=wasted,
                          error=f"{type(exc).__name__}: {exc}")
        if record:
            self._record(job, pool, now, att)
        return att

    def attempt_batch(self, jobs: "List[Job]", pool: "DevicePool",
                      now: float = 0.0, record: bool = True) -> Attempt:
        """Run one fused multi-RHS attempt over same-workload jobs.

        The operand vectors stack into one ``(n, k)`` panel and the
        accelerator's batched path streams the programmed payload
        *once* for all of them.  ``values`` holds one answer column per
        job, in job order.  A fault fails the whole batch — one shared
        payload stream means one shared fault exposure — and the failed
        attempt is charged the golden batch service time plus the retry
        cycles the fault model logged.  ``record=False`` defers the
        trace spans to the caller, as in :meth:`attempt`.
        """
        if pool.execution == "model" and self.device_id >= 0:
            return self._attempt_model_batch(jobs, pool, now,
                                             record=record)
        lead = jobs[0]
        exe = self._executor(lead, pool)
        operands = np.stack([pool.operand(j) for j in jobs], axis=1)
        fm = self.fault_model
        retry_before = fm.total_retry_cycles if fm is not None else 0.0
        self.jobs_run += len(jobs)
        if self.first_dispatch is None:
            self.first_dispatch = now
        try:
            if lead.kernel == "spmv":
                values, report = exe.run_spmv_batch(operands)
            elif lead.kernel == "symgs":
                values, report = exe.run_symgs_batch(
                    operands, np.zeros_like(operands))
            else:
                raise ConfigError(
                    f"kernel {lead.kernel!r} does not support batched "
                    f"dispatch; batchable: {BATCHABLE_KERNELS}")
            att = Attempt(ok=True, cycles=report.cycles, values=values,
                          dram_bytes=report.counters.get("dram_bytes"))
        except (FaultError, CorruptionError) as exc:
            retry_after = fm.total_retry_cycles if fm is not None else 0.0
            wasted = (pool.nominal_batch_cycles(lead, len(jobs))
                      + (retry_after - retry_before))
            att = Attempt(ok=False, cycles=wasted,
                          error=f"{type(exc).__name__}: {exc}")
        if record:
            self._record_batch(jobs, pool, now, att)
        return att

    def record_flight(self, jobs: "List[Job]", pool: "DevicePool",
                      begin: float, end: float, ok: bool,
                      error: str = "", cat: str = "job") -> None:
        """Record a deferred attempt's spans at its *true* interval.

        Lifecycle mode dispatches with ``record=False`` and calls this
        when the attempt's fate is known: ``cat="job"`` for attempts
        that ran to completion (hang-stretched ends included),
        ``"voided"`` for work a crash destroyed, ``"hedge_cancelled"``
        for a speculative duplicate that lost the race.  Only ``"job"``
        spans participate in the device-exclusivity invariant, so the
        truncated non-job categories may share their interval freely.
        """
        tracer = pool.tracer
        if tracer is None or self.device_id < 0 or end <= begin:
            return
        track = pool.track(f"device{self.device_id}")
        bid = None
        if len(jobs) > 1 and cat == "job":
            bid = self._batch_seq
            self._batch_seq += 1
            tracer.add(f"batch#{self.device_id}.{bid}", "batch",
                       begin, end, track,
                       args={"jobs": float(len(jobs)),
                             "kernel": jobs[0].kernel, "ok": ok})
        for job in jobs:
            args: Dict[str, object] = {"ok": ok, "dataset": job.dataset}
            if bid is not None:
                args["batch"] = float(bid)
                args["batch_size"] = float(len(jobs))
            if error:
                args["error"] = error
            tracer.add(f"{job.kernel}#{job.job_id}", cat, begin, end,
                       track, args=args)

    def _record(self, job: Job, pool: "DevicePool", now: float,
                att: Attempt) -> None:
        """Job span on this device's trace track.

        The golden pricing device (id -1) stays untraced: its runs are
        catalogue lookups, not scheduled work.
        """
        tracer = pool.tracer
        if tracer is None or self.device_id < 0:
            return
        args: Dict[str, object] = {"ok": att.ok, "dataset": job.dataset}
        if att.error:
            args["error"] = att.error
        tracer.add(f"{job.kernel}#{job.job_id}", "job", now,
                   now + att.cycles,
                   pool.track(f"device{self.device_id}"), args=args)

    def _record_batch(self, jobs: "List[Job]", pool: "DevicePool",
                      now: float, att: Attempt) -> None:
        """One umbrella ``batch`` span plus the member ``job`` spans.

        Every member occupies the device for the whole fused attempt,
        so the job spans share one interval; the ``batch`` arg ties
        them together, which is what lets the device-exclusivity
        invariant accept the deliberate overlap.
        """
        tracer = pool.tracer
        if tracer is None or self.device_id < 0:
            return
        bid = self._batch_seq
        self._batch_seq += 1
        end = now + att.cycles
        track = pool.track(f"device{self.device_id}")
        tracer.add(f"batch#{self.device_id}.{bid}", "batch", now, end,
                   track, args={"jobs": float(len(jobs)),
                                "kernel": jobs[0].kernel, "ok": att.ok})
        for job in jobs:
            args: Dict[str, object] = {
                "ok": att.ok, "dataset": job.dataset,
                "batch": float(bid), "batch_size": float(len(jobs))}
            if att.error:
                args["error"] = att.error
            tracer.add(f"{job.kernel}#{job.job_id}", "job", now, end,
                       track, args=args)


class DevicePool:
    """N independently-seeded devices plus the shared golden side."""

    def __init__(self, n_devices: int, fault_rate: float = 0.0,
                 seed: int = 0,
                 health_window: int = DEFAULT_HEALTH_WINDOW,
                 failure_threshold: float = DEFAULT_FAILURE_THRESHOLD,
                 min_samples: int = DEFAULT_MIN_SAMPLES,
                 cooldown_cycles: float = DEFAULT_COOLDOWN_CYCLES,
                 tracer=None, execution: str = "simulate",
                 operand_cache: int = DEFAULT_OPERAND_CACHE,
                 chaos: Optional["ChaosModel"] = None,
                 track_prefix: str = "",
                 artifact_store=None) -> None:
        if n_devices <= 0:
            raise ConfigError(
                f"device pool needs at least one device, got {n_devices}")
        if execution not in EXECUTION_MODES:
            raise ConfigError(
                f"unknown execution mode {execution!r}; "
                f"known: {EXECUTION_MODES}")
        if operand_cache <= 0:
            raise ConfigError(
                f"operand cache bound must be positive, got "
                f"{operand_cache}")
        #: ``simulate`` (real kernels) or ``model`` (golden-cache
        #: pricing for scheduler load tests) — see
        #: :data:`EXECUTION_MODES`.
        self.execution = execution
        #: Optional :class:`~repro.observe.tracer.Tracer` shared by the
        #: scheduler: job spans land on ``device<N>`` tracks, degraded
        #: fallbacks on ``reference``, shed jobs on ``scheduler``.
        self.tracer = tracer
        #: Prefix applied to every trace track this pool (and its
        #: scheduler) emits — ``"p2."`` turns ``device0`` into
        #: ``p2.device0``.  Empty for single-pool serving, so solo
        #: traces stay byte-identical; the fleet sets one per pool so
        #: N pools can share one tracer without track collisions.
        self.track_prefix = track_prefix
        base = (FaultModel(rate=fault_rate, seed=seed)
                if fault_rate > 0.0 else None)
        # Retained so an autoscaled :meth:`add_device` constructs device
        # N exactly as a pool built with N+1 devices would have.
        self._fault_base = base
        self._device_kwargs = dict(
            health_window=health_window,
            failure_threshold=failure_threshold,
            min_samples=min_samples,
            cooldown_cycles=cooldown_cycles)
        self.devices = [
            Device(i,
                   base.spawn(i) if base is not None else None,
                   **self._device_kwargs)
            for i in range(n_devices)
        ]
        #: The base lifecycle chaos model (None when not configured);
        #: each device carries an independently-seeded spawn.
        self.chaos = chaos if chaos is not None and chaos.rate > 0.0 \
            else None
        if self.chaos is not None:
            for i, device in enumerate(self.devices):
                device.chaos = self.chaos.spawn(i)
        self._nominal: Dict[Tuple[str, float, str], float] = {}
        self._nominal_bytes: Dict[Tuple[str, float, str], float] = {}
        self._nominal_batch: Dict[Tuple[str, float, str, int], float] = {}
        #: Bounded LRU of seeded operand vectors, keyed like the
        #: nominal caches plus the job seed — see :meth:`operand`.
        self._operands: "OrderedDict[Tuple[str, float, int], np.ndarray]" \
            = OrderedDict()
        self._operand_cache = operand_cache
        #: Optional :class:`~repro.store.ArtifactStore` shared by every
        #: device executor (and the golden device): programming-phase
        #: state resolves through it, so a primed store serves warm
        #: starts with zero compilations.  None is the storeless path,
        #: bit-identical to pre-store behaviour.
        self.artifact_store = artifact_store
        #: ``(dataset, scale, kernel)`` workloads a real device has
        #: programmed, in first-seen order — the priming list a
        #: store-backed scale-up warms a fresh device from.
        self.workloads_seen: "OrderedDict[Tuple[str, float, str], None]" \
            = OrderedDict()
        self._golden = Device(-1, None)

    def __len__(self) -> int:
        return len(self.devices)

    def note_workload(self, key: Tuple[str, float, str]) -> None:
        """Record that a real device programmed ``key`` (idempotent)."""
        self.workloads_seen.setdefault(key)

    def add_device(self, now: float) -> Device:
        """Provision one more device, constructed as at pool build time.

        The new device gets the next sequential id, a fault model
        spawned from the same base as its siblings and, when chaos is
        configured, its own independently-seeded chaos sibling — so a
        device autoscaled in at cycle ``now`` draws the same fault and
        incident streams a construction-time device with that id would
        have.  Devices are never physically removed (heap event keys
        index ``pool.devices``); a drained device is ``retired`` in
        place instead.
        """
        device_id = len(self.devices)
        device = Device(
            device_id,
            (self._fault_base.spawn(device_id)
             if self._fault_base is not None else None),
            **self._device_kwargs)
        device.added_at = now
        if self.chaos is not None:
            device.chaos = self.chaos.spawn(device_id)
        self.devices.append(device)
        return device

    def track(self, name: str) -> str:
        """A trace track name under this pool's prefix."""
        return self.track_prefix + name

    # ------------------------------------------------------------------
    # Shared golden side
    # ------------------------------------------------------------------
    def matrix(self, dataset: str, scale: float):
        from repro.datasets import load_dataset
        return load_dataset(dataset, scale=scale).matrix

    def operand(self, job: Job) -> np.ndarray:
        """The job's seeded operand/right-hand-side vector (cached).

        The vector is a pure function of ``(dataset, scale, seed)``, so
        it is drawn once and served from a bounded LRU: a retried or
        batched attempt of the same job reuses the identical array
        instead of redrawing the full ``(n,)`` vector per attempt.
        Callers treat operands as read-only.
        """
        key = (job.dataset, job.scale, job.seed)
        cached = self._operands.get(key)
        if cached is not None:
            self._operands.move_to_end(key)
            return cached
        n = self.matrix(job.dataset, job.scale).shape[0]
        values = np.random.default_rng(job.seed).normal(size=n)
        # The cached array is shared by every retry/batch/hedge attempt
        # of the job; a single in-place write would corrupt all of
        # them, so writes raise instead of silently aliasing.
        values.flags.writeable = False
        self._operands[key] = values
        if len(self._operands) > self._operand_cache:
            self._operands.popitem(last=False)
        return values

    def nominal_cycles(self, job: Job) -> float:
        """Fault-free service cycles for the job's workload (cached).

        Cycle counts depend only on the programmed block structure,
        never on operand values, so one golden run prices every job of
        the same ``(dataset, scale, kernel)``.
        """
        key = (job.dataset, job.scale, job.kernel)
        if key not in self._nominal:
            att = self._golden.attempt(job, self)
            self._nominal[key] = att.cycles
            self._nominal_bytes[key] = att.dram_bytes
        return self._nominal[key]

    def nominal_dram_bytes(self, job: Job) -> float:
        """Fault-free DRAM traffic of one solo job attempt (cached).

        The baseline the scheduler's ``stream_bytes_saved`` accounting
        compares a fused batch against: ``k`` solo runs would each
        stream the programmed payload.
        """
        key = (job.dataset, job.scale, job.kernel)
        if key not in self._nominal_bytes:
            self.nominal_cycles(job)
        return self._nominal_bytes[key]

    def nominal_batch_cycles(self, job: Job, k: int) -> float:
        """Fault-free service cycles of a ``k``-wide fused batch.

        Priced by one golden batched run per ``(dataset, scale,
        kernel, k)`` and cached — like :meth:`nominal_cycles`, batch
        timing depends only on the programmed block structure and the
        width, never on operand values.  The scheduler uses this to
        check deadline slack before growing a batch.
        """
        if k <= 1:
            return self.nominal_cycles(job)
        key = (job.dataset, job.scale, job.kernel, k)
        if key not in self._nominal_batch:
            att = self._golden.attempt_batch([job] * k, self)
            self._nominal_batch[key] = att.cycles
        return self._nominal_batch[key]

    def reference_values(self, job: Job) -> np.ndarray:
        """The golden-kernel answer used for graceful degradation."""
        from repro.kernels import forward_sweep_vectorized
        from repro.kernels.spmv import to_csr
        from repro.solvers import ReferenceBackend, pcg

        matrix = self.matrix(job.dataset, job.scale)
        operand = self.operand(job)
        if job.kernel == "spmv":
            return to_csr(matrix).spmv(operand)
        if job.kernel == "symgs":
            csr = to_csr(matrix)
            return forward_sweep_vectorized(
                csr, operand, np.zeros(operand.size))
        if job.kernel == "pcg":
            result = pcg(ReferenceBackend(matrix), operand,
                         tol=1e-6, max_iter=25)
            return result.x
        raise ConfigError(
            f"unknown job kernel {job.kernel!r}; known: {JOB_KERNELS}")

    # ------------------------------------------------------------------
    # Pool-level health summary
    # ------------------------------------------------------------------
    @property
    def breaker_trips(self) -> int:
        return sum(d.breaker.trips for d in self.devices)

    def open_breakers(self, now: float) -> int:
        """Devices refusing traffic at ``now``."""
        return sum(1 for d in self.devices if not d.breaker.allows(now))

    def refusing(self, now: float) -> int:
        """Devices out of service at ``now``: crashed, breaker-closed,
        or withdrawn by the autoscaler (draining devices accept no new
        placements; retired ones never serve again).

        The total-outage degradation check in the scheduler.  A hanging
        device is *busy*, not out of service — its queued work will
        still run — so hangs do not count here; chaos- and
        autoscale-free this is exactly :meth:`open_breakers`.
        """
        return sum(1 for d in self.devices
                   if not d.up or d.retired or d.draining
                   or not d.breaker.allows(now))

    def untried_targets(self, tried) -> int:
        """Devices a retry could still be placed on: not yet tried and
        not withdrawn by the autoscaler.

        The scheduler's pool-exhaustion checks used to compare
        ``len(tried) >= len(pool)``; with elastic capacity the pool
        list also holds draining/retired slots a retry can never
        target, so exhaustion counts live candidates instead.  Without
        autoscaling every device is live and this reduces exactly to
        the old size comparison.
        """
        return sum(1 for d in self.devices
                   if d.device_id not in tried
                   and not d.retired and not d.draining)
