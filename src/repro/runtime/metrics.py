"""Pool-level metrics: counters and simulated-latency percentiles.

A :class:`PoolReport` is the serving analogue of a
:class:`~repro.core.report.SimReport`: one value object summarising a
whole workload trace — admission counts, terminal-status counts,
breaker trips, per-device statistics, and latency percentiles measured
in simulated cycles.  Every field is derived deterministically from the
job results (nearest-rank percentiles, no interpolation surprises), so
two runs of the same seeded trace compare equal field-for-field.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from fractions import Fraction
from typing import Dict, List, Sequence

from repro.errors import ConfigError
from repro.runtime.jobs import JobResult, JobStatus


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` must be in [0, 100] (:class:`~repro.errors.ConfigError`
    otherwise).  Returns 0.0 for an empty sequence.  The rank is
    ``ceil(q * n / 100)`` computed in exact rational arithmetic: a
    float product like ``64.4 * 250`` lands a hair above the true
    integer 161 and a float-only ceiling then overshoots the rank by
    one.  ``Fraction(str(q))`` reads the *decimal* value the caller
    wrote, not the binary float approximation stored for it.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigError(f"percentile q must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    rank = max(1, min(n, math.ceil(Fraction(str(q)) * n / 100)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class DeviceStats:
    """Per-device slice of a :class:`PoolReport`."""

    device_id: int
    jobs_run: int
    #: Lifetime failed attempts on the device (every failure ever
    #: recorded, not a rolling-window slice).
    failures_total: int
    #: Failure fraction over the breaker's rolling health window at the
    #: end of the run — the quantity the breaker actually trips on.
    window_failure_rate: float
    breaker_trips: int
    breaker_state: str
    busy_cycles: float
    faults_injected: int
    #: Cycles the device spent crashed or hung (0.0 without chaos).
    downtime_cycles: float = 0.0
    #: Lifecycle incidents the device suffered (0 without chaos).
    crashes: int = 0
    hangs: int = 0


@dataclass(frozen=True)
class AutoscaleReport:
    """Elastic-capacity summary for one autoscaled serve run.

    Attached to :class:`PoolReport` (and aggregated into
    :class:`~repro.runtime.fleet.FleetReport`) only when an
    :class:`~repro.runtime.autoscale.AutoscaleConfig` was supplied;
    ``None`` — the default — keeps every report field-identical to a
    run from before the autoscaler existed.
    """

    #: Configured capacity bounds the run scaled within.
    min_devices: int
    max_devices: int
    #: ``SCALE_EVAL`` samples consumed on the simulated clock.
    evals: int
    #: Scale decisions taken (each scale-up provisions one device;
    #: each scale-down drains one).
    scale_ups: int
    scale_downs: int
    #: Devices actually added / retired, including the bootstrap grow
    #: to ``min_devices`` at cycle 0 (counted as added, not as a
    #: scale-up decision).
    devices_added: int
    devices_retired: int
    #: Largest and final live (non-retired) device counts.
    devices_peak: int
    devices_final: int
    #: Integral of live capacity over the run: device-cycles the fleet
    #: paid for, the denominator for utilisation-per-provisioned-cycle.
    device_cycles_provisioned: float
    #: Programming phases a scale-up resolved from the shared
    #: :class:`~repro.store.ArtifactStore` instead of compiling (0
    #: without a store).
    prime_hits: int


@dataclass(frozen=True)
class PoolReport:
    """Outcome of serving one workload trace over a device pool."""

    requests: int
    admitted: int
    #: Terminal-status counts; keys are JobStatus values, all present.
    ok: int
    timeout: int
    degraded: int
    rejected: int
    failed: int
    #: Accelerator attempts consumed, and how many were retries beyond
    #: each job's first attempt.
    attempts: int
    retries: int
    breaker_trips: int
    #: Cycle at which the last job left the system.
    makespan_cycles: float
    #: Completed answers (ok+timeout+degraded) per million cycles.
    throughput_per_mcycle: float
    latency_p50_cycles: float
    latency_p99_cycles: float
    #: Highest number of jobs waiting for a device at any point.
    queue_peak: int
    #: Fused multi-RHS dispatches that produced answers (a batch of
    #: k >= 2 jobs served by one payload stream counts once).
    batches: int = 0
    #: Jobs served inside those fused dispatches.
    batched_jobs: int = 0
    #: DRAM bytes the fused dispatches avoided versus serving each
    #: member solo (k solo runs re-stream the programmed payload k
    #: times; a batch streams it once).
    stream_bytes_saved: float = 0.0
    #: Discrete events the heap-based engine consumed to drive the run
    #: (arrivals, dispatch completions, retry readiness, breaker
    #: reopens, deadline expiries).
    events_processed: int = 0
    #: Popped events discarded as stale (lazy deletion) — bookkeeping
    #: overhead, bounded by the load benchmarks.
    events_stale: int = 0
    #: Speculative duplicates launched by hedged dispatch, and how many
    #: of them won the race (produced the accepted answer).
    hedges_launched: int = 0
    hedges_won: int = 0
    #: Device-lifecycle incidents applied during the run (chaos layer).
    #: ``recoveries <= crashes + hangs``: an applied incident recovers
    #: once, but one still open when the last job finishes never
    #: consumes its ``DEVICE_RECOVER``.
    crashes: int = 0
    hangs: int = 0
    recoveries: int = 0
    #: Elastic-capacity summary; ``None`` whenever autoscaling was off,
    #: so default-path reports stay field-identical to PR 9.
    autoscale: "AutoscaleReport | None" = None
    devices: tuple = ()

    @property
    def answered(self) -> int:
        """Jobs that received a numerically-trustworthy answer."""
        return self.ok + self.timeout + self.degraded

    def render(self) -> str:
        """Human-readable report block for the ``serve`` CLI."""
        lines = [
            f"requests        : {self.requests}",
            f"admitted        : {self.admitted} "
            f"(rejected {self.rejected})",
            f"ok              : {self.ok}",
            f"degraded        : {self.degraded}",
            f"timeout         : {self.timeout}",
            f"failed          : {self.failed}",
            f"attempts        : {self.attempts} "
            f"({self.retries} retries)",
            f"breaker trips   : {self.breaker_trips}",
            f"queue peak      : {self.queue_peak}",
            f"makespan        : {self.makespan_cycles:,.0f} cycles",
            f"throughput      : {self.throughput_per_mcycle:.2f} "
            f"jobs/Mcycle",
            f"latency p50     : {self.latency_p50_cycles:,.0f} cycles",
            f"latency p99     : {self.latency_p99_cycles:,.0f} cycles",
            f"events          : {self.events_processed} processed "
            f"({self.events_stale} stale)",
        ]
        if self.batches:
            lines.append(
                f"batches         : {self.batches} "
                f"({self.batched_jobs} jobs fused)")
            lines.append(
                f"stream saved    : {self.stream_bytes_saved:,.0f} bytes")
        # Chaos/hedge lines appear only when the features fired, so a
        # chaos-free report renders byte-identically to before the
        # chaos layer existed.
        if self.hedges_launched:
            lines.append(
                f"hedges          : {self.hedges_launched} launched "
                f"({self.hedges_won} won)")
        if self.crashes or self.hangs:
            lines.append(
                f"chaos           : {self.crashes} crashes, "
                f"{self.hangs} hangs, {self.recoveries} recoveries")
        if self.autoscale is not None:
            a = self.autoscale
            lines.append(
                f"autoscale       : [{a.min_devices}, {a.max_devices}] "
                f"{a.scale_ups} ups, {a.scale_downs} downs "
                f"(peak {a.devices_peak}, final {a.devices_final})")
            lines.append(
                f"provisioned     : "
                f"{a.device_cycles_provisioned:,.0f} device-cycles, "
                f"{a.prime_hits} prime hits")
        for d in self.devices:
            line = (
                f"  device {d.device_id}: {d.jobs_run} jobs, "
                f"{d.failures_total} failures "
                f"({d.window_failure_rate:.0%} window), "
                f"{d.breaker_trips} trips "
                f"({d.breaker_state}), busy {d.busy_cycles:,.0f} cy, "
                f"{d.faults_injected} faults")
            if d.crashes or d.hangs:
                line += (f", down {d.downtime_cycles:,.0f} cy "
                         f"({d.crashes} crashes, {d.hangs} hangs)")
            lines.append(line)
        return "\n".join(lines)


def report_json(report: PoolReport) -> str:
    """Canonical JSON encoding of a report (sorted keys, fixed
    separators), so byte-equality of two encodings is field-equality
    of the reports — the ``repro serve --report-json`` contract the
    CI determinism smoke diffs on."""
    return json.dumps(asdict(report), sort_keys=True,
                      separators=(",", ":")) + "\n"


def build_report(results: Sequence[JobResult], pool,
                 queue_peak: int, batches: int = 0,
                 batched_jobs: int = 0,
                 stream_bytes_saved: float = 0.0,
                 events_processed: int = 0,
                 events_stale: int = 0,
                 hedges_launched: int = 0,
                 hedges_won: int = 0,
                 crashes: int = 0,
                 hangs: int = 0,
                 recoveries: int = 0,
                 autoscale: "AutoscaleReport | None" = None
                 ) -> PoolReport:
    """Fold job results + pool state into one :class:`PoolReport`."""
    by_status: Dict[JobStatus, int] = {s: 0 for s in JobStatus}
    latencies: List[float] = []
    attempts = 0
    retries = 0
    makespan = 0.0
    for r in results:
        by_status[r.status] += 1
        attempts += r.attempts
        retries += max(0, r.attempts - 1)
        makespan = max(makespan, r.finish_cycle)
        if r.answered:
            latencies.append(r.latency_cycles)
    answered = len(latencies)
    throughput = (answered / (makespan / 1e6)) if makespan > 0 else 0.0
    device_stats = tuple(
        DeviceStats(
            device_id=d.device_id,
            jobs_run=d.jobs_run,
            failures_total=d.health.failures,
            window_failure_rate=d.health.failure_rate,
            breaker_trips=d.breaker.trips,
            breaker_state=d.breaker.state,
            busy_cycles=d.busy_cycles,
            faults_injected=(d.fault_model.injected
                             if d.fault_model is not None else 0),
            downtime_cycles=d.downtime_cycles,
            crashes=d.crashes,
            hangs=d.hangs,
        )
        for d in pool.devices
    )
    return PoolReport(
        requests=len(results),
        admitted=len(results) - by_status[JobStatus.REJECTED],
        ok=by_status[JobStatus.OK],
        timeout=by_status[JobStatus.TIMEOUT],
        degraded=by_status[JobStatus.DEGRADED],
        rejected=by_status[JobStatus.REJECTED],
        failed=by_status[JobStatus.FAILED],
        attempts=attempts,
        retries=retries,
        breaker_trips=pool.breaker_trips,
        makespan_cycles=makespan,
        throughput_per_mcycle=throughput,
        latency_p50_cycles=percentile(latencies, 50.0),
        latency_p99_cycles=percentile(latencies, 99.0),
        queue_peak=queue_peak,
        batches=batches,
        batched_jobs=batched_jobs,
        stream_bytes_saved=stream_bytes_saved,
        events_processed=events_processed,
        events_stale=events_stale,
        hedges_launched=hedges_launched,
        hedges_won=hedges_won,
        crashes=crashes,
        hangs=hangs,
        recoveries=recoveries,
        autoscale=autoscale,
        devices=device_stats,
    )
