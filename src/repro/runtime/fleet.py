"""Replicated multi-pool fleet serving with pool-outage failover.

One :class:`~repro.runtime.scheduler.Scheduler` over one
:class:`~repro.runtime.pool.DevicePool` survives device crashes, but
the pool itself is still a single point of failure.  This module adds
the layer above: a :class:`Fleet` serves one job trace over N pools
with

* **content-keyed routing** — a job's ``(dataset, scale, kernel)``
  names the programmed accelerator image it needs, so it is the shard
  key: ALRESCHA's locally-dense block-row format partitions one
  logical matrix into images that can be programmed onto disjoint
  pools.  The home pool is a CRC of the key; placement balances load
  across the key's replica set.
* **R-way replication for hot keys** — a key carrying at least
  ``hot_fraction`` of the trace is programmed onto ``replicas``
  consecutive pools, so a pool outage leaves a surviving replica that
  can serve the shard without reprogramming.
* **pool-level chaos** — a seeded
  :class:`~repro.sim.chaos.PoolChaosModel` draws whole-pool outages as
  ``POOL_OUTAGE``/``POOL_RECOVER`` events on the fleet's own heap.
  An outage voids every in-flight attempt in the pool (busy cycles
  refunded, attempt budgets refunded — the pool-scale mirror of the
  device crash contract) and hands every salvaged and queued job back
  to the fleet, which re-routes each to a surviving replica, or to any
  healthy pool when the shard has none: infrastructure loss alone
  never yields ``FAILED``.  Recovery is *verified*: the fleet readmits
  a pool only after a probe job actually succeeds on it, never because
  the drawn outage window elapsed.

Determinism
-----------
The fleet is a distributed discrete-event simulation run on one global
clock: every scheduler session exposes its next wake via
``peek_cycle`` and the fleet always advances whichever source —
session wake or fleet event — is globally earliest (sessions first at
ties, mirroring "job events before lifecycle events").  Because every
pool's clock is at or behind any event being processed, a re-routed
job is never injected into a pool's past, and the whole run is a pure
function of the trace and the seeds: same inputs, byte-identical
:func:`fleet_report_json`.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.runtime.autoscale import AutoscaleConfig
from repro.runtime.events import EventKind, EventQueue
from repro.runtime.jobs import Job, JobResult, JobStatus, TraceSpec, make_trace
from repro.runtime.metrics import AutoscaleReport, PoolReport, percentile
from repro.runtime.pool import DevicePool, value_crc
from repro.runtime.scheduler import Eviction, Scheduler, SchedulerConfig
from repro.sim.chaos import ChaosModel, PoolChaosModel

#: Per-pool fault-seed stride: pool ``i`` seeds its fault models from
#: ``seed + i * _POOL_SEED_STRIDE``, so pool 0 of a fleet is seeded
#: exactly like a solo pool (the single-pool identity guarantee) while
#: sibling pools draw independent streams.
_POOL_SEED_STRIDE = 1_000_003

#: Per-pool device-chaos seed stride (pool 0 keeps the base seed).
_POOL_CHAOS_STRIDE = 15_485_863

#: Content key of a job: the programmed accelerator image it needs.
ContentKey = Tuple[str, float, str]


def content_key(job: Job) -> ContentKey:
    """The shard key: which programmed image serves this job."""
    return (job.dataset, job.scale, job.kernel)


def home_pool(key: ContentKey, n_pools: int) -> int:
    """Deterministic home shard of a content key (CRC placement)."""
    token = f"{key[0]}:{key[1]!r}:{key[2]}"
    return zlib.crc32(token.encode()) % n_pools


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-policy knobs (cycle units are simulated cycles)."""

    #: Number of independent device pools.
    n_pools: int = 1
    #: Replica-set width for hot content keys (capped at ``n_pools``).
    replicas: int = 1
    #: Cycles charged to move an evicted job to another pool — the
    #: failover is honest occupancy, never free.
    reroute_cycles: float = 500.0
    #: A content key is *hot* (gets replicated) when it carries at
    #: least this fraction of the trace's jobs.  ``0.0`` disables
    #: replication entirely; ``1.0`` replicates only a key that
    #: carries the whole trace.
    hot_fraction: float = 0.1
    #: Gap before retrying a failed readmission probe.
    probe_retry_cycles: float = 2_000.0
    #: Probe budget per outage; an exhausted budget leaves the pool
    #: down for the rest of the run (jobs keep routing around it).
    max_probes_per_outage: int = 16

    def __post_init__(self) -> None:
        if self.n_pools < 1:
            raise ConfigError(
                f"n_pools must be >= 1, got {self.n_pools}")
        if self.replicas < 1:
            raise ConfigError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.reroute_cycles <= 0.0:
            # Strictly positive: a zero-cost re-route would land a job
            # in a pool *at* the fleet's current cycle, which the
            # target session may already have processed.
            raise ConfigError(
                f"reroute_cycles must be positive, got "
                f"{self.reroute_cycles}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigError(
                f"hot_fraction must be in [0, 1], got "
                f"{self.hot_fraction}")
        if self.probe_retry_cycles <= 0.0:
            raise ConfigError(
                f"probe_retry_cycles must be positive, got "
                f"{self.probe_retry_cycles}")
        if self.max_probes_per_outage < 1:
            raise ConfigError(
                f"max_probes_per_outage must be >= 1, got "
                f"{self.max_probes_per_outage}")


@dataclass(frozen=True)
class PoolStats:
    """Per-pool slice of a :class:`FleetReport`."""

    pool_id: int
    outages: int
    downtime_cycles: float
    #: Jobs the pool handed back to the fleet during its outages.
    evictions: int
    reroutes_in: int
    reroutes_out: int
    probes: int
    probes_failed: int
    report: PoolReport


@dataclass(frozen=True)
class FleetReport:
    """Outcome of serving one trace over a replicated pool fleet."""

    pools: int
    replicas: int
    requests: int
    ok: int
    timeout: int
    degraded: int
    rejected: int
    failed: int
    #: Accelerator attempts consumed fleet-wide (prior-pool attempts
    #: of re-routed jobs included).
    attempts: int
    #: Re-route hops the fleet performed, and the transfer cycles they
    #: were charged (``reroutes * reroute_cycles``).
    reroutes: int
    reroute_cycles_charged: float
    outages: int
    downtime_cycles: float
    probes: int
    probes_failed: int
    makespan_cycles: float
    throughput_per_mcycle: float
    #: Fleet-wide latency percentiles over *origin-to-answer* latency
    #: (re-routed jobs measure from their original arrival).
    latency_p50_cycles: float
    latency_p99_cycles: float
    #: Fleet-wide elastic-capacity aggregate (per-pool counters
    #: summed; bounds are the shared config's).  ``None`` whenever
    #: autoscaling was off, keeping the report field-identical to the
    #: pre-autoscale fleet.
    autoscale: Optional[AutoscaleReport] = None
    pool_stats: Tuple[PoolStats, ...] = ()

    @property
    def answered(self) -> int:
        return self.ok + self.timeout + self.degraded

    def render(self) -> str:
        """Human-readable report block for the ``serve`` CLI."""
        lines = [
            f"pools           : {self.pools} "
            f"(replicas {self.replicas})",
            f"requests        : {self.requests}",
            f"ok              : {self.ok}",
            f"degraded        : {self.degraded}",
            f"timeout         : {self.timeout}",
            f"rejected        : {self.rejected}",
            f"failed          : {self.failed}",
            f"attempts        : {self.attempts}",
            f"reroutes        : {self.reroutes} "
            f"({self.reroute_cycles_charged:,.0f} cycles charged)",
            f"outages         : {self.outages} "
            f"({self.downtime_cycles:,.0f} cycles down)",
            f"probes          : {self.probes} "
            f"({self.probes_failed} failed)",
            f"makespan        : {self.makespan_cycles:,.0f} cycles",
            f"throughput      : {self.throughput_per_mcycle:.2f} "
            f"jobs/Mcycle",
            f"latency p50     : {self.latency_p50_cycles:,.0f} cycles",
            f"latency p99     : {self.latency_p99_cycles:,.0f} cycles",
        ]
        if self.autoscale is not None:
            a = self.autoscale
            lines.append(
                f"autoscale       : [{a.min_devices}, "
                f"{a.max_devices}] per pool, {a.scale_ups} ups, "
                f"{a.scale_downs} downs "
                f"({a.device_cycles_provisioned:,.0f} device-cycles, "
                f"{a.prime_hits} prime hits)")
        for p in self.pool_stats:
            r = p.report
            lines.append(
                f"  pool {p.pool_id}: {r.requests} jobs "
                f"({r.ok} ok, {r.degraded} degraded, "
                f"{r.timeout} timeout), "
                f"{p.outages} outages "
                f"({p.downtime_cycles:,.0f} cy down), "
                f"{p.evictions} evicted, "
                f"{p.reroutes_in} in / {p.reroutes_out} out, "
                f"{p.probes} probes")
        return "\n".join(lines)


def fleet_report_json(report: FleetReport) -> str:
    """Canonical JSON encoding of a fleet report (sorted keys, fixed
    separators): byte-equality of two encodings is field-equality of
    the reports, nested per-pool reports included — the contract the
    CI fleet chaos-smoke diffs on."""
    return json.dumps(asdict(report), sort_keys=True,
                      separators=(",", ":")) + "\n"


class _JobRecord:
    """Fleet-side routing state for one job."""

    __slots__ = ("origin", "replicas", "tried", "reroutes",
                 "prior_attempts")

    def __init__(self, origin: Job, replicas: FrozenSet[int]) -> None:
        self.origin = origin
        self.replicas = replicas
        #: Pools the job has left (outage-evicted or transited during
        #: an outage).  Monotone — a job never returns to a tried pool
        #: — which is what bounds the failover chain.
        self.tried: Set[int] = set()
        self.reroutes = 0
        #: Accelerator attempts consumed in pools the job has left.
        self.prior_attempts = 0

    @property
    def deadline_at(self) -> float:
        return self.origin.arrival_cycle + self.origin.deadline_cycles


class Fleet:
    """Serves one trace over N independently-seeded scheduler sessions.

    Construction mirrors :func:`repro.runtime.serve`'s pool/scheduler
    wiring, replicated per pool: pool ``i`` gets fault seed
    ``seed + i * 1_000_003`` (pool 0 identical to a solo pool), its own
    device-chaos sibling, and the trace-track prefix ``p<i>.`` so all
    pools share one tracer without collisions.
    """

    def __init__(self, n_devices: int, config: FleetConfig,
                 fault_rate: float = 0.0, seed: int = 0,
                 scheduler_config: Optional[SchedulerConfig] = None,
                 tracer=None, execution: str = "simulate",
                 chaos: Optional[ChaosModel] = None,
                 pool_chaos: Optional[PoolChaosModel] = None,
                 artifact_store=None,
                 autoscale: Optional[AutoscaleConfig] = None) -> None:
        self.config = config
        self.autoscale = autoscale
        self.seed = seed
        self.tracer = tracer
        self.scheduler_config = scheduler_config or SchedulerConfig()
        self.pool_chaos = (pool_chaos if pool_chaos is not None
                           and pool_chaos.rate > 0.0 else None)
        lifecycle = self.pool_chaos is not None
        self.pools: List[DevicePool] = []
        self.scheds: List[Scheduler] = []
        for i in range(config.n_pools):
            if chaos is None or i == 0:
                pool_chaos_model = chaos
            else:
                pool_chaos_model = ChaosModel(
                    rate=chaos.rate,
                    seed=chaos.seed + _POOL_CHAOS_STRIDE * i,
                    kinds=chaos.kinds,
                    mean_gap_cycles=chaos.mean_gap_cycles,
                    mean_crash_cycles=chaos.mean_crash_cycles,
                    mean_hang_cycles=chaos.mean_hang_cycles)
            pool = DevicePool(
                n_devices, fault_rate=fault_rate,
                seed=seed + _POOL_SEED_STRIDE * i,
                tracer=tracer, execution=execution,
                chaos=pool_chaos_model, track_prefix=f"p{i}.",
                artifact_store=artifact_store)
            self.pools.append(pool)
            self.scheds.append(Scheduler(pool, self.scheduler_config,
                                         lifecycle=lifecycle,
                                         autoscale=autoscale))
        # ---- run state
        self._events = EventQueue()
        self._records: Dict[int, _JobRecord] = {}
        self._fleet_results: Dict[int, JobResult] = {}
        self._routed_jobs = [0] * config.n_pools
        self._pool_up = [True] * config.n_pools
        self._outage_start = [0.0] * config.n_pools
        self._outage_seq = [0] * config.n_pools
        self._pool_incidents: Dict[int, object] = {}
        self._pool_chaos_models: Dict[int, PoolChaosModel] = {}
        self._probe_pending: Dict[int, Tuple[bool, float]] = {}
        self._probe_count = [0] * config.n_pools
        self._probes = [0] * config.n_pools
        self._probes_failed = [0] * config.n_pools
        self._probe_key: Dict[int, ContentKey] = {}
        self._probe_seq = 0
        self._evictions = [0] * config.n_pools
        self._reroutes_in = [0] * config.n_pools
        self._reroutes_out = [0] * config.n_pools
        self.reroutes = 0
        self.reroute_cycles_charged = 0.0
        self.probes = 0
        self.probes_failed = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, jobs: Sequence[Job]) -> List[List[Job]]:
        """Assign every job a primary pool; build replica sets.

        Jobs are scanned in ``(arrival_cycle, job_id)`` order; a key's
        replica set is its home pool plus the next ``replicas - 1``
        pools (mod N) when the key is hot, and the primary is the
        least-loaded member so far (replica-list order on ties).
        """
        seen: Set[int] = set()
        for j in jobs:
            if j.job_id in seen:
                raise ConfigError(
                    f"duplicate job_id {j.job_id} in trace: results "
                    f"are keyed by job id, so one of the duplicates "
                    f"would silently overwrite the other")
            seen.add(j.job_id)
        n = self.config.n_pools
        ordered = sorted(jobs, key=lambda j: (j.arrival_cycle, j.job_id))
        counts: Dict[ContentKey, int] = {}
        for j in ordered:
            key = content_key(j)
            counts[key] = counts.get(key, 0) + 1
        # Boundary semantics pinned at both ends: ``hot_fraction=0.0``
        # replicates nothing (a zero floor used to make *every* key
        # "hot", since all counts are >= 0), and ``1.0`` replicates
        # only a key carrying the entire trace.
        hot_floor = self.config.hot_fraction * len(ordered)
        replica_sets: Dict[ContentKey, Tuple[int, ...]] = {}
        for key, count in counts.items():
            hot = hot_floor > 0.0 and count >= hot_floor
            width = min(self.config.replicas, n) if hot else 1
            home = home_pool(key, n)
            replica_sets[key] = tuple((home + k) % n
                                      for k in range(width))
        assignments: List[List[Job]] = [[] for _ in range(n)]
        for j in ordered:
            reps = replica_sets[content_key(j)]
            primary = min(
                reps,
                key=lambda p: (self._routed_jobs[p], reps.index(p)))
            self._routed_jobs[primary] += 1
            assignments[primary].append(j)
            self._records[j.job_id] = _JobRecord(
                j, replicas=frozenset(reps))
        for key in sorted(replica_sets):
            for p in replica_sets[key]:
                if p not in self._probe_key:
                    self._probe_key[p] = key
        return assignments

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> Tuple[List[JobResult],
                                                FleetReport]:
        """Serve every job; returns results (job-id order) + report."""
        assignments = self._route(jobs)
        for i, sched in enumerate(self.scheds):
            sched.start(assignments[i])
        if self.pool_chaos is not None:
            # One pending outage per pool, strictly sequential: the
            # next is drawn only at readmission.
            for i in range(self.config.n_pools):
                model = self.pool_chaos.spawn(i)
                self._pool_chaos_models[i] = model
                inc = model.next_incident(0.0)
                if inc is not None:
                    self._pool_incidents[i] = inc
                    self._events.push(inc.at, EventKind.POOL_OUTAGE, i)

        while True:
            best: Optional[Tuple[float, int]] = None
            for i, sched in enumerate(self.scheds):
                cycle = sched.peek_cycle()
                if cycle is not None and (best is None
                                          or (cycle, i) < best):
                    best = (cycle, i)
            if best is None:
                # All sessions drained: remaining fleet events stay
                # unconsumed, like open device incidents.
                break
            head = self._events.peek()
            if head is None or best[0] <= head.cycle:
                # Sessions win ties: a job completing exactly at an
                # outage onset completed.
                i = best[1]
                self.scheds[i].advance()
                self._drain_evictions(i)
                continue
            event = self._events.pop()
            if event.kind == EventKind.POOL_OUTAGE:
                self._apply_outage(event.key, event.cycle)
            else:
                self._apply_recover(event.key, event.cycle)

        return self._finish(jobs)

    # ------------------------------------------------------------------
    # Fleet events
    # ------------------------------------------------------------------
    def _apply_outage(self, i: int, now: float) -> None:
        self._pool_up[i] = False
        self._outage_start[i] = now
        self._outage_seq[i] += 1
        self._probe_count[i] = 0
        self.scheds[i].begin_outage(now)
        self._drain_evictions(i)
        inc = self._pool_incidents[i]
        # The drawn ``until`` is the *earliest* readmission attempt;
        # actual readmission waits for a successful probe.
        self._events.push(inc.until, EventKind.POOL_RECOVER, i)

    def _apply_recover(self, i: int, now: float) -> None:
        """Probe-gated readmission state machine for pool ``i``.

        A POOL_RECOVER event either *starts* a probe (charging real
        cycles on the pool's device 0 and scheduling a second
        POOL_RECOVER at the probe's completion) or *lands* one: a
        successful probe readmits the pool at its completion cycle and
        draws the pool's next outage; a failed one schedules a retry
        until the per-outage budget runs out, after which the pool
        stays down and traffic keeps routing around it.
        """
        sched = self.scheds[i]
        pending = self._probe_pending.pop(i, None)
        if pending is not None:
            ok, _finish = pending
            if ok:
                self._readmit(i, now)
            else:
                self._events.push(
                    now + self.config.probe_retry_cycles,
                    EventKind.POOL_RECOVER, i)
            return
        key = self._probe_key.get(i)
        if key is None:
            # No content key was ever routed here: nothing to probe
            # with, and nothing the pool could serve wrongly — readmit
            # directly.
            self._readmit(i, now)
            return
        if self._probe_count[i] >= self.config.max_probes_per_outage:
            return  # permanently down for this run
        self._probe_count[i] += 1
        self._probe_seq += 1
        self.probes += 1
        self._probes[i] += 1
        probe_job = Job(
            job_id=-self._probe_seq, kernel=key[2], dataset=key[0],
            scale=key[1], arrival_cycle=now, deadline_cycles=1.0,
            seed=self.seed + 104_729 * self._probe_seq)
        ok, finish = sched.run_probe(probe_job, now)
        if not ok:
            self.probes_failed += 1
            self._probes_failed[i] += 1
        self._probe_pending[i] = (ok, finish)
        self._events.push(finish, EventKind.POOL_RECOVER, i)

    def _readmit(self, i: int, now: float) -> None:
        self.scheds[i].readmit(now)
        self._pool_up[i] = True
        if self.tracer is not None and now > self._outage_start[i]:
            self.tracer.add(
                f"outage#{i}.{self._outage_seq[i]}", "outage",
                self._outage_start[i], now, "fleet",
                args={"pool": float(i)})
        if self.pool_chaos is not None:
            inc = self._pool_chaos_models[i].next_incident(now)
            if inc is not None:
                self._pool_incidents[i] = inc
                self._events.push(inc.at, EventKind.POOL_OUTAGE, i)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _drain_evictions(self, i: int) -> None:
        for ev in self.scheds[i].take_evicted():
            self._evictions[i] += 1
            self._reroute(ev, i)

    def _pick_target(self, rec: _JobRecord) -> Optional[int]:
        """Best untried pool: up replicas, then any up pool, then down
        replicas, then any down pool — least routed load, id ties."""
        untried = [p for p in range(self.config.n_pools)
                   if p not in rec.tried]
        if not untried:
            return None

        def rank(p: int) -> Tuple[int, int, int]:
            up = self._pool_up[p]
            rep = p in rec.replicas
            cls = 0 if (up and rep) else 1 if up else 2 if rep else 3
            return (cls, self._routed_jobs[p], p)

        return min(untried, key=rank)

    def _reroute(self, ev: Eviction, from_pool: int) -> None:
        """Hand an evicted job to its next pool (or finalise it).

        The transfer is charged ``reroute_cycles``; the job's absolute
        deadline never moves.  A job whose deadline cannot survive the
        transfer is finalised TIMEOUT in transit; a job that has tried
        every pool falls back to the fleet-level reference path —
        DEGRADED or TIMEOUT, never FAILED, mirroring the scheduler's
        own degradation contract.
        """
        rec = self._records[ev.job.job_id]
        rec.prior_attempts += ev.attempts
        rec.tried.add(from_pool)
        origin = rec.origin
        new_arrival = ev.cycle + self.config.reroute_cycles
        if rec.deadline_at <= new_arrival:
            finish = max(ev.cycle, rec.deadline_at)
            self._fleet_results[origin.job_id] = JobResult(
                job_id=origin.job_id, status=JobStatus.TIMEOUT,
                attempts=rec.prior_attempts,
                latency_cycles=finish - origin.arrival_cycle,
                finish_cycle=finish,
                error=(f"deadline expired in transit after pool "
                       f"{from_pool} outage"),
                pool_id=from_pool, reroutes=rec.reroutes)
            if self.tracer is not None:
                self.tracer.instant_event(
                    f"timeout#{origin.job_id}", "timeout", finish,
                    "fleet")
            return
        target = self._pick_target(rec)
        if target is None:
            self._degrade_fleet(rec, from_pool, new_arrival)
            return
        rec.reroutes += 1
        self.reroutes += 1
        self.reroute_cycles_charged += self.config.reroute_cycles
        self._reroutes_out[from_pool] += 1
        self._reroutes_in[target] += 1
        self._routed_jobs[target] += 1
        # The target now holds traffic even if no key was originally
        # routed to it: future readmissions must be probe-verified.
        self._probe_key.setdefault(target, content_key(origin))
        self.scheds[target].add_job(replace(
            origin, arrival_cycle=new_arrival,
            deadline_cycles=rec.deadline_at - new_arrival))
        if self.tracer is not None:
            self.tracer.instant_event(
                f"reroute#{origin.job_id}", "reroute", ev.cycle,
                "fleet", args={"from": float(from_pool),
                               "to": float(target)})

    def _degrade_fleet(self, rec: _JobRecord, from_pool: int,
                       start: float) -> None:
        """Every pool tried and lost: answer on the reference path."""
        origin = rec.origin
        pool = self.pools[from_pool]
        try:
            values = pool.reference_values(origin)
        except Exception as exc:  # genuinely unserviceable work
            self._fleet_results[origin.job_id] = JobResult(
                job_id=origin.job_id, status=JobStatus.FAILED,
                attempts=rec.prior_attempts, finish_cycle=start,
                error=f"{type(exc).__name__}: {exc}",
                pool_id=from_pool, reroutes=rec.reroutes)
            return
        cycles = (pool.nominal_cycles(origin)
                  * self.scheduler_config.reference_slowdown)
        finish = start + cycles
        latency = finish - origin.arrival_cycle
        if latency > origin.deadline_cycles:
            status = JobStatus.TIMEOUT
            error = (f"degraded answer completed "
                     f"{latency - origin.deadline_cycles:.0f} cycles "
                     f"past deadline")
        else:
            status, error = JobStatus.DEGRADED, ""
        self._fleet_results[origin.job_id] = JobResult(
            job_id=origin.job_id, status=status,
            attempts=rec.prior_attempts, latency_cycles=latency,
            finish_cycle=finish, value_crc=value_crc(values),
            error=error, pool_id=from_pool, reroutes=rec.reroutes)
        if self.tracer is not None:
            self.tracer.add(
                f"{origin.kernel}#{origin.job_id}", "degraded", start,
                finish, "reference",
                args={"slowdown":
                      self.scheduler_config.reference_slowdown})

    # ------------------------------------------------------------------
    # Report assembly
    # ------------------------------------------------------------------
    def _finish(self, jobs: Sequence[Job]) -> Tuple[List[JobResult],
                                                    FleetReport]:
        merged: Dict[int, JobResult] = dict(self._fleet_results)
        pool_reports: List[PoolReport] = []
        for i, sched in enumerate(self.scheds):
            pool_results, report = sched.finish()
            pool_reports.append(report)
            for r in pool_results:
                rec = self._records[r.job_id]
                r.pool_id = i
                r.reroutes = rec.reroutes
                if rec.reroutes or rec.prior_attempts:
                    r.attempts += rec.prior_attempts
                    if r.status not in (JobStatus.REJECTED,
                                        JobStatus.FAILED):
                        # Latency measures from the *original* arrival,
                        # so the re-route transfers the job paid stay
                        # visible in the percentiles.
                        r.latency_cycles = (r.finish_cycle
                                            - rec.origin.arrival_cycle)
                merged[r.job_id] = r

        ordered = [merged[j.job_id]
                   for j in sorted(jobs, key=lambda j: j.job_id)]
        by_status = {s: 0 for s in JobStatus}
        latencies: List[float] = []
        attempts = 0
        makespan = 0.0
        for r in ordered:
            by_status[r.status] += 1
            attempts += r.attempts
            makespan = max(makespan, r.finish_cycle)
            if r.answered:
                latencies.append(r.latency_cycles)

        # Close still-open outages against the makespan: downtime and
        # the trace span both end where the run does.
        downtime = 0.0
        for i, sched in enumerate(self.scheds):
            pool_down = sched.pool_downtime_cycles
            if not self._pool_up[i]:
                open_down = max(0.0, makespan - self._outage_start[i])
                pool_down += open_down
                sched.pool_downtime_cycles = pool_down
                if self.tracer is not None and open_down > 0.0:
                    self.tracer.add(
                        f"outage#{i}.{self._outage_seq[i]}", "outage",
                        self._outage_start[i], makespan, "fleet",
                        args={"pool": float(i)})
            downtime += pool_down

        pool_stats = tuple(
            PoolStats(
                pool_id=i,
                outages=self.scheds[i].outages,
                downtime_cycles=self.scheds[i].pool_downtime_cycles,
                evictions=self._evictions[i],
                reroutes_in=self._reroutes_in[i],
                reroutes_out=self._reroutes_out[i],
                probes=self._probes[i],
                probes_failed=self._probes_failed[i],
                report=pool_reports[i],
            )
            for i in range(self.config.n_pools))
        autoscale_agg = None
        scaled = [r.autoscale for r in pool_reports
                  if r.autoscale is not None]
        if scaled:
            # Per-pool counters sum; the bounds are the shared
            # config's (identical across pools) and the peak/final
            # counts sum to fleet-wide device totals.
            autoscale_agg = AutoscaleReport(
                min_devices=scaled[0].min_devices,
                max_devices=scaled[0].max_devices,
                evals=sum(a.evals for a in scaled),
                scale_ups=sum(a.scale_ups for a in scaled),
                scale_downs=sum(a.scale_downs for a in scaled),
                devices_added=sum(a.devices_added for a in scaled),
                devices_retired=sum(a.devices_retired
                                    for a in scaled),
                devices_peak=sum(a.devices_peak for a in scaled),
                devices_final=sum(a.devices_final for a in scaled),
                device_cycles_provisioned=sum(
                    a.device_cycles_provisioned for a in scaled),
                prime_hits=sum(a.prime_hits for a in scaled),
            )
        answered = len(latencies)
        throughput = (answered / (makespan / 1e6)) if makespan > 0 \
            else 0.0
        report = FleetReport(
            pools=self.config.n_pools,
            replicas=self.config.replicas,
            requests=len(ordered),
            ok=by_status[JobStatus.OK],
            timeout=by_status[JobStatus.TIMEOUT],
            degraded=by_status[JobStatus.DEGRADED],
            rejected=by_status[JobStatus.REJECTED],
            failed=by_status[JobStatus.FAILED],
            attempts=attempts,
            reroutes=self.reroutes,
            reroute_cycles_charged=self.reroute_cycles_charged,
            outages=sum(s.outages for s in pool_stats),
            downtime_cycles=downtime,
            probes=self.probes,
            probes_failed=self.probes_failed,
            makespan_cycles=makespan,
            throughput_per_mcycle=throughput,
            latency_p50_cycles=percentile(latencies, 50.0),
            latency_p99_cycles=percentile(latencies, 99.0),
            autoscale=autoscale_agg,
            pool_stats=pool_stats,
        )
        return ordered, report


def serve_fleet(n_requests: int, n_devices: int = 4,
                fault_rate: float = 0.0, seed: int = 0,
                scale: float = 0.05,
                workloads: Optional[Tuple[Tuple[str, str], ...]] = None,
                trace: Optional[List[Job]] = None,
                scheduler_config: Optional[SchedulerConfig] = None,
                tracer=None, max_batch: int = 1,
                execution: str = "simulate",
                chaos: Optional[ChaosModel] = None,
                hedge_after: Optional[float] = None,
                pool_chaos: Optional[PoolChaosModel] = None,
                fleet_config: Optional[FleetConfig] = None,
                artifact_store=None,
                autoscale: Optional[AutoscaleConfig] = None,
                **trace_kwargs) -> Tuple[List[JobResult], FleetReport]:
    """Serve a seeded workload trace over a replicated pool fleet.

    The fleet analogue of :func:`repro.runtime.serve`, sharing its
    trace/pool/scheduler parameters; ``fleet_config`` adds the pool
    count, replication and failover knobs, ``pool_chaos`` attaches
    seeded whole-pool outages, and ``autoscale`` (an
    :class:`~repro.runtime.autoscale.AutoscaleConfig`) makes every
    pool's device count elastic within the shared bounds.  Two calls
    with identical arguments produce a byte-identical
    :func:`fleet_report_json`.
    """
    if trace is None:
        spec_kwargs = dict(n_requests=n_requests, seed=seed,
                           scale=scale, **trace_kwargs)
        if workloads is not None:
            spec_kwargs["workloads"] = workloads
        trace = make_trace(TraceSpec(**spec_kwargs))
    if scheduler_config is None:
        scheduler_config = SchedulerConfig(max_batch=max_batch,
                                           hedge_after=hedge_after)
    fleet = Fleet(n_devices, fleet_config or FleetConfig(),
                  fault_rate=fault_rate, seed=seed,
                  scheduler_config=scheduler_config, tracer=tracer,
                  execution=execution, chaos=chaos,
                  pool_chaos=pool_chaos, artifact_store=artifact_store,
                  autoscale=autoscale)
    return fleet.run(trace)
