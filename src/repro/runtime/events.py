"""Heap-based discrete-event engine for the serving runtime.

The scheduler used to find the next interesting cycle by re-scanning
every waiting job and every device on each step — O(queue × devices)
per clock advance, the Python hot loop at trace scale.  This module
replaces that scan with a single binary heap of *typed events*: every
future state change the scheduler can react to is pushed exactly when
it becomes known, and the main loop pops the earliest one in O(log n).

Event vocabulary (:class:`EventKind`):

``ARRIVAL``
    A job enters the system at its ``arrival_cycle``.
``DISPATCH_COMPLETE``
    A device finishes the attempt it is running (its ``busy_until``).
``RETRY_READY``
    A job requeued after a device fault becomes dispatchable again.
``BREAKER_REOPEN``
    An open circuit breaker finishes its cooldown and may be probed.
``DEADLINE_EXPIRY``
    A job's deadline lands.  Deadline expiry being an *event* — not a
    filter applied to whatever jobs happen to be scanned — is what
    makes deadline accounting exact: a job that cannot possibly be
    dispatched at its deadline cycle is finalised ``TIMEOUT`` *at* that
    cycle, never at whatever later cycle the old scan happened to
    revisit it.
``DEVICE_CRASH`` / ``DEVICE_HANG`` / ``DEVICE_RECOVER``
    Device-lifecycle incidents drawn by a seeded
    :class:`~repro.sim.chaos.ChaosModel`: a crash takes the device
    down (in-flight work lost, breaker quarantined), a hang stalls it
    (in-flight work slowed), and a recover ends either.  Lifecycle
    events sort *after* every job event at the same cycle, so a job
    completing exactly when its device dies still completed.
``HEDGE_TIMER``
    A dispatched job's attempt has run for a configured multiple of
    its nominal estimate without completing; the scheduler may launch
    a speculative duplicate on a second healthy device.  Lazily
    deleted like every other event: if the attempt finished first,
    the popped timer is stale and counted, never acted on.
``POOL_OUTAGE`` / ``POOL_RECOVER``
    Fleet-scoped incidents drawn by a seeded
    :class:`~repro.sim.chaos.PoolChaosModel`: an outage takes a whole
    :class:`~repro.runtime.pool.DevicePool` dark (every in-flight
    attempt voided, queued and salvaged jobs re-routed to a surviving
    replica by the :class:`~repro.runtime.fleet.Fleet`), and a recover
    marks the end of the drawn window — readmission still waits for a
    successful probe job.  These live on the *fleet's* event queue
    (``key`` is the pool id), appended after every per-pool kind so
    the chaos-free coincident order inside one pool is untouched.
``SCALE_EVAL`` / ``DEVICE_ADD`` / ``DEVICE_DRAIN``
    Elastic-capacity events driven by the
    :class:`~repro.runtime.autoscale.Autoscaler`: a periodic
    ``SCALE_EVAL`` samples queue depth and per-device health on the
    simulated clock and may decide to grow or shrink the pool; a
    scale-up lands as a ``DEVICE_ADD`` after the provisioning delay
    (``key`` is the new device's id); a scale-down marks a device
    *draining* immediately and retires it when its ``DEVICE_DRAIN``
    finds it idle (re-armed while in-flight work remains).  All three
    are appended after every pre-existing kind, so the autoscale-free
    coincident order — and therefore every report the fingerprint
    corpus pins — is untouched.

Total ordering
--------------
Events sort by ``(cycle, kind, key, seq)``:

* ``cycle`` — simulated time, the primary key;
* ``kind`` — the :class:`EventKind` integer value, so coincident
  events of different types are processed in a fixed, documented order
  (arrivals before completions before retries before breaker reopens
  before deadline expiries);
* ``key`` — ``job_id`` for job events, ``device_id`` for device
  events: ties inside one kind break by explicit identity, never by
  hash or insertion accident;
* ``seq`` — the monotone push index, a last-resort stabiliser so the
  order is total even for exact duplicates.

Every component of the tuple is explicit and reproducible from the
trace and seeds, which is what keeps a heap-cored run bit-identical to
a rerun of itself — the property the determinism tests pin down.

Staleness
---------
The heap is append-only: events are never removed when the state they
describe changes (a job finishes before its deadline, a breaker trips
again with a later cooldown).  Consumers instead *validate* an event
against live state when it is popped and skip it if stale — the
classic lazy-deletion discipline.  :attr:`EventQueue.stale` counts the
skips so load tests can bound the bookkeeping overhead.
"""

from __future__ import annotations

import enum
import heapq
from typing import List, NamedTuple, Optional


class EventKind(enum.IntEnum):
    """Typed events, in their coincident-cycle processing order."""

    ARRIVAL = 0
    DISPATCH_COMPLETE = 1
    RETRY_READY = 2
    BREAKER_REOPEN = 3
    DEADLINE_EXPIRY = 4
    DEVICE_CRASH = 5
    DEVICE_HANG = 6
    DEVICE_RECOVER = 7
    HEDGE_TIMER = 8
    POOL_OUTAGE = 9
    POOL_RECOVER = 10
    SCALE_EVAL = 11
    DEVICE_ADD = 12
    DEVICE_DRAIN = 13


class Event(NamedTuple):
    """One scheduled state change; sorts by ``(cycle, kind, key, seq)``."""

    cycle: float
    kind: int
    #: ``job_id`` for job events, ``device_id`` for device events.
    key: int
    #: Monotone push index — the explicit last tie-break.
    seq: int


class EventQueue:
    """Min-heap of :class:`Event` with deterministic total order.

    ``push``/``pop`` are O(log n); ``peek`` is O(1).  The queue keeps
    three counters for observability: :attr:`pushed`, :attr:`popped`
    and :attr:`stale` (incremented by the consumer via
    :meth:`mark_stale` when a popped event no longer matches live
    state).
    """

    __slots__ = ("_heap", "_seq", "pushed", "popped", "stale")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self.pushed = 0
        self.popped = 0
        self.stale = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, cycle: float, kind: EventKind, key: int) -> Event:
        """Schedule ``kind`` for ``key`` at ``cycle``; returns the event."""
        event = Event(cycle, int(kind), key, self._seq)
        self._seq += 1
        self.pushed += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (raises on empty)."""
        self.popped += 1
        return heapq.heappop(self._heap)

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0] if self._heap else None

    def requeue(self, event: Event) -> None:
        """Put a popped-but-unconsumed event back on the heap.

        The fleet layer peeks each pool's earliest wake to pick the
        globally-next one; a peeked event that loses the race must go
        back *unchanged* (same seq, so its total-order position is
        identical) and must not count as processed — the pop counter
        is rolled back.
        """
        heapq.heappush(self._heap, event)
        self.popped -= 1

    def mark_stale(self) -> None:
        """Record that the consumer discarded a popped event as stale."""
        self.stale += 1
