"""Jobs: the unit of work the serving runtime admits and executes.

A :class:`Job` names a kernel or solver invocation against a registered
dataset, plus the serving metadata the scheduler needs: arrival time and
deadline in *simulated cycles* (the same clock every
:class:`~repro.core.report.SimReport` accumulates on), a priority class,
and a per-job RNG seed so operand vectors are reproducible.  Jobs are
frozen — all mutable scheduling state lives inside the scheduler.

A :class:`JobResult` records one terminal outcome per job.  The status
vocabulary is deliberately closed (:class:`JobStatus`): the runtime
never returns a wrong or missing answer silently — a job either
finished ``OK``, finished late (``TIMEOUT``), finished on the software
reference path (``DEGRADED``, numerically correct), was refused
admission (``REJECTED``), or ``FAILED`` with a recorded error.

:func:`make_trace` builds a seeded workload trace — the input to
:func:`repro.runtime.serve` and the ``repro serve`` CLI.
:func:`dump_trace`/:func:`load_trace` round-trip a trace through
canonical JSON so production-shaped workloads are reproducible fixtures
(the ``repro serve --trace-file`` replay path).
"""

from __future__ import annotations

import enum
import json
import math
import random
from dataclasses import MISSING, asdict, dataclass, fields
from typing import List, Tuple

from repro.errors import ConfigError

#: Composable arrival/popularity shapes :func:`make_trace` understands.
#: ``exponential`` is the historical plain-Poisson trace; the others
#: combine with ``+`` (e.g. ``"bursty+zipf"``): ``bursty`` switches the
#: arrival rate through a doubly-stochastic on/off burst process,
#: ``diurnal`` modulates it sinusoidally, and ``zipf`` skews workload
#: popularity by rank instead of sampling uniformly.
TRACE_SHAPES = ("exponential", "bursty", "diurnal", "zipf")

#: Kernels a job may request.  ``spmv``/``symgs`` are single accelerator
#: passes; ``pcg`` is a short full solve (SpMV + SymGS inner loop).
JOB_KERNELS = ("spmv", "symgs", "pcg")


class JobStatus(enum.Enum):
    """Terminal status of a served job."""

    #: Completed on an accelerator device within its deadline.
    OK = "ok"
    #: Completed, but after its deadline expired (answer still attached).
    TIMEOUT = "timeout"
    #: Completed on the :class:`~repro.solvers.ReferenceBackend`
    #: fallback after accelerator attempts were exhausted or the pool
    #: was unavailable.  The answer is numerically correct; only the
    #: latency and energy story degraded.
    DEGRADED = "degraded"
    #: Refused by admission control (zero deadline or full queue);
    #: never executed.
    REJECTED = "rejected"
    #: No answer could be produced; ``JobResult.error`` names why.
    FAILED = "failed"


@dataclass(frozen=True)
class Job:
    """One request: a kernel/solver invocation with serving metadata."""

    job_id: int
    kernel: str
    dataset: str
    scale: float
    #: Simulated cycle at which the request enters the system.
    arrival_cycle: float
    #: Latency budget in simulated cycles; ``<= 0`` is rejected at
    #: admission (a request with no budget cannot be served honestly).
    deadline_cycles: float
    #: Larger is more urgent; ties broken by submission order.
    priority: int = 0
    #: Seeds the operand vector (``default_rng(seed)``), so a job's
    #: numerical answer is reproducible independent of placement.
    seed: int = 0


@dataclass
class JobResult:
    """Terminal outcome of one job."""

    job_id: int
    status: JobStatus
    #: Device that produced the answer (-1: rejected/degraded/failed).
    device_id: int = -1
    #: Accelerator attempts consumed (0 for rejected jobs).
    attempts: int = 0
    #: Completion minus arrival, in simulated cycles (0 if rejected).
    latency_cycles: float = 0.0
    finish_cycle: float = 0.0
    #: CRC32 of the answer payload (bit-reproducibility handle); 0 when
    #: no answer was produced.
    value_crc: int = 0
    #: Width of the fused dispatch that answered the job (1 = solo; a
    #: job answered inside a k-wide multi-RHS batch reports k).
    batch_size: int = 1
    error: str = ""
    #: True when a speculative hedge duplicate produced the answer
    #: (the original attempt lost the race or its device died).
    hedged: bool = False
    #: Pool that produced the final outcome (0 in single-pool serving).
    pool_id: int = 0
    #: Times the fleet re-routed the job to another pool after an
    #: outage evicted it (0 in single-pool serving).
    reroutes: int = 0

    @property
    def answered(self) -> bool:
        """Whether a numerically-trustworthy answer was returned."""
        return self.status in (JobStatus.OK, JobStatus.TIMEOUT,
                               JobStatus.DEGRADED)


@dataclass(frozen=True)
class TraceSpec:
    """Parameters for :func:`make_trace` (all cycle units simulated)."""

    n_requests: int
    seed: int = 0
    #: ``(dataset, kernel)`` pairs sampled uniformly per request.
    workloads: Tuple[Tuple[str, str], ...] = (
        ("stencil27", "spmv"),
        ("stencil27", "symgs"),
        ("af_shell", "spmv"),
        ("af_shell", "symgs"),
    )
    scale: float = 0.05
    #: Mean of the exponential inter-arrival gap.
    mean_interarrival_cycles: float = 400.0
    #: Deadlines drawn uniformly from this range.
    deadline_range: Tuple[float, float] = (20_000.0, 80_000.0)
    #: Fraction of requests that arrive with a zero deadline (they are
    #: rejected at admission; the trace includes them so admission
    #: control is exercised under every seed).
    zero_deadline_prob: float = 0.02
    #: Priority classes and their sampling weights.
    priorities: Tuple[int, ...] = (0, 1, 2)
    priority_weights: Tuple[float, ...] = (0.7, 0.2, 0.1)
    #: Arrival/popularity shape: ``"exponential"`` (the historical
    #: plain-Poisson draw sequence, byte-identical to pre-shape
    #: traces) or a ``+``-combination of ``bursty``/``diurnal``/
    #: ``zipf`` — see :data:`TRACE_SHAPES`.
    shape: str = "exponential"
    #: ``bursty``: arrival rate multiplier while a burst is on, and the
    #: mean dwell cycles of the on/off states (exponentially drawn).
    burst_factor: float = 6.0
    burst_mean_cycles: float = 8_000.0
    quiet_mean_cycles: float = 24_000.0
    #: ``diurnal``: sinusoidal rate-cycle period and relative
    #: amplitude (0 flat, must stay < 1 so the rate never vanishes).
    diurnal_period_cycles: float = 200_000.0
    diurnal_amplitude: float = 0.8
    #: ``zipf``: workload ``r`` (0-based rank in ``workloads``) is
    #: drawn with weight ``1 / (r + 1) ** zipf_exponent``.
    zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        parts = self.shape.split("+") if self.shape else [""]
        if len(set(parts)) != len(parts):
            raise ConfigError(
                f"trace shape {self.shape!r} repeats a component")
        for part in parts:
            if part not in TRACE_SHAPES:
                raise ConfigError(
                    f"unknown trace shape {part!r} in {self.shape!r}; "
                    f"known: {TRACE_SHAPES}")
        if "exponential" in parts and len(parts) > 1:
            raise ConfigError(
                f"trace shape {self.shape!r}: 'exponential' is the "
                f"plain baseline and cannot combine with other shapes")
        if self.burst_factor < 1.0:
            raise ConfigError(
                f"burst_factor must be >= 1, got {self.burst_factor}")
        if self.burst_mean_cycles <= 0 or self.quiet_mean_cycles <= 0:
            raise ConfigError(
                f"burst/quiet dwell means must be positive, got "
                f"{self.burst_mean_cycles}/{self.quiet_mean_cycles}")
        if self.diurnal_period_cycles <= 0:
            raise ConfigError(
                f"diurnal_period_cycles must be positive, got "
                f"{self.diurnal_period_cycles}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError(
                f"diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}")
        if self.zipf_exponent <= 0:
            raise ConfigError(
                f"zipf_exponent must be positive, got "
                f"{self.zipf_exponent}")


def make_trace(spec: TraceSpec) -> List[Job]:
    """Generate a seeded workload trace.

    Deterministic: one ``random.Random(spec.seed)`` stream drives every
    draw, so a fixed spec reproduces the identical trace.  The default
    ``shape="exponential"`` runs the exact historical draw sequence —
    pre-shape specs reproduce byte-identical traces; the shaped
    generator (``bursty``/``diurnal``/``zipf``, composable with ``+``)
    layers rate modulation and popularity skew on the same single-RNG
    discipline.
    """
    rng = random.Random(spec.seed)
    jobs: List[Job] = []
    cycle = 0.0
    if spec.shape == "exponential":
        for i in range(spec.n_requests):
            cycle += rng.expovariate(
                1.0 / spec.mean_interarrival_cycles)
            dataset, kernel = spec.workloads[
                rng.randrange(len(spec.workloads))]
            if rng.random() < spec.zero_deadline_prob:
                deadline = 0.0
            else:
                deadline = rng.uniform(*spec.deadline_range)
            priority = rng.choices(spec.priorities,
                                   weights=spec.priority_weights)[0]
            jobs.append(Job(
                job_id=i,
                kernel=kernel,
                dataset=dataset,
                scale=spec.scale,
                arrival_cycle=cycle,
                deadline_cycles=deadline,
                priority=priority,
                seed=spec.seed * 100_003 + i,
            ))
        return jobs

    parts = set(spec.shape.split("+"))
    bursty = "bursty" in parts
    diurnal = "diurnal" in parts
    zipf = "zipf" in parts
    # Zipf-by-rank popularity: workloads keep their declared order, so
    # rank 0 (the first pair) is the hot one under every seed.
    weights = ([1.0 / (rank + 1) ** spec.zipf_exponent
                for rank in range(len(spec.workloads))]
               if zipf else None)
    # Doubly-stochastic burst process: the on/off state itself is
    # random (exponential dwells), and arrivals within a state are a
    # Poisson process at that state's rate.
    in_burst = False
    burst_until = (rng.expovariate(1.0 / spec.quiet_mean_cycles)
                   if bursty else 0.0)
    for i in range(spec.n_requests):
        mean = spec.mean_interarrival_cycles
        if bursty:
            while cycle >= burst_until:
                in_burst = not in_burst
                dwell_mean = (spec.burst_mean_cycles if in_burst
                              else spec.quiet_mean_cycles)
                burst_until += rng.expovariate(1.0 / dwell_mean)
            if in_burst:
                mean /= spec.burst_factor
        if diurnal:
            phase = 2.0 * math.pi * cycle / spec.diurnal_period_cycles
            rate_mod = 1.0 + spec.diurnal_amplitude * math.sin(phase)
            mean /= max(rate_mod, 0.05)
        cycle += rng.expovariate(1.0 / mean)
        if zipf:
            dataset, kernel = rng.choices(spec.workloads,
                                          weights=weights)[0]
        else:
            dataset, kernel = spec.workloads[
                rng.randrange(len(spec.workloads))]
        if rng.random() < spec.zero_deadline_prob:
            deadline = 0.0
        else:
            deadline = rng.uniform(*spec.deadline_range)
        priority = rng.choices(spec.priorities,
                               weights=spec.priority_weights)[0]
        jobs.append(Job(
            job_id=i,
            kernel=kernel,
            dataset=dataset,
            scale=spec.scale,
            arrival_cycle=cycle,
            deadline_cycles=deadline,
            priority=priority,
            seed=spec.seed * 100_003 + i,
        ))
    return jobs


#: Trace-file schema version written by :func:`dump_trace`.  Bumped
#: whenever the :class:`Job` field vocabulary changes incompatibly;
#: :func:`load_trace` refuses files from the future instead of
#: half-parsing them.
TRACE_SCHEMA_VERSION = 1

_JOB_FIELDS = frozenset(f.name for f in fields(Job))
#: Fields a trace entry must carry; the rest have dataclass defaults.
_REQUIRED_JOB_FIELDS = frozenset(
    f.name for f in fields(Job) if f.default is MISSING)


def dump_trace(jobs: List[Job], path: str) -> int:
    """Write a workload trace as canonical, versioned JSON.

    Canonical means sorted keys and a fixed separator style, so the
    same trace always serialises to the identical bytes — trace files
    are content-addressable fixtures, not just human-readable dumps.
    The envelope carries :data:`TRACE_SCHEMA_VERSION` so future readers
    can tell a stale file from a malformed one.  Returns bytes written.
    """
    payload = json.dumps(
        {"version": TRACE_SCHEMA_VERSION,
         "jobs": [asdict(j) for j in jobs]},
        sort_keys=True, separators=(",", ":"))
    with open(path, "w") as fh:
        fh.write(payload + "\n")
    return len(payload) + 1


def load_trace(path: str) -> List[Job]:
    """Read a workload trace written by :func:`dump_trace`.

    Accepts the versioned ``{"version": N, "jobs": [...]}`` envelope
    and, for fixtures written before the envelope existed, a bare JSON
    list of job entries (treated as version 1).  Malformed files —
    wrong top-level shape, a future schema version, an entry missing a
    required :class:`Job` field or carrying an unknown key — raise
    :class:`~repro.errors.ConfigError` naming the file and the
    offending key, never a raw ``KeyError``/``TypeError``.
    """
    with open(path) as fh:
        payload = json.load(fh)
    if isinstance(payload, list):
        entries = payload  # pre-envelope fixture: implicit version 1
    elif isinstance(payload, dict):
        unknown_top = set(payload) - {"version", "jobs"}
        if unknown_top:
            raise ConfigError(
                f"trace file {path!r}: unknown top-level key "
                f"{sorted(unknown_top)[0]!r}")
        if "version" not in payload or "jobs" not in payload:
            missing = "version" if "version" not in payload else "jobs"
            raise ConfigError(
                f"trace file {path!r}: missing top-level key "
                f"{missing!r}")
        version = payload["version"]
        if not isinstance(version, int) or isinstance(version, bool):
            raise ConfigError(
                f"trace file {path!r}: version must be an integer, "
                f"got {version!r}")
        if version > TRACE_SCHEMA_VERSION:
            raise ConfigError(
                f"trace file {path!r}: schema version {version} is "
                f"newer than supported version {TRACE_SCHEMA_VERSION}")
        if version < 1:
            raise ConfigError(
                f"trace file {path!r}: invalid schema version "
                f"{version}")
        entries = payload["jobs"]
        if not isinstance(entries, list):
            raise ConfigError(
                f"trace file {path!r}: 'jobs' must be a list, got "
                f"{type(entries).__name__}")
    else:
        raise ConfigError(
            f"trace file {path!r}: expected a versioned trace object "
            f"or a job list, got {type(payload).__name__}")
    jobs: List[Job] = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ConfigError(
                f"trace file {path!r}: job entry {i} is not an "
                f"object")
        unknown = set(entry) - _JOB_FIELDS
        if unknown:
            raise ConfigError(
                f"trace file {path!r}: job entry {i} has unknown key "
                f"{sorted(unknown)[0]!r}")
        missing = _REQUIRED_JOB_FIELDS - set(entry)
        if missing:
            raise ConfigError(
                f"trace file {path!r}: job entry {i} is missing key "
                f"{sorted(missing)[0]!r}")
        jobs.append(Job(**entry))
    return jobs
