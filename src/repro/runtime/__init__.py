"""Deterministic multi-device serving runtime.

The serving layer above the single-accelerator substrate: a trace of
kernel/solver requests is admitted through a bounded queue and executed
over a pool of independently-seeded
:class:`~repro.core.accelerator.Alrescha` devices, with per-device
circuit breakers, deadline enforcement, retry-on-another-device, and
graceful degradation to the golden reference kernels.  Everything runs
on simulated cycles under seeded RNG — no wall clock, no threads — so a
whole serve run is bit-reproducible and unit-testable.

Quick start::

    from repro.runtime import serve
    results, report = serve(n_requests=200, n_devices=4,
                            fault_rate=0.05, seed=7)
    print(report.render())
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.runtime.autoscale import AutoscaleConfig, Autoscaler
from repro.runtime.events import Event, EventKind, EventQueue
from repro.runtime.jobs import (
    JOB_KERNELS,
    Job,
    JobResult,
    JobStatus,
    TraceSpec,
    dump_trace,
    load_trace,
    make_trace,
)
from repro.runtime.metrics import (
    AutoscaleReport,
    DeviceStats,
    PoolReport,
    build_report,
    percentile,
)
from repro.runtime.pool import (
    Attempt,
    CircuitBreaker,
    Device,
    DevicePool,
    HealthWindow,
    value_crc,
)
from repro.runtime.fleet import (
    Fleet,
    FleetConfig,
    FleetReport,
    PoolStats,
    fleet_report_json,
    serve_fleet,
)
from repro.runtime.jobs import TRACE_SCHEMA_VERSION
from repro.runtime.scheduler import Eviction, Scheduler, SchedulerConfig
from repro.sim.chaos import ChaosModel, Incident, PoolChaosModel

__all__ = [
    "JOB_KERNELS",
    "Attempt",
    "AutoscaleConfig",
    "AutoscaleReport",
    "Autoscaler",
    "ChaosModel",
    "CircuitBreaker",
    "Device",
    "DevicePool",
    "DeviceStats",
    "Event",
    "EventKind",
    "EventQueue",
    "Eviction",
    "Fleet",
    "FleetConfig",
    "FleetReport",
    "HealthWindow",
    "Incident",
    "Job",
    "JobResult",
    "JobStatus",
    "PoolChaosModel",
    "PoolReport",
    "PoolStats",
    "Scheduler",
    "SchedulerConfig",
    "TRACE_SCHEMA_VERSION",
    "TraceSpec",
    "build_report",
    "dump_trace",
    "fleet_report_json",
    "load_trace",
    "make_trace",
    "percentile",
    "serve",
    "serve_fleet",
    "value_crc",
]


def serve(n_requests: int, n_devices: int = 4, fault_rate: float = 0.0,
          seed: int = 0, scale: float = 0.05,
          workloads: Optional[Tuple[Tuple[str, str], ...]] = None,
          trace: Optional[List[Job]] = None,
          scheduler_config: Optional[SchedulerConfig] = None,
          tracer=None, max_batch: int = 1,
          execution: str = "simulate",
          chaos: Optional[ChaosModel] = None,
          hedge_after: Optional[float] = None,
          artifact_store=None,
          autoscale: Optional[AutoscaleConfig] = None,
          **trace_kwargs) -> Tuple[List[JobResult], PoolReport]:
    """Serve a seeded workload trace over a fresh device pool.

    Builds the trace (unless one is passed explicitly via ``trace``),
    the pool and the scheduler from ``seed`` and runs to completion.
    Two calls with identical arguments produce field-for-field
    identical :class:`PoolReport`\\ s — the determinism contract the
    property tests pin down.  Extra keyword arguments are forwarded to
    :class:`TraceSpec` (e.g. ``deadline_range``,
    ``mean_interarrival_cycles``).

    ``tracer`` (a :class:`~repro.observe.tracer.Tracer`) records job
    spans per ``device<N>`` track, degraded fallbacks on ``reference``
    and shed jobs on ``scheduler``; ``None`` changes nothing.

    ``max_batch > 1`` lets the scheduler coalesce compatible queued
    requests into multi-RHS dispatches that stream the matrix payload
    once per batch; ``1`` (the default) disables coalescing.  Ignored
    when an explicit ``scheduler_config`` is supplied (set
    :attr:`SchedulerConfig.max_batch` there instead).

    ``execution="model"`` prices attempts from the golden nominal-cycle
    caches instead of running kernels — identical scheduling decisions
    and cycle arithmetic, no numerics (``value_crc`` is 0) — which is
    what makes 100k–1M-job traces feasible (the load benchmarks).

    ``chaos`` (a :class:`~repro.sim.chaos.ChaosModel`) attaches the
    device-lifecycle chaos layer: seeded crashes and hangs per device,
    survived via salvage/retry, breaker quarantine and verified
    recovery.  ``hedge_after`` enables hedged dispatch at that multiple
    of the nominal estimate.  Both default off, and off means *inert*:
    the scheduler runs its exact historical eager path and the report
    is field-identical to one from before the chaos layer existed.
    Ignored when an explicit ``scheduler_config`` is supplied (set
    :attr:`SchedulerConfig.hedge_after` there instead; ``chaos`` still
    applies — it is pool state, not scheduler policy).

    ``artifact_store`` (a :class:`~repro.store.ArtifactStore`) resolves
    every device's programming phase through a content-addressed cache:
    a primed store serves the whole run with zero compilations (its
    :class:`~repro.store.StoreReport` counters prove it) while answers
    and reports stay byte-identical.  ``None`` — the default — is the
    storeless path, bit-identical to pre-store behaviour.

    ``autoscale`` (an :class:`~repro.runtime.autoscale.AutoscaleConfig`)
    makes the pool's device count elastic: ``n_devices`` is the
    starting size, grown to ``min_devices`` at cycle 0 if below the
    floor, then scaled within ``[min_devices, max_devices]`` by
    queue-depth and health signals with drain-before-remove semantics.
    ``None`` — the default — keeps capacity frozen and the report
    field-identical to the pre-autoscale runtime.
    """
    if trace is None:
        spec_kwargs = dict(n_requests=n_requests, seed=seed, scale=scale,
                           **trace_kwargs)
        if workloads is not None:
            spec_kwargs["workloads"] = workloads
        trace = make_trace(TraceSpec(**spec_kwargs))
    pool = DevicePool(n_devices, fault_rate=fault_rate, seed=seed,
                      tracer=tracer, execution=execution, chaos=chaos,
                      artifact_store=artifact_store)
    if scheduler_config is None:
        scheduler_config = SchedulerConfig(max_batch=max_batch,
                                           hedge_after=hedge_after)
    scheduler = Scheduler(pool, scheduler_config, autoscale=autoscale)
    return scheduler.run(trace)
