"""Deterministic simulated-time scheduler over a device pool.

The scheduler is a discrete-event simulation cored on the heap-based
engine of :mod:`repro.runtime.events`.  All time is in simulated
cycles — the same clock :class:`~repro.core.report.SimReport`
accumulates — so a run is bit-reproducible from its seeds and needs no
threads, sleeps, or wall-clock reads.  Every future state change
(arrival, dispatch completion, retry readiness, breaker reopen,
deadline expiry) is a typed event pushed when it becomes known; the
main loop pops the earliest one in O(log n) instead of re-scanning
every queue and device per clock advance.  Coincident events are
processed under the explicit total order ``(cycle, kind, key, seq)``
documented in :mod:`repro.runtime.events` — every tie is broken by an
explicit total order, never by hash or identity.

Policies
--------
* **Admission / backpressure** — the waiting queue is bounded.  A job
  arriving with ``deadline_cycles <= 0`` or to a full queue raises
  :class:`~repro.errors.RejectedError` internally and finishes
  ``REJECTED`` immediately: the runtime sheds load explicitly rather
  than queueing unboundedly.  High-priority jobs may use a small
  reserve beyond the base queue depth.
* **Deadlines** — enforced against the simulated clock.  A job whose
  deadline expires while queued is finalised ``TIMEOUT`` (via
  :class:`~repro.errors.DeadlineError`) without occupying a device; a
  job that completes past its deadline is also ``TIMEOUT`` (the answer
  stays attached — it is correct, merely late).  The strict-``>``
  boundary rule is uniform across every completion path, including the
  degraded reference path: a job finishing *exactly* at its deadline
  met it.  A job that cannot possibly run again before its deadline (a
  post-fault requeue whose retry-ready cycle lies beyond it) is
  finalised at the deadline cycle itself via a deadline-expiry event,
  so its ``finish_cycle``/``latency_cycles`` never inflate past the
  deadline.
* **Retry-on-another-device** — a :class:`~repro.errors.FaultError` or
  :class:`~repro.errors.CorruptionError` consumes one attempt, charges
  the sick device the wasted cycles, feeds its breaker, and requeues
  the job for a device it has not tried yet.
* **Graceful degradation** — when attempts are exhausted (or every
  breaker is open), the job runs on the golden reference kernels and
  finishes ``DEGRADED``: numerically correct, explicitly marked, priced
  at ``reference_slowdown`` × the workload's nominal cycles.  The
  runtime never silently returns a wrong or missing answer; ``FAILED``
  is reserved for jobs no path could answer (e.g. an unknown dataset).
* **Chaos survival** — when the pool carries a
  :class:`~repro.sim.chaos.ChaosModel`, devices crash and hang as
  typed events.  A crash voids the device's in-flight attempt (the
  attempt is uncharged — cycles trimmed, the attempt-budget slot
  refunded — and the job requeues for another device), quarantines the
  breaker until the paired ``DEVICE_RECOVER``, and then probes it
  half-open.  A hang stretches the in-flight attempt by the stall and
  blocks new placements until it clears.  Infrastructure loss alone
  never produces ``FAILED``.
* **Hedged dispatch** — with ``hedge_after`` set, a solo attempt that
  has run ``hedge_after ×`` its golden nominal estimate without
  completing may spawn one speculative duplicate on a healthy untried
  device.  First verified answer wins; the loser is cancelled through
  lazy event deletion, its device time trimmed to the cycles actually
  occupied, and both attempts stay honestly counted (``attempts``,
  ``hedges_launched``/``hedges_won``).

Execution modes of the loop itself
----------------------------------
Chaos-free and hedge-free, attempts finalise *eagerly at dispatch* —
the historical code path, bit-identical to the scheduler before the
chaos layer existed (the fingerprint corpus pins this).  With chaos or
hedging configured the loop runs in *lifecycle* mode: an attempt's
outcome is deferred to its ``DISPATCH_COMPLETE`` event so that crashes,
hangs and hedge races can intervene mid-flight.  Deferred completion
events validate by object identity against the device's single
in-flight record — a postponed or cancelled attempt leaves its old
event to die stale in the heap.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    ConfigError,
    DeadlineError,
    RejectedError,
    ReproError,
)
from repro.runtime.autoscale import AutoscaleConfig, Autoscaler
from repro.runtime.events import Event, EventKind, EventQueue
from repro.runtime.jobs import Job, JobResult, JobStatus
from repro.runtime.metrics import PoolReport, build_report
from repro.runtime.pool import (
    BATCHABLE_KERNELS,
    DEFAULT_REFERENCE_SLOWDOWN,
    Device,
    DevicePool,
    value_crc,
)


@dataclass(frozen=True)
class SchedulerConfig:
    """Serving-policy knobs (cycle units are simulated cycles)."""

    #: Bounded waiting-queue depth for normal-priority jobs.
    queue_depth: int = 32
    #: Extra queue slots only jobs with priority >= 2 may occupy.
    high_priority_reserve: int = 8
    #: Accelerator attempts per job before degrading to the reference.
    max_attempts: int = 3
    #: Latency multiplier of the reference fallback vs nominal cycles.
    reference_slowdown: float = DEFAULT_REFERENCE_SLOWDOWN
    #: Most jobs one device dispatch may fuse into a multi-RHS batch
    #: (same dataset/scale/kernel, enough deadline slack).  1 disables
    #: coalescing entirely — the scheduler then behaves exactly as it
    #: did before batching existed.
    max_batch: int = 1
    #: Hedged-dispatch threshold: once a solo attempt has been in
    #: flight for ``hedge_after ×`` the workload's golden nominal
    #: cycles, launch one speculative duplicate on a healthy untried
    #: device.  ``None`` disables hedging (and, absent chaos, keeps
    #: the scheduler on its eager dispatch-time path).  Batched
    #: dispatches never hedge.
    hedge_after: Optional[float] = None

    def __post_init__(self) -> None:
        # Construction-time validation of the numeric knobs: zero or
        # negative values used to fail later or silently disable the
        # feature (max_batch=0 meant "no batching", queue_depth=0
        # rejected everything) — each is a misconfiguration, named at
        # the moment the config is written, not when a scheduler first
        # consumes it.
        for name in ("queue_depth", "max_attempts", "max_batch"):
            value = getattr(self, name)
            if value < 1:
                raise ConfigError(f"{name} must be >= 1, got {value}")
        if self.high_priority_reserve < 0:
            raise ConfigError(
                f"high_priority_reserve must be >= 0, got "
                f"{self.high_priority_reserve}")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ConfigError(
                f"hedge_after must be positive (a multiple of the "
                f"nominal estimate), got {self.hedge_after}")


class _JobState:
    """Mutable scheduling state for one admitted job."""

    __slots__ = ("job", "ready", "attempts", "tried", "flights",
                 "hedge_event")

    def __init__(self, job: Job) -> None:
        self.job = job
        #: Earliest cycle the job may next be dispatched.
        self.ready = job.arrival_cycle
        self.attempts = 0
        self.tried: Set[int] = set()
        #: Live in-flight attempts (lifecycle mode): one normally, two
        #: while a hedge race is on, empty while queued.
        self.flights: List["_Flight"] = []
        #: The job's current HEDGE_TIMER event; identity-checked on
        #: pop, so a requeue-then-redispatch strands the old timer.
        self.hedge_event: Optional[Event] = None

    @property
    def deadline_at(self) -> float:
        return self.job.arrival_cycle + self.job.deadline_cycles


class _Flight:
    """One deferred in-flight attempt (lifecycle mode only).

    The outcome ``att`` is drawn at dispatch — device fault streams
    stay bit-identical to eager mode — but nothing is *applied* until
    the flight's ``DISPATCH_COMPLETE`` event is consumed, so a crash
    can void it, a hang can stretch it, and a hedge twin can beat it.
    """

    __slots__ = ("states", "att", "device", "start", "finish", "hedge",
                 "complete_event")

    def __init__(self, states: List[_JobState], att, device,
                 start: float, finish: float, hedge: bool,
                 complete_event: Event) -> None:
        self.states = states
        self.att = att
        self.device = device
        self.start = start
        #: Scheduled completion cycle; a hang pushes it out (and
        #: replaces ``complete_event``).
        self.finish = finish
        #: True for a speculative hedge duplicate.
        self.hedge = hedge
        #: The live completion event — validity is object identity, so
        #: superseded events die stale in the heap.
        self.complete_event = complete_event


@dataclass(frozen=True)
class Eviction:
    """A job a pool outage handed back to the fleet.

    Eviction is the pool-level analogue of the crash contract's
    requeue: the job is not failed, merely homeless.  ``attempts``
    carries the accelerator attempts the job consumed in this pool
    (voided in-flight attempts already refunded), so the fleet can
    keep the final result's attempt count honest across pools.
    """

    job: Job
    #: Cycle the job left the pool (outage onset, or its arrival cycle
    #: for a job arriving mid-outage).
    cycle: float
    attempts: int


class Scheduler:
    """Runs a trace of jobs over a :class:`DevicePool` to completion."""

    def __init__(self, pool: DevicePool,
                 config: Optional[SchedulerConfig] = None,
                 lifecycle: bool = False,
                 autoscale: Optional[AutoscaleConfig] = None) -> None:
        self.pool = pool
        self.config = config or SchedulerConfig()
        #: Elastic-capacity policy; ``None`` — the default — keeps the
        #: pool at its construction-time size and the whole run
        #: field-identical to the pre-autoscale scheduler.
        self.autoscale_config = autoscale
        #: The live :class:`Autoscaler` (built per :meth:`start`).
        self.autoscaler: Optional[Autoscaler] = None
        self.queue_peak = 0
        #: Fused dispatches that produced answers, jobs served inside
        #: them, and DRAM bytes they avoided vs solo service.
        self.batches = 0
        self.batched_jobs = 0
        self.stream_bytes_saved = 0.0
        #: Hedged-dispatch and chaos counters for the report (reset
        #: per :meth:`run`).
        self.hedges_launched = 0
        self.hedges_won = 0
        self.crashes = 0
        self.hangs = 0
        self.recoveries = 0
        #: The run's event heap (rebuilt per :meth:`run`); kept on the
        #: instance so tests and load benchmarks can read its counters.
        self.events = EventQueue()
        #: Whether attempts defer finalisation to DISPATCH_COMPLETE.
        #: False runs the exact historical eager path — the chaos-free
        #: identity guarantee depends on this staying False when
        #: neither chaos nor hedging is configured.  The fleet passes
        #: ``lifecycle=True`` when pool-level chaos may strike: an
        #: outage can only void an attempt that is still *deferred*.
        self._lifecycle = (self.pool.chaos is not None
                           or self.config.hedge_after is not None
                           or lifecycle)
        #: Admitted-job states by id (HEDGE_TIMER lookups).
        self._states: Dict[int, _JobState] = {}
        #: Each device's pending (not yet fully applied) incident.
        self._incidents: Dict[int, object] = {}
        #: Live deferred flights — the run loop must not exit while
        #: any remain, even with the queues drained.
        self._inflight = 0
        # ---- resumable-session state (populated by :meth:`start`)
        self._arrivals: deque = deque()
        self._waiting: List[_JobState] = []
        self._results: Dict[int, JobResult] = {}
        self._now = 0.0
        #: The wake :meth:`peek_cycle` popped but has not yet consumed.
        self._held: Optional[Event] = None
        self._seen: Set[int] = set()
        # ---- fleet hooks: pool-outage state and eviction hand-off
        self._pool_down = False
        self._outage_began = 0.0
        #: Devices the current outage forced down (readmission restores
        #: exactly these; a device that crashed on its own during the
        #: outage is removed and left to its own DEVICE_RECOVER).
        self._outage_held: Set[int] = set()
        self._evicted: List[Eviction] = []
        self._evicted_ids: Set[int] = set()
        self.outages = 0
        self.pool_downtime_cycles = 0.0

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def admit(self, job: Job, queue_length: int) -> None:
        """Raise :class:`RejectedError` unless the job may be admitted."""
        if job.deadline_cycles <= 0:
            raise RejectedError(
                f"job {job.job_id}: zero deadline budget is not "
                f"serviceable")
        capacity = self.config.queue_depth
        if job.priority >= 2:
            capacity += self.config.high_priority_reserve
        if queue_length >= capacity:
            raise RejectedError(
                f"job {job.job_id}: queue full "
                f"({queue_length}/{capacity})")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> Tuple[List[JobResult], PoolReport]:
        """Serve every job; returns results (job order) and the report.

        The solo composition of :meth:`start` / :meth:`advance` /
        :meth:`finish` — bit-identical to the historical single-call
        loop (the fingerprint corpus pins this).
        """
        self.start(jobs)
        while self.advance():
            pass
        return self.finish()

    def start(self, jobs: Sequence[Job]) -> None:
        """Open a serving session: arrival events, chaos bootstrap, and
        the cycle-0 admit/dispatch pass.

        ``start``/``advance``/``finish`` decompose the run loop so a
        fleet layer can interleave N schedulers on one global clock:
        :meth:`peek_cycle` exposes the next wake without consuming it,
        :meth:`advance` consumes exactly one, and the fleet always
        advances whichever source (session wake or fleet event) is
        globally earliest — so an injected job is never in this
        session's past.
        """
        seen: Set[int] = set()
        for j in jobs:
            if j.job_id in seen:
                raise ConfigError(
                    f"duplicate job_id {j.job_id} in trace: results are "
                    f"keyed by job id, so one of the duplicates would "
                    f"silently overwrite the other")
            seen.add(j.job_id)

        self._seen = seen
        self._arrivals = deque(sorted(
            jobs, key=lambda j: (j.arrival_cycle, j.job_id)))
        self._waiting = []
        self._results = {}
        self.events = events = EventQueue()
        self._states = {}
        self._incidents = {}
        self._inflight = 0
        self._now = 0.0
        self._held = None
        self._pool_down = False
        self._outage_began = 0.0
        self._outage_held = set()
        self._evicted = []
        self._evicted_ids = set()
        self.outages = 0
        self.pool_downtime_cycles = 0.0
        self.hedges_launched = self.hedges_won = 0
        self.crashes = self.hangs = self.recoveries = 0
        for j in self._arrivals:
            events.push(j.arrival_cycle, EventKind.ARRIVAL, j.job_id)
        if self.pool.chaos is not None:
            # Bootstrap one pending incident per device; the next one
            # is drawn only when this one's recovery is consumed, so
            # each device's incident history is strictly sequential.
            for device in self.pool.devices:
                self._schedule_incident(device, 0.0)
        self.autoscaler = None
        if self.autoscale_config is not None:
            cfg = self.autoscale_config
            if len(self.pool) > cfg.max_devices:
                raise ConfigError(
                    f"pool has {len(self.pool)} devices but autoscale "
                    f"max_devices is {cfg.max_devices}; the initial "
                    f"pool must fit inside the scaling bounds")
            self.autoscaler = Autoscaler(cfg)
            self.autoscaler.note_capacity(0.0, len(self.pool))
            # Grow to the floor before serving starts; the adds count
            # as provisioned devices but not as scale-up decisions.
            while len(self.pool) < cfg.min_devices:
                self._provision_device(0.0)
            events.push(cfg.eval_interval_cycles, EventKind.SCALE_EVAL,
                        0)

        # Mirror of the scan-based loop's first iteration: admit and
        # dispatch anything actionable at cycle 0 before the first
        # clock advance.
        self._step(self._now, self._arrivals, self._waiting,
                   self._results)

    def pending(self) -> bool:
        """Whether the session still has work (queued or in flight)."""
        return bool(self._arrivals or self._waiting or self._inflight)

    def peek_cycle(self) -> Optional[float]:
        """Cycle of the session's next wake, without consuming it.

        ``None`` when the session is drained.  A pending session with
        no future event (nothing can unblock its queue) reports the
        *current* cycle: the fleet must still call :meth:`advance` so
        the stranded jobs shed to the reference path.
        """
        if not self.pending():
            return None
        if self._held is None:
            self._held = self._next_wake(self._now, self._waiting,
                                         self._results)
        if self._held is None:
            return self._now
        return self._held.cycle

    def advance(self) -> bool:
        """Consume the session's next wake; False when drained."""
        if not self.pending():
            return False
        if self._held is None:
            self._held = self._next_wake(self._now, self._waiting,
                                         self._results)
        wake, self._held = self._held, None
        if wake is None:
            # No future event can unblock the queue (should be
            # unreachable — degradation guarantees progress); shed
            # whatever is left rather than spin.
            for state in list(self._waiting):
                self._waiting.remove(state)
                self._degrade(state, self._now, self._results)
            return False
        self._now = wake.cycle
        self._consume_at(wake, self._now, self._waiting, self._results)
        self._step(self._now, self._arrivals, self._waiting,
                   self._results)
        return True

    def finish(self) -> Tuple[List[JobResult], PoolReport]:
        """Close the session: device summary spans plus the report.

        Results are ordered by job id and cover exactly the jobs this
        scheduler finalised — a job the fleet evicted mid-outage
        belongs to whichever pool (or fleet-level fallback) answered
        it.
        """
        self._trace_devices()
        ordered = [self._results[jid] for jid in sorted(self._results)]
        autoscale_report = None
        if self.autoscaler is not None:
            makespan = max((r.finish_cycle for r in ordered),
                           default=0.0)
            autoscale_report = self.autoscaler.finalize(
                max(makespan, self._now))
        return ordered, build_report(
            ordered, self.pool, self.queue_peak, batches=self.batches,
            batched_jobs=self.batched_jobs,
            stream_bytes_saved=self.stream_bytes_saved,
            events_processed=self.events.popped - self.events.stale,
            events_stale=self.events.stale,
            hedges_launched=self.hedges_launched,
            hedges_won=self.hedges_won,
            crashes=self.crashes, hangs=self.hangs,
            recoveries=self.recoveries,
            autoscale=autoscale_report)

    # ------------------------------------------------------------------
    # Fleet hooks: job injection, pool outage, probe-gated readmission
    # ------------------------------------------------------------------
    def _drop_hold(self) -> None:
        """Requeue a peeked-but-unconsumed wake before fleet mutations.

        An outage, readmission or injected job can invalidate (or
        pre-empt) the event :meth:`peek_cycle` is holding; putting it
        back unchanged lets the next peek re-validate it against the
        mutated state.
        """
        if self._held is not None:
            self.events.requeue(self._held)
            self._held = None

    def add_job(self, job: Job) -> None:
        """Inject a job into the running session (fleet re-route).

        ``job.arrival_cycle`` must not lie in the session's past — the
        fleet's global-min stepping guarantees every pool's clock is at
        or behind any event being processed.
        """
        self._drop_hold()
        if job.job_id in self._seen:
            raise ConfigError(
                f"job {job.job_id} was already routed to this pool; "
                f"the fleet must never re-route a job back")
        self._seen.add(job.job_id)
        items = list(self._arrivals)
        bisect.insort(items, job,
                      key=lambda j: (j.arrival_cycle, j.job_id))
        self._arrivals = deque(items)
        self.events.push(job.arrival_cycle, EventKind.ARRIVAL,
                         job.job_id)

    def take_evicted(self) -> List[Eviction]:
        """Drain the jobs the pool has handed back since the last call."""
        out, self._evicted = self._evicted, []
        return out

    def _eject(self, state: _JobState, now: float) -> None:
        """Hand one job back to the fleet (never a terminal result)."""
        jid = state.job.job_id
        self._evicted.append(Eviction(job=state.job, cycle=now,
                                      attempts=state.attempts))
        self._evicted_ids.add(jid)
        self._states.pop(jid, None)
        if self.pool.tracer is not None:
            self.pool.tracer.instant_event(
                f"evict#{jid}", "evict", now,
                self.pool.track("scheduler"))

    def begin_outage(self, now: float) -> None:
        """The whole pool goes dark at ``now`` (fleet POOL_OUTAGE).

        Mirrors the per-device crash contract at pool scale: every
        in-flight attempt is voided — busy cycles refunded, the
        attempt-budget slot refunded, the device dropped from
        ``tried`` — and every orphaned or queued job is *ejected* to
        the fleet rather than requeued locally.  Devices are forced
        down with quarantined breakers; :meth:`readmit` restores
        exactly the devices this outage took (one that crashes on its
        own mid-outage is left to its own recovery chain).
        """
        self._drop_hold()
        if self._pool_down:
            raise ConfigError(
                "pool outage drawn while the pool is already down: "
                "pool incidents must be strictly sequential")
        self._pool_down = True
        self._outage_began = now
        self.outages += 1
        for device in self.pool.devices:
            flight = device.inflight
            if flight is not None:
                device.busy_cycles -= flight.finish - now
                device.busy_until = now
                device.record_flight(
                    [s.job for s in flight.states], self.pool,
                    flight.start, now, ok=False,
                    error="pool outage voided attempt", cat="voided")
                device.inflight = None
                self._inflight -= 1
                for s in flight.states:
                    s.flights.remove(flight)
                    s.attempts -= 1
                    s.tried.discard(device.device_id)
                    if (not s.flights
                            and s.job.job_id not in self._results):
                        self._eject(s, now)
            if device.up:
                device.up = False
                device.down_since = now
                device.breaker.force_open(now)
                self._outage_held.add(device.device_id)
        for state in list(self._waiting):
            self._waiting.remove(state)
            self._eject(state, now)

    def run_probe(self, job: Job, now: float) -> Tuple[bool, float]:
        """Run one recovery probe on the pool's designated device.

        Called by the fleet while the pool is still down: the probe is
        a real attempt on device 0 (charged as genuine occupancy, so
        recovery is never free), bypassing admission and the breaker —
        the pool-level gate is this probe's outcome, the device-level
        half-open probes follow after readmission.  Returns
        ``(ok, finish_cycle)``.
        """
        self._drop_hold()
        # First live device: slot 0 unless the autoscaler withdrew it.
        device = next((d for d in self.pool.devices
                       if not d.retired and not d.draining),
                      self.pool.devices[0])
        att = device.attempt(job, self.pool, now=now, record=False)
        finish = now + att.cycles
        device.busy_cycles += att.cycles
        device.busy_until = max(device.busy_until, finish)
        device.record_flight([job], self.pool, now, finish,
                             ok=att.ok, error=att.error, cat="probe")
        return att.ok, finish

    def readmit(self, now: float) -> None:
        """End the outage: restore the devices it took (fleet-verified).

        Only called after a successful probe.  Restored breakers leave
        quarantine into an immediately-probeable open state, so each
        device's first real dispatch is its own half-open probe —
        recovery stays verified at both levels.
        """
        self._drop_hold()
        self._pool_down = False
        self.pool_downtime_cycles += now - self._outage_began
        for device_id in sorted(self._outage_held):
            device = self.pool.devices[device_id]
            device.up = True
            device.breaker.end_quarantine(now)
        self._outage_held.clear()

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _step(self, now: float, arrivals, waiting: List[_JobState],
              results: Dict[int, JobResult]) -> None:
        """One wake of the engine: admit everything due, then dispatch
        until no further progress is possible at this cycle."""
        while arrivals and arrivals[0].arrival_cycle <= now:
            self._admit_at(arrivals.popleft(), waiting, results)
        self._dispatch(now, waiting, results)

    def _valid(self, event: Event, now: float,
               results: Dict[int, JobResult]) -> bool:
        """Whether a popped event still describes live state.

        The heap is append-only (lazy deletion), so an event may
        outlive the state change it announced: a job that finished
        before its deadline, a breaker that was probed or re-tripped.
        Stale events must be *skipped without waking the engine* —
        an extra wake would run the queued-expiry check at a cycle the
        event order does not define, shifting timeout finalisation.
        """
        kind = event.kind
        if kind == EventKind.ARRIVAL:
            return True
        if kind == EventKind.DISPATCH_COMPLETE:
            if not self._lifecycle:
                # Pushed at dispatch with the device's busy_until; a
                # device is never redispatched before it completes, so
                # each completion event matches exactly one real
                # transition.
                return True
            # Deferred completions validate by identity: a hang
            # replaces the flight's event, a crash or hedge
            # cancellation removes the flight entirely, and the
            # superseded event must die stale.
            flight = self.pool.devices[event.key].inflight
            return (flight is not None
                    and flight.complete_event is event)
        if kind == EventKind.BREAKER_REOPEN:
            breaker = self.pool.devices[event.key].breaker
            return breaker.reopen_at == event.cycle
        if kind in (EventKind.DEVICE_CRASH, EventKind.DEVICE_HANG,
                    EventKind.DEVICE_RECOVER):
            # Each is pushed exactly once per incident and incidents
            # per device are strictly sequential — never stale.
            return True
        if kind == EventKind.HEDGE_TIMER:
            state = self._states.get(event.key)
            return (state is not None
                    and event.key not in results
                    and state.hedge_event is event
                    and len(state.flights) == 1
                    and not state.flights[0].hedge)
        if kind in (EventKind.SCALE_EVAL, EventKind.DEVICE_ADD):
            # One SCALE_EVAL is live at a time (re-armed on consume)
            # and every DEVICE_ADD lands exactly once — never stale.
            return True
        if kind == EventKind.DEVICE_DRAIN:
            # Identity-validated like deferred completions: a drain
            # re-armed past in-flight work strands its old event.
            device = self.pool.devices[event.key]
            return (device.draining and not device.retired
                    and device.drain_event is event)
        # RETRY_READY / DEADLINE_EXPIRY concern a job that must still
        # be in flight (admitted, no terminal result yet, not handed
        # back to the fleet by a pool outage).
        return (event.key not in results
                and event.key not in self._evicted_ids)

    def _next_wake(self, now: float, waiting: List[_JobState],
                   results: Dict[int, JobResult]) -> Optional[Event]:
        """Pop until the earliest strictly-future valid event."""
        events = self.events
        while events:
            event = events.pop()
            if event.cycle <= now or not self._valid(event, now, results):
                events.mark_stale()
                continue
            return event
        return None

    def _consume_at(self, wake: Event, now: float,
                    waiting: List[_JobState],
                    results: Dict[int, JobResult]) -> None:
        """Drain every event coincident with ``wake`` and apply the
        ones with their own effect.

        Most events only *wake* the engine — the dispatch pass that
        follows reads live state and does the work.  The exception is
        ``DEADLINE_EXPIRY`` for a job whose retry-ready cycle lies
        strictly beyond its deadline: that job cannot be dispatched at
        the deadline cycle (or ever before it), so it is finalised
        ``TIMEOUT`` here, *at* the deadline — the scan-based engine
        left it pending until its retry became ready and then stamped
        the inflated cycle on it.

        In lifecycle mode the completion, chaos and hedge events also
        carry their own effect, applied here in the documented
        coincident order (kind, then key): a job completing the cycle
        its device crashes completes *before* the crash voids
        anything.  Each effectful event is re-validated immediately
        before it applies — an earlier coincident event may have
        cancelled it (e.g. the primary finishing at the same cycle as
        its hedge twin) — and marked stale if so.
        """
        pending = [wake]
        events = self.events
        while events:
            head = events.peek()
            if head is None or head.cycle != now:
                break
            pending.append(events.pop())
        for event in pending:
            kind = event.kind
            if kind == EventKind.DEADLINE_EXPIRY:
                state = next((s for s in waiting
                              if s.job.job_id == event.key), None)
                if state is None or state.ready <= now:
                    # Dispatchable at its deadline cycle: the
                    # strict-`>` boundary rule lets it still be placed
                    # this wake.
                    continue
                waiting.remove(state)
                self._finalize_timeout(state, now, results)
                continue
            # Autoscale events carry their own effect in *both* loop
            # modes — elasticity is orthogonal to chaos/hedging.
            if kind == EventKind.SCALE_EVAL:
                self._scale_eval(now)
                continue
            if kind == EventKind.DEVICE_ADD:
                self._apply_device_add(now)
                continue
            if kind == EventKind.DEVICE_DRAIN:
                device = self.pool.devices[event.key]
                if (device.draining and not device.retired
                        and device.drain_event is event):
                    if device.busy_until > now:
                        # Still finishing work (a probe or hang pushed
                        # its horizon out): re-arm at the new horizon.
                        device.drain_event = events.push(
                            device.busy_until, EventKind.DEVICE_DRAIN,
                            device.device_id)
                    else:
                        self._retire(device, now)
                elif event is not wake:
                    events.mark_stale()
                continue
            if not self._lifecycle:
                continue  # every other kind is a pure wake
            if kind == EventKind.DISPATCH_COMPLETE:
                flight = self.pool.devices[event.key].inflight
                if flight is not None and flight.complete_event is event:
                    self._complete(flight, now, waiting, results)
                elif event is not wake:
                    events.mark_stale()
            elif kind == EventKind.DEVICE_CRASH:
                self._apply_crash(self.pool.devices[event.key], now,
                                  waiting, results)
            elif kind == EventKind.DEVICE_HANG:
                self._apply_hang(self.pool.devices[event.key], now)
            elif kind == EventKind.DEVICE_RECOVER:
                self._apply_recover(self.pool.devices[event.key], now)
            elif kind == EventKind.HEDGE_TIMER:
                if self._valid(event, now, results):
                    self._launch_hedge(self._states[event.key], now)
                elif event is not wake:
                    events.mark_stale()

    def _trace_devices(self) -> None:
        """Close a traced serve run: one summary span per device that
        ran, covering first dispatch to last idle, enclosing every job
        span on its track."""
        tracer = self.pool.tracer
        if tracer is None:
            return
        for d in self.pool.devices:
            if d.first_dispatch is None:
                continue
            tracer.add(f"device{d.device_id}", "device", d.first_dispatch,
                       max(d.busy_until, d.first_dispatch),
                       self.pool.track(f"device{d.device_id}"),
                       args={"jobs": float(d.jobs_run),
                             "busy_cycles": d.busy_cycles,
                             "breaker_trips": float(d.breaker.trips)})

    # ------------------------------------------------------------------
    def _admit_at(self, job: Job, waiting: List[_JobState],
                  results: Dict[int, JobResult]) -> None:
        if self._pool_down and job.deadline_cycles > 0:
            # Arrived mid-outage: infrastructure loss alone is never a
            # terminal verdict — hand the job to the fleet to re-route.
            # (Zero-deadline jobs fall through to the normal rejection:
            # no pool anywhere could serve them.)
            self._eject(_JobState(job), job.arrival_cycle)
            return
        try:
            self.admit(job, queue_length=len(waiting))
        except RejectedError as exc:
            results[job.job_id] = JobResult(
                job_id=job.job_id, status=JobStatus.REJECTED,
                finish_cycle=job.arrival_cycle, error=str(exc))
            if self.pool.tracer is not None:
                self.pool.tracer.instant_event(
                    f"reject#{job.job_id}", "reject", job.arrival_cycle,
                    self.pool.track("scheduler"))
            return
        state = _JobState(job)
        self._states[job.job_id] = state
        waiting.append(state)
        self.queue_peak = max(self.queue_peak, len(waiting))
        self.events.push(state.deadline_at, EventKind.DEADLINE_EXPIRY,
                         job.job_id)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, now: float, waiting: List[_JobState],
                  results: Dict[int, JobResult]) -> bool:
        """Place/finalise every job actionable at ``now``.

        Returns True when any progress was made (the caller re-enters
        before advancing the clock).
        """
        progressed = False
        while True:
            eligible = [s for s in waiting if s.ready <= now]
            if not eligible:
                return progressed
            # Deterministic service order: priority desc, then FIFO.
            eligible.sort(key=lambda s: (-s.job.priority, s.job.job_id))

            # 1. Expire deadlines of queued jobs before placing work.
            # Strictly past the deadline only: a job whose deadline
            # falls exactly on the current cycle may still be placed —
            # the completion path uses the same strict comparison, so a
            # job finishing exactly at its deadline is OK, not TIMEOUT.
            expired = [s for s in eligible if now > s.deadline_at]
            if expired:
                for state in expired:
                    waiting.remove(state)
                    self._finalize_timeout(state, now, results)
                progressed = True
                continue

            # ``available`` folds the lifecycle state (crashed or
            # hanging devices refuse) into the breaker gate; chaos-free
            # it reduces to exactly the old ``breaker.allows``.
            free = [d for d in self.pool.devices
                    if d.busy_until <= now and d.available(now)]

            # 2. Total outage: every device is out of service (crashed
            # or breaker-open) — shed the head-of-line job to the
            # reference path immediately instead of queueing against a
            # pool that is entirely sick.  A hanging device does not
            # count: its queued work will still run.
            if not free and self.pool.refusing(now) == len(self.pool):
                state = eligible[0]
                waiting.remove(state)
                self._degrade(state, now, results)
                progressed = True
                continue

            # 3. Place the best job on the best untried free device.
            placed = False
            for state in eligible:
                candidates = [d for d in free
                              if d.device_id not in state.tried]
                if not candidates:
                    continue
                # Least-loaded routing, id tie-break.  Deliberately
                # health-blind: the breaker is the health gate, and
                # biasing placement away from a shaky-but-closed device
                # would starve its window below min_samples so it could
                # never actually trip.
                device = min(candidates,
                             key=lambda d: (d.busy_cycles, d.device_id))
                batch = self._coalesce(state, device, eligible, now)
                for member in batch:
                    waiting.remove(member)
                if len(batch) == 1:
                    self._execute(state, device, now, waiting, results)
                else:
                    self._execute_batch(batch, device, now, waiting,
                                        results)
                placed = True
                progressed = True
                break
            if not placed:
                return progressed

    def _coalesce(self, lead: _JobState, device: Device,
                  eligible: List[_JobState],
                  now: float) -> List[_JobState]:
        """Greedy batch formation around the job about to dispatch.

        Queued jobs with the lead's exact ``(dataset, scale, kernel)``
        fuse into one multi-RHS dispatch, scanned in the same
        deterministic service order the lead was chosen by and bounded
        by ``max_batch``.  Only streaming kernels batch (``pcg``
        iterates internally).  A candidate joins only while *every*
        member — lead included — still clears the golden service time
        of the grown batch before its deadline: batching trades a
        slightly longer fused attempt for the amortized stream, and a
        deadline-tight job must not pay that trade.
        """
        job = lead.job
        if self.config.max_batch <= 1 or job.kernel not in BATCHABLE_KERNELS:
            return [lead]
        key = (job.dataset, job.scale, job.kernel)
        batch = [lead]
        for cand in eligible:
            if len(batch) >= self.config.max_batch:
                break
            if cand is lead:
                continue
            cj = cand.job
            if (cj.dataset, cj.scale, cj.kernel) != key:
                continue
            if device.device_id in cand.tried:
                continue
            est = self.pool.nominal_batch_cycles(job, len(batch) + 1)
            if any(now + est > s.deadline_at for s in batch):
                # Growing the batch at all would blow a member's
                # deadline; no later candidate can make it cheaper.
                break
            if now + est > cand.deadline_at:
                continue  # too tight for this candidate alone
            batch.append(cand)
        return batch

    # ------------------------------------------------------------------
    # Attempt execution and finalisation
    # ------------------------------------------------------------------
    def _execute(self, state: _JobState, device: Device, now: float,
                 waiting: List[_JobState],
                 results: Dict[int, JobResult]) -> None:
        job = state.job
        state.attempts += 1
        state.tried.add(device.device_id)
        device.breaker.on_dispatch(now)
        try:
            att = device.attempt(job, self.pool, now=now,
                                 record=not self._lifecycle)
        except ReproError as exc:
            # Not a device fault — the job itself is unserviceable
            # (unknown dataset/kernel, bad config).  No retry can help.
            # The dispatch says nothing about device health either, so
            # a half-open probe it claimed is released rather than
            # resolved: leaving it in flight would wedge the breaker
            # half-open forever and the device would never take
            # traffic again.
            device.breaker.release_probe()
            results[job.job_id] = JobResult(
                job_id=job.job_id, status=JobStatus.FAILED,
                device_id=device.device_id, attempts=state.attempts,
                finish_cycle=now,
                error=f"{type(exc).__name__}: {exc}")
            return
        finish = now + att.cycles
        device.busy_until = finish
        device.busy_cycles += att.cycles
        event = self.events.push(finish, EventKind.DISPATCH_COMPLETE,
                                 device.device_id)
        if self._lifecycle:
            # Defer everything — breaker verdict, result, spans — to
            # the completion event, so chaos and hedging can intervene
            # while the attempt is in flight.
            self._register_flight([state], att, device, now, finish,
                                  hedge=False, event=event)
            if self.config.hedge_after is not None and len(self.pool) > 1:
                hedge_at = (now + self.config.hedge_after
                            * self.pool.nominal_cycles(job))
                state.hedge_event = self.events.push(
                    hedge_at, EventKind.HEDGE_TIMER, job.job_id)
            return

        if att.ok:
            device.breaker.on_success()
            latency = finish - job.arrival_cycle
            if latency > job.deadline_cycles:
                status, error = JobStatus.TIMEOUT, (
                    f"completed {latency - job.deadline_cycles:.0f} "
                    f"cycles past deadline")
            else:
                status, error = JobStatus.OK, ""
            results[job.job_id] = JobResult(
                job_id=job.job_id, status=status,
                device_id=device.device_id, attempts=state.attempts,
                latency_cycles=latency, finish_cycle=finish,
                value_crc=(value_crc(att.values)
                           if att.values is not None else 0),
                error=error)
            return

        # Device fault: feed the breaker, then retry elsewhere or
        # degrade.  The breaker opens at the dispatch cycle so its
        # cooldown is measured purely in simulated time.
        self._on_attempt_failure(device, now)
        exhausted = (state.attempts >= self.config.max_attempts
                     or self.pool.untried_targets(state.tried) == 0)
        if exhausted:
            self._degrade(state, finish, results, last_error=att.error,
                          device_id=device.device_id)
        else:
            self._requeue(state, finish, waiting)

    def _on_attempt_failure(self, device: Device, now: float) -> None:
        """Feed the breaker; if this failure tripped it, schedule the
        cooldown-elapsed probe opportunity as an event."""
        device.breaker.on_failure(now)
        reopen = device.breaker.reopen_at
        if reopen is not None:
            self.events.push(reopen, EventKind.BREAKER_REOPEN,
                             device.device_id)

    def _requeue(self, state: _JobState, ready: float,
                 waiting: List[_JobState]) -> None:
        """Put a faulted job back in the queue, dispatchable at
        ``ready`` (the cycle its failed attempt released the device)."""
        state.ready = ready
        waiting.append(state)
        self.queue_peak = max(self.queue_peak, len(waiting))
        self.events.push(ready, EventKind.RETRY_READY, state.job.job_id)

    def _execute_batch(self, states: List[_JobState], device: Device,
                       now: float, waiting: List[_JobState],
                       results: Dict[int, JobResult]) -> None:
        """One fused multi-RHS attempt; per-job outcomes split out.

        The breaker sees the batch as a single dispatch/outcome — one
        payload stream either served everyone or faulted on everyone —
        while results, CRCs and latencies stay per job.  On a fault
        every member is requeued (or degraded) under its own attempt
        budget, exactly as if it had failed a solo attempt.
        """
        jobs = [s.job for s in states]
        for s in states:
            s.attempts += 1
            s.tried.add(device.device_id)
        device.breaker.on_dispatch(now)
        try:
            att = device.attempt_batch(jobs, self.pool, now=now,
                                       record=not self._lifecycle)
        except ReproError as exc:
            # Same rationale as the solo path: unserviceable work, not
            # a device verdict — release a claimed probe.
            device.breaker.release_probe()
            for s in states:
                results[s.job.job_id] = JobResult(
                    job_id=s.job.job_id, status=JobStatus.FAILED,
                    device_id=device.device_id, attempts=s.attempts,
                    finish_cycle=now,
                    error=f"{type(exc).__name__}: {exc}")
            return
        finish = now + att.cycles
        device.busy_until = finish
        device.busy_cycles += att.cycles
        event = self.events.push(finish, EventKind.DISPATCH_COMPLETE,
                                 device.device_id)
        if self._lifecycle:
            # Batched flights never hedge — one speculative duplicate
            # of a k-wide panel would double the panel's stream cost
            # for one straggler's tail.
            self._register_flight(list(states), att, device, now,
                                  finish, hedge=False, event=event)
            return

        if att.ok:
            device.breaker.on_success()
            self.batches += 1
            self.batched_jobs += len(jobs)
            solo_bytes = self.pool.nominal_dram_bytes(jobs[0])
            self.stream_bytes_saved += max(
                0.0, solo_bytes * len(jobs) - att.dram_bytes)
            for col, s in enumerate(states):
                job = s.job
                latency = finish - job.arrival_cycle
                if latency > job.deadline_cycles:
                    status, error = JobStatus.TIMEOUT, (
                        f"completed {latency - job.deadline_cycles:.0f} "
                        f"cycles past deadline")
                else:
                    status, error = JobStatus.OK, ""
                results[job.job_id] = JobResult(
                    job_id=job.job_id, status=status,
                    device_id=device.device_id, attempts=s.attempts,
                    latency_cycles=latency, finish_cycle=finish,
                    value_crc=(value_crc(att.values[:, col])
                               if att.values is not None else 0),
                    batch_size=len(jobs), error=error)
            return

        # One shared payload stream faulted on the whole batch: one
        # breaker outcome, every member retried or degraded on its own
        # attempt budget.
        self._on_attempt_failure(device, now)
        for s in states:
            exhausted = (s.attempts >= self.config.max_attempts
                         or self.pool.untried_targets(s.tried) == 0)
            if exhausted:
                self._degrade(s, finish, results, last_error=att.error,
                              device_id=device.device_id)
            else:
                self._requeue(s, finish, waiting)

    # ------------------------------------------------------------------
    # Lifecycle mode: deferred flights, hedging, chaos
    # ------------------------------------------------------------------
    def _register_flight(self, states: List[_JobState], att,
                         device: Device, start: float, finish: float,
                         hedge: bool, event: Event) -> None:
        flight = _Flight(states, att, device, start, finish, hedge,
                         event)
        device.inflight = flight
        for s in states:
            s.flights.append(flight)
        self._inflight += 1

    def _complete(self, flight: _Flight, now: float,
                  waiting: List[_JobState],
                  results: Dict[int, JobResult]) -> None:
        """Apply a deferred attempt's outcome at its completion cycle.

        The breaker is fed *here* — at the cycle the verdict exists —
        and the trace spans are recorded at the flight's true interval
        (a hang may have stretched it).  On success any hedge twin
        still in flight is cancelled; on failure a live twin keeps the
        job's fate open and nothing is requeued yet.
        """
        device = flight.device
        states = flight.states
        jobs = [s.job for s in states]
        att = flight.att
        device.inflight = None
        self._inflight -= 1
        for s in states:
            s.flights.remove(flight)

        if att.ok:
            device.record_flight(jobs, self.pool, flight.start, now,
                                 ok=True)
            device.breaker.on_success()
            if flight.hedge:
                self.hedges_won += 1
            if len(states) > 1:
                self.batches += 1
                self.batched_jobs += len(jobs)
                solo_bytes = self.pool.nominal_dram_bytes(jobs[0])
                self.stream_bytes_saved += max(
                    0.0, solo_bytes * len(jobs) - att.dram_bytes)
            for col, s in enumerate(states):
                job = s.job
                latency = now - job.arrival_cycle
                if latency > job.deadline_cycles:
                    status, error = JobStatus.TIMEOUT, (
                        f"completed "
                        f"{latency - job.deadline_cycles:.0f} "
                        f"cycles past deadline")
                else:
                    status, error = JobStatus.OK, ""
                if att.values is None:
                    crc = 0
                elif len(states) > 1:
                    crc = value_crc(att.values[:, col])
                else:
                    crc = value_crc(att.values)
                results[job.job_id] = JobResult(
                    job_id=job.job_id, status=status,
                    device_id=device.device_id, attempts=s.attempts,
                    latency_cycles=latency, finish_cycle=now,
                    value_crc=crc, batch_size=len(jobs), error=error,
                    hedged=flight.hedge)
                # First verified answer wins: a twin still racing is
                # cancelled, its device time trimmed to the cycles it
                # actually burned.
                for loser in list(s.flights):
                    self._cancel_flight(loser, now)
                    s.flights.remove(loser)
            return

        # Fault at completion: one breaker verdict, then each member
        # retries, degrades — or simply waits, if its hedge twin is
        # still racing and may yet answer.
        device.record_flight(jobs, self.pool, flight.start, now,
                             ok=False, error=att.error)
        self._on_attempt_failure(device, now)
        for s in states:
            if s.flights:
                continue
            exhausted = (s.attempts >= self.config.max_attempts
                         or self.pool.untried_targets(s.tried) == 0)
            if exhausted:
                self._degrade(s, now, results, last_error=att.error,
                              device_id=device.device_id)
            else:
                self._requeue(s, now, waiting)

    def _cancel_flight(self, flight: _Flight, now: float) -> None:
        """Cancel a hedge loser: trim its device to the cycles actually
        occupied and strand its completion event (lazy deletion).

        The attempt stays *counted* — it really dispatched and burned
        ``now - start`` cycles — but produces no breaker verdict (a
        race loss says nothing about device health, so a claimed
        half-open probe is released, not resolved) and never touches
        the job's result.
        """
        device = flight.device
        device.busy_cycles -= flight.finish - now
        device.busy_until = now
        device.breaker.release_probe()
        device.inflight = None
        self._inflight -= 1
        jobs = [s.job for s in flight.states]
        device.record_flight(jobs, self.pool, flight.start, now,
                             ok=False, error="hedge race lost",
                             cat="hedge_cancelled")
        if self.pool.tracer is not None:
            for job in jobs:
                self.pool.tracer.instant_event(
                    f"hedge_cancel#{job.job_id}", "hedge_cancel", now,
                    self.pool.track("scheduler"))

    def _launch_hedge(self, state: _JobState, now: float) -> None:
        """Launch the speculative duplicate a HEDGE_TIMER asked for.

        Skipped silently when no healthy, free, untried device exists —
        the timer is consumed either way (one hedge opportunity per
        dispatch, not a standing order).
        """
        state.hedge_event = None
        job = state.job
        free = [d for d in self.pool.devices
                if d.busy_until <= now and d.available(now)
                and d.device_id not in state.tried]
        if not free:
            return
        device = min(free, key=lambda d: (d.busy_cycles, d.device_id))
        state.attempts += 1
        state.tried.add(device.device_id)
        device.breaker.on_dispatch(now)
        try:
            att = device.attempt(job, self.pool, now=now, record=False)
        except ReproError:
            # The primary dispatched the same job fine, so this is
            # unreachable in practice; refund the slot rather than
            # fail a job that still has a live primary.
            device.breaker.release_probe()
            state.attempts -= 1
            state.tried.discard(device.device_id)
            return
        finish = now + att.cycles
        device.busy_until = finish
        device.busy_cycles += att.cycles
        event = self.events.push(finish, EventKind.DISPATCH_COMPLETE,
                                 device.device_id)
        self._register_flight([state], att, device, now, finish,
                              hedge=True, event=event)
        self.hedges_launched += 1
        if self.pool.tracer is not None:
            self.pool.tracer.instant_event(
                f"hedge#{job.job_id}", "hedge", now,
                self.pool.track("scheduler"))

    def _schedule_incident(self, device: Device, now: float) -> None:
        """Draw the device's next incident and push its onset event."""
        if device.chaos is None:
            return
        inc = device.chaos.next_incident(now)
        if inc is None:
            return
        self._incidents[device.device_id] = inc
        kind = (EventKind.DEVICE_CRASH if inc.kind == "crash"
                else EventKind.DEVICE_HANG)
        self.events.push(inc.at, kind, device.device_id)

    def _apply_crash(self, device: Device, now: float,
                     waiting: List[_JobState],
                     results: Dict[int, JobResult]) -> None:
        """The device dies until its incident's recovery cycle.

        In-flight work is *voided* — lost, not failed: the attempt is
        uncharged (cycles trimmed, attempt-budget slot refunded, the
        device removed from ``tried`` so even a one-device pool can
        retry after recovery) and each orphaned job requeues
        immediately unless a hedge twin is still racing for it.  The
        breaker is quarantined, not tripped: the outage is a known
        lifecycle fact, not an inferred health verdict.
        """
        inc = self._incidents[device.device_id]
        if self._pool_down:
            # The pool is already dark, so there is nothing to void —
            # but the device now has its own crash to recover from:
            # readmission must no longer restore it (its DEVICE_RECOVER
            # will, through the normal quarantine-release path).
            self._outage_held.discard(device.device_id)
        device.up = False
        device.down_since = now
        device.crashes += 1
        self.crashes += 1
        device.downtime_cycles += inc.until - now
        device.breaker.force_open(now)
        self.events.push(inc.until, EventKind.DEVICE_RECOVER,
                         device.device_id)
        if self.pool.tracer is not None:
            self.pool.tracer.add(
                f"crash#{device.device_id}.{device.crashes}", "crash",
                now, inc.until, self.pool.track("chaos"),
                args={"device": float(device.device_id)})
        flight = device.inflight
        if flight is None:
            return
        device.busy_cycles -= flight.finish - now
        device.busy_until = now
        device.record_flight([s.job for s in flight.states], self.pool,
                             flight.start, now, ok=False,
                             error="device crashed mid-attempt",
                             cat="voided")
        device.inflight = None
        self._inflight -= 1
        for s in flight.states:
            s.flights.remove(flight)
            s.attempts -= 1
            s.tried.discard(device.device_id)
            if not s.flights and s.job.job_id not in results:
                self._requeue(s, now, waiting)

    def _apply_hang(self, device: Device, now: float) -> None:
        """The device stalls until the incident clears.

        In-flight work is slowed, not lost: the flight's completion
        (and the device's busy horizon) slides out by the stall, its
        superseded completion event left to die stale.  The stall is
        real occupancy — the job sat on the device — so it is charged
        to ``busy_cycles`` and spanned accordingly.
        """
        inc = self._incidents[device.device_id]
        device.hangs += 1
        self.hangs += 1
        device.hang_until = inc.until
        device.downtime_cycles += inc.until - now
        self.events.push(inc.until, EventKind.DEVICE_RECOVER,
                         device.device_id)
        if self.pool.tracer is not None:
            self.pool.tracer.add(
                f"hang#{device.device_id}.{device.hangs}", "hang",
                now, inc.until, self.pool.track("chaos"),
                args={"device": float(device.device_id)})
        flight = device.inflight
        if flight is None:
            return
        delta = inc.until - now
        flight.finish += delta
        device.busy_until += delta
        device.busy_cycles += delta
        flight.complete_event = self.events.push(
            flight.finish, EventKind.DISPATCH_COMPLETE,
            device.device_id)

    def _apply_recover(self, device: Device, now: float) -> None:
        """End the device's current incident and draw its next one.

        A crashed device comes back with its breaker released from
        quarantine into an immediately-probeable open state: the next
        dispatch runs as the half-open probe, whose outcome decides
        whether the device rejoins — recovery is *verified*, never
        assumed.  A hang clears implicitly (``hang_until`` is now in
        the past).
        """
        device.recoveries += 1
        self.recoveries += 1
        if self._pool_down:
            # The pool is dark: whatever this incident was, the device
            # stays held by the outage — recorded so readmission
            # restores it along with the rest of the pool.
            self._outage_held.add(device.device_id)
            self._schedule_incident(device, now)
            return
        if not device.up:
            device.up = True
            device.breaker.end_quarantine(now)
        self._schedule_incident(device, now)

    # ------------------------------------------------------------------
    # Elastic capacity: SCALE_EVAL / DEVICE_ADD / DEVICE_DRAIN
    # ------------------------------------------------------------------
    def _scale_eval(self, now: float) -> None:
        """One autoscaler sample: decide, apply, re-arm the cadence."""
        scaler = self.autoscaler
        cfg = scaler.config
        if not self._pool_down:
            action = scaler.decide(now, len(self._waiting), self.pool)
            if action == "up":
                scaler.scale_ups += 1
                scaler.last_action_cycle = now
                key = len(self.pool.devices) + scaler.pending_adds
                scaler.pending_adds += 1
                if cfg.provision_cycles > 0:
                    self.events.push(now + cfg.provision_cycles,
                                     EventKind.DEVICE_ADD, key)
                else:
                    # A zero provisioning delay lands the device at the
                    # decision cycle; applied inline because an event
                    # pushed at the current cycle would strand (the
                    # coincident batch is already drained).
                    self._apply_device_add(now)
            elif action == "down":
                live = [d for d in self.pool.devices
                        if not d.retired and not d.draining]
                target = min(live,
                             key=lambda d: (d.busy_cycles, d.device_id))
                scaler.scale_downs += 1
                scaler.last_action_cycle = now
                self._start_drain(target, now)
        if self.pending():
            self.events.push(now + cfg.eval_interval_cycles,
                             EventKind.SCALE_EVAL, 0)

    def _apply_device_add(self, now: float) -> None:
        """Land a decided scale-up: the DEVICE_ADD's provisioning delay
        elapsed, so the device joins (store-primed) and takes traffic
        from this cycle on."""
        scaler = self.autoscaler
        scaler.pending_adds -= 1
        device = self._provision_device(now)
        if self._pool_down:
            # Provisioned into a pool-wide outage: the newcomer is held
            # dark with its siblings and readmission restores it.
            device.up = False
            device.down_since = now
            device.breaker.force_open(now)
            self._outage_held.add(device.device_id)
        if self.pool.tracer is not None:
            self.pool.tracer.instant_event(
                f"scale_up#{device.device_id}", "scale_up", now,
                self.pool.track("autoscale"))

    def _provision_device(self, now: float) -> Device:
        """Add one device to the pool (bootstrap grow or scale-up)."""
        device = self.pool.add_device(now)
        self.autoscaler.devices_added += 1
        self.autoscaler.note_capacity(now, +1)
        self._prime_device(device, now)
        if self.pool.chaos is not None:
            self._schedule_incident(device, now)
        return device

    def _prime_device(self, device: Device, now: float) -> None:
        """Warm a fresh device from the shared artifact store.

        Every workload a sibling has programmed is resolved through the
        store before the newcomer takes traffic, so a warm store means
        the scale-up compiles nothing — the elastic analogue of the
        store's warm-start serving guarantee.  ``prime_hits`` counts
        the store loads/memory hits the priming pass consumed.  A
        storeless pool (or ``model`` execution, which never programs)
        skips priming entirely.
        """
        pool = self.pool
        if pool.artifact_store is None or pool.execution != "simulate":
            return
        before = pool.artifact_store.report()
        warm = before.conversions_loaded + before.memory_hits
        for dataset, scale, kernel in list(pool.workloads_seen):
            job = Job(job_id=-1, kernel=kernel, dataset=dataset,
                      scale=scale, arrival_cycle=now,
                      deadline_cycles=1.0)
            device._executor(job, pool)
        after = pool.artifact_store.report()
        self.autoscaler.prime_hits += max(
            0, after.conversions_loaded + after.memory_hits - warm)

    def _start_drain(self, device: Device, now: float) -> None:
        """Begin drain-before-remove on a scale-down target.

        The device takes no new placements from this cycle on
        (``available`` is False while draining); in-flight work — the
        eager mode's busy horizon or a deferred flight — finishes
        first, then the DEVICE_DRAIN retires it.  An idle target
        retires immediately.
        """
        device.draining = True
        device.drain_began = now
        if self.pool.tracer is not None:
            self.pool.tracer.instant_event(
                f"scale_down#{device.device_id}", "scale_down", now,
                self.pool.track("autoscale"))
        if device.busy_until <= now and device.inflight is None:
            self._retire(device, now)
        else:
            device.drain_event = self.events.push(
                max(device.busy_until, now), EventKind.DEVICE_DRAIN,
                device.device_id)

    def _retire(self, device: Device, now: float) -> None:
        """Finish a drain: the device leaves service permanently.

        The slot stays in ``pool.devices`` (event keys index the list)
        but ``retired`` makes it permanently unavailable.  The trace
        records the drain window on the ``autoscale`` track — the span
        the ``check_no_service_on_draining_device`` invariant audits
        job placements against.
        """
        device.retired = True
        device.drain_event = None
        self.autoscaler.devices_retired += 1
        self.autoscaler.note_capacity(now, -1)
        if self.pool.tracer is not None:
            self.pool.tracer.add(
                f"drain#{device.device_id}", "drain",
                device.drain_began, max(now, device.drain_began),
                self.pool.track("autoscale"),
                args={"device": float(device.device_id)})

    def _finalize_timeout(self, state: _JobState, now: float,
                          results: Dict[int, JobResult]) -> None:
        job = state.job
        err = DeadlineError(
            f"job {job.job_id}: deadline of {job.deadline_cycles:.0f} "
            f"cycles expired at cycle {now:.0f} before execution")
        results[job.job_id] = JobResult(
            job_id=job.job_id, status=JobStatus.TIMEOUT,
            attempts=state.attempts,
            latency_cycles=now - job.arrival_cycle,
            finish_cycle=now, error=str(err))
        if self.pool.tracer is not None:
            self.pool.tracer.instant_event(
                f"timeout#{job.job_id}", "timeout", now,
                self.pool.track("scheduler"))

    def _degrade(self, state: _JobState, start: float,
                 results: Dict[int, JobResult], last_error: str = "",
                 device_id: int = -1) -> None:
        """Answer on the reference path, explicitly marked DEGRADED.

        The deadline rule is the same strict-``>`` boundary every other
        completion path applies: a degraded answer landing past the
        job's deadline is ``TIMEOUT`` — the reference answer stays
        attached (correct, merely late), exactly like an accelerator
        answer that finished late.
        """
        job = state.job
        try:
            values = self.pool.reference_values(job)
        except Exception as exc:  # no path can answer this job
            detail = f"{type(exc).__name__}: {exc}"
            if last_error:
                detail += f" (after {last_error})"
            results[job.job_id] = JobResult(
                job_id=job.job_id, status=JobStatus.FAILED,
                device_id=device_id, attempts=state.attempts,
                finish_cycle=start, error=detail)
            return
        cycles = (self.pool.nominal_cycles(job)
                  * self.config.reference_slowdown)
        finish = start + cycles
        latency = finish - job.arrival_cycle
        if latency > job.deadline_cycles:
            status = JobStatus.TIMEOUT
            error = (f"degraded answer completed "
                     f"{latency - job.deadline_cycles:.0f} cycles past "
                     f"deadline")
            if last_error:
                error += f" (after {last_error})"
        else:
            status, error = JobStatus.DEGRADED, last_error
        results[job.job_id] = JobResult(
            job_id=job.job_id, status=status,
            device_id=-1, attempts=state.attempts,
            latency_cycles=latency,
            finish_cycle=finish, value_crc=value_crc(values),
            error=error)
        if self.pool.tracer is not None:
            self.pool.tracer.add(
                f"{job.kernel}#{job.job_id}", "degraded", start, finish,
                self.pool.track("reference"),
                args={"slowdown": self.config.reference_slowdown})
