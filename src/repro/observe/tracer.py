"""Cycle-attributed span tracing for the simulated stack.

The simulator never ticks a wall clock: every layer *computes* cycle
costs analytically (the accelerator from block structure, the scheduler
from service times).  A :class:`Tracer` therefore records *completed*
spans with explicit begin/end cycles on named tracks, instead of the
start/stop stopwatch API a wall-clock profiler would use.  Tracks are
independent timelines:

``engine``
    The compute engine of one accelerator (or of the accelerators an
    :class:`~repro.solvers.backends.AcceleratorBackend` time-shares).
    Passes lay out end to end from the track cursor; inside a pass,
    data-path windows, pipeline fills, reduction-tree drains and
    reconfiguration spans nest the way §4.4 and Figure 10 describe.
``channel``
    Memory-channel *occupancy*: consecutive payload transfers coalesce
    into one ``stream`` span, fault recovery appears as ``retry`` spans.
    This track is compressed (busy cycles only), so it reconciles with
    DRAM byte counters rather than aligning with engine wall time.
``solver``
    Outer iterations of the iterative solvers, clocked by the backend's
    accumulated report cycles.
``device<N>`` / ``reference`` / ``scheduler``
    Runtime-level job spans on the serving pool's simulated clock.

Everything is opt-in behind a nullable hook: components take
``tracer=None`` and the clean path costs exactly one ``is None`` branch
— outputs, reports and counters are bit-identical with tracing on or
off (property-tested).

Span begin/end values are plain floats of simulated cycles; recording
order is deterministic for a fixed seed/config, which is what makes the
exported JSON byte-reproducible across processes and
``PYTHONHASHSEED``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.stats import CounterSet


@dataclass
class Span:
    """One traced interval (or instant) on a track, in simulated cycles."""

    span_id: int
    name: str
    #: Span class: ``pass``, ``block_row``, ``datapath``, ``stream``,
    #: ``reduce_drain``, ``reconfig``, ``pipeline_fill``, ``wait``,
    #: ``retry``, ``checkpoint``, ``solver``, ``job``, ``device``, ...
    cat: str
    track: str
    begin: float
    end: float
    args: Dict[str, object] = field(default_factory=dict)
    #: Structural parent (the innermost span open on the track when this
    #: one was recorded), purely informational — nesting invariants are
    #: checked from the intervals themselves.
    parent: Optional[int] = None
    #: Zero-duration marker event (exported as a Chrome instant).
    instant: bool = False

    @property
    def dur(self) -> float:
        return self.end - self.begin

    def contains(self, other: "Span", eps: float = 1e-9) -> bool:
        """Whether ``other`` lies inside this span (closed interval)."""
        return (self.begin <= other.begin + eps
                and other.end <= self.end + eps)


class Tracer:
    """Deterministic recorder of cycle-stamped spans.

    All mutation goes through :meth:`add` / :meth:`begin` / :meth:`end`
    / :meth:`extend` / :meth:`instant`; spans accumulate in
    :attr:`spans` in recording order.  The tracer never influences the
    simulation — it holds no clock of its own, only per-track *cursors*
    (the maximum end cycle seen) that instrumentation uses to append
    one pass after another.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._cursors: Dict[str, float] = {}
        self._open: Dict[str, List[int]] = {}
        self._snapshots: Dict[int, CounterSet] = {}
        #: Per-track id of the span :meth:`extend` may keep growing.
        self._extendable: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Cursors
    # ------------------------------------------------------------------
    def cursor(self, track: str) -> float:
        """Largest end cycle recorded on ``track`` so far (0.0 if none)."""
        return self._cursors.get(track, 0.0)

    def _bump(self, track: str, end: float) -> None:
        if end > self._cursors.get(track, 0.0):
            self._cursors[track] = end

    def seal(self, track: str) -> None:
        """Stop :meth:`extend` from coalescing into the last span.

        Called at pass boundaries so one pass's stream span never merges
        into the next pass's.
        """
        self._extendable.pop(track, None)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add(self, name: str, cat: str, begin: float, end: float,
            track: str = "engine",
            args: Optional[Dict[str, object]] = None,
            instant: bool = False) -> int:
        """Record one completed span; returns its id."""
        if end < begin:
            raise SimulationError(
                f"span {name!r} ends at {end} before it begins at {begin}")
        stack = self._open.get(track)
        parent = stack[-1] if stack else None
        span = Span(len(self.spans), name, cat, track, float(begin),
                    float(end), dict(args or {}), parent, instant)
        self.spans.append(span)
        self._bump(track, span.end)
        self.seal(track)
        return span.span_id

    def instant_event(self, name: str, cat: str, cycle: float,
                      track: str = "engine",
                      args: Optional[Dict[str, object]] = None) -> int:
        """Record a zero-duration marker event."""
        return self.add(name, cat, cycle, cycle, track, args, instant=True)

    def begin(self, name: str, cat: str, begin: float,
              track: str = "engine",
              args: Optional[Dict[str, object]] = None,
              counters: Optional[CounterSet] = None) -> int:
        """Open a span whose end is not yet known.

        ``counters`` snapshots a live :class:`CounterSet`; :meth:`end`
        stores the accumulated delta (via :meth:`CounterSet.diff`) into
        the span's args.  Open spans nest per track (LIFO).
        """
        sid = self.add(name, cat, begin, begin, track, args)
        self._open.setdefault(track, []).append(sid)
        if counters is not None:
            self._snapshots[sid] = counters.copy()
        return sid

    def end(self, span_id: int, end: float,
            counters: Optional[CounterSet] = None) -> Span:
        """Close the innermost open span of its track."""
        span = self.spans[span_id]
        stack = self._open.get(span.track)
        if not stack or stack[-1] != span_id:
            raise SimulationError(
                f"span {span.name!r} is not the innermost open span "
                f"on track {span.track!r}")
        if end < span.begin:
            raise SimulationError(
                f"span {span.name!r} ends at {end} before it begins "
                f"at {span.begin}")
        stack.pop()
        span.end = float(end)
        self._bump(span.track, span.end)
        snapshot = self._snapshots.pop(span_id, None)
        if snapshot is not None and counters is not None:
            delta = counters.diff(snapshot)
            span.args["counters"] = dict(sorted(delta.items()))
        return span

    def extend(self, track: str, name: str, cat: str, cycles: float,
               args: Optional[Dict[str, float]] = None,
               coalesce: bool = True) -> Optional[int]:
        """Append ``cycles`` of occupancy to a lane-cursor span.

        Consecutive calls with the same name/cat grow one span (numeric
        args accumulate), which is how thousands of per-block transfers
        collapse into a handful of channel spans.  ``coalesce=False``
        records a standalone span (a retry, say) that also breaks the
        current chain.
        """
        if cycles < 0:
            raise SimulationError(f"cannot extend a span by {cycles} cycles")
        if cycles == 0.0:
            return None
        last_id = self._extendable.get(track)
        if coalesce and last_id is not None:
            last = self.spans[last_id]
            if last.name == name and last.cat == cat:
                last.end += cycles
                self._bump(track, last.end)
                for key, value in (args or {}).items():
                    last.args[key] = float(last.args.get(key, 0.0)) + value
                return last_id
        begin = self.cursor(track)
        sid = self.add(name, cat, begin, begin + cycles, track, args)
        if coalesce:
            self._extendable[track] = sid
        return sid

    def stretch(self, span_id: int, extra: float) -> None:
        """Lengthen a recorded span in place — e.g. a replayed pass span
        absorbing per-run fault-recovery cycles its template could not
        know about."""
        if extra < 0:
            raise SimulationError(f"cannot stretch a span by {extra}")
        span = self.spans[span_id]
        span.end += extra
        self._bump(span.track, span.end)

    def replay(self, spans: Iterable[Span],
               offsets: Dict[str, float]) -> None:
        """Re-record captured spans shifted by a per-track offset.

        The compiled plan layer captures one pass's spans at compile
        time (timing depends only on block structure, never operand
        values) and replays them per run — the span analogue of cloning
        the captured :class:`~repro.core.report.SimReport`.
        """
        for span in spans:
            off = offsets.get(span.track, 0.0)
            self.add(span.name, span.cat, span.begin + off, span.end + off,
                     span.track, dict(span.args), instant=span.instant)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tracks(self) -> List[str]:
        """All track names, sorted (deterministic export order)."""
        return sorted({s.track for s in self.spans})

    def by_cat(self, cat: str, track: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans
                if s.cat == cat and (track is None or s.track == track)]

    def __len__(self) -> int:
        return len(self.spans)


class PassTraceBuilder:
    """Lays one accelerator pass onto the tracer's engine timeline.

    The interpreter drives it inline (one ``is not None`` guard per
    site); the layout mirrors the pass cost model exactly, so the pass
    span's duration equals the report's cycle count and the per-phase
    windows sum back to the report's breakdown:

    * data-path *windows* (``datapath``) cover each segment's engine
      occupancy — for SymGS rows the GEMV window is
      ``max(row stream, row GEMV compute)``, the overlap the FIFOs buy;
    * a ``reduce_drain`` span sits in the tail of each retiring window,
      and the ``reconfig`` span for the next data path sits *inside* it
      when hiding is on (§4.4) — or after it, exposed, when the
      ablation disables hiding;
    * ``pipeline_fill`` and trailing ``wait`` spans account the
      remaining model terms, so the engine track is gap-free.
    """

    def __init__(self, tracer: Tracer, kernel: str,
                 track: str = "engine") -> None:
        self.tracer = tracer
        self.track = track
        self.t0 = tracer.cursor(track)
        self.t = self.t0
        tracer.seal("channel")
        self._pass_id = tracer.begin(f"pass:{kernel}", "pass", self.t0,
                                     track)
        self._row_id: Optional[int] = None
        # Current data-path segment (streaming-pass mode).
        self._seg_dp: Optional[str] = None
        self._seg_begin = self.t0
        self._seg_compute = 0.0
        self._seg_stream = 0.0
        self._seg_blocks = 0
        #: Begin cycle of the last emitted window — the floor below
        #: which a drain span cannot be stretched.
        self._floor = self.t0

    # -- generic pieces -------------------------------------------------
    def configure(self, dp: str) -> None:
        """Initial data-path configuration (table load, no retiring
        path to drain): a marker, not a reconfiguration span."""
        self.tracer.instant_event(f"configure:{dp}", "configure", self.t,
                                  self.track)

    def reconfigure(self, dp: str, prev: str, drain: float,
                    reconfig: float, exposed: float, hidden: bool) -> None:
        """A data-path switch, anchored at the current cursor (the end
        of the retiring window).

        The drain span occupies the retiring window's tail; with hiding
        on, the reconfig span starts at the drain's start and therefore
        lies inside it whenever ``reconfig <= drain`` (the paper's
        claim, asserted by the invariant suite).  Exposed cycles — the
        hiding ablation, or a drain shorter than the rewrite — advance
        the timeline, exactly as the cost model charges them.
        """
        anchor = self.t
        d0 = max(self._floor, anchor - drain)
        self.tracer.add("reduce_drain", "reduce_drain", d0, anchor,
                        self.track, args={"from": prev, "to": dp})
        r0 = d0 if hidden else anchor
        self.tracer.add(f"reconfig:{dp}", "reconfig", r0, r0 + reconfig,
                        self.track,
                        args={"from": prev, "to": dp, "exposed": exposed})
        self.t += exposed

    def fill(self, dp: str, cycles: float) -> None:
        """One-off pipeline fill at a segment start."""
        if cycles > 0.0:
            self.tracer.add(f"fill:{dp}", "pipeline_fill", self.t,
                            self.t + cycles, self.track)
            self.t += cycles

    def window(self, name: str, dur: float,
               args: Optional[Dict[str, object]] = None) -> None:
        """An engine-occupancy window of one data path."""
        self.tracer.add(name, "datapath", self.t, self.t + dur,
                        self.track, args)
        self._floor = self.t
        self.t += dur

    def advance(self, cycles: float) -> None:
        """Move the cursor without a span (already-accounted overhead)."""
        self.t += cycles

    # -- streaming-pass segment mode ------------------------------------
    def switch(self, dp: str, prev: Optional[str], drain: float,
               reconfig: float, exposed: float, hidden: bool,
               fill: float) -> None:
        """Handle a ``prev_dp is not op.dp`` transition in a streaming
        pass: flush the running segment, then drain/reconfig/fill."""
        self.flush_segment()
        if prev is None:
            self.configure(dp)
        else:
            self.reconfigure(dp, prev, drain, reconfig, exposed, hidden)
        self.fill(dp, fill)
        self._seg_dp = dp
        self._seg_begin = self.t

    def block(self, compute: float, stream: float) -> None:
        """Accumulate one streamed block into the running segment."""
        self._seg_compute += compute
        self._seg_stream += stream
        self._seg_blocks += 1

    def flush_segment(self) -> None:
        if self._seg_blocks:
            self.window(self._seg_dp, self._seg_compute, args={
                "compute_cycles": self._seg_compute,
                "stream_cycles": self._seg_stream,
                "blocks": self._seg_blocks,
            })
        self._seg_compute = 0.0
        self._seg_stream = 0.0
        self._seg_blocks = 0

    # -- SymGS row mode --------------------------------------------------
    def row_begin(self, block_row: int) -> None:
        self._row_id = self.tracer.begin(f"row{block_row}", "block_row",
                                         self.t, self.track,
                                         args={"row": block_row})

    def row_end(self) -> None:
        if self._row_id is not None:
            self.tracer.end(self._row_id, self.t)
            self._row_id = None

    # -- close -----------------------------------------------------------
    def finish(self, report, gap_name: str = "stream_wait",
               args: Optional[Dict[str, object]] = None) -> int:
        """Close the pass span at ``t0 + report.cycles``.

        The slack between the laid-out windows and the report's total —
        channel-bound waiting, write-back and cache-refill traffic — is
        emitted as one trailing ``wait`` span, so every cycle of the
        pass is attributed.
        """
        self.flush_segment()
        end = max(self.t0 + report.cycles, self.t)
        if end - self.t > 1e-9:
            self.tracer.add(gap_name, "wait", self.t, end, self.track)
        self.t = end
        pass_args: Dict[str, object] = {
            "cycles": report.cycles,
            "sequential_cycles": report.sequential_cycles,
            "exposed_reconfig_cycles": report.exposed_reconfig_cycles,
            "streamed_bytes": report.streamed_bytes,
        }
        for dp, cycles in sorted(report.datapath_cycles.items()):
            pass_args[f"dp_{dp}"] = cycles
        pass_args.update(args or {})
        span = self.tracer.end(self._pass_id, end)
        span.args.update(pass_args)
        return self._pass_id
