"""Cycle-attributed tracing, exporters and trace-driven invariants."""

from repro.observe.tracer import PassTraceBuilder, Span, Tracer
from repro.observe.export import (
    attribution_rows,
    attribution_table,
    chrome_trace,
    dumps_chrome_trace,
    write_chrome_trace,
)
from repro.observe.invariants import (
    check_device_exclusive,
    check_hedge_cancellation,
    check_no_service_after_timeout,
    check_no_service_in_downtime,
    check_no_service_on_draining_device,
    check_proper_nesting,
    check_reconfig_hidden,
    check_row_ordering,
    check_trace,
    phase_cycle_totals,
)

__all__ = [
    "PassTraceBuilder",
    "Span",
    "Tracer",
    "attribution_rows",
    "attribution_table",
    "chrome_trace",
    "dumps_chrome_trace",
    "write_chrome_trace",
    "check_device_exclusive",
    "check_hedge_cancellation",
    "check_no_service_after_timeout",
    "check_no_service_in_downtime",
    "check_no_service_on_draining_device",
    "check_proper_nesting",
    "check_reconfig_hidden",
    "check_row_ordering",
    "check_trace",
    "phase_cycle_totals",
]
