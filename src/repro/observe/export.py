"""Trace exporters: Chrome-trace/Perfetto JSON and a text table.

The JSON exporter emits the Chrome trace event format (``ph: "X"``
complete events plus ``ph: "i"`` instants, one ``tid`` per track named
via thread-name metadata), which Perfetto and ``chrome://tracing`` load
directly.  Timestamps are simulated cycles, not microseconds — the
viewer's time axis simply reads in cycles.

Serialisation is canonical — sorted keys, compact separators, tracks
ordered by name, spans in recording order — so the exported bytes are
identical for identical runs regardless of process or
``PYTHONHASHSEED`` (property-tested in the determinism suite).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.observe.tracer import Span, Tracer

#: Span categories that partition the engine timeline (mutually
#: exclusive occupancy); everything else either overlaps them
#: (``reduce_drain``/``reconfig`` hide under windows, ``pass`` and
#: ``block_row`` wrap them) or lives on other tracks.
EXCLUSIVE_CATS = ("datapath", "pipeline_fill", "wait")


def chrome_trace(tracer: Tracer) -> dict:
    """The trace as a Chrome-trace document (a plain dict)."""
    tracks = tracer.tracks()
    tids = {track: i for i, track in enumerate(tracks)}
    events: List[dict] = []
    for i, track in enumerate(tracks):
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": i,
            "args": {"name": track},
        })
    for span in tracer.spans:
        event = {
            "name": span.name,
            "cat": span.cat,
            "pid": 0,
            "tid": tids[span.track],
            "ts": span.begin,
            "args": dict(span.args),
        }
        if span.instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.dur
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated-cycles"},
    }


def dumps_chrome_trace(tracer: Tracer) -> str:
    """Canonical JSON text (byte-deterministic for identical runs)."""
    return json.dumps(chrome_trace(tracer), sort_keys=True,
                      separators=(",", ":")) + "\n"


def write_chrome_trace(tracer: Tracer, path) -> int:
    """Write the canonical JSON; returns the number of bytes written."""
    data = dumps_chrome_trace(tracer).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(data)
    return len(data)


def _wall_cycles(tracer: Tracer) -> float:
    """Engine wall time = total duration of pass spans (they tile the
    engine track end to end); falls back to the widest cursor when the
    trace has no engine passes (e.g. a runtime-only trace)."""
    wall = sum(s.dur for s in tracer.spans
               if s.cat == "pass" and s.track == "engine")
    if wall <= 0.0:
        wall = max((s.end for s in tracer.spans), default=0.0)
    return wall


def attribution_rows(tracer: Tracer) -> List[dict]:
    """Per-phase cycle totals, most expensive first.

    Engine-exclusive categories (data-path windows, pipeline fills,
    waits) partition the pass timeline, so their shares sum to ~100% of
    engine wall time.  Overlapped phases — channel streaming, hidden
    drains/reconfigs, retries — are reported too, flagged
    ``overlapped`` (their share measures *concurrent* occupancy, not
    extra wall time).
    """
    wall = _wall_cycles(tracer)
    buckets: Dict[tuple, List[float]] = {}
    for span in tracer.spans:
        if span.instant:
            continue
        if span.cat in EXCLUSIVE_CATS:
            key = (f"{span.cat}:{span.name}" if span.cat == "datapath"
                   else (f"wait:{span.name}" if span.cat == "wait"
                         else span.cat), False)
        elif span.cat in ("stream", "retry", "reduce_drain", "reconfig"):
            name = "stream" if span.cat == "stream" else span.cat
            key = (name, True)
        else:
            continue
        bucket = buckets.setdefault(key, [0.0, 0.0])
        bucket[0] += span.dur
        bucket[1] += 1
    rows = []
    for (phase, overlapped), (cycles, count) in buckets.items():
        rows.append({
            "phase": phase,
            "cycles": cycles,
            "spans": int(count),
            "share": (cycles / wall) if wall else 0.0,
            "overlapped": overlapped,
        })
    rows.sort(key=lambda r: (-r["cycles"], r["phase"]))
    return rows


def attribution_table(tracer: Tracer) -> str:
    """Aligned plain-text per-phase cycle-attribution table."""
    rows = attribution_rows(tracer)
    wall = _wall_cycles(tracer)
    lines = [f"{'phase':<24} {'spans':>7} {'cycles':>14} {'share':>8}"]
    lines.append("-" * len(lines[0]))
    for row in rows:
        mark = " *" if row["overlapped"] else ""
        lines.append(
            f"{row['phase']:<24} {row['spans']:>7d} "
            f"{row['cycles']:>14.1f} {row['share']:>7.1%}{mark}")
    lines.append("-" * len(lines[0].splitlines()[0]))
    lines.append(f"{'engine wall':<24} {'':>7} {wall:>14.1f} {1:>7.1%}")
    lines.append("(* overlapped with engine windows: concurrent "
                 "occupancy, not extra wall time)")
    return "\n".join(lines)
