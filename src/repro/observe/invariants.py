"""Trace-driven invariant checks.

Each checker reads a recorded :class:`~repro.observe.tracer.Tracer` and
returns a list of human-readable violation strings (empty = invariant
holds).  They encode the paper's *temporal* claims — the ones aggregate
counters cannot express:

* :func:`check_reconfig_hidden` — every ``reconfig`` span is contained
  in a ``reduce_drain`` span (§4.4/Fig. 10: reconfiguration hides under
  the reduction-tree drain).  Disabling
  ``hide_reconfig_under_drain`` makes this fail, which the test suite
  asserts both ways.
* :func:`check_row_ordering` — within each SymGS pass, every GEMV
  window of a block-row ends before that row's D-SymGS window begins
  (partial sums reach the link stack before the sequential solve
  consumes them).
* :func:`check_proper_nesting` — spans on one track either nest or are
  disjoint; partial overlap would mean the layout double-books the
  engine.
* :func:`check_device_exclusive` — runtime job spans on one device
  never overlap (a device serves one job at a time).
* :func:`check_no_service_after_timeout` — once the scheduler emits a
  ``timeout`` instant for a job (the deadline-expiry event finalised
  it), no device may begin serving that job: a finalised job must
  never be dispatched.
* :func:`check_no_service_in_downtime` — no completed ``job`` span
  overlaps a crash interval of its device, and none *begins* inside a
  crash or hang interval: a down device serves nothing, a hung device
  accepts nothing new (its pre-hang work may legitimately stretch
  across the stall).
* :func:`check_hedge_cancellation` — every ``hedge_cancelled`` span
  must be explained by a winning ``job`` span for the same job ending
  at the cancellation cycle on a *different* device: a cancelled
  attempt never finalises a job, and cancellation happens only because
  the twin won.
* :func:`check_no_service_in_pool_outage` — no ``job`` span on any of
  a pool's device tracks overlaps that pool's ``outage`` window on the
  ``fleet`` track: a dark pool serves nothing (readmission probes are
  spanned under the ``probe`` category and are the one legitimate
  occupancy during an outage).
* :func:`check_reroute_attribution` — every ``reroute`` instant on the
  ``fleet`` track is corroborated by both named pools: an ``evict``
  instant for the job on the source pool's scheduler track at the
  re-route cycle, and *some* trace evidence for the job under the
  target pool's prefix — the job's attempt history must name both
  pools.
* :func:`check_no_service_on_draining_device` — once an autoscale
  drain begins for a device (the ``drain`` span on the ``autoscale``
  track), no ``job`` span may *begin* on that device's track at or
  after the drain's start: a draining device finishes its in-flight
  work but takes no new placements, and a retired device never serves
  again.

Fleet traces prefix every per-pool track with ``p<i>.`` (see
:class:`~repro.runtime.pool.DevicePool`'s ``track_prefix``); all
checkers parse tracks prefix-aware, so the same invariants hold for a
solo scheduler (empty prefix) and every pool of a fleet.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.observe.tracer import Span, Tracer

#: Slack for float comparisons, in cycles.  Span endpoints are sums of
#: small float costs, so exact equality is common but not guaranteed.
EPS = 1e-6

#: Track base-names that model concurrent execution lanes rather than
#: one engine: the ``reference`` track holds host-side degraded
#: fallbacks, the ``chaos`` track holds device-lifecycle incidents
#: across a whole pool, and the ``fleet`` track holds pool-scoped
#: outage windows that may overlap across pools — so nesting is not an
#: invariant on any of them (prefixed fleet variants like ``p2.chaos``
#: included).  The ``autoscale`` track likewise holds per-device drain
#: windows that may overlap each other.
CONCURRENT_TRACKS = ("reference", "chaos", "fleet", "autoscale")

#: A per-device track: optional ``p<i>.`` pool prefix + ``device<d>``.
_DEVICE_TRACK_RE = re.compile(r"^(?:(p\d+)\.)?device(\d+)$")


def _device_track(track: str) -> Optional[Tuple[str, int]]:
    """``(pool_prefix, device_id)`` for a device track, else None.

    The prefix keeps its trailing dot (``"p2."``) so it concatenates
    directly with other base names; a solo scheduler's tracks parse
    with an empty prefix.
    """
    m = _DEVICE_TRACK_RE.match(track)
    if m is None:
        return None
    return ((m.group(1) + ".") if m.group(1) else "", int(m.group(2)))


def _is_concurrent(track: str) -> bool:
    return track.rsplit(".", 1)[-1] in CONCURRENT_TRACKS


def check_reconfig_hidden(tracer: Tracer) -> List[str]:
    """Every ``reconfig`` span must lie inside a ``reduce_drain`` span
    on its track (closed-interval containment)."""
    violations = []
    drains: Dict[str, List[Span]] = {}
    for span in tracer.spans:
        if span.cat == "reduce_drain":
            drains.setdefault(span.track, []).append(span)
    for span in tracer.spans:
        if span.cat != "reconfig":
            continue
        if not any(d.contains(span, EPS)
                   for d in drains.get(span.track, ())):
            violations.append(
                f"{span.track}: reconfig {span.name!r} "
                f"[{span.begin:.2f}, {span.end:.2f}] is not contained "
                f"in any reduce_drain span")
    return violations


def _passes(tracer: Tracer, track: str) -> List[Span]:
    return [s for s in tracer.spans
            if s.cat == "pass" and s.track == track]


def check_row_ordering(tracer: Tracer) -> List[str]:
    """Per SymGS pass and block-row: GEMV windows precede D-SymGS.

    Rows are scoped to their pass span (row ids restart every sweep).
    """
    violations = []
    for track in tracer.tracks():
        for p in _passes(tracer, track):
            if "symgs" not in p.name:
                continue
            gemv_end: Dict[int, float] = {}
            dsymgs_begin: Dict[int, float] = {}
            for s in tracer.spans:
                if (s.track != track or s.cat != "datapath"
                        or "row" not in s.args or not p.contains(s, EPS)):
                    continue
                row = int(s.args["row"])
                if s.name == "gemv":
                    gemv_end[row] = max(gemv_end.get(row, s.end), s.end)
                elif s.name == "d-symgs":
                    dsymgs_begin[row] = min(
                        dsymgs_begin.get(row, s.begin), s.begin)
            for row, begin in sorted(dsymgs_begin.items()):
                end = gemv_end.get(row)
                if end is not None and end > begin + EPS:
                    violations.append(
                        f"{track}: pass {p.name!r} row {row}: GEMV window "
                        f"ends at {end:.2f} after D-SymGS begins at "
                        f"{begin:.2f}")
    return violations


def check_proper_nesting(tracer: Tracer) -> List[str]:
    """No two spans on one track may partially overlap.

    For spans sorted by (begin, -end), each span must either start at or
    after the enclosing span's end (disjoint) or end at or before it
    (nested).
    """
    violations = []
    for track in tracer.tracks():
        if _is_concurrent(track):
            continue
        spans = sorted(
            (s for s in tracer.spans
             if s.track == track and not s.instant),
            key=lambda s: (s.begin, -s.end))
        stack: List[Span] = []
        for span in spans:
            while stack and span.begin >= stack[-1].end - EPS:
                stack.pop()
            if stack and span.end > stack[-1].end + EPS:
                outer = stack[-1]
                violations.append(
                    f"{track}: {span.name!r} [{span.begin:.2f}, "
                    f"{span.end:.2f}] partially overlaps {outer.name!r} "
                    f"[{outer.begin:.2f}, {outer.end:.2f}]")
                continue
            stack.append(span)
    return violations


def check_device_exclusive(tracer: Tracer) -> List[str]:
    """Runtime ``job`` spans on one ``device<N>`` track never overlap —
    except members of one fused multi-RHS batch.

    Jobs served by the same batched dispatch share the device on
    purpose (one payload stream answers all of them) and carry the same
    ``batch`` arg on coinciding intervals; overlapping job spans from
    different dispatches — or untagged overlap — remain violations.
    """
    violations = []
    for track in tracer.tracks():
        if _device_track(track) is None:
            continue
        jobs = sorted((s for s in tracer.spans
                       if s.track == track and s.cat == "job"),
                      key=lambda s: (s.begin, s.end))
        for prev, cur in zip(jobs, jobs[1:]):
            if cur.begin < prev.end - EPS:
                same_batch = ("batch" in cur.args
                              and "batch" in prev.args
                              and cur.args["batch"] == prev.args["batch"])
                if same_batch:
                    continue
                violations.append(
                    f"{track}: job {cur.name!r} starts at "
                    f"{cur.begin:.2f} before job {prev.name!r} ends at "
                    f"{prev.end:.2f}")
    return violations


def check_no_service_after_timeout(tracer: Tracer) -> List[str]:
    """A timed-out job never occupies a device afterwards.

    The scheduler emits a ``timeout`` instant (name ``timeout#<id>``)
    on its track when a deadline-expiry finalises a job unexecuted.
    With deadline expiry as a first-class event this is a hard
    invariant: finalisation removes the job from the queue, so no
    ``job`` span for the same id may *begin* at or after the instant.
    (Job spans beginning before it are legitimate — the faulted
    attempts that preceded the expiry.)
    """
    violations = []
    expiries: Dict[int, float] = {}
    for s in tracer.spans:
        if s.cat == "timeout" and s.instant and "#" in s.name:
            job_id = int(s.name.rsplit("#", 1)[1])
            expiries[job_id] = min(expiries.get(job_id, s.begin), s.begin)
    if not expiries:
        return violations
    for s in tracer.spans:
        if s.cat != "job" or s.instant or "#" not in s.name:
            continue
        job_id = int(s.name.rsplit("#", 1)[1])
        expired_at = expiries.get(job_id)
        if expired_at is not None and s.begin >= expired_at - EPS:
            violations.append(
                f"{s.track}: job {s.name!r} begins at {s.begin:.2f} "
                f"on or after its timeout finalisation at "
                f"{expired_at:.2f}")
    return violations


def check_no_service_in_downtime(tracer: Tracer) -> List[str]:
    """No job is served while its device is down (or placed mid-hang).

    Downtime is read off the ``chaos`` track: ``crash`` and ``hang``
    spans carry a ``device`` arg naming the struck device.  A ``job``
    span on that device's track must not overlap a crash interval at
    all — voided work is spanned under the ``voided`` category, which
    ends exactly at the crash cycle — and must not *begin* strictly
    inside any incident interval (nothing dispatches onto a dead or
    stalled device).  A job span merely *stretching across* a hang is
    the legitimate slowed-not-lost case.  In fleet traces each pool
    has its own prefixed chaos track (``p<i>.chaos``); incidents only
    constrain devices of the *same* pool.
    """
    violations = []
    incidents: Dict[Tuple[str, int], List[Span]] = {}
    for s in tracer.spans:
        base = s.track.rsplit(".", 1)[-1]
        if base == "chaos" and s.cat in ("crash", "hang"):
            prefix = s.track[:len(s.track) - len("chaos")]
            incidents.setdefault(
                (prefix, int(s.args["device"])), []).append(s)
    if not incidents:
        return violations
    for s in tracer.spans:
        if s.cat != "job" or s.instant:
            continue
        parsed = _device_track(s.track)
        if parsed is None:
            continue
        for inc in incidents.get(parsed, ()):
            if (inc.cat == "crash" and s.begin < inc.end - EPS
                    and s.end > inc.begin + EPS):
                violations.append(
                    f"{s.track}: job {s.name!r} [{s.begin:.2f}, "
                    f"{s.end:.2f}] overlaps crash interval "
                    f"[{inc.begin:.2f}, {inc.end:.2f}]")
            elif (inc.begin + EPS < s.begin < inc.end - EPS):
                violations.append(
                    f"{s.track}: job {s.name!r} begins at "
                    f"{s.begin:.2f} inside {inc.cat} interval "
                    f"[{inc.begin:.2f}, {inc.end:.2f}]")
    return violations


def check_hedge_cancellation(tracer: Tracer) -> List[str]:
    """Every cancelled hedge attempt lost to a real winner elsewhere.

    A ``hedge_cancelled`` span for job ``<id>`` must coincide, at its
    end, with a successful ``job`` span for the same id on a
    *different* track (the race winner).  A cancelled attempt with no
    winner — or one "won" on the same device — would mean the
    scheduler threw away work without an answer, or cancelled the very
    attempt that produced one.
    """
    violations = []
    winners: Dict[int, List[Span]] = {}
    for s in tracer.spans:
        if (s.cat == "job" and not s.instant and "#" in s.name
                and s.args.get("ok") is True):
            winners.setdefault(
                int(s.name.rsplit("#", 1)[1]), []).append(s)
    for s in tracer.spans:
        if s.cat != "hedge_cancelled" or s.instant or "#" not in s.name:
            continue
        job_id = int(s.name.rsplit("#", 1)[1])
        if not any(abs(w.end - s.end) <= EPS and w.track != s.track
                   for w in winners.get(job_id, ())):
            violations.append(
                f"{s.track}: hedge attempt {s.name!r} cancelled at "
                f"{s.end:.2f} without a winning job span ending there "
                f"on another device")
    return violations


def check_no_service_in_pool_outage(tracer: Tracer) -> List[str]:
    """No job is served by a pool during that pool's outage window.

    Outage windows live on the ``fleet`` track as ``outage`` spans
    carrying a ``pool`` arg.  While one is open, no ``job`` span may
    overlap it on any ``p<pool>.device<d>`` track: in-flight work at
    outage onset is voided (spanned under ``voided``, ending at the
    outage cycle) and readmission probes are spanned under ``probe`` —
    both categories are exempt by construction, so any overlapping
    ``job`` span means the pool answered traffic while dark.
    """
    violations = []
    outages: Dict[str, List[Span]] = {}
    for s in tracer.spans:
        if s.track == "fleet" and s.cat == "outage" and not s.instant:
            outages.setdefault(
                f"p{int(s.args['pool'])}.", []).append(s)
    if not outages:
        return violations
    for s in tracer.spans:
        if s.cat != "job" or s.instant:
            continue
        parsed = _device_track(s.track)
        if parsed is None:
            continue
        for out in outages.get(parsed[0], ()):
            if s.begin < out.end - EPS and s.end > out.begin + EPS:
                violations.append(
                    f"{s.track}: job {s.name!r} [{s.begin:.2f}, "
                    f"{s.end:.2f}] overlaps pool outage "
                    f"[{out.begin:.2f}, {out.end:.2f}]")
    return violations


def check_reroute_attribution(tracer: Tracer) -> List[str]:
    """Every re-routed job's attempt history names both pools.

    The fleet emits a ``reroute`` instant (name ``reroute#<id>``,
    args ``from``/``to``) when it moves an evicted job.  Two things
    must corroborate it: the source pool ejected the job (an ``evict``
    instant for the same id on ``p<from>.scheduler`` at the re-route
    cycle), and the target pool actually saw it (any span or instant
    named ``…#<id>`` under the ``p<to>.`` prefix — a served attempt, a
    rejection, a timeout, a further eviction...).  A reroute with a
    silent source or target would mean the failover chain in the
    report cannot be reconstructed from the trace.
    """
    violations = []
    by_id: Dict[Tuple[str, int], List[Span]] = {}
    for s in tracer.spans:
        if "#" not in s.name:
            continue
        tail = s.name.rsplit("#", 1)[1]
        try:
            job_id = int(tail)
        except ValueError:
            continue
        by_id.setdefault((s.track, job_id), []).append(s)
    for s in tracer.spans:
        if (s.track != "fleet" or s.cat != "reroute"
                or not s.instant):
            continue
        job_id = int(s.name.rsplit("#", 1)[1])
        src = int(s.args["from"])
        dst = int(s.args["to"])
        ejected = any(
            e.cat == "evict" and abs(e.begin - s.begin) <= EPS
            for e in by_id.get((f"p{src}.scheduler", job_id), ()))
        if not ejected:
            violations.append(
                f"fleet: {s.name!r} at {s.begin:.2f} claims source "
                f"pool {src}, but p{src}.scheduler has no matching "
                f"evict instant")
        landed = any(
            track.startswith(f"p{dst}.")
            for (track, jid) in by_id if jid == job_id)
        if not landed:
            violations.append(
                f"fleet: {s.name!r} at {s.begin:.2f} claims target "
                f"pool {dst}, but no span under the p{dst}. prefix "
                f"names job {job_id}")
    return violations


def check_no_service_on_draining_device(tracer: Tracer) -> List[str]:
    """No new job starts on a device once its autoscale drain begins.

    The autoscaler spans every drain under the ``drain`` category on
    the ``autoscale`` track (``p<i>.autoscale`` in fleets), carrying a
    ``device`` arg and running from drain start to retirement.  A
    draining device finishes its in-flight work — a ``job`` span that
    began *before* the drain may legitimately stretch into it — but
    accepts no new placements, and the retired device never serves
    again.  So any ``job`` span on the matching device track that
    *begins* at or after the drain's start is a violation, whether it
    lands inside the drain window or after retirement.
    """
    violations = []
    drains: Dict[Tuple[str, int], List[Span]] = {}
    for s in tracer.spans:
        base = s.track.rsplit(".", 1)[-1]
        if base == "autoscale" and s.cat == "drain" and not s.instant:
            prefix = s.track[:len(s.track) - len("autoscale")]
            drains.setdefault(
                (prefix, int(s.args["device"])), []).append(s)
    if not drains:
        return violations
    for s in tracer.spans:
        if s.cat != "job" or s.instant:
            continue
        parsed = _device_track(s.track)
        if parsed is None:
            continue
        for d in drains.get(parsed, ()):
            if s.begin >= d.begin - EPS:
                violations.append(
                    f"{s.track}: job {s.name!r} begins at "
                    f"{s.begin:.2f} on or after the device's drain "
                    f"started at {d.begin:.2f}")
    return violations


def phase_cycle_totals(tracer: Tracer,
                       track: str = "engine") -> Dict[str, float]:
    """Total cycles per (cat, name) phase on a track — the quantity the
    interpreter-vs-plan agreement property compares."""
    totals: Dict[str, float] = {}
    for s in tracer.spans:
        if s.track != track or s.instant:
            continue
        key = f"{s.cat}:{s.name}" if s.cat == "datapath" else s.cat
        totals[key] = totals.get(key, 0.0) + s.dur
    return totals


def check_trace(tracer: Tracer) -> List[str]:
    """Run every structural invariant; returns all violations."""
    violations: List[str] = []
    violations.extend(check_reconfig_hidden(tracer))
    violations.extend(check_row_ordering(tracer))
    violations.extend(check_proper_nesting(tracer))
    violations.extend(check_device_exclusive(tracer))
    violations.extend(check_no_service_after_timeout(tracer))
    violations.extend(check_no_service_in_downtime(tracer))
    violations.extend(check_hedge_cancellation(tracer))
    violations.extend(check_no_service_in_pool_outage(tracer))
    violations.extend(check_reroute_attribution(tracer))
    violations.extend(check_no_service_on_draining_device(tracer))
    return violations
