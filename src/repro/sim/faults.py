"""Seeded fault injection for the payload stream.

ALRESCHA's storage format streams locally-dense blocks with *no runtime
meta-data* (§4): every byte on the channel is payload, consumed by the
FCU in table order.  That design point is also a robustness hazard — a
flipped bit or a dropped burst is not a malformed record the decoder can
reject, it is a perfectly plausible operand that silently becomes a
wrong answer.  This module supplies the *injection* half of the
resilience subsystem: a pluggable, seeded :class:`FaultModel` that the
streaming memory (:mod:`repro.sim.memory`) and the compiled plan layer
(:mod:`repro.core.plan`) consult once per payload-block transfer.

Fault kinds
-----------
``bitflip``
    One bit of one stored element is inverted in flight.  Detected only
    if the caller supplies the block's programmed checksum (recorded at
    ``program()`` time); otherwise the corrupted payload is delivered
    silently — the cross-check and NaN/Inf guard layers exist for
    exactly that case.
``drop``
    The burst never arrives.  Always detected (the stream decoder's
    run-length sequencing notices the hole) and re-requested.
``duplicate``
    The burst arrives twice; the copy is discarded, but it occupied the
    channel for one extra transfer.
``latency``
    A transient latency spike (row-hammer refresh, channel arbitration):
    the payload is intact, the transfer just takes longer.

Detected corruption triggers bounded re-stream retries with exponential
backoff; each retry is itself a fresh transfer that can fault again
(always, for a ``persistent`` fault).  Exhausting the retry budget
raises :class:`~repro.errors.FaultError`.  Every injected fault is
appended to :attr:`FaultModel.log`, so tests can reconcile the
``faults_detected`` / ``retry_cycles`` counters of a
:class:`~repro.core.report.SimReport` against the injection record.

Determinism: the model draws from one ``random.Random(seed)`` stream
advanced once per transfer, so a fixed seed plus a fixed transfer order
reproduces the exact fault sequence.  Call :meth:`FaultModel.reset`
to replay it from the start.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, FaultError
from repro.sim.stats import CounterSet

#: Every fault kind the model can inject, in draw order.
FAULT_KINDS = ("bitflip", "drop", "duplicate", "latency")

#: Default bounded-retry budget for detected corruption.
DEFAULT_MAX_RETRIES = 3

#: Base backoff before the first re-stream; doubles per retry.
DEFAULT_BACKOFF_CYCLES = 32.0

#: Cycles added by a transient latency spike.
DEFAULT_LATENCY_SPIKE_CYCLES = 128.0


def payload_checksum(values: np.ndarray) -> int:
    """CRC32 of a payload block as streamed (native float64 bytes).

    Recorded per block at ``program()`` time into the device image /
    plan artifacts and verified on stream; the check itself is modelled
    as free (an inline hardware CRC on the burst path) — only
    *recovery* costs cycles.
    """
    return zlib.crc32(np.ascontiguousarray(values,
                                           dtype=np.float64).tobytes())


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in :attr:`FaultModel.log`."""

    #: Global transfer index (0-based) at which the fault struck.
    index: int
    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Whether the runtime noticed (checksum mismatch, missing burst,
    #: duplicate sequence number).  A ``bitflip`` with no checksum to
    #: verify against is *silent*: delivered corrupted, undetected.
    detected: bool
    #: Whether delivery recovered pristine payload (retry/discard).
    corrected: bool
    #: Extra transfers the fault caused (re-streams + duplicates).
    restreams: int = 0
    #: Backoff + re-stream cycles charged to recovery.
    retry_cycles: float = 0.0
    #: Transient spike cycles (``latency`` faults only).
    latency_cycles: float = 0.0
    detail: str = ""

    @property
    def extra_cycles(self) -> float:
        """All channel cycles attributable to this fault."""
        return self.retry_cycles + self.latency_cycles

    @property
    def silent(self) -> bool:
        """Corrupted payload delivered without detection."""
        return not self.detected and not self.corrected \
            and self.kind == "bitflip"


@dataclass
class FaultModel:
    """Pluggable, seeded per-transfer fault injector.

    Attach one to :class:`~repro.core.accelerator.AlreschaConfig`
    (``fault_model=``) and every payload-block transfer of every run
    consults it.  ``rate`` is the per-transfer fault probability; with
    ``rate=0`` the model is a deterministic no-op.
    """

    rate: float
    seed: int = 0
    kinds: Tuple[str, ...] = FAULT_KINDS
    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_cycles: float = DEFAULT_BACKOFF_CYCLES
    latency_spike_cycles: float = DEFAULT_LATENCY_SPIKE_CYCLES
    #: A persistent (stuck-at) fault: retries of a detected corruption
    #: keep failing, so the retry budget always exhausts.
    persistent: bool = False
    log: List[FaultEvent] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(
                f"fault rate must be in [0, 1], got {self.rate}")
        unknown = set(self.kinds) - set(FAULT_KINDS)
        if not self.kinds or unknown:
            raise ConfigError(
                f"fault kinds must be a non-empty subset of "
                f"{FAULT_KINDS}, got {self.kinds!r}")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        self._rng = random.Random(self.seed)
        self._transfers = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultModel":
        """Build a model from the CLI's ``RATE[:SEED[:KINDS]]`` syntax.

        Malformed specs — junk or out-of-range rates, non-integer
        seeds, unknown kind names, too many ``:`` fields — raise
        :class:`~repro.errors.ConfigError` naming the offending token
        (shared grammar with
        :meth:`repro.sim.chaos.ChaosModel.parse`).
        """
        from repro.sim.chaos import parse_rate_spec
        rate, seed, kinds = parse_rate_spec(
            "--inject-faults", spec, FAULT_KINDS)
        if kinds is None:
            return cls(rate=rate, seed=seed)
        return cls(rate=rate, seed=seed, kinds=kinds)

    def spawn(self, index: int) -> "FaultModel":
        """An independently-seeded sibling with the same parameters.

        The serving runtime (:mod:`repro.runtime`) gives every device in
        a pool its own injector so one device's fault history never
        perturbs another's draw sequence: device ``i`` gets
        ``spawn(i)``.  The derived seed is a fixed affine function of
        the base seed, so a pool is reproducible from a single seed.
        """
        return FaultModel(
            rate=self.rate,
            seed=self.seed + 7919 * (index + 1),
            kinds=self.kinds,
            max_retries=self.max_retries,
            backoff_cycles=self.backoff_cycles,
            latency_spike_cycles=self.latency_spike_cycles,
            persistent=self.persistent,
        )

    def reset(self) -> None:
        """Rewind to the initial seeded state and clear the log."""
        self._rng = random.Random(self.seed)
        self._transfers = 0
        self.log.clear()

    # ------------------------------------------------------------------
    # Injection log summaries (for counter reconciliation in tests)
    # ------------------------------------------------------------------
    @property
    def transfers(self) -> int:
        """Payload transfers that consulted the model so far."""
        return self._transfers

    @property
    def injected(self) -> int:
        return len(self.log)

    @property
    def detected(self) -> int:
        return sum(1 for e in self.log if e.detected)

    @property
    def corrected(self) -> int:
        return sum(1 for e in self.log if e.corrected)

    @property
    def total_retry_cycles(self) -> float:
        return sum(e.retry_cycles for e in self.log)

    # ------------------------------------------------------------------
    # The per-transfer hook
    # ------------------------------------------------------------------
    def deliver(self, values: np.ndarray, checksum: Optional[int] = None,
                restream_cycles: float = 0.0
                ) -> Tuple[np.ndarray, float, Optional[FaultEvent]]:
        """Pass one payload block through the faulty channel.

        Returns ``(values, extra_cycles, event)``: the delivered payload
        (pristine, or a corrupted *copy* for a silent bitflip), cycles
        beyond the nominal transfer cost, and the logged event (None for
        a clean transfer).  ``restream_cycles`` is the channel cost of
        one re-fetch of this block, used to price retries and
        duplicates.  Raises :class:`~repro.errors.FaultError` when a
        detected corruption survives ``max_retries`` re-streams.
        """
        index = self._transfers
        self._transfers += 1
        if self._rng.random() >= self.rate:
            return values, 0.0, None
        kind = self.kinds[self._rng.randrange(len(self.kinds))]

        if kind == "latency":
            event = FaultEvent(index, kind, detected=False, corrected=False,
                               latency_cycles=self.latency_spike_cycles,
                               detail="transient latency spike")
            self.log.append(event)
            return values, event.extra_cycles, event

        if kind == "duplicate":
            # The stream decoder's sequence count discards the copy;
            # the channel still carried it.
            event = FaultEvent(index, kind, detected=True, corrected=True,
                               restreams=1, retry_cycles=restream_cycles,
                               detail="duplicated burst discarded")
            self.log.append(event)
            return values, event.extra_cycles, event

        # bitflip / drop: payload at risk.
        if kind == "bitflip":
            corrupted, detail = self._flip_bit(values)
            detected = (checksum is not None
                        and payload_checksum(corrupted) != checksum)
            if not detected:
                event = FaultEvent(index, kind, detected=False,
                                   corrected=False, detail=detail)
                self.log.append(event)
                return corrupted, 0.0, event
        else:  # drop: the hole in the run is detected immediately.
            detail = "dropped burst"
            detected = True

        retries, retry_cycles, corrected = self._retry(restream_cycles)
        event = FaultEvent(index, kind, detected=True, corrected=corrected,
                           restreams=retries, retry_cycles=retry_cycles,
                           detail=detail)
        self.log.append(event)
        if not corrected:
            raise FaultError(
                f"{kind} on transfer {index} not corrected after "
                f"{retries} re-stream retries ({detail})"
            )
        return values, event.extra_cycles, event

    def _retry(self, restream_cycles: float) -> Tuple[int, float, bool]:
        """Bounded re-stream loop with exponential backoff.

        Each retry is a fresh transfer: it fails again with probability
        ``rate`` (or always, for a persistent fault).
        """
        retries = 0
        cycles = 0.0
        while retries < self.max_retries:
            cycles += self.backoff_cycles * (2.0 ** retries) \
                + restream_cycles
            retries += 1
            failed_again = self.persistent \
                or self._rng.random() < self.rate
            if not failed_again:
                return retries, cycles, True
        return retries, cycles, False

    def _flip_bit(self, values: np.ndarray) -> Tuple[np.ndarray, str]:
        """Invert one random bit of one random stored element (copy)."""
        flat = np.ascontiguousarray(values, dtype=np.float64).copy()
        shape = flat.shape
        flat = flat.reshape(-1)
        elem = self._rng.randrange(max(1, flat.size))
        bit = self._rng.randrange(64)
        raw = flat.view(np.uint64)
        raw[elem] ^= np.uint64(1) << np.uint64(bit)
        return flat.reshape(shape), f"bit {bit} of element {elem} flipped"


def charge_event(counters: CounterSet, event: FaultEvent) -> None:
    """Record one fault event into a component's counter set.

    The shared accounting used by both the interpreter's streaming
    memory and the compiled plan layer, so ``faults_*``/``retry_cycles``
    counters reconcile with :attr:`FaultModel.log` regardless of the
    execution path.
    """
    counters.add("faults_injected", 1.0)
    if event.detected:
        counters.add("faults_detected", 1.0)
    if event.corrected:
        counters.add("faults_corrected", 1.0)
    if event.silent:
        counters.add("faults_silent", 1.0)
    if event.retry_cycles:
        counters.add("retry_cycles", event.retry_cycles)
    if event.latency_cycles:
        counters.add("fault_latency_cycles", event.latency_cycles)
    if event.restreams:
        counters.add("fault_restreams", float(event.restreams))
