"""Cycle clock for the behavioural simulator.

The ALRESCHA evaluation (Table 5 of the paper) runs the accelerator at
2.5 GHz.  Everything in the timing model is expressed in cycles; the clock
converts between cycles and wall-clock seconds so reports can be stated in
either unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

#: Default accelerator clock frequency from Table 5 of the paper.
DEFAULT_FREQUENCY_HZ = 2.5e9


@dataclass
class Clock:
    """A monotonically advancing cycle counter.

    Parameters
    ----------
    frequency_hz:
        Clock frequency in hertz.  Defaults to the paper's 2.5 GHz.
    """

    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    _cycles: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise SimulationError(
                f"clock frequency must be positive, got {self.frequency_hz}"
            )

    @property
    def cycles(self) -> float:
        """Total cycles elapsed since construction or the last reset."""
        return self._cycles

    @property
    def seconds(self) -> float:
        """Elapsed time in seconds at the configured frequency."""
        return self._cycles / self.frequency_hz

    def cycle_time_s(self) -> float:
        """Duration of a single cycle in seconds."""
        return 1.0 / self.frequency_hz

    def advance(self, cycles: float) -> float:
        """Advance the clock by ``cycles`` and return the new total.

        Fractional cycles are allowed: the memory model hands out
        fractional cycle costs for partial cache lines, and summing the
        exact fractions then rounding once at reporting time is more
        faithful than rounding every event up.
        """
        if cycles < 0:
            raise SimulationError(f"cannot advance clock by {cycles} cycles")
        self._cycles += cycles
        return self._cycles

    def to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at this clock's frequency."""
        return cycles / self.frequency_hz

    def to_cycles(self, seconds: float) -> float:
        """Convert a duration in seconds to cycles at this frequency."""
        return seconds * self.frequency_hz

    def reset(self) -> None:
        """Zero the elapsed-cycle counter."""
        self._cycles = 0.0
