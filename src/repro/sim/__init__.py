"""Simulation substrate: clock, memory, cache, buffers, energy, counters.

These are the hardware-agnostic building blocks the accelerator model
(:mod:`repro.core`) and the baseline models (:mod:`repro.baselines`) are
assembled from.
"""

from repro.sim.buffers import Fifo, LinkStack
from repro.sim.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultModel,
    charge_event,
    payload_checksum,
)
from repro.sim.cache import (
    DEFAULT_CACHE_BYTES,
    DEFAULT_HIT_LATENCY,
    DEFAULT_LINE_BYTES,
    LocalCache,
)
from repro.sim.clock import DEFAULT_FREQUENCY_HZ, Clock
from repro.sim.energy import DEFAULT_EVENT_ENERGY_PJ, EnergyModel
from repro.sim.memory import (
    DEFAULT_BANDWIDTH_BYTES_PER_S,
    DEFAULT_BURST_BYTES,
    StreamingMemory,
)
from repro.sim.stats import CounterSet

__all__ = [
    "Clock",
    "CounterSet",
    "EnergyModel",
    "FaultEvent",
    "FaultModel",
    "Fifo",
    "LinkStack",
    "LocalCache",
    "StreamingMemory",
    "charge_event",
    "payload_checksum",
    "FAULT_KINDS",
    "DEFAULT_BANDWIDTH_BYTES_PER_S",
    "DEFAULT_BURST_BYTES",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_EVENT_ENERGY_PJ",
    "DEFAULT_FREQUENCY_HZ",
    "DEFAULT_HIT_LATENCY",
    "DEFAULT_LINE_BYTES",
]
