"""Local vector cache of the RCU.

Table 5 of the paper configures a 1 KB cache with 64-byte lines and a
4-cycle access latency.  The cache holds the *vector* operands that need
addressable access — ``x^{t-1}``, ``x^t`` and ``b`` — while the matrix
payload streams past it straight into the FCU.

The model is a set-associative cache with LRU replacement, tracked at line
granularity.  The accelerator accesses the cache in ω-element *chunks*
(one vector sub-block per dense data path), which is exactly one 64-byte
line when ω = 8 and doubles are 8 bytes — the design point the paper
chose so that "the values in a cache line are used in succeeding cycles".
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import SimulationError
from repro.sim.stats import CounterSet

#: Table 5 parameters.
DEFAULT_CACHE_BYTES = 1024
DEFAULT_LINE_BYTES = 64
DEFAULT_HIT_LATENCY = 4

#: Miss penalty: one burst from the streaming memory at full bandwidth
#: (64 B / 115.2 B-per-cycle < 1 cycle of transfer) plus controller
#: overhead; we charge a conservative constant.
DEFAULT_MISS_LATENCY = 24


@dataclass
class LocalCache:
    """Set-associative LRU cache with cycle-cost accounting.

    ``read``/``write`` take an abstract *address space* name plus an
    element index, so distinct vector operands (``x_prev``, ``x_curr``,
    ``b``, ``diag``) never alias even though the model does not lay out a
    real address map.
    """

    size_bytes: int = DEFAULT_CACHE_BYTES
    line_bytes: int = DEFAULT_LINE_BYTES
    ways: int = 4
    hit_latency: int = DEFAULT_HIT_LATENCY
    miss_latency: int = DEFAULT_MISS_LATENCY
    element_bytes: int = 8
    counters: CounterSet = field(default_factory=CounterSet)
    _sets: Dict[int, "OrderedDict[Tuple[str, int], bool]"] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise SimulationError("cache and line sizes must be positive")
        if self.size_bytes % self.line_bytes:
            raise SimulationError("cache size must be a multiple of line size")
        n_lines = self.size_bytes // self.line_bytes
        if self.ways <= 0 or n_lines % self.ways:
            raise SimulationError(
                f"{n_lines} lines cannot form {self.ways}-way sets"
            )
        self._n_sets = n_lines // self.ways

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def elements_per_line(self) -> int:
        return self.line_bytes // self.element_bytes

    def _locate(self, space: str, index: int) -> Tuple[int, Tuple[str, int]]:
        """Map (space, element index) to (set index, line tag).

        The space name is folded in with a *stable* hash (CRC32), never
        ``hash()``: per-process hash randomisation would make set
        conflicts — and therefore every cycle count — differ from run
        to run, breaking the simulator's bit-reproducibility contract.
        """
        line_no = index // self.elements_per_line
        set_idx = (zlib.crc32(space.encode()) ^ line_no) % self._n_sets
        return set_idx, (space, line_no)

    def _touch(self, space: str, index: int, dirty: bool) -> Tuple[float, bool]:
        set_idx, tag = self._locate(space, index)
        lines = self._sets.setdefault(set_idx, OrderedDict())
        if tag in lines:
            lines.move_to_end(tag)
            if dirty:
                lines[tag] = True
            return float(self.hit_latency), True
        # Miss: fill, evicting LRU if the set is full.
        if len(lines) >= self.ways:
            _evicted_tag, was_dirty = lines.popitem(last=False)
            self.counters.add("cache_evictions")
            if was_dirty:
                self.counters.add("cache_writebacks")
        lines[tag] = dirty
        return float(self.miss_latency), False

    def read(self, space: str, index: int, count: int = 1) -> float:
        """Read ``count`` consecutive elements; returns cycle cost.

        Consecutive elements in one line cost a single access — this is
        the chunked-fetch behaviour of §4.2(a): a whole ω-chunk of the
        vector operand arrives in one cache access.
        """
        return self._access(space, index, count, dirty=False)

    def write(self, space: str, index: int, count: int = 1) -> float:
        """Write ``count`` consecutive elements; returns cycle cost."""
        return self._access(space, index, count, dirty=True)

    def _access(self, space: str, index: int, count: int, dirty: bool) -> float:
        if count <= 0:
            raise SimulationError(f"cache access of {count} elements")
        epl = self.elements_per_line
        first_line = index // epl
        last_line = (index + count - 1) // epl
        cycles = 0.0
        for line in range(first_line, last_line + 1):
            cost, hit = self._touch(space, line * epl, dirty)
            cycles += cost
            kind = "write" if dirty else "read"
            self.counters.add(f"cache_{kind}s")
            self.counters.add("cache_hits" if hit else "cache_misses")
        return cycles

    @property
    def hit_rate(self) -> float:
        hits = self.counters.get("cache_hits")
        total = hits + self.counters.get("cache_misses")
        return hits / total if total else 0.0

    def flush(self) -> None:
        """Drop all cached lines (keeps counters)."""
        self._sets.clear()

    def reset(self) -> None:
        self._sets.clear()
        self.counters.reset()
