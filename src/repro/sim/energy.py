"""Event-based energy model.

The paper measures energy by modelling "all the components of the
microarchitecture using a TSMC 28 nm standard cell and the SRAM library at
200 MHz" (§5.2).  We substitute that flow with a per-event energy table:
every counted simulation event (ALU op, reduce-engine op, PE op, cache
read/write, buffer push/pop, DRAM byte, configuration write) is assigned a
cost in picojoules, and total energy is the dot product of event counts
and costs.

The default constants are representative 28/32 nm-class numbers from the
public literature (Horowitz, ISSCC'14 keynote, and the CACTI-class SRAM
models): a 64-bit FP multiply-add ≈ 20 pJ, small SRAM access ≈ 10 pJ/word,
DRAM ≈ 15-20 pJ/byte.  Absolute joules are *not* the reproduction target —
the paper reports energy ratios (Figure 19), which depend on relative
event counts and on how much work each platform wastes per useful FLOP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.sim.stats import CounterSet

#: Default per-event energies, in picojoules.
DEFAULT_EVENT_ENERGY_PJ: Dict[str, float] = {
    # Compute events.
    "alu_op": 20.0,            # 64-bit FP multiply (FCU ALU)
    "re_op": 13.0,             # 64-bit FP add / min in a reduce engine
    "pe_op": 16.0,             # RCU LUT-based PE op (div/sub/add)
    # RCU storage events.
    "cache_reads": 10.0,       # 1 KB SRAM, per line access
    "cache_writes": 11.0,
    "cache_evictions": 0.0,
    "cache_writebacks": 11.0,
    "fifo_access": 2.0,        # small FIFO register file
    "stack_access": 2.0,       # link stack
    # Memory traffic.
    "dram_bytes": 17.5,        # per byte, GDDR5-class
    # Reconfiguration.
    "config_write": 5.0,       # one configuration-table row applied
    "switch_toggle": 1.5,      # configurable-switch state change
}


@dataclass
class EnergyModel:
    """Maps a :class:`CounterSet` of events to energy in joules."""

    event_energy_pj: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_EVENT_ENERGY_PJ)
    )
    #: Static power in watts; charged per elapsed second.  Alrescha's
    #: compute fabric is tiny (a ω-wide ALU row, a log-depth tree and a
    #: handful of PEs), so the default is a few hundred milliwatts.
    static_power_w: float = 0.35

    def energy_pj(self, counters: CounterSet | Mapping[str, float],
                  elapsed_s: float = 0.0) -> float:
        """Total energy in picojoules for the given event counts."""
        items = counters.items() if isinstance(counters, CounterSet) \
            else counters.items()
        dynamic = 0.0
        for name, count in items:
            cost = self._lookup(name)
            if cost:
                dynamic += cost * count
        static = self.static_power_w * elapsed_s * 1e12
        return dynamic + static

    def energy_j(self, counters: CounterSet | Mapping[str, float],
                 elapsed_s: float = 0.0) -> float:
        """Total energy in joules."""
        return self.energy_pj(counters, elapsed_s) * 1e-12

    def _lookup(self, event: str) -> float:
        """Cost for an event, matching namespaced counters by suffix.

        Counters merged from sub-components carry prefixes like
        ``"cache.cache_reads"``; the energy table is keyed by the bare
        event name, so fall back to the last dot-separated component.
        """
        if event in self.event_energy_pj:
            return self.event_energy_pj[event]
        tail = event.rsplit(".", 1)[-1]
        if tail in self.event_energy_pj:
            return self.event_energy_pj[tail]
        # Buffer counters are per-buffer ("A_fifo_pushes"); map any
        # *_pushes/*_pops counter to the generic buffer access cost.
        if tail.endswith(("_pushes", "_pops")):
            if tail.startswith("link"):
                return self.event_energy_pj.get("stack_access", 0.0)
            return self.event_energy_pj.get("fifo_access", 0.0)
        return 0.0

    def breakdown_pj(self, counters: CounterSet) -> Dict[str, float]:
        """Per-event-name energy contributions (picojoules)."""
        out: Dict[str, float] = {}
        for name, count in counters.items():
            cost = self._lookup(name)
            if cost:
                out[name] = cost * count
        return out
