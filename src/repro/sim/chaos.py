"""Seeded device-lifecycle chaos: whole-device crashes and hangs.

:mod:`repro.sim.faults` perturbs individual payload transfers — a
flipped bit, a dropped burst — but every device is immortal: the
breaker/retry machinery above it has never been exercised against the
most expensive failure a long-running sparse solve can see, a device
stalling or dying mid-job.  This module supplies that layer: a
:class:`ChaosModel` draws a deterministic sequence of *incidents* per
device, and the scheduler turns each one into typed
``DEVICE_CRASH``/``DEVICE_HANG``/``DEVICE_RECOVER`` events on its heap
(:mod:`repro.runtime.events`), so a chaos storm is as bit-reproducible
and replayable as a clean run.

Incident kinds
--------------
``crash``
    The device dies at ``at`` and stays down until ``until``.  Work in
    flight is lost (the scheduler salvages it onto another device) and
    the device's breaker is quarantined — force-open for the whole
    down interval, then probed half-open after recovery.
``hang``
    The device stalls for ``until - at`` cycles.  Work in flight is
    not lost, merely *slowed*: its completion is postponed by the
    stall, and no new work lands until the hang clears.

Determinism mirrors :class:`~repro.sim.faults.FaultModel`: one
``random.Random(seed)`` stream advanced once per drawn incident, with
:meth:`ChaosModel.spawn` deriving an independent per-device stream
from the base seed.  Every drawn incident is appended to
:attr:`ChaosModel.log`, so tests can reconcile a
:class:`~repro.runtime.metrics.PoolReport`'s ``crashes``/``hangs``/
``recoveries`` counters against the injection record.

The intensity knob is ``rate`` in ``[0, 1]``: the mean gap between a
device's incidents is ``mean_gap_cycles / rate``, so ``rate=0.2`` on
the default gap means roughly one incident per 125k simulated cycles
per device — a storm on serving timescales.  ``rate=0`` draws nothing
(a deterministic no-op, like a zero-rate fault model).

:class:`PoolChaosModel` lifts the same machinery one level up: it
draws whole-pool *outages* for the fleet layer
(:mod:`repro.runtime.fleet`), which routes around the dark pool and
readmits it only after a successful probe job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ConfigError

#: Incident kinds the model can draw, in draw order.
CHAOS_KINDS = ("crash", "hang")

#: Incident kinds a :class:`PoolChaosModel` can draw.  A pool either
#: is serving or is dark; there is no pool-scale analogue of a hang.
POOL_CHAOS_KINDS = ("outage",)

#: Mean cycles between incidents on one device at ``rate=1.0``; the
#: effective mean gap is this divided by the configured rate.
DEFAULT_MEAN_GAP_CYCLES = 25_000.0

#: Mean down interval of a crash (exponential draw).
DEFAULT_MEAN_CRASH_CYCLES = 20_000.0

#: Mean stall of a hang (exponential draw).
DEFAULT_MEAN_HANG_CYCLES = 4_000.0


@dataclass(frozen=True)
class Incident:
    """One drawn lifecycle incident, as recorded in the chaos log."""

    #: Device the incident strikes (the spawn index).
    device_id: int
    #: One of :data:`CHAOS_KINDS`.
    kind: str
    #: Cycle the incident begins.
    at: float
    #: Cycle the device recovers (crash) or the stall clears (hang).
    until: float

    @property
    def duration(self) -> float:
        return self.until - self.at


def _parse_token(flag: str, spec: str, token: str, kind: str, caster):
    try:
        return caster(token)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{flag} expects RATE[:SEED[:KINDS]]; {kind} token "
            f"{token!r} in {spec!r} is not a valid {kind}") from None


def parse_rate_spec(flag: str, spec: str,
                    known_kinds: Tuple[str, ...]):
    """Parse a CLI ``RATE[:SEED[:KINDS]]`` spec into its parts.

    Shared by :meth:`FaultModel.parse <repro.sim.faults.FaultModel.parse>`
    and :meth:`ChaosModel.parse`.  Every malformed token raises
    :class:`~repro.errors.ConfigError` *naming the offending token*:
    a junk rate, a non-integer seed, an unknown kind, or a spec with
    too many ``:`` fields — none of them may be half-accepted or die
    with a bare traceback.  Returns ``(rate, seed, kinds)`` with
    ``kinds=None`` when the spec names none.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ConfigError(
            f"{flag} expects RATE[:SEED[:KINDS]], got empty spec")
    parts = spec.split(":")
    if len(parts) > 3:
        raise ConfigError(
            f"{flag} expects RATE[:SEED[:KINDS]]; {spec!r} has "
            f"{len(parts)} ':'-separated fields")
    rate = _parse_token(flag, spec, parts[0], "rate", float)
    if not 0.0 <= rate <= 1.0:  # also rejects nan/inf
        raise ConfigError(
            f"{flag}: rate {parts[0]!r} in {spec!r} must be in [0, 1]")
    seed = 0
    if len(parts) > 1 and parts[1]:
        seed = _parse_token(flag, spec, parts[1], "seed", int)
    kinds: Optional[Tuple[str, ...]] = None
    if len(parts) > 2 and parts[2]:
        kinds = tuple(k.strip() for k in parts[2].split(","))
        for k in kinds:
            if k not in known_kinds:
                raise ConfigError(
                    f"{flag}: unknown kind {k!r} in {spec!r}; "
                    f"known: {known_kinds}")
    return rate, seed, kinds


@dataclass
class ChaosModel:
    """Seeded per-device lifecycle incident generator.

    Attach one to a :class:`~repro.runtime.pool.DevicePool`
    (``chaos=``); the pool spawns an independent sibling per device and
    the scheduler drives each stream through typed events.  ``rate``
    scales incident frequency; ``rate=0`` never draws.
    """

    rate: float
    seed: int = 0
    kinds: Tuple[str, ...] = CHAOS_KINDS
    #: Incident frequency scale: mean up-gap is this / ``rate``.
    mean_gap_cycles: float = DEFAULT_MEAN_GAP_CYCLES
    mean_crash_cycles: float = DEFAULT_MEAN_CRASH_CYCLES
    mean_hang_cycles: float = DEFAULT_MEAN_HANG_CYCLES
    #: The spawn index identifying which device this stream drives
    #: (-1 for a base model that only spawns).
    device_id: int = -1
    log: List[Incident] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:  # also rejects nan
            raise ConfigError(
                f"chaos rate must be in [0, 1], got {self.rate}")
        unknown = set(self.kinds) - set(CHAOS_KINDS)
        if not self.kinds or unknown:
            raise ConfigError(
                f"chaos kinds must be a non-empty subset of "
                f"{CHAOS_KINDS}, got {self.kinds!r}")
        for name in ("mean_gap_cycles", "mean_crash_cycles",
                     "mean_hang_cycles"):
            if getattr(self, name) <= 0.0:
                raise ConfigError(
                    f"chaos {name} must be positive, got "
                    f"{getattr(self, name)}")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosModel":
        """Build a model from the CLI's ``RATE[:SEED[:KINDS]]`` syntax.

        Malformed specs raise :class:`~repro.errors.ConfigError`
        naming the offending token (see :func:`parse_rate_spec`).
        """
        rate, seed, kinds = parse_rate_spec("--chaos", spec, CHAOS_KINDS)
        if kinds is None:
            return cls(rate=rate, seed=seed)
        return cls(rate=rate, seed=seed, kinds=kinds)

    def spawn(self, index: int) -> "ChaosModel":
        """An independently-seeded per-device sibling.

        Same affine-seed discipline as
        :meth:`~repro.sim.faults.FaultModel.spawn`: device ``i`` of a
        pool gets ``spawn(i)``, so one device's incident history never
        perturbs another's draw sequence and the whole pool replays
        from a single seed.
        """
        return ChaosModel(
            rate=self.rate,
            seed=self.seed + 104_729 * (index + 1),
            kinds=self.kinds,
            mean_gap_cycles=self.mean_gap_cycles,
            mean_crash_cycles=self.mean_crash_cycles,
            mean_hang_cycles=self.mean_hang_cycles,
            device_id=index,
        )

    def reset(self) -> None:
        """Rewind to the initial seeded state and clear the log."""
        self._rng = random.Random(self.seed)
        self.log.clear()

    # ------------------------------------------------------------------
    # Log summaries (for counter reconciliation in tests)
    # ------------------------------------------------------------------
    @property
    def drawn(self) -> int:
        return len(self.log)

    def drawn_of(self, kind: str) -> int:
        return sum(1 for i in self.log if i.kind == kind)

    # ------------------------------------------------------------------
    # The per-incident hook
    # ------------------------------------------------------------------
    def next_incident(self, now: float) -> Optional[Incident]:
        """Draw the device's next incident strictly after ``now``.

        The scheduler calls this once at run start and once per
        consumed ``DEVICE_RECOVER``, so incidents on one device are
        strictly sequential: the next one is not even *drawn* until
        the previous one has fully resolved.  Returns ``None`` when
        ``rate=0`` (no incidents, ever).
        """
        if self.rate <= 0.0:
            return None
        gap = self._rng.expovariate(self.rate / self.mean_gap_cycles)
        kind = self.kinds[self._rng.randrange(len(self.kinds))]
        mean = (self.mean_crash_cycles if kind == "crash"
                else self.mean_hang_cycles)
        duration = self._rng.expovariate(1.0 / mean)
        incident = Incident(device_id=self.device_id, kind=kind,
                            at=now + gap, until=now + gap + duration)
        self.log.append(incident)
        return incident


#: Mean cycles between outages on one pool at ``rate=1.0``.  Pools are
#: sturdier than devices: an outage is a rack event, not a card event.
DEFAULT_MEAN_POOL_GAP_CYCLES = 60_000.0

#: Mean dark interval of a pool outage (exponential draw).  The drawn
#: ``until`` is only the *earliest* readmission cycle — the fleet keeps
#: the pool out until a probe job actually succeeds.
DEFAULT_MEAN_OUTAGE_CYCLES = 15_000.0


@dataclass
class PoolChaosModel:
    """Seeded fleet-scoped incident generator: whole-pool outages.

    The fleet attaches one per :class:`~repro.runtime.pool.DevicePool`
    (via :meth:`spawn`, same affine-seed discipline as
    :meth:`ChaosModel.spawn`) and turns each drawn incident into
    ``POOL_OUTAGE``/``POOL_RECOVER`` events on its own heap.  The
    exponential gap/duration machinery is identical to the device
    model's; only the kind vocabulary (:data:`POOL_CHAOS_KINDS`) and
    the timescale defaults differ.  ``Incident.device_id`` holds the
    *pool* index for fleet incidents.
    """

    rate: float
    seed: int = 0
    #: Incident frequency scale: mean up-gap is this / ``rate``.
    mean_gap_cycles: float = DEFAULT_MEAN_POOL_GAP_CYCLES
    mean_outage_cycles: float = DEFAULT_MEAN_OUTAGE_CYCLES
    #: The spawn index identifying which pool this stream drives
    #: (-1 for a base model that only spawns).
    pool_id: int = -1
    log: List[Incident] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:  # also rejects nan
            raise ConfigError(
                f"pool-chaos rate must be in [0, 1], got {self.rate}")
        for name in ("mean_gap_cycles", "mean_outage_cycles"):
            if getattr(self, name) <= 0.0:
                raise ConfigError(
                    f"pool-chaos {name} must be positive, got "
                    f"{getattr(self, name)}")
        self._rng = random.Random(self.seed)

    @classmethod
    def parse(cls, spec: str) -> "PoolChaosModel":
        """Build a model from the CLI's ``RATE[:SEED]`` syntax.

        Shares :func:`parse_rate_spec` with ``--chaos`` and
        ``--inject-faults``, so every malformed token fails with the
        same message shape.  The optional KINDS field may only name
        ``outage`` (the sole pool-scale kind).
        """
        rate, seed, kinds = parse_rate_spec(
            "--pool-chaos", spec, POOL_CHAOS_KINDS)
        del kinds  # only one kind exists; naming it is a no-op
        return cls(rate=rate, seed=seed)

    def spawn(self, index: int) -> "PoolChaosModel":
        """An independently-seeded per-pool sibling for pool ``index``."""
        return PoolChaosModel(
            rate=self.rate,
            seed=self.seed + 104_729 * (index + 1),
            mean_gap_cycles=self.mean_gap_cycles,
            mean_outage_cycles=self.mean_outage_cycles,
            pool_id=index,
        )

    def reset(self) -> None:
        """Rewind to the initial seeded state and clear the log."""
        self._rng = random.Random(self.seed)
        self.log.clear()

    @property
    def drawn(self) -> int:
        return len(self.log)

    def next_incident(self, now: float) -> Optional[Incident]:
        """Draw the pool's next outage strictly after ``now``.

        Called once at fleet start and once per *readmission* (not per
        drawn ``until``): outages on one pool are strictly sequential,
        and a pool that is still probing cannot draw its next outage.
        Returns ``None`` when ``rate=0``.
        """
        if self.rate <= 0.0:
            return None
        gap = self._rng.expovariate(self.rate / self.mean_gap_cycles)
        duration = self._rng.expovariate(1.0 / self.mean_outage_cycles)
        incident = Incident(device_id=self.pool_id, kind="outage",
                            at=now + gap, until=now + gap + duration)
        self.log.append(incident)
        return incident
