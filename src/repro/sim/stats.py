"""Named event counters shared by every simulated component.

Components (FCU, RCU, caches, memory, baselines) record *events* —
"alu_op", "cache_hit", "dram_bytes", ... — into a :class:`CounterSet`.
The energy model later multiplies event counts by per-event costs, and the
analysis layer turns counters into report rows.  Keeping counters as a
plain mapping (rather than attributes scattered across classes) makes
merging sub-component statistics into a whole-accelerator report trivial.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class CounterSet:
    """A mapping of event names to accumulated counts.

    Counts are floats so that analytically derived fractional quantities
    (e.g. average occupancy, fractional cycles) can live beside integer
    event counts.
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._counts: Dict[str, float] = dict(initial or {})

    def add(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into the counter ``name``."""
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def add_many(self, events: Mapping[str, float]) -> None:
        """Accumulate a whole mapping of event counts in one call.

        The bulk form of :meth:`add`, used where a component charges many
        events at once (e.g. a compiled pass plan accounting an entire
        block run) instead of once per simulated step.
        """
        counts = self._counts
        for name, value in events.items():
            counts[name] = counts.get(name, 0.0) + value

    def copy(self) -> "CounterSet":
        """An independent copy (cloning captured report templates)."""
        return CounterSet(self._counts)

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the current value of ``name`` (``default`` if unseen)."""
        return self._counts.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        """Value equality with the zero-default convention: a counter
        that was never touched equals one explicitly at ``0.0``, since
        :meth:`get` cannot tell them apart.  Makes
        :class:`~repro.core.report.SimReport` dataclass equality mean
        *field-identical* — the store round-trip contract."""
        if not isinstance(other, CounterSet):
            return NotImplemented
        for name in set(self._counts) | set(other._counts):
            if self._counts.get(name, 0.0) != other._counts.get(name, 0.0):
                return False
        return True

    def items(self) -> Iterable[Tuple[str, float]]:
        return self._counts.items()

    def merge(self, other: "CounterSet", prefix: str = "") -> None:
        """Accumulate every counter from ``other`` into this set.

        ``prefix`` namespaces the merged counters (e.g. ``"cache."``) so a
        top-level report can distinguish identically named events from
        different components.
        """
        for name, value in other.items():
            self.add(prefix + name, value)

    def scaled(self, factor: float) -> "CounterSet":
        """Return a new set with every counter multiplied by ``factor``.

        Used to extrapolate a single solver iteration's event counts to a
        full run without re-simulating every iteration.
        """
        return CounterSet({k: v * factor for k, v in self._counts.items()})

    def diff(self, baseline: "CounterSet") -> "CounterSet":
        """Counters accumulated since ``baseline`` (``self - baseline``).

        The span tracer snapshots a live counter set when a span opens
        and stores the delta when it closes; ``diff`` is that delta.
        Exact zeros are dropped (a counter untouched during the span is
        not an event of the span); negative deltas are kept — they mean
        the set was reset mid-span, which callers should see, not have
        papered over.
        """
        deltas: Dict[str, float] = {}
        base = baseline._counts
        for name, value in self._counts.items():
            d = value - base.get(name, 0.0)
            if d != 0.0:
                deltas[name] = d
        for name, value in base.items():
            if name not in self._counts and value != 0.0:
                deltas[name] = -value
        return CounterSet(deltas)

    def __sub__(self, other: "CounterSet") -> "CounterSet":
        return self.diff(other)

    def as_dict(self) -> Dict[str, float]:
        """A copy of the underlying mapping, for reports and tests."""
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"CounterSet({body})"

    def __add__(self, other: "CounterSet") -> "CounterSet":
        result = CounterSet(self._counts)
        result.merge(other)
        return result

    @staticmethod
    def from_counter(counter: Counter) -> "CounterSet":
        """Build a CounterSet from a :class:`collections.Counter`."""
        return CounterSet({k: float(v) for k, v in counter.items()})
