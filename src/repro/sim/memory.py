"""Streaming-memory model.

ALRESCHA's headline property is that, thanks to the locally-dense storage
format and the configuration table holding all meta-data, the *entire*
memory bandwidth is spent on payload (non-zero values) streamed in exactly
the order the compute engine consumes it.  The memory model therefore only
needs to answer one question per transfer: *how many cycles does it take
to stream N bytes at the configured bandwidth?*

Table 5 of the paper: 12 GB GDDR5 at 288 GB/s feeding a 2.5 GHz engine,
i.e. 115.2 bytes/cycle (14.4 doubles/cycle).  Each 64-bit ALU operand
arrives in 0.4 ns through 32-bit 5 Gbps links (§5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.errors import CapacityError, SimulationError
from repro.sim.clock import DEFAULT_FREQUENCY_HZ
from repro.sim.faults import FaultModel, charge_event
from repro.sim.stats import CounterSet

#: Memory bandwidth from Table 5 (GDDR5, same budget given to every
#: accelerator compared in the paper).
DEFAULT_BANDWIDTH_BYTES_PER_S = 288e9

#: Capacity from Table 5; only used for sanity checks, the model never
#: simulates paging.
DEFAULT_CAPACITY_BYTES = 12 * 1024**3

#: Burst granularity of the modelled GDDR5 channel.  Transfers are padded
#: to this size, which is also the accelerator's cache-line size.
DEFAULT_BURST_BYTES = 64


@dataclass
class StreamingMemory:
    """Bandwidth-limited streaming memory with burst granularity.

    The model is deliberately simple: sequential streams achieve the full
    configured bandwidth (this is the design point of the Alrescha format),
    while random accesses pay per-burst padding.  Both behaviours are
    captured by rounding each request up to whole bursts.

    Parameters
    ----------
    bandwidth_bytes_per_s:
        Peak sustained bandwidth.
    frequency_hz:
        Clock of the consumer, used to express costs in cycles.
    burst_bytes:
        Minimum transfer granularity.
    """

    bandwidth_bytes_per_s: float = DEFAULT_BANDWIDTH_BYTES_PER_S
    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    burst_bytes: int = DEFAULT_BURST_BYTES
    capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    #: Optional seeded fault injector (:mod:`repro.sim.faults`),
    #: consulted once per payload-block transfer.  None (the default)
    #: keeps every method on the exact pre-fault code path.
    fault_model: Optional[FaultModel] = None
    counters: CounterSet = field(default_factory=CounterSet)
    #: Optional :class:`~repro.observe.tracer.Tracer`.  When set, every
    #: transfer extends a coalesced ``stream`` span on the ``channel``
    #: track (occupancy, not wall-aligned) and fault recovery appears as
    #: ``retry`` spans.  None (the default) is the traced-nothing path.
    tracer: Optional[object] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise SimulationError("memory bandwidth must be positive")
        if self.burst_bytes <= 0:
            raise SimulationError("burst size must be positive")

    @property
    def bytes_per_cycle(self) -> float:
        """Peak bytes deliverable per consumer clock cycle."""
        return self.bandwidth_bytes_per_s / self.frequency_hz

    def _padded_bytes(self, nbytes: float) -> float:
        bursts = -(-int(math.ceil(nbytes)) // self.burst_bytes)
        return float(bursts * self.burst_bytes)

    def stream_cycles(self, nbytes: float, sequential: bool = True) -> float:
        """Cycles needed to transfer ``nbytes``.

        Every request is rounded up to whole bursts — the channel's
        transfer granularity.  Callers moving a long contiguous stream
        should therefore issue it as one request (or use
        :meth:`stream_block_run`) so the padding is paid at most once;
        ``sequential=False`` additionally counts the request as a random
        access.
        """
        if nbytes < 0:
            raise SimulationError(f"cannot stream {nbytes} bytes")
        if nbytes == 0:
            return 0.0
        effective = self._padded_bytes(nbytes)
        self.counters.add("dram_bytes", effective)
        self.counters.add("dram_requests", 1.0)
        if not sequential:
            self.counters.add("dram_random_requests", 1.0)
        cycles = effective / self.bytes_per_cycle
        if self.tracer is not None:
            self.tracer.extend("channel", "stream", "stream", cycles,
                               {"dram_bytes": effective,
                                "dram_requests": 1.0})
        return cycles

    def stream_block_run(self, n_blocks: int, block_bytes: float) -> float:
        """Charge a contiguous run of ``n_blocks`` equal-size transfers.

        Counter-for-counter equivalent to ``n_blocks`` sequential
        :meth:`stream_cycles` calls of ``block_bytes`` each, in O(1).
        The compiled plan layer (:mod:`repro.core.plan`) accounts a whole
        pass's payload stream with one call to this method.
        """
        if n_blocks < 0:
            raise SimulationError(f"cannot stream {n_blocks} blocks")
        if block_bytes < 0:
            raise SimulationError(f"cannot stream {block_bytes} bytes")
        if n_blocks == 0 or block_bytes == 0:
            return 0.0
        effective = self._padded_bytes(block_bytes) * n_blocks
        self.counters.add_many({
            "dram_bytes": effective,
            "dram_requests": float(n_blocks),
        })
        cycles = effective / self.bytes_per_cycle
        if self.tracer is not None:
            self.tracer.extend("channel", "stream", "stream", cycles,
                               {"dram_bytes": effective,
                                "dram_requests": float(n_blocks)})
        return cycles

    def stream_doubles(self, count: float, sequential: bool = True) -> float:
        """Convenience wrapper: transfer ``count`` 8-byte values."""
        return self.stream_cycles(count * 8.0, sequential=sequential)

    def cost_cycles(self, nbytes: float) -> float:
        """Pure cost query: cycles to move ``nbytes`` at peak bandwidth.

        Burst-padded exactly like :meth:`stream_cycles` but charges
        nothing — no counters, no trace spans.  Batched multi-RHS
        serving uses this to convert stream bytes into cycles when
        reporting amortization: a k-wide batch streams the matrix
        payload once, so its per-RHS stream cost is this quantity
        divided by k.
        """
        if nbytes < 0:
            raise SimulationError(f"cannot stream {nbytes} bytes")
        if nbytes == 0:
            return 0.0
        return self._padded_bytes(nbytes) / self.bytes_per_cycle

    def stream_payload_block(self, values: np.ndarray, nbytes: float,
                             checksum: Optional[int] = None
                             ) -> Tuple[np.ndarray, float]:
        """Charge one payload-block transfer, consulting the fault model.

        Returns ``(values, extra_cycles)``: the delivered payload and
        the cycles *beyond* the nominal :meth:`stream_cycles` cost
        (retries, duplicated bursts, latency spikes).  With no fault
        model attached this is exactly ``stream_cycles(nbytes)`` —
        the clean path stays bit-identical.

        ``checksum`` is the block's programmed CRC (recorded at
        ``program()`` time); when given, in-flight corruption is
        detected and re-streamed with bounded exponential backoff.  The
        verification itself is free (an inline hardware CRC on the
        burst path); only recovery costs cycles and bytes, which land
        in the ``retry_cycles``/``fault_restreams`` counters and the
        DRAM traffic totals.
        """
        self.stream_cycles(nbytes)
        fm = self.fault_model
        if fm is None:
            return values, 0.0
        padded = self._padded_bytes(nbytes)
        values, extra, event = fm.deliver(
            values, checksum, restream_cycles=padded / self.bytes_per_cycle)
        if event is not None:
            charge_event(self.counters, event)
            if event.restreams:
                self.counters.add("dram_bytes", padded * event.restreams)
                self.counters.add("dram_requests", float(event.restreams))
            if self.tracer is not None:
                if extra > 0.0:
                    self.tracer.extend(
                        "channel", f"retry:{event.kind}", "retry", extra,
                        {"restreams": float(event.restreams)},
                        coalesce=False)
                else:
                    self.tracer.instant_event(
                        f"fault:{event.kind}", "fault",
                        self.tracer.cursor("channel"), "channel")
        return values, extra

    def check_capacity(self, resident_bytes: float,
                       context: str = "device image") -> None:
        """Reject a resident working set larger than the modelled DRAM.

        The model never simulates paging (Table 5's 12 GB is treated as
        a hard bound), so oversubscription must fail at ``program()``
        time rather than silently mis-modelling the stream.
        """
        if resident_bytes > self.capacity_bytes:
            raise CapacityError(
                f"{context} needs {resident_bytes:,.0f} resident bytes "
                f"but the memory holds {self.capacity_bytes:,} "
                f"(capacity_bytes)"
            )

    @property
    def total_bytes(self) -> float:
        """Total bytes transferred so far (post burst padding)."""
        return self.counters.get("dram_bytes")

    def utilization(self, busy_cycles: float) -> float:
        """Fraction of peak bandwidth achieved over ``busy_cycles``.

        This is the quantity plotted on the secondary axis of Figure 15:
        payload delivered divided by what the link could have delivered in
        the same number of cycles.
        """
        if busy_cycles <= 0:
            return 0.0
        peak = busy_cycles * self.bytes_per_cycle
        return min(1.0, self.total_bytes / peak)

    def reset(self) -> None:
        self.counters.reset()
