"""Algorithm 1: converting sparse kernels to dense data paths.

The host-side, one-time conversion.  Given a kernel type, the sparse
matrix operand and the block width ω, it produces

* the :class:`~repro.core.config.ConfigTable` programmed into the
  accelerator, and
* the matrix reformatted into the Alrescha locally-dense storage format,
  whose stream order matches the table's entry order.

Kernels without (or with straightforward) data dependencies — SpMV, BFS,
SSSP, PR — lower every non-empty block to one instance of their dense
data path.  SymGS lowers to a *majority of parallelisable GEMV* entries
(the non-diagonal blocks) *plus a minority of sequential D-SymGS* entries
(the diagonal blocks); the entries of each block-row are reordered so all
GEMVs run back-to-back before the single switch into D-SymGS.  The
distributive property of the inner products in Equation 2 guarantees the
reordering is exact.

Note on index conventions: the paper's listing is written over columns of
``A^T`` (its line 19 reads "i > j -> port2 = x^{t-1}").  We index by rows
of ``A`` — computing block-row *i* of the output — so blocks *left* of
the diagonal (j < i) read the vector being produced this sweep (``x^t``,
port 1) and blocks right of it read the previous iterate (``x^{t-1}``,
port 2).  The two conventions describe the same dataflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.formats import AlreschaMatrix, BCSRMatrix, COOMatrix
from repro.formats.base import SparseFormat
from repro.core.config import (
    NO_CACHE_WRITE,
    AccessOrder,
    ConfigEntry,
    ConfigTable,
    DataPathType,
    KernelType,
    OperandPort,
)

#: Host-side preprocessing cost per source non-zero, in host cycles.
#: §4: "the conversion complexity from frequently-used storage formats
#: (e.g., CSR and BCSR) is linear in time and requires constant space."
PREPROCESS_CYCLES_PER_NNZ = 4.0


@dataclass
class ConversionResult:
    """Output of Algorithm 1: the table plus the reformatted operand."""

    kernel: KernelType
    omega: int
    table: ConfigTable
    matrix: AlreschaMatrix
    bcsr: BCSRMatrix
    #: Whether the data-path reordering of §4.1 was applied (False only
    #: for the ablation).  Without it, a SymGS row's diagonal block
    #: streams past before the row's trailing GEMV partials exist and
    #: must be re-fetched, with two extra data-path toggles.
    reordered: bool = True

    @property
    def n_entries(self) -> int:
        return len(self.table)

    @property
    def n_dependent(self) -> int:
        return sum(1 for e in self.table if e.dp.is_dependent)

    @property
    def n_parallel(self) -> int:
        return self.n_entries - self.n_dependent

    @property
    def switch_count(self) -> int:
        return self.table.switch_count()

    def preprocess_cycles(self) -> float:
        """One-time host-side conversion cost (linear in nnz)."""
        return PREPROCESS_CYCLES_PER_NNZ * self.bcsr.nnz


def _to_bcsr(matrix, omega: int) -> BCSRMatrix:
    if isinstance(matrix, BCSRMatrix):
        if matrix.omega != omega:
            raise ConfigError(
                f"matrix blocked at omega={matrix.omega}, requested {omega}"
            )
        return matrix
    if isinstance(matrix, SparseFormat):
        return BCSRMatrix.from_coo(COOMatrix.from_dense(matrix.to_dense()),
                                   omega)
    if hasattr(matrix, "tocoo"):
        return BCSRMatrix.from_coo(COOMatrix.from_scipy(matrix), omega)
    return BCSRMatrix.from_dense(matrix, omega)


def convert(kernel: KernelType, matrix, omega: int = 8,
            reorder: bool = True) -> ConversionResult:
    """Run Algorithm 1.

    Parameters
    ----------
    kernel:
        Which sparse kernel the table implements.
    matrix:
        The sparse matrix operand (dense array, scipy.sparse, or any
        :class:`~repro.formats.SparseFormat`).
    omega:
        Block width; the paper evaluates {8, 16, 32} and selects 8.
    reorder:
        For SymGS only: when True (the paper's design), all GEMV entries
        of a block-row precede its D-SymGS entry.  When False (ablation),
        entries follow the natural column order, interleaving the
        dependent data path mid-row and multiplying the switch count.
    """
    if not isinstance(kernel, KernelType):
        raise ConfigError(f"unknown kernel type {kernel!r}")
    bcsr = _to_bcsr(matrix, omega)
    if kernel is KernelType.SYMGS:
        return _convert_symgs(kernel, bcsr, omega, reorder)
    return _convert_straightforward(kernel, bcsr, omega)


def _convert_straightforward(kernel: KernelType, bcsr: BCSRMatrix,
                             omega: int) -> ConversionResult:
    """Lines 8-12: SpMV/BFS/SSSP/PR lower 1:1 to their dense data path."""
    table = ConfigTable(bcsr.shape[0], omega)
    dp = kernel.datapath
    for i in range(bcsr.n_block_rows):
        for j, _blk in bcsr.block_row(i):
            table.add(ConfigEntry(
                dp=dp,
                inx_in=j * omega,
                inx_out=i * omega,
                order=AccessOrder.L2R,
                op=OperandPort.PORT1,
                block_row=i,
                block_col=j,
            ))
    alr = AlreschaMatrix.from_bcsr(bcsr, symgs_layout=False)
    return ConversionResult(kernel, omega, table, alr, bcsr)


def _convert_symgs(kernel: KernelType, bcsr: BCSRMatrix, omega: int,
                   reorder: bool) -> ConversionResult:
    """Lines 13-27: split SymGS into GEMV + D-SymGS entries."""
    if bcsr.shape[0] != bcsr.shape[1]:
        raise ConfigError(f"SymGS requires a square matrix, got {bcsr.shape}")
    table = ConfigTable(bcsr.shape[0], omega)
    for i in range(bcsr.n_block_rows):
        gemvs = []
        diag_entry: Optional[ConfigEntry] = None
        natural = []
        for j, _blk in bcsr.block_row(i):
            if i != j:
                entry = ConfigEntry(
                    dp=DataPathType.GEMV,
                    inx_in=j * omega,
                    inx_out=NO_CACHE_WRITE,  # partials go to the link stack
                    order=AccessOrder.L2R,
                    op=(OperandPort.PORT1 if j < i else OperandPort.PORT2),
                    block_row=i,
                    block_col=j,
                )
                gemvs.append(entry)
                natural.append(entry)
            else:
                diag_entry = ConfigEntry(
                    dp=DataPathType.D_SYMGS,
                    inx_in=i * omega,
                    inx_out=i * omega,
                    order=AccessOrder.R2L,
                    op=OperandPort.PORT2,
                    block_row=i,
                    block_col=i,
                )
                natural.append(diag_entry)
        if diag_entry is None and (gemvs or natural):
            # A block row with off-diagonal content but an all-zero
            # diagonal block would make the solve singular; Algorithm 1
            # still emits the D-SymGS so the error surfaces at execution.
            diag_entry = ConfigEntry(
                dp=DataPathType.D_SYMGS,
                inx_in=i * omega,
                inx_out=i * omega,
                order=AccessOrder.R2L,
                op=OperandPort.PORT2,
                block_row=i,
                block_col=i,
            )
            natural.append(diag_entry)
        if reorder:
            for entry in gemvs:
                table.add(entry)
            if diag_entry is not None:
                table.add(diag_entry)
        else:
            for entry in natural:
                table.add(entry)
    alr = AlreschaMatrix.from_bcsr(bcsr, symgs_layout=True)
    return ConversionResult(kernel, omega, table, alr, bcsr,
                            reordered=reorder)
