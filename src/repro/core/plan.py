"""Compiled per-pass execution plans: the accelerator hot loop, batched.

The interpreter in :mod:`repro.core.accelerator` walks the programmed
configuration table block by block, touching the cache model, the event
counters and the memory model once per ω×ω block.  That is faithful to
the paper's narrative but wall-clock dominated by Python overhead — the
opposite of the streaming design point ALRESCHA argues for.  This module
lowers a programmed pass *once* into batched numpy arrays and replays it
with a handful of vectorized calls.

What is lowered (per pass kind)
-------------------------------
* the ω×ω blocks of every streaming-class table entry, stacked into one
  ``[m, ω, ω]`` tensor in execution order;
* gather indices ``[m, ω]`` resolving each entry's operand chunk
  (``inx_in`` plus lane, column-reversed for upper-triangle blocks) into
  a zero-padded operand vector — the plan analogue of the RCU's
  zero-filling :meth:`~repro.core.rcu.ReconfigurableComputeUnit.read_chunk`;
* per-block stream/compute cycle vectors (:class:`PassArtifacts`);
* per-block-row segment boundaries, which both scatter the row outputs
  and, for SymGS, sequence the GEMV → D-SymGS dependency.

Why timing stays identical
--------------------------
Every quantity in a :class:`~repro.core.report.SimReport` — cycles,
counters, energy, bytes — depends only on the block structure fixed at
``program()`` time, never on operand *values* (block nnz decides ALU/RE
activity, the table decides cache/stack/memory traffic).  Compilation
therefore replays the legacy interpreter once with neutral (zero)
operands and captures its report as a template; each plan run returns a
:meth:`~repro.core.report.SimReport.clone` of it.  This makes report
identity hold by construction — including the sequence-dependent LRU
cache counters — and the functional results are computed with
operation-for-operation identical numpy expressions, so kernel outputs
are bit-identical too (property-tested against the legacy path).

Compilation cross-checks the lowered artifacts against the captured
template (compute-cycle totals, memory request counts) and refuses to
produce a plan that disagrees with the interpreter.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.core.config import DataPathType, KernelType, OperandPort
from repro.core.datapaths import dsymgs_solve
from repro.core.report import SimReport
from repro.observe.tracer import Span, Tracer
from repro.sim.faults import charge_event

#: Pass kinds served by :class:`CompiledStreamingPass` (independent
#: block rows; one batched gather/compute/scatter per pass).
STREAMING_KINDS = ("spmv", "bfs", "bfs-parents", "sssp", "pagerank")

#: All pass kinds the compiler understands.
PLAN_KINDS = STREAMING_KINDS + ("symgs",)


@dataclass(frozen=True)
class PassArtifacts:
    """Lowered per-block vectors and segment boundaries of one pass.

    These are the honest compile outputs (beyond the stacked blocks and
    the report template): per-block stream and compute cycle vectors in
    execution order, the block-row segmentation, and the one-shot
    payload accounting for the whole stream.
    """

    #: Memory-side cycles per streamed block, execution order.
    stream_cycles_per_block: np.ndarray
    #: Engine-side cycles per block, execution order.
    compute_cycles_per_block: np.ndarray
    #: Offset of each block row's first block in the stacked tensors.
    seg_start: np.ndarray
    #: Number of streaming blocks per block row.
    seg_len: np.ndarray
    #: Block-row index of each segment (scatter target).
    out_rows: np.ndarray
    #: Cycles to stream the whole payload as one contiguous block run
    #: (:meth:`~repro.sim.memory.StreamingMemory.stream_block_run`).
    payload_stream_cycles: float


def _padded_length(n: int, omega: int) -> Tuple[int, int]:
    """(number of block rows, padded vector length) for size ``n``."""
    nbr = -(-n // omega)
    return nbr, nbr * omega


def _time_groups(seg_len: np.ndarray,
                 seg_start: np.ndarray) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Precompute, for each within-row block position ``t``, the rows
    still live and the flat index of their ``t``-th block.

    Replaying these groups in order applies every row's partials in
    exactly the interpreter's per-row sequence (position 0 first), so
    floating-point accumulation order — and hence the bit pattern of the
    result — matches the legacy path.
    """
    groups: List[Tuple[np.ndarray, np.ndarray]] = []
    t = 0
    while True:
        live = np.nonzero(seg_len > t)[0]
        if live.size == 0:
            break
        groups.append((live, seg_start[live] + t))
        t += 1
    return groups


def _check_operand(name: str, vec: np.ndarray, n: int) -> None:
    if vec.shape != (n,):
        raise SimulationError(
            f"operand {name!r} must have shape ({n},), got {vec.shape}"
        )


def _apply_fault_events(report: SimReport, extra_cycles: float,
                        events, padded_block_bytes: float) -> None:
    """Annotate a cloned report template with one run's fault outcome.

    Mirrors the accounting :meth:`~repro.sim.memory.StreamingMemory.
    stream_payload_block` performs on the interpreter path, so the
    ``faults_*``/``retry_cycles`` counters and DRAM traffic reconcile
    with the injection log regardless of execution path.  A clean run
    (no events, no extra cycles) leaves the clone untouched.
    """
    if extra_cycles:
        report.cycles += extra_cycles
    for event in events:
        charge_event(report.counters, event)
        if event.restreams:
            nbytes = padded_block_bytes * event.restreams
            report.counters.add("dram_bytes", nbytes)
            report.counters.add("dram_requests", float(event.restreams))
            report.streamed_bytes += nbytes


def _replay_spans(acc, span_template: List[Span], extra_cycles: float,
                  events) -> None:
    """Replay a pass's captured span template onto the user's tracer.

    The span analogue of cloning the report template: pass timing
    depends only on block structure, so the spans captured at compile
    time are exact for every run — shifted to each track's current
    cursor.  Per-run fault recovery, which the template cannot know,
    is appended live: ``retry`` spans on the channel track, and the
    replayed pass span stretched by the recovered cycles so its
    duration still matches the (fault-adjusted) report.
    """
    tracer = acc.config.tracer if acc is not None else None
    if tracer is None or not span_template:
        return
    offsets = {}
    for span in span_template:
        if span.track not in offsets:
            offsets[span.track] = tracer.cursor(span.track)
    base = len(tracer.spans)
    tracer.replay(span_template, offsets)
    if extra_cycles > 0.0:
        for span in tracer.spans[base:]:
            if span.cat == "pass":
                tracer.stretch(span.span_id, extra_cycles)
    for event in events:
        if event.extra_cycles > 0.0:
            tracer.extend("channel", f"retry:{event.kind}", "retry",
                          event.extra_cycles,
                          {"restreams": float(event.restreams)},
                          coalesce=False)
        else:
            tracer.instant_event(f"fault:{event.kind}", "fault",
                                 tracer.cursor("channel"), "channel")


def _verify_against_template(kind: str, artifacts: PassArtifacts,
                             template: SimReport,
                             n_requests: int) -> None:
    """Refuse to emit a plan whose lowering disagrees with the
    interpreter's accounting."""
    compute_total = float(artifacts.compute_cycles_per_block.sum())
    template_compute = float(sum(template.datapath_cycles.values()))
    if not math.isclose(compute_total, template_compute,
                        rel_tol=1e-9, abs_tol=1e-6):
        raise SimulationError(
            f"{kind} plan lowering disagrees with the interpreter: "
            f"compute {compute_total} vs {template_compute} cycles"
        )
    template_requests = template.counters.get("dram_requests")
    if template_requests != float(n_requests):
        raise SimulationError(
            f"{kind} plan lowering disagrees with the interpreter: "
            f"{n_requests} block transfers vs {template_requests} "
            f"memory requests"
        )


class CompiledStreamingPass:
    """A compiled SpMV / D-BFS / D-SSSP / D-PR pass.

    Executes as: one gather of operand chunks, one batched block
    compute, a short live-row accumulation loop (longest block row many
    steps, each fully vectorized across rows), one scatter — then clones
    the report template.
    """

    def __init__(self, kind: str, n: int, omega: int,
                 blocks: np.ndarray, gather: np.ndarray,
                 src_base: np.ndarray, artifacts: PassArtifacts,
                 template: SimReport, acc=None,
                 checksums: Optional[List[int]] = None,
                 restream_cycles: float = 0.0,
                 padded_block_bytes: float = 0.0,
                 span_template: Optional[List[Span]] = None) -> None:
        self.kind = kind
        self.n = n
        self.omega = omega
        self.nbr, self.npad = _padded_length(n, omega)
        self.blocks = blocks
        self.masks = (blocks != 0.0) if kind != "spmv" else None
        self.gather = gather
        self.src_base = src_base
        self.artifacts = artifacts
        self.template = template
        #: Back-reference to the owning accelerator: the fault model and
        #: resilience knobs live on its config and may change between
        #: runs (e.g. forced verification after degradation).
        self.acc = acc
        #: Per-block payload CRCs in stacked order (``program()`` data).
        self.checksums = checksums or []
        #: Channel cost of re-fetching one block, for pricing retries.
        self.restream_cycles = restream_cycles
        self.padded_block_bytes = padded_block_bytes
        #: Spans captured alongside the report template (empty when the
        #: owning accelerator had no tracer at compile time).
        self.span_template = span_template or []
        self._tgroups = _time_groups(artifacts.seg_len, artifacts.seg_start)
        self._n_rows = int(artifacts.out_rows.size)
        #: Per-width batch report templates, captured lazily from the
        #: legacy batch interpreter the first time each width runs.
        self._batch_templates: Dict[int, Tuple[SimReport, List[Span]]] = {}

    # ------------------------------------------------------------------
    # Shared pieces
    # ------------------------------------------------------------------
    def _gather_chunks(self, vec: np.ndarray) -> np.ndarray:
        """Zero-padded operand chunks per block, reversal applied."""
        pad = np.zeros(self.npad)
        pad[:self.n] = vec
        return pad[self.gather]

    def _accumulate_sum(self, partial: np.ndarray) -> np.ndarray:
        acc = np.zeros((self._n_rows, self.omega))
        for live, idx in self._tgroups:
            acc[live] += partial[idx]
        return acc

    def _accumulate_min(self, partial: np.ndarray) -> np.ndarray:
        acc = np.full((self._n_rows, self.omega), np.inf)
        for live, idx in self._tgroups:
            acc[live] = np.minimum(acc[live], partial[idx])
        return acc

    def _scatter_assign(self, acc: np.ndarray) -> np.ndarray:
        """Rows without blocks stay zero (the interpreter never writes
        them)."""
        out = np.zeros(self.npad)
        out.reshape(self.nbr, self.omega)[self.artifacts.out_rows] = acc
        return out[:self.n].copy()

    def _scatter_min(self, acc: np.ndarray, base: np.ndarray) -> np.ndarray:
        out = np.zeros(self.npad)
        out[:self.n] = base
        view = out.reshape(self.nbr, self.omega)
        rows = self.artifacts.out_rows
        view[rows] = np.minimum(view[rows], acc)
        return out[:self.n].copy()

    # ------------------------------------------------------------------
    # Resilience (all no-ops when no fault model is attached)
    # ------------------------------------------------------------------
    def _deliver(self):
        """Stream the stacked blocks through the (possibly faulty)
        channel, in the interpreter's transfer order.

        Returns ``(blocks, masks, extra_cycles, events)``.  With no
        fault model these are the pristine compile-time arrays and the
        call is one attribute check; a silent bitflip replaces the
        stacked tensor with a corrupted *copy* — the compile-time
        ``self.blocks`` stays pristine for cross-checking.
        """
        cfg = self.acc.config
        fm = cfg.fault_model
        if fm is None:
            return self.blocks, self.masks, 0.0, []
        verify = cfg.verify_checksums or self.acc._force_verify
        blocks, masks = self.blocks, self.masks
        extra, events = 0.0, []
        for i in range(self.blocks.shape[0]):
            src = self.blocks[i]
            checksum = int(self.checksums[i]) if verify else None
            vals, cycles, event = fm.deliver(
                src, checksum, restream_cycles=self.restream_cycles)
            extra += cycles
            if event is not None:
                events.append(event)
            if vals is not src:
                if blocks is self.blocks:
                    blocks = self.blocks.copy()
                blocks[i] = vals
        if blocks is not self.blocks and self.kind != "spmv":
            masks = blocks != 0.0
        return blocks, masks, extra, events

    def _finish_report(self, extra_cycles: float, events) -> SimReport:
        report = self.template.clone()
        _apply_fault_events(report, extra_cycles, events,
                            self.padded_block_bytes)
        _replay_spans(self.acc, self.span_template, extra_cycles, events)
        return report

    def _crosscheck(self, report: SimReport, acc: np.ndarray,
                    reduce_kind: str, partial_fn) -> None:
        """Spot-validate sampled block rows of this run against a
        recompute from the pristine compile-time blocks.

        The recompute uses operation-for-operation identical numpy
        expressions, so on an uncorrupted run the comparison is
        bitwise-equal by construction — a mismatch means the delivered
        payload differed from the programmed payload (a silent fault
        that slipped past checksum verification).  Mismatch counts land
        in the report's ``crosscheck_mismatches`` counter, which the
        accelerator's degradation logic watches.
        """
        cfg = self.acc.config
        if cfg.crosscheck_rows <= 0.0 or self._n_rows == 0:
            return
        rng = random.Random(cfg.crosscheck_seed)
        count = min(self._n_rows, max(1, int(
            math.ceil(cfg.crosscheck_rows * self._n_rows))))
        mismatches = 0
        for r in rng.sample(range(self._n_rows), count):
            lo = int(self.artifacts.seg_start[r])
            hi = lo + int(self.artifacts.seg_len[r])
            partial = partial_fn(lo, hi)
            expect = (np.zeros(self.omega) if reduce_kind == "sum"
                      else np.full(self.omega, np.inf))
            for p in partial:
                expect = (expect + p if reduce_kind == "sum"
                          else np.minimum(expect, p))
            if not np.array_equal(expect, acc[r], equal_nan=True):
                mismatches += 1
        report.counters.add("crosscheck_rows", float(count))
        if mismatches:
            report.counters.add("crosscheck_mismatches", float(mismatches))

    # ------------------------------------------------------------------
    # Pass kinds
    # ------------------------------------------------------------------
    def run_spmv_batch(self, x: np.ndarray
                       ) -> Tuple[np.ndarray, SimReport]:
        """Batched multi-RHS SpMV: one payload delivery, ``k`` columns.

        The stacked blocks cross the (possibly faulty) channel *once*
        for the whole batch — one shared fault exposure, one payload's
        DRAM traffic — and each column is then computed with
        expressions identical to :meth:`run_spmv` on that column alone
        (per-column matmul, deliberately not one wide matmul whose
        BLAS summation order could differ), so every column's answer is
        bit-identical to solo service.  The report clones the
        width-``k`` template captured from the legacy batch
        interpreter (:meth:`~repro.core.accelerator.Alrescha.run_spmm`).
        """
        if self.kind != "spmv":
            raise SimulationError(
                f"pass kind {self.kind!r} does not batch")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] != self.n or x.shape[1] < 1:
            raise SimulationError(
                f"operand must be ({self.n}, k>=1), got {x.shape}")
        k = x.shape[1]
        template, span_template = self._batch_template(k)
        blocks, _masks, extra, events = self._deliver()
        y = np.empty((self.n, k))
        accs = []
        for col in range(k):
            chunks = self._gather_chunks(x[:, col])
            partial = np.matmul(blocks, chunks[:, :, None])[:, :, 0]
            acc = self._accumulate_sum(partial)
            accs.append((acc, chunks))
            y[:, col] = self._scatter_assign(acc)
        report = template.clone()
        _apply_fault_events(report, extra, events,
                            self.padded_block_bytes)
        _replay_spans(self.acc, span_template, extra, events)
        for acc, chunks in accs:
            self._crosscheck(
                report, acc, "sum",
                lambda lo, hi, c=chunks: np.matmul(
                    self.blocks[lo:hi], c[lo:hi, :, None])[:, :, 0])
        return y, report

    def _batch_template(self, k: int) -> Tuple[SimReport, List[Span]]:
        cached = self._batch_templates.get(k)
        if cached is None:
            cached = _capture_batch_template(self.acc, self.kind, k)
            self._batch_templates[k] = cached
        return cached

    def run_spmv(self, x: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        _check_operand("x", x, self.n)
        blocks, _masks, extra, events = self._deliver()
        chunks = self._gather_chunks(x)
        partial = np.matmul(blocks, chunks[:, :, None])[:, :, 0]
        acc = self._accumulate_sum(partial)
        y = self._scatter_assign(acc)
        report = self._finish_report(extra, events)
        self._crosscheck(
            report, acc, "sum",
            lambda lo, hi: np.matmul(self.blocks[lo:hi],
                                     chunks[lo:hi, :, None])[:, :, 0])
        return y, report

    def run_minplus(self, dist: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """D-BFS (unit cost) or D-SSSP (stored weights) relaxation."""
        _check_operand("dist", dist, self.n)
        blocks, masks, extra, events = self._deliver()
        chunks = self._gather_chunks(dist)
        step = 1.0 if self.kind == "bfs" else blocks
        cand = np.where(masks, chunks[:, None, :] + step, np.inf)
        best = self._accumulate_min(cand.min(axis=2))
        out = self._scatter_min(best, dist)
        report = self._finish_report(extra, events)
        self._crosscheck(
            report, best, "min",
            lambda lo, hi: np.where(
                self.masks[lo:hi],
                chunks[lo:hi, None, :]
                + (1.0 if self.kind == "bfs" else self.blocks[lo:hi]),
                np.inf).min(axis=2))
        return out, report

    def run_parents(self, dist: np.ndarray, parent: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray, SimReport]:
        if dist.shape != (self.n,) or parent.shape != (self.n,):
            raise SimulationError(f"operands must have shape ({self.n},)")
        _blocks, masks, extra, events = self._deliver()
        chunks = self._gather_chunks(dist)
        cand = np.where(masks, chunks[:, None, :] + 1.0, np.inf)
        per_block = cand.min(axis=2)
        lanes = np.where(np.isfinite(per_block), cand.argmin(axis=2), -1)
        src = self.src_base[:, None] + lanes
        best = np.full((self._n_rows, self.omega), np.inf)
        best_src = np.full((self._n_rows, self.omega), -1, dtype=np.int64)
        for live, idx in self._tgroups:
            cand_t = per_block[idx]
            improved = cand_t < best[live]
            best[live] = np.where(improved, cand_t, best[live])
            best_src[live] = np.where(improved & (lanes[idx] >= 0),
                                      src[idx], best_src[live])
        dist_pad = np.zeros(self.npad)
        dist_pad[:self.n] = dist
        parent_pad = np.zeros(self.npad, dtype=np.int64)
        parent_pad[:self.n] = parent
        dview = dist_pad.reshape(self.nbr, self.omega)
        pview = parent_pad.reshape(self.nbr, self.omega)
        rows = self.artifacts.out_rows
        take = best < dview[rows]
        dview[rows] = np.where(take, best, dview[rows])
        pview[rows] = np.where(take, best_src, pview[rows])
        return (dist_pad[:self.n].copy(), parent_pad[:self.n].copy(),
                self._finish_report(extra, events))

    def run_pagerank(self, rank: np.ndarray, outdeg: np.ndarray
                     ) -> Tuple[np.ndarray, SimReport]:
        _check_operand("rank", rank, self.n)
        _check_operand("outdeg", outdeg, self.n)
        _blocks, masks, extra, events = self._deliver()
        rank_c = self._gather_chunks(rank)
        deg_c = self._gather_chunks(outdeg)
        safe_deg = np.where(deg_c > 0.0, deg_c, 1.0)
        contrib = np.where(deg_c > 0.0, rank_c / safe_deg, 0.0)
        partial = np.where(masks, contrib[:, None, :], 0.0).sum(axis=2)
        acc = self._accumulate_sum(partial)
        y = self._scatter_assign(acc)
        report = self._finish_report(extra, events)
        self._crosscheck(
            report, acc, "sum",
            lambda lo, hi: np.where(self.masks[lo:hi],
                                    contrib[lo:hi, None, :],
                                    0.0).sum(axis=2))
        return y, report


@dataclass(frozen=True)
class _SymgsRow:
    """One block row of a compiled SymGS sweep."""

    seg_start: int
    seg_len: int
    start: int
    valid: int
    #: Diagonal block body (main diagonal zeroed); None for rows
    #: without a D-SymGS entry.
    body: Optional[np.ndarray]
    #: Programmed payload CRC of the diagonal block (0 when no body).
    checksum: int = 0


class CompiledSymgsPass:
    """A compiled forward SymGS sweep.

    Block rows are inherently sequential — the D-SymGS of row *i* waits
    for the row's GEMV partials and later rows read its output — so the
    plan keeps that loop, but each row is one gather + one batched
    matmul + the shared :func:`~repro.core.datapaths.dsymgs_solve`
    recurrence, with no cache/counter machinery on the hot path.
    Partials travel through a LIFO just like the RCU link stack.
    """

    def __init__(self, n: int, omega: int, blocks: np.ndarray,
                 gather: np.ndarray, rows: List[_SymgsRow],
                 diag: np.ndarray, artifacts: PassArtifacts,
                 template: SimReport, acc=None,
                 checksums: Optional[List[int]] = None,
                 restream_cycles: float = 0.0,
                 padded_block_bytes: float = 0.0,
                 span_template: Optional[List[Span]] = None) -> None:
        self.n = n
        self.omega = omega
        self.nbr, self.npad = _padded_length(n, omega)
        self.blocks = blocks
        self.gather = gather
        self.rows = rows
        self.artifacts = artifacts
        self.template = template
        self.acc = acc
        #: Per-GEMV-block payload CRCs in stacked order.
        self.checksums = checksums or []
        self.restream_cycles = restream_cycles
        self.padded_block_bytes = padded_block_bytes
        #: Spans captured alongside the report template (empty when the
        #: owning accelerator had no tracer at compile time).
        self.span_template = span_template or []
        self._diag_pad = np.zeros(self.npad)
        self._diag_pad[:n] = diag
        #: Per-width batch report templates, captured lazily from the
        #: legacy batch interpreter the first time each width runs.
        self._batch_templates: Dict[int, Tuple[SimReport, List[Span]]] = {}

    def run(self, b: np.ndarray, x_prev: np.ndarray
            ) -> Tuple[np.ndarray, SimReport]:
        n, w, npad = self.n, self.omega, self.npad
        if b.shape != (n,) or x_prev.shape != (n,):
            raise SimulationError(
                f"operand vectors must have shape ({n},)"
            )
        # Plane 0 is x^t (updated in place), plane 1 the read-only
        # x^{t-1}; gather indices address the flattened pair so each
        # entry's operand port resolves with no per-block branching.
        state = np.zeros((2, npad))
        state[0, :n] = x_prev
        state[1, :n] = x_prev
        flat = state.reshape(-1)
        b_pad = np.zeros(npad)
        b_pad[:n] = b
        cfg = self.acc.config
        fm = cfg.fault_model
        verify = fm is not None and (cfg.verify_checksums
                                     or self.acc._force_verify)
        extra, events = 0.0, []
        stack: List[np.ndarray] = []
        for row in self.rows:
            if row.seg_len:
                lo = row.seg_start
                hi = lo + row.seg_len
                seg_blocks = self.blocks[lo:hi]
                if fm is not None:
                    # Same transfer order as the interpreter: the row's
                    # GEMV blocks first, then its diagonal block below.
                    delivered = None
                    for j in range(lo, hi):
                        src = self.blocks[j]
                        checksum = (int(self.checksums[j]) if verify
                                    else None)
                        vals, cycles, event = fm.deliver(
                            src, checksum,
                            restream_cycles=self.restream_cycles)
                        extra += cycles
                        if event is not None:
                            events.append(event)
                        if vals is not src:
                            if delivered is None:
                                delivered = seg_blocks.copy()
                            delivered[j - lo] = vals
                    if delivered is not None:
                        seg_blocks = delivered
                chunks = flat[self.gather[lo:hi]]
                partial = np.matmul(seg_blocks,
                                    chunks[:, :, None])[:, :, 0]
                stack.extend(partial)
            if row.body is not None:
                body = row.body
                if fm is not None:
                    checksum = row.checksum if verify else None
                    vals, cycles, event = fm.deliver(
                        body, checksum,
                        restream_cycles=self.restream_cycles)
                    extra += cycles
                    if event is not None:
                        events.append(event)
                    body = vals
                acc = np.zeros(w)
                while stack:
                    acc += stack.pop()
                sl = slice(row.start, row.start + w)
                x_new = dsymgs_solve(body, self._diag_pad[sl],
                                     b_pad[sl], state[1, sl], acc,
                                     row.valid, w)
                state[0, row.start:row.start + row.valid] = \
                    x_new[:row.valid]
        report = self.template.clone()
        _apply_fault_events(report, extra, events, self.padded_block_bytes)
        _replay_spans(self.acc, self.span_template, extra, events)
        return state[0, :n].copy(), report

    def _batch_template(self, k: int) -> Tuple[SimReport, List[Span]]:
        cached = self._batch_templates.get(k)
        if cached is None:
            cached = _capture_batch_template(self.acc, "symgs", k)
            self._batch_templates[k] = cached
        return cached

    def run_batch(self, b: np.ndarray, x_prev: np.ndarray
                  ) -> Tuple[np.ndarray, SimReport]:
        """Batched forward sweeps: one payload delivery drives ``k``
        independent column recurrences.

        Each payload block crosses the channel once per batch — shared
        fault exposure, one payload's DRAM traffic — and every column
        then advances its own two-plane state with expressions
        identical to :meth:`run` on that column alone, so per-column
        answers are bit-identical to solo service.  The report clones
        the width-``k`` template captured from
        :meth:`~repro.core.accelerator.Alrescha._legacy_run_symgs_batch`.
        """
        n, w, npad = self.n, self.omega, self.npad
        b = np.asarray(b, dtype=np.float64)
        x_prev = np.asarray(x_prev, dtype=np.float64)
        if (b.ndim != 2 or b.shape[0] != n or b.shape[1] < 1
                or x_prev.shape != b.shape):
            raise SimulationError(
                f"operand panels must be ({n}, k>=1) and equal-shaped, "
                f"got {b.shape} and {x_prev.shape}")
        k = b.shape[1]
        template, span_template = self._batch_template(k)
        states = np.zeros((k, 2, npad))
        states[:, 0, :n] = x_prev.T
        states[:, 1, :n] = x_prev.T
        flats = [states[col].reshape(-1) for col in range(k)]
        b_pads = np.zeros((k, npad))
        b_pads[:, :n] = b.T
        cfg = self.acc.config
        fm = cfg.fault_model
        verify = fm is not None and (cfg.verify_checksums
                                     or self.acc._force_verify)
        extra, events = 0.0, []
        stacks: List[List[np.ndarray]] = [[] for _ in range(k)]
        for row in self.rows:
            if row.seg_len:
                lo = row.seg_start
                hi = lo + row.seg_len
                seg_blocks = self.blocks[lo:hi]
                if fm is not None:
                    delivered = None
                    for j in range(lo, hi):
                        src = self.blocks[j]
                        checksum = (int(self.checksums[j]) if verify
                                    else None)
                        vals, cycles, event = fm.deliver(
                            src, checksum,
                            restream_cycles=self.restream_cycles)
                        extra += cycles
                        if event is not None:
                            events.append(event)
                        if vals is not src:
                            if delivered is None:
                                delivered = seg_blocks.copy()
                            delivered[j - lo] = vals
                    if delivered is not None:
                        seg_blocks = delivered
                for col in range(k):
                    chunks = flats[col][self.gather[lo:hi]]
                    partial = np.matmul(seg_blocks,
                                        chunks[:, :, None])[:, :, 0]
                    stacks[col].extend(partial)
            if row.body is not None:
                body = row.body
                if fm is not None:
                    checksum = row.checksum if verify else None
                    vals, cycles, event = fm.deliver(
                        body, checksum,
                        restream_cycles=self.restream_cycles)
                    extra += cycles
                    if event is not None:
                        events.append(event)
                    body = vals
                sl = slice(row.start, row.start + w)
                for col in range(k):
                    acc = np.zeros(w)
                    stack = stacks[col]
                    while stack:
                        acc += stack.pop()
                    x_new = dsymgs_solve(body, self._diag_pad[sl],
                                         b_pads[col, sl],
                                         states[col, 1, sl], acc,
                                         row.valid, w)
                    states[col, 0, row.start:row.start + row.valid] = \
                        x_new[:row.valid]
        report = template.clone()
        _apply_fault_events(report, extra, events, self.padded_block_bytes)
        _replay_spans(self.acc, span_template, extra, events)
        return states[:, 0, :n].T.copy(), report


# ---------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------
def compile_pass(acc, kind: str):
    """Lower the programmed pass ``kind`` of accelerator ``acc``.

    Returns a :class:`CompiledStreamingPass` or
    :class:`CompiledSymgsPass`.  Part of the accelerator's internals —
    reach it through ``Alrescha`` runs (``config.use_plan``) or
    :meth:`~repro.core.accelerator.Alrescha.compile_plans`.
    """
    if kind == "symgs":
        return _compile_symgs(acc)
    if kind in STREAMING_KINDS:
        return _compile_streaming(acc, kind)
    raise SimulationError(f"unknown pass kind {kind!r}")


def _load_stored_template(acc, kind: str, k,
                          traced: bool
                          ) -> Optional[Tuple[SimReport, List[Span]]]:
    """A stored template for this program, or None to capture afresh.

    Only consulted when the accelerator's conversion was resolved
    through an artifact store (``acc._store_key`` set).  A traced
    accelerator requires the stored spans; templates persisted untraced
    are then a miss, and the richer re-capture overwrites them.  Loaded
    templates still flow through ``_verify_against_template`` when the
    lowering is compiled, so a stale store entry fails loudly rather
    than skewing reports.
    """
    store = acc.config.artifact_store
    key = acc._store_key
    if store is None or key is None:
        return None
    return store.load_template(key, kind, k=k, want_spans=traced)


def _save_stored_template(acc, kind: str, k, report: SimReport,
                          spans: Optional[List[Span]]) -> None:
    """Persist a freshly captured template (``spans`` None = untraced)."""
    store = acc.config.artifact_store
    key = acc._store_key
    if store is None or key is None:
        return
    store.save_template(key, kind, report, spans, k=k)


def _capture_template(acc, kind: str) -> Tuple[SimReport, List[Span]]:
    """Replay the legacy interpreter once with neutral operands and keep
    its report — and, when the accelerator is traced, its spans (see the
    module docstring for why this is exact).

    Fault injection is suppressed for the replay: the template must
    record the *clean* pass (faults would advance the injector's RNG,
    contaminate the captured cycles/counters, and break the lowering
    verification below).  Faults are charged per run instead.  The span
    capture uses the same shadowing trick: a fresh capture tracer
    replaces the user's for the replay, so template spans (anchored at
    cycle 0) never leak into the user's trace.
    """
    traced = acc.config.tracer is not None
    cached = _load_stored_template(acc, kind, None, traced)
    if cached is not None:
        return cached
    zeros = np.zeros(acc.n)
    capture = Tracer() if traced else None
    acc._suppress_faults = True
    acc._capture_tracer = capture
    try:
        if kind == "spmv":
            report = acc._legacy_run_spmv(zeros)[1]
        elif kind == "bfs":
            report = acc._legacy_run_bfs_pass(zeros)[1]
        elif kind == "bfs-parents":
            report = acc._legacy_run_bfs_pass_parents(
                zeros, np.zeros(acc.n, dtype=np.int64))[2]
        elif kind == "sssp":
            report = acc._legacy_run_sssp_pass(zeros)[1]
        elif kind == "pagerank":
            report = acc._legacy_run_pr_pass(zeros, zeros)[1]
        else:
            report = acc._legacy_run_symgs_sweep(zeros, zeros)[1]
    finally:
        acc._suppress_faults = False
        acc._capture_tracer = None
    spans = capture.spans if capture is not None else []
    _save_stored_template(acc, kind, None, report,
                          spans if traced else None)
    return report, spans


def _capture_batch_template(acc, kind: str,
                            k: int) -> Tuple[SimReport, List[Span]]:
    """Replay the legacy *batch* interpreter once with neutral ``(n,
    k)`` operand panels and keep its report/spans.

    The per-width analogue of :func:`_capture_template` — batch timing
    and counters depend only on the programmed block structure and the
    width ``k``, never on operand values — with the same fault
    suppression and tracer shadowing (see there).  Templates are
    captured lazily per width, so a program that never batches pays
    nothing.
    """
    if kind not in ("spmv", "symgs"):
        raise SimulationError(f"pass kind {kind!r} does not batch")
    traced = acc.config.tracer is not None
    cached = _load_stored_template(acc, kind, k, traced)
    if cached is not None:
        return cached
    zeros = np.zeros((acc.n, k))
    capture = Tracer() if traced else None
    acc._suppress_faults = True
    acc._capture_tracer = capture
    try:
        if kind == "spmv":
            report = acc.run_spmm(zeros)[1]
        else:
            report = acc._legacy_run_symgs_batch(zeros, zeros)[1]
    finally:
        acc._suppress_faults = False
        acc._capture_tracer = None
    spans = capture.spans if capture is not None else []
    _save_stored_template(acc, kind, k, report,
                          spans if traced else None)
    return report, spans


def _compile_streaming(acc, kind: str) -> CompiledStreamingPass:
    n, w = acc.n, acc.config.omega
    timing = acc.config.timing()
    spb = timing.stream_cycles_per_block()
    lanes = np.arange(w)
    blocks, gather, src_base, checksums = [], [], [], []
    seg_len, out_rows = [], []
    compute = []
    for group in acc._rows:
        if not group.streaming:
            continue
        seg_len.append(len(group.streaming))
        out_rows.append(group.block_row)
        for op in group.streaming:
            blocks.append(op.values)
            gather.append(op.inx_in
                          + (lanes[::-1] if op.reversed_cols else lanes))
            src_base.append(op.inx_in)
            checksums.append(op.checksum)
            compute.append(timing.compute_cycles_per_block(op.dp))
    m = len(blocks)
    seg_len_arr = np.asarray(seg_len, dtype=np.int64)
    seg_start = np.zeros(len(seg_len), dtype=np.int64)
    if len(seg_len) > 1:
        seg_start[1:] = np.cumsum(seg_len_arr)[:-1]
    mem = acc.config.make_memory()
    payload = mem.stream_block_run(m, timing.block_bytes)
    padded_block_bytes = mem._padded_bytes(timing.block_bytes)
    artifacts = PassArtifacts(
        stream_cycles_per_block=np.full(m, spb),
        compute_cycles_per_block=np.asarray(compute),
        seg_start=seg_start,
        seg_len=seg_len_arr,
        out_rows=np.asarray(out_rows, dtype=np.int64),
        payload_stream_cycles=payload,
    )
    template, span_template = _capture_template(acc, kind)
    _verify_against_template(kind, artifacts, template, n_requests=m)
    return CompiledStreamingPass(
        kind, n, w,
        blocks=(np.stack(blocks) if m else np.zeros((0, w, w))),
        gather=(np.stack(gather) if m else np.zeros((0, w), dtype=np.int64)),
        src_base=np.asarray(src_base, dtype=np.int64),
        artifacts=artifacts, template=template, acc=acc,
        checksums=checksums,
        restream_cycles=padded_block_bytes / mem.bytes_per_cycle,
        padded_block_bytes=padded_block_bytes,
        span_template=span_template,
    )


def _compile_symgs(acc) -> CompiledSymgsPass:
    n, w = acc.n, acc.config.omega
    diag = acc.conversion.matrix.diagonal
    if diag is None:
        raise SimulationError("programmed matrix lacks SymGS layout")
    timing = acc.config.timing()
    spb = timing.stream_cycles_per_block()
    _nbr, npad = _padded_length(n, w)
    lanes = np.arange(w)
    blocks, gather, checksums = [], [], []
    rows: List[_SymgsRow] = []
    seg_len, out_rows = [], []
    stream_vec, compute_vec = [], []
    n_requests = 0
    for group in acc._rows:
        seg_start = len(blocks)
        for op in group.streaming:
            blocks.append(op.values)
            plane = 0 if op.port is OperandPort.PORT1 else 1
            idx = op.inx_in + (lanes[::-1] if op.reversed_cols else lanes)
            gather.append(plane * npad + idx)
            checksums.append(op.checksum)
            stream_vec.append(spb)
            compute_vec.append(timing.compute_cycles_per_block(op.dp))
            n_requests += 1
        body = None
        body_checksum = 0
        start = group.block_row * w
        valid = max(0, min(w, n - start))
        if group.diagonal is not None:
            body = group.diagonal.values
            body_checksum = group.diagonal.checksum
            refetch = (not acc.conversion.reordered) and group.streaming
            stream_vec.append(2.0 * spb if refetch else spb)
            n_requests += 2 if refetch else 1
            compute_vec.append(
                timing.compute_cycles_per_block(DataPathType.D_SYMGS))
        rows.append(_SymgsRow(seg_start=seg_start,
                              seg_len=len(blocks) - seg_start,
                              start=start, valid=valid, body=body,
                              checksum=body_checksum))
        seg_len.append(len(blocks) - seg_start)
        out_rows.append(group.block_row)
    m = len(blocks)
    seg_len_arr = np.asarray(seg_len, dtype=np.int64)
    seg_start_arr = np.zeros(len(seg_len), dtype=np.int64)
    if len(seg_len) > 1:
        seg_start_arr[1:] = np.cumsum(seg_len_arr)[:-1]
    mem = acc.config.make_memory()
    payload = mem.stream_block_run(n_requests, timing.block_bytes)
    padded_block_bytes = mem._padded_bytes(timing.block_bytes)
    artifacts = PassArtifacts(
        stream_cycles_per_block=np.asarray(stream_vec),
        compute_cycles_per_block=np.asarray(compute_vec),
        seg_start=seg_start_arr,
        seg_len=seg_len_arr,
        out_rows=np.asarray(out_rows, dtype=np.int64),
        payload_stream_cycles=payload,
    )
    template, span_template = _capture_template(acc, "symgs")
    _verify_against_template("symgs", artifacts, template, n_requests)
    return CompiledSymgsPass(
        n, w,
        blocks=(np.stack(blocks) if m else np.zeros((0, w, w))),
        gather=(np.stack(gather) if m else np.zeros((0, w), dtype=np.int64)),
        rows=rows, diag=diag, artifacts=artifacts, template=template,
        acc=acc, checksums=checksums,
        restream_cycles=padded_block_bytes / mem.bytes_per_cycle,
        padded_block_bytes=padded_block_bytes,
        span_template=span_template,
    )


# KernelType is imported for the kernel→plan-kind map used by
# Alrescha.compile_plans().
KERNEL_PLAN_KINDS = {
    KernelType.SPMV: ("spmv",),
    KernelType.SYMGS: ("symgs",),
    KernelType.BFS: ("bfs",),
    KernelType.SSSP: ("sssp",),
    KernelType.PAGERANK: ("pagerank",),
}
