"""The ALRESCHA accelerator: programming model and execution engine.

This module ties the pieces together the way Figure 7 describes: the
*host* converts a sparse kernel into a configuration table plus an
Alrescha-formatted matrix (:func:`repro.core.convert.convert`) and writes
both through the program/data interfaces (:meth:`Alrescha.program`); the
accelerator then executes the table — streaming locally-dense blocks
from memory through the FCU while the RCU supplies vector operands,
handles data dependencies, and reconfigures between data paths.

Execution is *functional + timed*: every run produces the exact kernel
result (validated against the golden kernels in :mod:`repro.kernels`)
together with a :class:`~repro.core.report.SimReport` of cycles, event
counts, energy and bandwidth utilization.

Timing model
------------
Per pass, two resources are tracked:

* **stream cycles** — payload blocks plus cache-refill and write-back
  traffic through the 288 GB/s channel;
* **compute cycles** — the engine side: streaming data paths consume
  ω² operands through the ALU row per block, while D-SymGS serialises ω
  forwarding steps per diagonal block.

The FIFOs in front of the FCU let memory run ahead of compute, so for
kernels made of independent data paths the pass costs
``max(stream, compute)``.  SymGS is different: the D-SymGS of block-row
*i* must wait for the row's GEMV partials, and later rows' GEMVs read the
chunk it produces, so the pass costs the *sum over block rows* of
``max(row stream, row GEMV compute) + row D-SymGS compute``.  Data-path
switches add their pipeline fill, and reconfiguration adds only what the
tree drain cannot hide (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.core.config import (
    ConfigTable,
    DataPathType,
    KernelType,
    OperandPort,
)
from repro.core.convert import ConversionResult, convert
from repro.core.datapaths import (
    DEFAULT_DSYMGS_STEP_LATENCY,
    DataPathTiming,
    dbfs_block,
    dpr_block,
    dsssp_block,
    dsymgs_block,
    gemv_block,
)
from repro.core.fcu import DEFAULT_N_ALUS, FixedComputeUnit
from repro.core.plan import KERNEL_PLAN_KINDS, compile_pass
from repro.core.report import SimReport
from repro.observe.tracer import PassTraceBuilder, Tracer
from repro.core.rcu import RCUConfig, ReconfigurableComputeUnit
from repro.sim.cache import LocalCache
from repro.sim.energy import EnergyModel
from repro.sim.faults import FaultModel, payload_checksum
from repro.sim.memory import DEFAULT_CAPACITY_BYTES, StreamingMemory


@dataclass
class AlreschaConfig:
    """Hardware configuration (defaults from Table 5 of the paper)."""

    omega: int = 8
    n_alus: int = DEFAULT_N_ALUS
    frequency_hz: float = 2.5e9
    bandwidth_bytes_per_s: float = 288e9
    cache_bytes: int = 1024
    cache_line_bytes: int = 64
    cache_ways: int = 4
    cache_hit_latency: int = 4
    cache_miss_latency: int = 24
    alu_latency: int = 3
    re_sum_latency: int = 3
    re_min_latency: int = 1
    dsymgs_step_latency: int = DEFAULT_DSYMGS_STEP_LATENCY
    reconfig_cycles: int = 8
    hide_reconfig_under_drain: bool = True
    #: Stored element width in bytes: 8 (Table 5's double precision) or
    #: 4 for an fp32-traffic study.  Functional results stay fp64.
    element_bytes: int = 8
    #: Execute passes through compiled plans (:mod:`repro.core.plan`):
    #: bit-identical results and reports, batched numpy instead of the
    #: per-block interpreter.  False falls back to the legacy path
    #: (the equivalence oracle).
    use_plan: bool = True
    #: Modelled DRAM capacity; :meth:`Alrescha.program` rejects device
    #: images whose resident set exceeds it (the model never pages).
    memory_capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    #: Seeded stream-fault injector (:mod:`repro.sim.faults`).  None (the
    #: default) keeps every run on the exact pre-resilience code path.
    fault_model: Optional[FaultModel] = None
    #: Verify each streamed payload block against the CRC recorded at
    #: ``program()`` time.  Only consulted when a fault model is
    #: attached; the check itself costs no cycles (inline hardware CRC).
    verify_checksums: bool = True
    #: Raise :class:`~repro.errors.CorruptionError` when an FCU sum
    #: reduction emits NaN/Inf.  Off by default: poisoned inputs must
    #: stay *visible* in the output unless the user opts into guarding.
    guard_nonfinite: bool = False
    #: Fraction of block rows whose compiled-plan output is spot-checked
    #: against an independent recompute per pass (0 disables).
    crosscheck_rows: float = 0.0
    crosscheck_seed: int = 1
    #: Cross-check mismatches tolerated before the accelerator degrades
    #: plans to the legacy interpreter with checksums forced on.
    crosscheck_threshold: int = 1
    #: Optional :class:`~repro.observe.tracer.Tracer` recording
    #: cycle-attributed spans of every pass (engine windows, drains,
    #: reconfigs, channel streams).  None — the default — is the
    #: untraced path: outputs and reports stay bit-identical and each
    #: instrumentation site costs one ``is None`` branch.
    tracer: Optional[Tracer] = None
    #: Optional :class:`~repro.store.ArtifactStore` resolving the
    #: programming phase — conversion, device image, and report/span
    #: templates — through a content-addressed cache.  None (the
    #: default) keeps every output bit-identical to the storeless path:
    #: a *hit* returns artifacts verified byte-identical to a fresh
    #: compile, and a miss compiles exactly as before.
    artifact_store: Optional[object] = None
    energy_model: EnergyModel = field(default_factory=EnergyModel)

    @property
    def bytes_per_cycle(self) -> float:
        return self.bandwidth_bytes_per_s / self.frequency_hz

    def timing(self) -> DataPathTiming:
        return DataPathTiming(
            omega=self.omega,
            n_alus=self.n_alus,
            mem_bytes_per_cycle=self.bytes_per_cycle,
            alu_latency=self.alu_latency,
            re_sum_latency=self.re_sum_latency,
            re_min_latency=self.re_min_latency,
            dsymgs_step_latency=self.dsymgs_step_latency,
            element_bytes=self.element_bytes,
        )

    def make_fcu(self) -> FixedComputeUnit:
        return FixedComputeUnit(
            omega=self.omega,
            n_alus=self.n_alus,
            alu_latency=self.alu_latency,
            re_sum_latency=self.re_sum_latency,
            re_min_latency=self.re_min_latency,
            guard_nonfinite=self.guard_nonfinite,
        )

    def make_rcu(self) -> ReconfigurableComputeUnit:
        cache = LocalCache(
            size_bytes=self.cache_bytes,
            line_bytes=self.cache_line_bytes,
            ways=self.cache_ways,
            hit_latency=self.cache_hit_latency,
            miss_latency=self.cache_miss_latency,
        )
        rcu_cfg = RCUConfig(
            reconfig_cycles=self.reconfig_cycles,
            hide_under_drain=self.hide_reconfig_under_drain,
        )
        return ReconfigurableComputeUnit(config=rcu_cfg, cache=cache)

    def make_memory(self) -> StreamingMemory:
        return StreamingMemory(
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            frequency_hz=self.frequency_hz,
            burst_bytes=self.cache_line_bytes,
            capacity_bytes=self.memory_capacity_bytes,
            fault_model=self.fault_model,
        )


@dataclass
class _Op:
    """A prepared table entry: the config row plus its resolved block."""

    dp: DataPathType
    block_row: int
    block_col: int
    inx_in: int
    inx_out: int
    port: OperandPort
    values: np.ndarray
    reversed_cols: bool
    is_diagonal: bool
    #: CRC32 of the block payload, recorded at ``program()`` time; the
    #: streamed copy is verified against it when faults are injected.
    checksum: int = 0


@dataclass
class _RowGroup:
    """All ops of one block row, GEMV-class first then the diagonal."""

    block_row: int
    streaming: List[_Op] = field(default_factory=list)
    diagonal: Optional[_Op] = None


class Alrescha:
    """The accelerator.  Program once, run kernels repeatedly."""

    def __init__(self, config: Optional[AlreschaConfig] = None) -> None:
        self.config = config or AlreschaConfig()
        self._conversion: Optional[ConversionResult] = None
        self._rows: List[_RowGroup] = []
        self._table_order_switches: int = 0
        #: Compiled pass plans, keyed by pass kind; built lazily on the
        #: first run of each kind and invalidated by :meth:`program`.
        self._plans: Dict[str, object] = {}
        #: Set while a plan captures its report template by replaying the
        #: legacy interpreter: the capture must see the clean channel or
        #: the template (and plan verification) would absorb faults.
        self._suppress_faults: bool = False
        #: Cross-check mismatches seen so far; at
        #: ``crosscheck_threshold`` the accelerator degrades plans to
        #: the legacy interpreter with checksums forced on.
        self._crosscheck_failures: int = 0
        self._plan_degraded: bool = False
        self._force_verify: bool = False
        #: Set while a plan captures its *span template*: the capture
        #: tracer shadows ``config.tracer`` so template spans never leak
        #: into the user's trace (mirrors ``_suppress_faults``).
        self._capture_tracer: Optional[Tracer] = None
        #: Content key of the programmed conversion when it was resolved
        #: through ``config.artifact_store`` (None otherwise); the plan
        #: layer uses it to load/persist captured templates.
        self._store_key: Optional[str] = None

    @property
    def tracer(self) -> Optional[Tracer]:
        """The tracer runs record into: the plan-capture tracer while a
        template is being captured, else the configured one (if any)."""
        if self._capture_tracer is not None:
            return self._capture_tracer
        return self.config.tracer

    # ------------------------------------------------------------------
    # Programming (host side, one-time per matrix+kernel)
    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(cls, kernel: KernelType, matrix,
                    config: Optional[AlreschaConfig] = None,
                    reorder: bool = True,
                    source: Optional[Dict[str, object]] = None
                    ) -> "Alrescha":
        """Convert, program and return a ready accelerator.

        With ``config.artifact_store`` attached, the conversion is
        resolved through the store (memory LRU, then the verified disk
        artifact, then a cold compile that is persisted); ``source``
        metadata (e.g. ``{"dataset": ..., "scale": ...}``) is recorded
        so ``repro cache verify`` can recompile-and-diff later.
        """
        acc = cls(config)
        store = acc.config.artifact_store
        key: Optional[str] = None
        if store is not None:
            conv, key = store.conversion(
                kernel, matrix, acc.config, reorder=reorder,
                source=source)
        else:
            conv = convert(kernel, matrix, omega=acc.config.omega,
                           reorder=reorder)
        acc.program(conv)
        acc._store_key = key
        return acc

    def program(self, conversion: ConversionResult) -> None:
        """Write the configuration table and formatted matrix."""
        if conversion.omega != self.config.omega:
            raise ConfigError(
                f"conversion blocked at omega={conversion.omega}, "
                f"hardware configured for {self.config.omega}"
            )
        resident = float(conversion.matrix.payload_bytes)
        if conversion.matrix.symgs_layout:
            resident += conversion.matrix.shape[0] * 8.0
        self.config.make_memory().check_capacity(resident)
        self._conversion = conversion
        block_map = {
            (b.block_row, b.block_col): b for b in conversion.matrix.stream()
        }
        rows: Dict[int, _RowGroup] = {}
        order: List[int] = []
        for entry in conversion.table:
            key = (entry.block_row, entry.block_col)
            sb = block_map.get(key)
            if sb is None:
                raise ConfigError(
                    f"table references block {key} absent from the stream"
                )
            op = _Op(
                dp=entry.dp,
                block_row=entry.block_row,
                block_col=entry.block_col,
                inx_in=entry.inx_in,
                inx_out=entry.inx_out,
                port=entry.op,
                values=sb.values,
                reversed_cols=sb.reversed_cols,
                is_diagonal=sb.is_diagonal,
                checksum=payload_checksum(sb.values),
            )
            group = rows.get(entry.block_row)
            if group is None:
                group = _RowGroup(entry.block_row)
                rows[entry.block_row] = group
                order.append(entry.block_row)
            if op.dp is DataPathType.D_SYMGS:
                group.diagonal = op
            else:
                group.streaming.append(op)
        self._rows = [rows[i] for i in order]
        self._table_order_switches = conversion.table.switch_count()
        self._plans.clear()
        self._crosscheck_failures = 0
        self._plan_degraded = False
        self._force_verify = False
        # A manual reprogram severs the link to any stored artifact; the
        # store path (from_matrix) re-establishes it after programming.
        self._store_key = None
        self._validate_symgs_diagonal()

    def _validate_symgs_diagonal(self) -> None:
        """Reject zero/non-finite pivots the D-SymGS PE would divide by.

        Checked at program time (the host knows the full diagonal here)
        rather than mid-sweep, and only for rows an actual D-SymGS entry
        covers — rows of an entirely empty block row pass through the
        sweep untouched, so a missing pivot there is the caller's
        business (the system is singular either way).
        """
        conversion = self._conversion
        diag = conversion.matrix.diagonal
        if conversion.kernel is not KernelType.SYMGS or diag is None:
            return
        n, w = conversion.matrix.shape[0], self.config.omega
        for group in self._rows:
            if group.diagonal is None:
                continue
            start = group.block_row * w
            valid = max(0, min(w, n - start))
            d = diag[start:start + valid]
            bad = ~np.isfinite(d) | (d == 0.0)
            if bad.any():
                r = int(np.argmax(bad))
                raise ConfigError(
                    f"SymGS needs a nonzero finite main diagonal; "
                    f"row {start + r} has {d[r]!r}"
                )

    # ------------------------------------------------------------------
    # Compiled pass plans
    # ------------------------------------------------------------------
    def _plan(self, kind: str):
        plan = self._plans.get(kind)
        if plan is None:
            plan = compile_pass(self, kind)
            self._plans[kind] = plan
        return plan

    def compile_plans(self) -> None:
        """Eagerly compile the pass plans of the programmed kernel.

        Plans otherwise compile lazily on first run; callers that know
        they will iterate (solvers, graph drivers) can pay the one-off
        compile cost up front.
        """
        for kind in KERNEL_PLAN_KINDS.get(self.conversion.kernel, ()):
            self._plan(kind)

    @property
    def plan_degraded(self) -> bool:
        """True once cross-check failures forced plans off for good."""
        return self._plan_degraded

    def _run_plan_checked(self, kind: str, plan_call: Callable,
                          legacy_call: Callable):
        """Run a pass through its plan, degrading on cross-check failure.

        ``plan_call(plan)`` executes the compiled plan; ``legacy_call()``
        executes the same pass on the per-block interpreter.  When the
        plan's sampled cross-check reports a mismatch, the plan output
        is *discarded* — never returned — and the pass reruns on the
        interpreter with checksum verification forced on, charged for
        the wasted plan cycles.  Mismatches accumulate; at
        ``crosscheck_threshold`` the accelerator stops trusting plans
        for the rest of the program.  On a clean run this wrapper adds
        nothing: the plan result passes through untouched.
        """
        if self._plan_degraded:
            return legacy_call()
        result = plan_call(self._plan(kind))
        report = result[-1]
        mismatches = report.counters.get("crosscheck_mismatches")
        if not mismatches:
            return result
        self._crosscheck_failures += int(mismatches)
        if self._crosscheck_failures >= self.config.crosscheck_threshold:
            self._plan_degraded = True
        self._force_verify = True
        try:
            rerun = legacy_call()
        finally:
            self._force_verify = self._plan_degraded
        rerun_report = rerun[-1]
        rerun_report.cycles += report.cycles
        rerun_report.counters.add("plan_fallbacks", 1.0)
        rerun_report.counters.add("crosscheck_wasted_cycles", report.cycles)
        # Fold the discarded plan run's fault accounting into the rerun
        # so the pass's counters still reconcile with the injection log.
        for key in ("faults_injected", "faults_detected",
                    "faults_corrected", "faults_silent", "retry_cycles",
                    "fault_latency_cycles", "fault_restreams",
                    "crosscheck_mismatches", "crosscheck_rows"):
            value = report.counters.get(key)
            if value:
                rerun_report.counters.add(key, value)
        return rerun

    def _stream_op(self, mem: StreamingMemory, op: _Op
                   ) -> Tuple[np.ndarray, float]:
        """Stream one entry's payload block, consulting the fault model.

        Returns ``(delivered values, extra cycles)``.  With no fault
        model attached — or while a plan captures its report template —
        this is exactly the pre-resilience ``stream_cycles`` call.
        """
        nbytes = self.config.omega * self.config.omega \
            * self.config.element_bytes
        if mem.fault_model is None or self._suppress_faults:
            mem.stream_cycles(nbytes)
            return op.values, 0.0
        checksum = op.checksum if (self.config.verify_checksums
                                   or self._force_verify) else None
        return mem.stream_payload_block(op.values, nbytes, checksum)

    @property
    def conversion(self) -> ConversionResult:
        if self._conversion is None:
            raise SimulationError("accelerator has not been programmed")
        return self._conversion

    @property
    def table(self) -> ConfigTable:
        return self.conversion.table

    @property
    def n(self) -> int:
        return self.conversion.matrix.shape[0]

    # ------------------------------------------------------------------
    # Kernel runners
    # ------------------------------------------------------------------
    def run_spmm(self, x: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """Multi-vector SpMV (``Y = A @ X`` for an n x k operand).

        The matrix payload streams from memory *once* and each block is
        applied to all ``k`` operand columns while resident — the data
        reuse the paper's storage format exists to enable, extended from
        one vector to a panel.  Timing: the stream cost is unchanged
        from one SpMV; compute and cache costs scale with ``k``, so
        throughput per column improves until the ALU row saturates.

        Always runs on the per-block interpreter: the operand panel
        width ``k`` varies per call, so there is no per-program pass
        structure for :mod:`repro.core.plan` to compile.
        """
        self._require_kernel(KernelType.SPMV)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        n, w = self.n, self.config.omega
        if x.shape[0] != n or x.ndim != 2 or x.shape[1] < 1:
            raise SimulationError(
                f"operand must be ({n}, k>=1), got {x.shape}"
            )
        k = x.shape[1]
        fcu = self.config.make_fcu()
        rcu = self.config.make_rcu()
        mem = self.config.make_memory()
        timing = self.config.timing()
        tracer = self.tracer
        mem.tracer = tracer
        tb = (PassTraceBuilder(tracer, "spmm")
              if tracer is not None else None)
        for col in range(k):
            rcu.load_operand(f"x{col}", x[:, col])

        y = np.zeros((n, k))
        stream_cycles = 0.0
        compute_cycles = 0.0
        fills = 0.0
        exposed = 0.0
        prev_dp: Optional[DataPathType] = None
        spb = timing.stream_cycles_per_block()
        for group in self._rows:
            if not group.streaming:
                continue
            start = group.block_row * w
            valid = max(0, min(w, n - start))
            acc = np.zeros((w, k))
            for op in group.streaming:
                if prev_dp is not op.dp:
                    drain = (timing.drain(prev_dp) if prev_dp
                             else rcu.config.reconfig_cycles)
                    step_exposed = rcu.reconfigure(op.dp, drain)
                    exposed += step_exposed
                    fill = timing.pipeline_fill(op.dp)
                    fills += fill
                    if tb is not None:
                        tb.switch(op.dp.value,
                                  prev_dp.value if prev_dp else None,
                                  drain, rcu.config.reconfig_cycles,
                                  step_exposed,
                                  rcu.config.hide_under_drain, fill)
                    prev_dp = op.dp
                values, fault_extra = self._stream_op(mem, op)
                stream_cycles += spb + fault_extra
                block_compute = k * timing.compute_cycles_per_block(op.dp)
                compute_cycles += block_compute
                if tb is not None:
                    tb.block(block_compute, spb + fault_extra)
                for col in range(k):
                    chunk = rcu.read_chunk(f"x{col}", op.inx_in, w)
                    acc[:, col] += gemv_block(fcu, values, chunk,
                                              op.reversed_cols)
            y[start:start + valid] = acc[:valid]
            if valid:
                rcu.cache.write("out", start, valid)
                rcu.counters.add("cache_busy_cycles", 1.0)

        writeback_bytes = float(n * self.config.element_bytes * k)
        miss_bytes = rcu.cache.counters.get("cache_misses") \
            * self.config.cache_line_bytes
        stream_total = stream_cycles \
            + (writeback_bytes + miss_bytes) / self.config.bytes_per_cycle
        total = max(stream_total, compute_cycles) + fills + exposed
        report = self._make_report(
            "spmm", total, 0.0, fills, exposed, fcu, rcu, mem,
            {"gemv": compute_cycles},
            extra_stream_bytes=writeback_bytes + miss_bytes,
        )
        report.useful_bytes *= 1.0  # matrix streamed once regardless of k
        if tb is not None:
            tb.finish(report, gap_name="stream_wait", args={
                "extra_stream_bytes": writeback_bytes + miss_bytes})
        return y, report

    def run_sptrsv(self, b: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """Sparse lower-triangular solve ``(L + D) x = b``.

        A forward Gauss-Seidel sweep from a zero initial iterate *is*
        SpTRSV on the matrix's lower triangle — the accelerator gets the
        standard kernel for free from its D-SymGS path.  (Upper-triangle
        entries of the programmed matrix are multiplied by the zero
        iterate and vanish.)
        """
        self._require_kernel(KernelType.SYMGS)
        b = np.asarray(b, dtype=np.float64)
        x, report = self.run_symgs_sweep(b, np.zeros(self.n))
        report.kernel = "sptrsv"
        return x, report

    def run_spmv(self, x: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """SpMV over the programmed matrix: ``y = A @ x``."""
        self._require_kernel(KernelType.SPMV)
        x = np.asarray(x, dtype=np.float64)
        if self.config.use_plan:
            return self._run_plan_checked(
                "spmv", lambda plan: plan.run_spmv(x),
                lambda: self._legacy_run_spmv(x))
        return self._legacy_run_spmv(x)

    def run_spmv_batch(self, x: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """Batched multi-RHS SpMV: plan-accelerated :meth:`run_spmm`.

        Semantics and accounting are exactly :meth:`run_spmm` — the
        programmed payload streams from memory *once* for all ``k``
        operand columns (``dram_requests`` does not grow with ``k``;
        FCU work does) — but the hot loop runs on the compiled plan
        with per-width report templates.  Column ``j`` of the result is
        bit-identical to ``run_spmv(x[:, j])`` served alone, which is
        what lets the serving runtime fuse jobs without changing their
        answers.  A 1-D operand is treated as one column.
        """
        self._require_kernel(KernelType.SPMV)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[:, None]
        if self.config.use_plan:
            return self._run_plan_checked(
                "spmv", lambda plan: plan.run_spmv_batch(x),
                lambda: self.run_spmm(x))
        return self.run_spmm(x)

    def _legacy_run_spmv(self, x: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """Per-block interpreter for SpMV (the plan-equivalence oracle)."""
        return self._run_streaming_pass(
            kernel_name="spmv",
            operand_vectors={"x": np.asarray(x, dtype=np.float64)},
            block_fn=lambda fcu, rcu, op, values, chunks: gemv_block(
                fcu, values, chunks["x"], op.reversed_cols
            ),
            row_init=lambda w: np.zeros(w),
            row_accumulate=lambda acc, part: acc + part,
            assign=lambda rcu, prev_chunk, acc, valid: acc[:valid],
            reduce_op="sum",
            output_init=np.zeros(self.n),
        )

    def run_bfs_pass(self, dist: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """One synchronous D-BFS relaxation pass over all blocks.

        ``dist`` holds current level distances (inf = unreached); the
        returned vector applies ``min(dist, min-plus candidates)``.
        """
        self._require_kernel(KernelType.BFS)
        dist = np.asarray(dist, dtype=np.float64)
        if self.config.use_plan:
            return self._run_plan_checked(
                "bfs", lambda plan: plan.run_minplus(dist),
                lambda: self._legacy_run_bfs_pass(dist))
        return self._legacy_run_bfs_pass(dist)

    def _legacy_run_bfs_pass(self, dist: np.ndarray
                             ) -> Tuple[np.ndarray, SimReport]:
        """Per-block interpreter for D-BFS (the plan-equivalence oracle)."""
        return self._run_streaming_pass(
            kernel_name="bfs",
            operand_vectors={"dist": dist},
            block_fn=lambda fcu, rcu, op, values, chunks: dbfs_block(
                fcu, values, chunks["dist"]
            ),
            row_init=lambda w: np.full(w, np.inf),
            row_accumulate=np.minimum,
            assign=self._assign_min,
            reduce_op="min",
            output_init=dist.copy(),
        )

    def run_bfs_pass_parents(
        self, dist: np.ndarray, parent: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, SimReport]:
        """One D-BFS pass that also tracks predecessors (Graph500 style).

        The min tree carries a lane tag beside each value, so the
        winning predecessor of every improved vertex comes out of the
        same reduction at no extra stream cost.  Returns
        ``(new_dist, new_parent, report)``.
        """
        self._require_kernel(KernelType.BFS)
        dist = np.asarray(dist, dtype=np.float64)
        parent = np.asarray(parent, dtype=np.int64)
        if self.config.use_plan:
            return self._run_plan_checked(
                "bfs-parents", lambda plan: plan.run_parents(dist, parent),
                lambda: self._legacy_run_bfs_pass_parents(dist, parent))
        return self._legacy_run_bfs_pass_parents(dist, parent)

    def _legacy_run_bfs_pass_parents(
        self, dist: np.ndarray, parent: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, SimReport]:
        """Per-block interpreter for parent-tracking D-BFS (the
        plan-equivalence oracle)."""
        n, w = self.n, self.config.omega
        if dist.shape != (n,) or parent.shape != (n,):
            raise SimulationError(f"operands must have shape ({n},)")
        fcu = self.config.make_fcu()
        rcu = self.config.make_rcu()
        mem = self.config.make_memory()
        timing = self.config.timing()
        tracer = self.tracer
        mem.tracer = tracer
        tb = (PassTraceBuilder(tracer, "bfs-parents")
              if tracer is not None else None)
        rcu.load_operand("dist", dist)

        new_dist = dist.copy()
        new_parent = parent.copy()
        stream_cycles = 0.0
        compute_cycles = 0.0
        fills = 0.0
        exposed = 0.0
        prev_dp: Optional[DataPathType] = None
        spb = timing.stream_cycles_per_block()

        for group in self._rows:
            if not group.streaming:
                continue
            start = group.block_row * w
            valid = max(0, min(w, n - start))
            best = np.full(w, np.inf)
            best_parent = np.full(w, -1, dtype=np.int64)
            for op in group.streaming:
                if prev_dp is not op.dp:
                    drain = (timing.drain(prev_dp) if prev_dp
                             else rcu.config.reconfig_cycles)
                    step_exposed = rcu.reconfigure(op.dp, drain)
                    exposed += step_exposed
                    fill = timing.pipeline_fill(op.dp)
                    fills += fill
                    if tb is not None:
                        tb.switch(op.dp.value,
                                  prev_dp.value if prev_dp else None,
                                  drain, rcu.config.reconfig_cycles,
                                  step_exposed,
                                  rcu.config.hide_under_drain, fill)
                    prev_dp = op.dp
                values, fault_extra = self._stream_op(mem, op)
                stream_cycles += spb + fault_extra
                cpb = timing.compute_cycles_per_block(op.dp)
                compute_cycles += cpb
                if tb is not None:
                    tb.block(cpb, spb + fault_extra)
                chunk = rcu.read_chunk("dist", op.inx_in, w)
                cand, lanes = dbfs_block(fcu, values, chunk,
                                         with_argmin=True)
                improved = cand < best
                best = np.where(improved, cand, best)
                global_src = op.inx_in + lanes
                best_parent = np.where(improved & (lanes >= 0),
                                       global_src, best_parent)
            take = best[:valid] < new_dist[start:start + valid]
            rcu.counters.add("pe_op", float(valid))  # compare & update
            new_dist[start:start + valid] = np.where(
                take, best[:valid], new_dist[start:start + valid])
            new_parent[start:start + valid] = np.where(
                take, best_parent[:valid],
                new_parent[start:start + valid])
            if valid:
                rcu.cache.write("out", start, valid)
                rcu.counters.add("cache_busy_cycles", 1.0)

        writeback_bytes = float(n * 12)  # distance + parent tag
        miss_bytes = rcu.cache.counters.get("cache_misses") \
            * self.config.cache_line_bytes
        stream_total = stream_cycles \
            + (writeback_bytes + miss_bytes) / self.config.bytes_per_cycle
        total = max(stream_total, compute_cycles) + fills + exposed
        report = self._make_report(
            "bfs-parents", total, 0.0, fills, exposed, fcu, rcu, mem,
            {"d-bfs": compute_cycles},
            extra_stream_bytes=writeback_bytes + miss_bytes,
        )
        if tb is not None:
            tb.finish(report, gap_name="stream_wait", args={
                "extra_stream_bytes": writeback_bytes + miss_bytes})
        return new_dist, new_parent, report

    def run_sssp_pass(self, dist: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """One synchronous D-SSSP relaxation pass (weighted min-plus)."""
        self._require_kernel(KernelType.SSSP)
        dist = np.asarray(dist, dtype=np.float64)
        if self.config.use_plan:
            return self._run_plan_checked(
                "sssp", lambda plan: plan.run_minplus(dist),
                lambda: self._legacy_run_sssp_pass(dist))
        return self._legacy_run_sssp_pass(dist)

    def _legacy_run_sssp_pass(self, dist: np.ndarray
                              ) -> Tuple[np.ndarray, SimReport]:
        """Per-block interpreter for D-SSSP (the plan-equivalence oracle)."""
        return self._run_streaming_pass(
            kernel_name="sssp",
            operand_vectors={"dist": dist},
            block_fn=lambda fcu, rcu, op, values, chunks: dsssp_block(
                fcu, values, chunks["dist"]
            ),
            row_init=lambda w: np.full(w, np.inf),
            row_accumulate=np.minimum,
            assign=self._assign_min,
            reduce_op="min",
            output_init=dist.copy(),
        )

    def run_pr_pass(self, rank: np.ndarray,
                    outdeg: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """One D-PR pass: per-vertex sum of ``rank/outdeg`` over in-edges.

        Returns the raw contribution vector; the driver applies the
        damping update (phase 3 of Table 1) and its PE cost is charged
        here (two PE ops per updated element).
        """
        self._require_kernel(KernelType.PAGERANK)
        rank = np.asarray(rank, dtype=np.float64)
        outdeg = np.asarray(outdeg, dtype=np.float64)
        if self.config.use_plan:
            return self._run_plan_checked(
                "pagerank", lambda plan: plan.run_pagerank(rank, outdeg),
                lambda: self._legacy_run_pr_pass(rank, outdeg))
        return self._legacy_run_pr_pass(rank, outdeg)

    def _legacy_run_pr_pass(self, rank: np.ndarray, outdeg: np.ndarray
                            ) -> Tuple[np.ndarray, SimReport]:
        """Per-block interpreter for D-PR (the plan-equivalence oracle)."""

        def block_fn(fcu, rcu, op, values, chunks):
            return dpr_block(fcu, rcu, values, chunks["rank"],
                             chunks["outdeg"])

        def assign(rcu, prev_chunk, acc, valid):
            rcu.counters.add("pe_op", 2.0 * valid)  # damping mul + add
            return acc[:valid]

        return self._run_streaming_pass(
            kernel_name="pagerank",
            operand_vectors={"rank": rank, "outdeg": outdeg},
            block_fn=block_fn,
            row_init=lambda w: np.zeros(w),
            row_accumulate=lambda acc, part: acc + part,
            assign=assign,
            reduce_op="sum",
            output_init=np.zeros(self.n),
        )

    def run_symgs_sweep(self, b: np.ndarray,
                        x_prev: np.ndarray) -> Tuple[np.ndarray, SimReport]:
        """One forward SymGS sweep via the GEMV + D-SymGS decomposition."""
        self._require_kernel(KernelType.SYMGS)
        b = np.asarray(b, dtype=np.float64)
        x_prev = np.asarray(x_prev, dtype=np.float64)
        if self.config.use_plan:
            return self._run_plan_checked(
                "symgs", lambda plan: plan.run(b, x_prev),
                lambda: self._legacy_run_symgs_sweep(b, x_prev))
        return self._legacy_run_symgs_sweep(b, x_prev)

    def run_symgs_batch(self, b: np.ndarray, x_prev: np.ndarray
                        ) -> Tuple[np.ndarray, SimReport]:
        """Batched multi-RHS forward SymGS sweeps over one payload.

        ``b`` and ``x_prev`` are ``(n, k)`` panels (1-D operands are
        treated as one column); column ``j`` of the result is
        bit-identical to ``run_symgs_sweep(b[:, j], x_prev[:, j])``
        served alone.  The programmed payload — GEMV blocks and
        diagonal blocks — streams once per batch and is applied to all
        ``k`` recurrences while resident; GEMV and D-SymGS compute
        scale with ``k``.
        """
        self._require_kernel(KernelType.SYMGS)
        b = np.asarray(b, dtype=np.float64)
        x_prev = np.asarray(x_prev, dtype=np.float64)
        if b.ndim == 1:
            b = b[:, None]
        if x_prev.ndim == 1:
            x_prev = x_prev[:, None]
        if self.config.use_plan:
            return self._run_plan_checked(
                "symgs", lambda plan: plan.run_batch(b, x_prev),
                lambda: self._legacy_run_symgs_batch(b, x_prev))
        return self._legacy_run_symgs_batch(b, x_prev)

    def _legacy_run_symgs_sweep(self, b: np.ndarray, x_prev: np.ndarray
                                ) -> Tuple[np.ndarray, SimReport]:
        """Per-block interpreter for the SymGS sweep (the
        plan-equivalence oracle)."""
        n, w = self.n, self.config.omega
        if b.shape != (n,) or x_prev.shape != (n,):
            raise SimulationError(
                f"operand vectors must have shape ({n},)"
            )
        diag = self.conversion.matrix.diagonal
        if diag is None:
            raise SimulationError("programmed matrix lacks SymGS layout")

        fcu = self.config.make_fcu()
        rcu = self.config.make_rcu()
        mem = self.config.make_memory()
        timing = self.config.timing()
        tracer = self.tracer
        mem.tracer = tracer
        tb = (PassTraceBuilder(tracer, "symgs")
              if tracer is not None else None)

        rcu.load_operand("x_prev", x_prev)
        rcu.load_operand("x_curr", x_prev.copy())
        rcu.load_operand("b", b)
        rcu.load_operand("diag", diag)

        stream_cycles = 0.0
        chain_cycles = 0.0
        seq_cycles = 0.0
        fills = 0.0
        exposed = 0.0
        dp_cycles: Dict[str, float] = {}
        prev_dp: Optional[DataPathType] = None
        spb = timing.stream_cycles_per_block()

        for group in self._rows:
            row_stream = 0.0
            row_gemv_compute = 0.0
            # Data-path switches of this row, recorded as they are
            # charged and laid onto the trace only once the row's
            # windows are measured (the GEMV window's width — and hence
            # the drain anchor — depends on the whole row's stream).
            trans_gemv: List[Tuple[str, Optional[str], float, float, float]] = []
            trans_diag: List[Tuple[str, Optional[str], float, float, float]] = []
            ablation_penalty = 0.0
            for op in group.streaming:
                if prev_dp is not op.dp:
                    drain = (timing.drain(prev_dp) if prev_dp
                             else rcu.config.reconfig_cycles)
                    step_exposed = rcu.reconfigure(op.dp, drain)
                    exposed += step_exposed
                    fill = timing.pipeline_fill(op.dp)
                    fills += fill
                    if tb is not None:
                        trans_gemv.append((
                            op.dp.value,
                            prev_dp.value if prev_dp else None,
                            drain, step_exposed, fill))
                    prev_dp = op.dp
                values, fault_extra = self._stream_op(mem, op)
                row_stream += spb + fault_extra
                row_gemv_compute += timing.compute_cycles_per_block(op.dp)
                space = ("x_curr" if op.port is OperandPort.PORT1
                         else "x_prev")
                chunk = rcu.read_chunk(space, op.inx_in, w)
                partial = gemv_block(fcu, values, chunk, op.reversed_cols)
                rcu.link.push(partial)
                dp_cycles["gemv"] = dp_cycles.get("gemv", 0.0) \
                    + timing.compute_cycles_per_block(op.dp)
            dsymgs_compute = 0.0
            if group.diagonal is not None:
                op = group.diagonal
                if prev_dp is not op.dp:
                    drain = (timing.drain(prev_dp) if prev_dp
                             else rcu.config.reconfig_cycles)
                    step_exposed = rcu.reconfigure(op.dp, drain)
                    exposed += step_exposed
                    fill = timing.pipeline_fill(op.dp)
                    fills += fill
                    if tb is not None:
                        trans_diag.append((
                            op.dp.value,
                            prev_dp.value if prev_dp else None,
                            drain, step_exposed, fill))
                    prev_dp = op.dp
                values, fault_extra = self._stream_op(mem, op)
                row_stream += spb + fault_extra
                if not self.conversion.reordered and group.streaming:
                    # Ablation: without §4.1's reordering the diagonal
                    # block streamed past mid-row, before this row's
                    # trailing GEMV partials existed; it is re-fetched
                    # now, and the mid-row D-SymGS visit cost two extra
                    # data-path toggles.
                    mem.stream_cycles(w * w * self.config.element_bytes)
                    row_stream += spb
                    extra = (0.0 if rcu.config.hide_under_drain
                             else 2.0 * rcu.config.reconfig_cycles)
                    rcu.counters.add("switch_toggle", 2.0)
                    rcu.counters.add("config_write", 2.0)
                    rcu.counters.add("reconfig_exposed_cycles", extra)
                    exposed += extra
                    ablation_fills = timing.pipeline_fill(op.dp) \
                        + timing.pipeline_fill(DataPathType.GEMV)
                    fills += ablation_fills
                    ablation_penalty = extra + ablation_fills
                start = op.block_row * w
                valid = max(0, min(w, n - start))
                acc = np.zeros(w, dtype=np.float64)
                while not rcu.link.empty:
                    acc += rcu.link.pop()
                b_chunk = rcu.read_chunk("b", start, w)
                d_chunk = rcu.read_chunk("diag", start, w)
                x_old = rcu.read_chunk("x_prev", start, w)
                x_new = dsymgs_block(fcu, rcu, values, d_chunk, b_chunk,
                                     x_old, acc, valid)
                rcu.write_chunk("x_curr", start, x_new[:valid])
                dsymgs_compute = timing.compute_cycles_per_block(op.dp)
                dp_cycles["d-symgs"] = dp_cycles.get("d-symgs", 0.0) \
                    + dsymgs_compute
            row_cycles = max(row_stream, row_gemv_compute) + dsymgs_compute
            chain_cycles += row_cycles
            stream_cycles += row_stream
            seq_cycles += dsymgs_compute
            if tb is not None:
                self._trace_symgs_row(
                    tb, rcu, group, trans_gemv, trans_diag,
                    row_stream, row_gemv_compute, dsymgs_compute,
                    ablation_penalty)

        # Cache refills contend for the memory channel.
        miss_bytes = rcu.cache.counters.get("cache_misses") \
            * self.config.cache_line_bytes
        total = chain_cycles + fills + exposed \
            + miss_bytes / self.config.bytes_per_cycle
        result = rcu.operand("x_curr").copy()
        report = self._make_report(
            "symgs", total, seq_cycles, fills, exposed, fcu, rcu, mem,
            dp_cycles, extra_stream_bytes=miss_bytes,
        )
        if tb is not None:
            tb.finish(report, gap_name="cache_refill",
                      args={"extra_stream_bytes": miss_bytes})
        return result, report

    def _legacy_run_symgs_batch(self, b: np.ndarray, x_prev: np.ndarray
                                ) -> Tuple[np.ndarray, SimReport]:
        """Per-block interpreter for batched SymGS sweeps (the batch
        plan's template/equivalence oracle).

        The SymGS analogue of :meth:`run_spmm`: each payload block —
        GEMV entries, then the row's diagonal — is streamed *once* and
        applied to every operand column while resident, so the stream
        term of a row is unchanged from one sweep while GEMV and
        D-SymGS compute scale with ``k``.  Each column advances its own
        ``x_curr`` recurrence; partials cross the RCU link stack per
        column exactly as in the single sweep, so per-column results
        are bit-identical to :meth:`_legacy_run_symgs_sweep`.
        """
        n, w = self.n, self.config.omega
        if (b.ndim != 2 or b.shape[0] != n or b.shape[1] < 1
                or x_prev.shape != b.shape):
            raise SimulationError(
                f"operand panels must be ({n}, k>=1) and equal-shaped, "
                f"got {b.shape} and {x_prev.shape}"
            )
        k = b.shape[1]
        diag = self.conversion.matrix.diagonal
        if diag is None:
            raise SimulationError("programmed matrix lacks SymGS layout")

        fcu = self.config.make_fcu()
        rcu = self.config.make_rcu()
        mem = self.config.make_memory()
        timing = self.config.timing()
        tracer = self.tracer
        mem.tracer = tracer
        tb = (PassTraceBuilder(tracer, "symgs-batch")
              if tracer is not None else None)

        for col in range(k):
            rcu.load_operand(f"x_prev{col}", x_prev[:, col])
            rcu.load_operand(f"x_curr{col}", x_prev[:, col].copy())
            rcu.load_operand(f"b{col}", b[:, col])
        rcu.load_operand("diag", diag)

        stream_cycles = 0.0
        chain_cycles = 0.0
        seq_cycles = 0.0
        fills = 0.0
        exposed = 0.0
        dp_cycles: Dict[str, float] = {}
        prev_dp: Optional[DataPathType] = None
        spb = timing.stream_cycles_per_block()
        # Per-column pending partials, in push order.  The physical
        # link stack is one LIFO; the batch engine tags partials per
        # column, each crossing the link once as in the single sweep.
        partials: List[List[np.ndarray]] = [[] for _ in range(k)]

        for group in self._rows:
            row_stream = 0.0
            row_gemv_compute = 0.0
            trans_gemv: List[Tuple[str, Optional[str], float, float, float]] = []
            trans_diag: List[Tuple[str, Optional[str], float, float, float]] = []
            ablation_penalty = 0.0
            for op in group.streaming:
                if prev_dp is not op.dp:
                    drain = (timing.drain(prev_dp) if prev_dp
                             else rcu.config.reconfig_cycles)
                    step_exposed = rcu.reconfigure(op.dp, drain)
                    exposed += step_exposed
                    fill = timing.pipeline_fill(op.dp)
                    fills += fill
                    if tb is not None:
                        trans_gemv.append((
                            op.dp.value,
                            prev_dp.value if prev_dp else None,
                            drain, step_exposed, fill))
                    prev_dp = op.dp
                values, fault_extra = self._stream_op(mem, op)
                row_stream += spb + fault_extra
                block_compute = k * timing.compute_cycles_per_block(op.dp)
                row_gemv_compute += block_compute
                dp_cycles["gemv"] = dp_cycles.get("gemv", 0.0) \
                    + block_compute
                space = ("x_curr" if op.port is OperandPort.PORT1
                         else "x_prev")
                for col in range(k):
                    chunk = rcu.read_chunk(f"{space}{col}", op.inx_in, w)
                    partial = gemv_block(fcu, values, chunk,
                                         op.reversed_cols)
                    rcu.link.push(partial)
                    partials[col].append(rcu.link.pop())
            dsymgs_compute = 0.0
            if group.diagonal is not None:
                op = group.diagonal
                if prev_dp is not op.dp:
                    drain = (timing.drain(prev_dp) if prev_dp
                             else rcu.config.reconfig_cycles)
                    step_exposed = rcu.reconfigure(op.dp, drain)
                    exposed += step_exposed
                    fill = timing.pipeline_fill(op.dp)
                    fills += fill
                    if tb is not None:
                        trans_diag.append((
                            op.dp.value,
                            prev_dp.value if prev_dp else None,
                            drain, step_exposed, fill))
                    prev_dp = op.dp
                values, fault_extra = self._stream_op(mem, op)
                row_stream += spb + fault_extra
                if not self.conversion.reordered and group.streaming:
                    # Same ablation refetch as the single sweep —
                    # charged once per batch, like the payload itself.
                    mem.stream_cycles(w * w * self.config.element_bytes)
                    row_stream += spb
                    extra = (0.0 if rcu.config.hide_under_drain
                             else 2.0 * rcu.config.reconfig_cycles)
                    rcu.counters.add("switch_toggle", 2.0)
                    rcu.counters.add("config_write", 2.0)
                    rcu.counters.add("reconfig_exposed_cycles", extra)
                    exposed += extra
                    ablation_fills = timing.pipeline_fill(op.dp) \
                        + timing.pipeline_fill(DataPathType.GEMV)
                    fills += ablation_fills
                    ablation_penalty = extra + ablation_fills
                start = op.block_row * w
                valid = max(0, min(w, n - start))
                d_chunk = rcu.read_chunk("diag", start, w)
                for col in range(k):
                    acc = np.zeros(w, dtype=np.float64)
                    for partial in reversed(partials[col]):
                        acc += partial
                    partials[col].clear()
                    b_chunk = rcu.read_chunk(f"b{col}", start, w)
                    x_old = rcu.read_chunk(f"x_prev{col}", start, w)
                    x_new = dsymgs_block(fcu, rcu, values, d_chunk,
                                         b_chunk, x_old, acc, valid)
                    rcu.write_chunk(f"x_curr{col}", start, x_new[:valid])
                dsymgs_compute = k * timing.compute_cycles_per_block(op.dp)
                dp_cycles["d-symgs"] = dp_cycles.get("d-symgs", 0.0) \
                    + dsymgs_compute
            row_cycles = max(row_stream, row_gemv_compute) + dsymgs_compute
            chain_cycles += row_cycles
            stream_cycles += row_stream
            seq_cycles += dsymgs_compute
            if tb is not None:
                self._trace_symgs_row(
                    tb, rcu, group, trans_gemv, trans_diag,
                    row_stream, row_gemv_compute, dsymgs_compute,
                    ablation_penalty)

        miss_bytes = rcu.cache.counters.get("cache_misses") \
            * self.config.cache_line_bytes
        total = chain_cycles + fills + exposed \
            + miss_bytes / self.config.bytes_per_cycle
        result = np.stack(
            [rcu.operand(f"x_curr{col}") for col in range(k)], axis=1)
        report = self._make_report(
            "symgs-batch", total, seq_cycles, fills, exposed, fcu, rcu,
            mem, dp_cycles, extra_stream_bytes=miss_bytes,
        )
        if tb is not None:
            tb.finish(report, gap_name="cache_refill",
                      args={"extra_stream_bytes": miss_bytes})
        return result, report

    @staticmethod
    def _trace_symgs_row(tb: PassTraceBuilder,
                         rcu: ReconfigurableComputeUnit, group: _RowGroup,
                         trans_gemv, trans_diag, row_stream: float,
                         row_gemv_compute: float, dsymgs_compute: float,
                         ablation_penalty: float) -> None:
        """Lay one measured SymGS block-row onto the engine timeline.

        The GEMV window is ``max(row stream, row GEMV compute)`` — the
        FIFO overlap of the row's stream with its partial-sum GEMVs —
        and the D-SymGS window follows it, exactly the per-row term of
        the pass cost model.  Switch spans recorded during the row
        anchor at the window boundaries: the drain of the retiring path
        occupies the window's tail with the reconfig span inside it
        (or after it, exposed, under the hiding ablation).
        """
        reconfig = rcu.config.reconfig_cycles
        hidden = rcu.config.hide_under_drain
        tb.row_begin(group.block_row)
        for dpv, prevv, drain, step_exposed, fill in trans_gemv:
            if prevv is None:
                tb.configure(dpv)
            else:
                tb.reconfigure(dpv, prevv, drain, reconfig, step_exposed,
                               hidden)
            tb.fill(dpv, fill)
        gemv_window = max(row_stream, row_gemv_compute)
        if group.streaming:
            tb.window("gemv", gemv_window, args={
                "row": group.block_row,
                "compute_cycles": row_gemv_compute,
                "stream_cycles": row_stream,
            })
        elif gemv_window > 0.0:
            # A row with only a diagonal block still waits for its
            # stream; no GEMV ran, so no window is drawn.
            tb.advance(gemv_window)
        for dpv, prevv, drain, step_exposed, fill in trans_diag:
            if prevv is None:
                tb.configure(dpv)
            else:
                tb.reconfigure(dpv, prevv, drain, reconfig, step_exposed,
                               hidden)
            tb.fill(dpv, fill)
        if ablation_penalty > 0.0:
            tb.advance(ablation_penalty)
        if group.diagonal is not None:
            tb.window("d-symgs", dsymgs_compute,
                      args={"row": group.block_row})
        tb.row_end()

    # ------------------------------------------------------------------
    # Shared streaming-pass machinery (SpMV, D-BFS, D-SSSP, D-PR)
    # ------------------------------------------------------------------
    def _run_streaming_pass(
        self,
        kernel_name: str,
        operand_vectors: Dict[str, np.ndarray],
        block_fn: Callable,
        row_init: Callable[[int], np.ndarray],
        row_accumulate: Callable,
        assign: Callable,
        reduce_op: str,
        output_init: np.ndarray,
    ) -> Tuple[np.ndarray, SimReport]:
        n, w = self.n, self.config.omega
        for name, vec in operand_vectors.items():
            if vec.shape != (n,):
                raise SimulationError(
                    f"operand {name!r} must have shape ({n},), "
                    f"got {vec.shape}"
                )
        fcu = self.config.make_fcu()
        rcu = self.config.make_rcu()
        mem = self.config.make_memory()
        timing = self.config.timing()
        tracer = self.tracer
        mem.tracer = tracer
        tb = (PassTraceBuilder(tracer, kernel_name)
              if tracer is not None else None)
        for name, vec in operand_vectors.items():
            rcu.load_operand(name, vec)

        output = np.asarray(output_init, dtype=np.float64).copy()
        stream_cycles = 0.0
        compute_cycles = 0.0
        fills = 0.0
        exposed = 0.0
        dp_cycles: Dict[str, float] = {}
        prev_dp: Optional[DataPathType] = None
        spb = timing.stream_cycles_per_block()

        for group in self._rows:
            if not group.streaming:
                continue
            acc = row_init(w)
            start = group.block_row * w
            valid = max(0, min(w, n - start))
            for op in group.streaming:
                if prev_dp is not op.dp:
                    drain = (timing.drain(prev_dp) if prev_dp
                             else rcu.config.reconfig_cycles)
                    step_exposed = rcu.reconfigure(op.dp, drain)
                    exposed += step_exposed
                    fill = timing.pipeline_fill(op.dp)
                    fills += fill
                    if tb is not None:
                        tb.switch(op.dp.value,
                                  prev_dp.value if prev_dp else None,
                                  drain, rcu.config.reconfig_cycles,
                                  step_exposed,
                                  rcu.config.hide_under_drain, fill)
                    prev_dp = op.dp
                values, fault_extra = self._stream_op(mem, op)
                stream_cycles += spb + fault_extra
                cpb = timing.compute_cycles_per_block(op.dp)
                compute_cycles += cpb
                dp_cycles[op.dp.value] = dp_cycles.get(op.dp.value, 0.0) + cpb
                if tb is not None:
                    tb.block(cpb, spb + fault_extra)
                chunks = {
                    name: rcu.read_chunk(name, op.inx_in, w)
                    for name in operand_vectors
                }
                partial = block_fn(fcu, rcu, op, values, chunks)
                acc = row_accumulate(acc, partial)
            prev_chunk = output[start:start + valid]
            output[start:start + valid] = assign(rcu, prev_chunk, acc, valid)
            if valid:
                rcu.cache.write("out", start, valid)
                rcu.counters.add("cache_busy_cycles", 1.0)

        # Output write-back and cache refills share the memory channel.
        writeback_bytes = float(n * 8)
        miss_bytes = rcu.cache.counters.get("cache_misses") \
            * self.config.cache_line_bytes
        stream_total = stream_cycles \
            + (writeback_bytes + miss_bytes) / self.config.bytes_per_cycle
        total = max(stream_total, compute_cycles) + fills + exposed
        report = self._make_report(
            kernel_name, total, 0.0, fills, exposed, fcu, rcu, mem,
            dp_cycles, extra_stream_bytes=writeback_bytes + miss_bytes,
        )
        if tb is not None:
            tb.finish(report, gap_name="stream_wait", args={
                "extra_stream_bytes": writeback_bytes + miss_bytes})
        return output, report

    @staticmethod
    def _assign_min(rcu: ReconfigurableComputeUnit, prev_chunk: np.ndarray,
                    acc: np.ndarray, valid: int) -> np.ndarray:
        """Phase-3 'compare and update' of BFS/SSSP (one PE cmp each)."""
        rcu.counters.add("pe_op", float(valid))
        return np.minimum(prev_chunk, acc[:valid])

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _require_kernel(self, kernel: KernelType) -> None:
        if self.conversion.kernel is not kernel:
            raise SimulationError(
                f"accelerator programmed for {self.conversion.kernel}, "
                f"asked to run {kernel}"
            )

    def _make_report(self, kernel_name: str, total_cycles: float,
                     seq_cycles: float, fills: float, exposed: float,
                     fcu: FixedComputeUnit,
                     rcu: ReconfigurableComputeUnit,
                     mem: StreamingMemory,
                     dp_cycles: Dict[str, float],
                     extra_stream_bytes: float = 0.0) -> SimReport:
        counters = fcu.counters + rcu.counters
        counters.merge(rcu.cache.counters)
        counters.merge(rcu.link.counters)
        counters.merge(rcu.fifo_a.counters)
        counters.merge(rcu.fifo_b.counters)
        counters.merge(mem.counters)
        counters.add("dram_bytes", extra_stream_bytes)
        seconds = total_cycles / self.config.frequency_hz
        energy = self.config.energy_model.energy_j(counters, seconds)
        report = SimReport(
            kernel=kernel_name,
            cycles=total_cycles,
            frequency_hz=self.config.frequency_hz,
            useful_bytes=float(self.conversion.bcsr.nnz
                               * self.config.element_bytes),
            streamed_bytes=mem.total_bytes + extra_stream_bytes,
            sequential_cycles=seq_cycles,
            cache_busy_cycles=rcu.cache_busy_cycles,
            exposed_reconfig_cycles=exposed,
            n_entries=len(self.table),
            n_switches=self._table_order_switches,
            counters=counters,
            energy_j=energy,
            datapath_cycles=dp_cycles,
            bytes_per_cycle=self.config.bytes_per_cycle,
        )
        return report
