"""Kernel-level state machine (Figure 8's PCG example).

Figure 8 shows the outcome of Algorithm 1 at the *algorithm* level: PCG
becomes a state machine over its sparse kernels — SymGS and SpMV run on
the accelerator, the dot-product/vector state stays on the host-side
vector unit — and execution walks the transitions every iteration.

:class:`KernelStateMachine` encodes that: named states, each bound to a
kernel class (accelerated or host), with transitions; it validates the
walk an algorithm actually performs and accounts the kernel-to-kernel
switches (which Alrescha's reconfigurability makes cheap, §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigError

#: Kernel classes a state can bind to.
ACCELERATED = "accelerated"
HOST = "host"


@dataclass(frozen=True)
class KernelState:
    """One state: a kernel launch target."""

    name: str
    kind: str          # ACCELERATED | HOST
    kernel: str        # e.g. "symgs", "spmv", "dot", "waxpby"

    def __post_init__(self) -> None:
        if self.kind not in (ACCELERATED, HOST):
            raise ConfigError(f"invalid state kind {self.kind!r}")


@dataclass
class KernelStateMachine:
    """States + transitions, with a walk recorder."""

    states: Dict[str, KernelState] = field(default_factory=dict)
    transitions: Set[Tuple[str, str]] = field(default_factory=set)
    _walk: List[str] = field(default_factory=list)

    def add_state(self, name: str, kind: str, kernel: str) -> None:
        if name in self.states:
            raise ConfigError(f"duplicate state {name!r}")
        self.states[name] = KernelState(name, kind, kernel)

    def add_transition(self, src: str, dst: str) -> None:
        for s in (src, dst):
            if s not in self.states:
                raise ConfigError(f"unknown state {s!r}")
        self.transitions.add((src, dst))

    # ------------------------------------------------------------------
    # Walking
    # ------------------------------------------------------------------
    def visit(self, name: str) -> None:
        """Record entering a state; validates the transition."""
        if name not in self.states:
            raise ConfigError(f"unknown state {name!r}")
        if self._walk and (self._walk[-1], name) not in self.transitions:
            raise ConfigError(
                f"illegal transition {self._walk[-1]!r} -> {name!r}"
            )
        self._walk.append(name)

    @property
    def walk(self) -> List[str]:
        return list(self._walk)

    def accelerator_switches(self) -> int:
        """Kernel switches *on the accelerator*: consecutive accelerated
        states with different kernels (host states in between do not
        reset the accelerator's configuration)."""
        switches = 0
        last_acc: Optional[str] = None
        for name in self._walk:
            state = self.states[name]
            if state.kind != ACCELERATED:
                continue
            if last_acc is not None and state.kernel != last_acc:
                switches += 1
            last_acc = state.kernel
        return switches

    def reset_walk(self) -> None:
        self._walk.clear()


def pcg_state_machine() -> KernelStateMachine:
    """The Figure 8 state machine for PCG (Figure 2's loop).

    Accelerated states: SymGS (the preconditioner) and SpMV; host
    states: the dot products and vector updates.  Transitions follow
    the Figure 2 loop body.
    """
    sm = KernelStateMachine()
    sm.add_state("init_residual", ACCELERATED, "spmv")
    sm.add_state("precondition", ACCELERATED, "symgs")
    sm.add_state("direction_update", HOST, "waxpby")
    sm.add_state("apply_a", ACCELERATED, "spmv")
    sm.add_state("alpha", HOST, "dot")
    sm.add_state("solution_update", HOST, "waxpby")
    sm.add_state("residual_update", HOST, "waxpby")
    sm.add_state("convergence_check", HOST, "dot")
    sm.add_transition("init_residual", "precondition")
    sm.add_transition("precondition", "direction_update")
    sm.add_transition("direction_update", "apply_a")
    sm.add_transition("apply_a", "alpha")
    sm.add_transition("alpha", "solution_update")
    sm.add_transition("solution_update", "residual_update")
    sm.add_transition("residual_update", "convergence_check")
    sm.add_transition("convergence_check", "precondition")  # next iter
    return sm


def walk_pcg(sm: KernelStateMachine, iterations: int) -> None:
    """Record the Figure 2 walk for ``iterations`` loop bodies."""
    if iterations < 1:
        raise ConfigError("need at least one iteration")
    sm.visit("init_residual")
    sm.visit("precondition")
    sm.visit("direction_update")
    for _ in range(iterations):
        sm.visit("apply_a")
        sm.visit("alpha")
        sm.visit("solution_update")
        sm.visit("residual_update")
        sm.visit("convergence_check")
        sm.visit("precondition")
        sm.visit("direction_update")
