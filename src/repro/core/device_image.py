"""Device memory image: the *data interface* of Figure 7.

Alongside the program binary (:mod:`repro.core.binary`), the host writes
"the formatted data into the physical memory space of the accelerator
through the data interface".  This module defines that image: a header,
the separately stored diagonal (SymGS layouts), and the raw payload —
the blocks' values laid out in exactly the stream order, so the
accelerator's memory controller can replay it as a pure sequential
stream.

Together with the program binary, a device image makes a converted
kernel fully self-contained: (binary, image) round-trips through bytes
and reprograms an accelerator that produces bit-identical results.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.alrescha import AlreschaMatrix, StreamBlock

#: Image magic: "ALRD".
MAGIC = 0x414C5244

_HEADER = ">IIIHBxH"  # magic, n_rows, n_cols, omega, flags, pad, reserved
_FLAG_SYMGS = 0x1


def encode_image(matrix: AlreschaMatrix) -> bytes:
    """Serialise an Alrescha-formatted matrix to the device image."""
    n_rows, n_cols = matrix.shape
    flags = _FLAG_SYMGS if matrix.symgs_layout else 0
    header = struct.pack(_HEADER, MAGIC, n_rows, n_cols, matrix.omega,
                         flags, 0)
    parts = [header]
    # Block directory: count, then (row, col, diag-flag, reversed-flag)
    # per block.  The directory is *programming-time* data (it shadows
    # the configuration table) and is not streamed at runtime.
    parts.append(struct.pack(">I", matrix.n_blocks))
    for b in matrix.stream():
        parts.append(struct.pack(">IIBB", b.block_row, b.block_col,
                                 1 if b.is_diagonal else 0,
                                 1 if b.reversed_cols else 0))
    if matrix.symgs_layout:
        diag = np.ascontiguousarray(matrix.diagonal, dtype=">f8")
        parts.append(diag.tobytes())
    payload = np.ascontiguousarray(matrix.payload(), dtype=">f8")
    parts.append(payload.tobytes())
    return b"".join(parts)


def decode_image(data: bytes) -> AlreschaMatrix:
    """Reconstruct the Alrescha matrix from a device image."""
    header_size = struct.calcsize(_HEADER)
    if len(data) < header_size:
        raise FormatError("device image too short for header")
    magic, n_rows, n_cols, omega, flags, _rsvd = struct.unpack(
        _HEADER, data[:header_size])
    if magic != MAGIC:
        raise FormatError(f"bad device-image magic 0x{magic:08x}")
    symgs = bool(flags & _FLAG_SYMGS)
    pos = header_size
    (n_blocks,) = struct.unpack(">I", data[pos:pos + 4])
    pos += 4
    directory = []
    entry_size = struct.calcsize(">IIBB")
    for _ in range(n_blocks):
        if pos + entry_size > len(data):
            raise FormatError("device image truncated in block directory")
        row, col, is_diag, reversed_cols = struct.unpack(
            ">IIBB", data[pos:pos + entry_size])
        directory.append((row, col, bool(is_diag), bool(reversed_cols)))
        pos += entry_size
    diagonal: Optional[np.ndarray] = None
    if symgs:
        need = n_rows * 8
        if pos + need > len(data):
            raise FormatError("device image truncated in diagonal")
        diagonal = np.frombuffer(
            data[pos:pos + need], dtype=">f8").astype(np.float64)
        pos += need
    slots = n_blocks * omega * omega
    need = slots * 8
    if pos + need > len(data):
        raise FormatError("device image truncated in payload")
    payload = np.frombuffer(
        data[pos:pos + need], dtype=">f8").astype(np.float64)
    blocks = []
    for i, (row, col, is_diag, reversed_cols) in enumerate(directory):
        values = payload[i * omega * omega:(i + 1) * omega * omega] \
            .reshape(omega, omega).copy()
        blocks.append(StreamBlock(row, col, is_diag, reversed_cols,
                                  values))
    return AlreschaMatrix((n_rows, n_cols), omega, blocks, diagonal,
                          symgs)


def image_size_bytes(matrix: AlreschaMatrix) -> int:
    """Size of the encoded device image."""
    size = struct.calcsize(_HEADER) + 4 \
        + matrix.n_blocks * struct.calcsize(">IIBB") \
        + matrix.stored_values * 8
    if matrix.symgs_layout:
        size += matrix.shape[0] * 8
    return size


def roundtrip_check(matrix: AlreschaMatrix) -> Tuple[bool, float]:
    """Encode+decode and report (exact?, max abs difference)."""
    decoded = decode_image(encode_image(matrix))
    diff = float(np.abs(decoded.to_dense() - matrix.to_dense()).max()) \
        if matrix.shape[0] else 0.0
    return diff == 0.0, diff
