"""Device memory image: the *data interface* of Figure 7.

Alongside the program binary (:mod:`repro.core.binary`), the host writes
"the formatted data into the physical memory space of the accelerator
through the data interface".  This module defines that image: a header,
the separately stored diagonal (SymGS layouts), and the raw payload —
the blocks' values laid out in exactly the stream order, so the
accelerator's memory controller can replay it as a pure sequential
stream.

Together with the program binary, a device image makes a converted
kernel fully self-contained: (binary, image) round-trips through bytes
and reprograms an accelerator that produces bit-identical results.

Because the payload carries no runtime meta-data, a corrupted image is
indistinguishable from a valid one by inspection — so images written by
this module also record a CRC32 per payload block (plus one for the
separately stored diagonal), and :func:`decode_image` verifies them,
raising :class:`~repro.errors.CorruptionError` on mismatch.  Images
without the checksum section (the pre-resilience layout) still decode.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import CorruptionError, FormatError
from repro.formats.alrescha import AlreschaMatrix, StreamBlock

#: Image magic: "ALRD".
MAGIC = 0x414C5244

_HEADER = ">IIIHBxH"  # magic, n_rows, n_cols, omega, flags, pad, reserved
_FLAG_SYMGS = 0x1
#: The image carries per-block (and diagonal) CRC32 checksums.
_FLAG_CHECKSUMS = 0x2


def encode_image(matrix: AlreschaMatrix) -> bytes:
    """Serialise an Alrescha-formatted matrix to the device image."""
    n_rows, n_cols = matrix.shape
    flags = _FLAG_SYMGS if matrix.symgs_layout else 0
    flags |= _FLAG_CHECKSUMS
    header = struct.pack(_HEADER, MAGIC, n_rows, n_cols, matrix.omega,
                         flags, 0)
    parts = [header]
    # Block directory: count, then (row, col, diag-flag, reversed-flag)
    # per block.  The directory is *programming-time* data (it shadows
    # the configuration table) and is not streamed at runtime.
    parts.append(struct.pack(">I", matrix.n_blocks))
    block_bytes: List[bytes] = []
    for b in matrix.stream():
        parts.append(struct.pack(">IIBB", b.block_row, b.block_col,
                                 1 if b.is_diagonal else 0,
                                 1 if b.reversed_cols else 0))
        block_bytes.append(
            np.ascontiguousarray(b.values, dtype=">f8").tobytes())
    # Checksum table: one CRC32 per payload block in stream order, plus
    # one for the diagonal in SymGS layouts.  Programming-time data,
    # like the directory — the accelerator verifies streamed payload
    # against it, the decoder verifies the image at rest.
    for raw in block_bytes:
        parts.append(struct.pack(">I", zlib.crc32(raw)))
    diag_bytes = b""
    if matrix.symgs_layout:
        diag_bytes = np.ascontiguousarray(matrix.diagonal,
                                          dtype=">f8").tobytes()
        parts.append(struct.pack(">I", zlib.crc32(diag_bytes)))
        parts.append(diag_bytes)
    parts.extend(block_bytes)
    return b"".join(parts)


def decode_image(data: bytes) -> AlreschaMatrix:
    """Reconstruct the Alrescha matrix from a device image.

    Raises :class:`~repro.errors.FormatError` for structural damage
    (bad magic, truncation) and :class:`~repro.errors.CorruptionError`
    when a checksummed image's payload fails verification.
    """
    header_size = struct.calcsize(_HEADER)
    if len(data) < header_size:
        raise FormatError("device image too short for header")
    magic, n_rows, n_cols, omega, flags, _rsvd = struct.unpack(
        _HEADER, data[:header_size])
    if magic != MAGIC:
        raise FormatError(f"bad device-image magic 0x{magic:08x}")
    symgs = bool(flags & _FLAG_SYMGS)
    checksummed = bool(flags & _FLAG_CHECKSUMS)
    pos = header_size
    (n_blocks,) = struct.unpack(">I", data[pos:pos + 4])
    pos += 4
    # The directory and checksum table are fixed-width records — parse
    # them in two vectorized reads rather than one struct.unpack per
    # block (this path is hot when loading stored artifacts).
    entry_size = struct.calcsize(">IIBB")
    need = entry_size * n_blocks
    if pos + need > len(data):
        raise FormatError("device image truncated in block directory")
    dir_arr = np.frombuffer(
        data, count=n_blocks, offset=pos,
        dtype=np.dtype([("row", ">u4"), ("col", ">u4"),
                        ("diag", "u1"), ("rev", "u1")]))
    directory = list(zip(dir_arr["row"].tolist(),
                         dir_arr["col"].tolist(),
                         (dir_arr["diag"] != 0).tolist(),
                         (dir_arr["rev"] != 0).tolist()))
    pos += need
    block_crcs: List[int] = []
    diag_crc: Optional[int] = None
    if checksummed:
        need = 4 * n_blocks + (4 if symgs else 0)
        if pos + need > len(data):
            raise FormatError("device image truncated in checksum table")
        block_crcs = np.frombuffer(data, dtype=">u4", count=n_blocks,
                                   offset=pos).tolist()
        pos += 4 * n_blocks
        if symgs:
            diag_crc = struct.unpack(">I", data[pos:pos + 4])[0]
            pos += 4
    diagonal: Optional[np.ndarray] = None
    if symgs:
        need = n_rows * 8
        if pos + need > len(data):
            raise FormatError("device image truncated in diagonal")
        raw = data[pos:pos + need]
        if diag_crc is not None and zlib.crc32(raw) != diag_crc:
            raise CorruptionError(
                "device image diagonal fails its checksum")
        diagonal = np.frombuffer(raw, dtype=">f8").astype(np.float64)
        pos += need
    slots = n_blocks * omega * omega
    need = slots * 8
    if pos + need > len(data):
        raise FormatError("device image truncated in payload")
    payload_raw = data[pos:pos + need]
    payload = np.frombuffer(payload_raw, dtype=">f8").astype(np.float64)
    block_slots = omega * omega
    values3d = payload.reshape(n_blocks, omega, omega) if n_blocks \
        else payload.reshape(0, omega, omega)
    raw_view = memoryview(payload_raw)
    blocks = []
    for i, (row, col, is_diag, reversed_cols) in enumerate(directory):
        if checksummed:
            raw = raw_view[i * block_slots * 8:(i + 1) * block_slots * 8]
            if zlib.crc32(raw) != block_crcs[i]:
                raise CorruptionError(
                    f"device image payload block {i} (block row {row}, "
                    f"col {col}) fails its checksum"
                )
        blocks.append(StreamBlock(row, col, is_diag, reversed_cols,
                                  values3d[i].copy()))
    return AlreschaMatrix((n_rows, n_cols), omega, blocks, diagonal,
                          symgs)


def image_size_bytes(matrix: AlreschaMatrix) -> int:
    """Size of the encoded device image."""
    size = struct.calcsize(_HEADER) + 4 \
        + matrix.n_blocks * struct.calcsize(">IIBB") \
        + matrix.n_blocks * 4 \
        + matrix.stored_values * 8
    if matrix.symgs_layout:
        size += 4 + matrix.shape[0] * 8
    return size


def roundtrip_check(matrix: AlreschaMatrix) -> Tuple[bool, float]:
    """Encode+decode and report (exact?, max abs difference)."""
    decoded = decode_image(encode_image(matrix))
    diff = float(np.abs(decoded.to_dense() - matrix.to_dense()).max()) \
        if matrix.shape[0] else 0.0
    return diff == 0.0, diff
