"""Configuration table: the programmed form of a sparse kernel (§4.1).

The host runs Algorithm 1 once, turning a sparse kernel plus its matrix
into a sequence of *dense data paths*.  Each row of the configuration
table describes one data path:

    (DP type, Inx_in, Inx_out, access order, operand source)

and costs ``2*ceil(log2(n/omega)) + 3`` bits — two block indices plus one
bit each for the data-path type, the access order and the operand port.
The table is written through the program interface once; during the
iterative execution no meta-data is ever streamed from memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List, Sequence

from repro.errors import ConfigError


class KernelType(Enum):
    """Sparse kernels the accelerator supports (Table 1)."""

    SPMV = "spmv"
    SYMGS = "symgs"
    BFS = "bfs"
    SSSP = "sssp"
    PAGERANK = "pagerank"

    @property
    def datapath(self) -> "DataPathType":
        """The dense data path this kernel's blocks lower to (Table 1,
        'Dense Data Paths' column); SymGS lowers to a *mix* of GEMV and
        D-SymGS, so its default lowering is the dependent one."""
        return _KERNEL_TO_DATAPATH[self]


class DataPathType(Enum):
    """Dense data paths implemented by the compute engine (§4.2)."""

    GEMV = "gemv"
    D_SYMGS = "d-symgs"
    D_BFS = "d-bfs"
    D_SSSP = "d-sssp"
    D_PR = "d-pr"

    @property
    def is_dependent(self) -> bool:
        """True for data paths with sequential in-block dependencies."""
        return self is DataPathType.D_SYMGS


_KERNEL_TO_DATAPATH = {
    KernelType.SPMV: DataPathType.GEMV,
    KernelType.SYMGS: DataPathType.D_SYMGS,
    KernelType.BFS: DataPathType.D_BFS,
    KernelType.SSSP: DataPathType.D_SSSP,
    KernelType.PAGERANK: DataPathType.D_PR,
}


class AccessOrder(Enum):
    """Element access order within a block (Algorithm 1: l2r / r2l)."""

    L2R = "l2r"
    R2L = "r2l"


class OperandPort(Enum):
    """Which local-cache port supplies the vector operand.

    For SymGS, port 1 carries the vector being computed this iteration
    (``x^t``) and port 2 the previous iteration's vector (``x^{t-1}``).
    """

    PORT1 = "port1"
    PORT2 = "port2"


#: ``Inx_out`` value meaning "do not write the result to the cache" —
#: the GEMV partials of a SymGS row go to the link stack instead.
NO_CACHE_WRITE = -1


@dataclass(frozen=True)
class ConfigEntry:
    """One row of the configuration table.

    ``block_row``/``block_col`` are simulator bookkeeping used to fetch
    the right stream block; they are *not* part of the hardware table
    (the stream order makes them implicit) and are excluded from the bit
    budget.
    """

    dp: DataPathType
    inx_in: int
    inx_out: int
    order: AccessOrder
    op: OperandPort
    block_row: int
    block_col: int

    def __post_init__(self) -> None:
        if self.inx_in < 0:
            raise ConfigError(f"Inx_in must be non-negative, got {self.inx_in}")
        if self.inx_out < NO_CACHE_WRITE:
            raise ConfigError(f"invalid Inx_out {self.inx_out}")


class ConfigTable:
    """An ordered sequence of :class:`ConfigEntry` rows plus bit budget."""

    def __init__(self, n: int, omega: int,
                 entries: Sequence[ConfigEntry] = ()) -> None:
        if n <= 0 or omega <= 0:
            raise ConfigError(f"invalid table dimensions n={n}, omega={omega}")
        self.n = int(n)
        self.omega = int(omega)
        self._entries: List[ConfigEntry] = list(entries)

    # ------------------------------------------------------------------
    # Mutation (used by the conversion algorithm)
    # ------------------------------------------------------------------
    def add(self, entry: ConfigEntry) -> None:
        self._entries.append(entry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ConfigEntry]:
        return iter(self._entries)

    def __getitem__(self, i: int) -> ConfigEntry:
        return self._entries[i]

    @property
    def entries(self) -> List[ConfigEntry]:
        return list(self._entries)

    @property
    def n_block_rows(self) -> int:
        return -(-self.n // self.omega)

    def entry_bits(self) -> int:
        """Bits per table row: ``2*ceil(log2(n/omega)) + 3`` (§4.1)."""
        m = max(1, self.n_block_rows)
        index_bits = math.ceil(math.log2(m)) if m > 1 else 1
        return 2 * index_bits + 3

    def total_bits(self) -> int:
        """Total one-time programming payload in bits."""
        return len(self._entries) * self.entry_bits()

    def datapath_counts(self) -> dict:
        """How many entries use each data-path type."""
        counts: dict = {}
        for e in self._entries:
            counts[e.dp] = counts.get(e.dp, 0) + 1
        return counts

    def switch_count(self) -> int:
        """Number of data-path switches between adjacent entries.

        Every switch requires reconfiguring the RCU; Algorithm 1's
        reordering exists precisely to minimise this number.
        """
        switches = 0
        for prev, curr in zip(self._entries, self._entries[1:]):
            if prev.dp is not curr.dp:
                switches += 1
        return switches

    def dependent_fraction(self) -> float:
        """Fraction of entries that are data-dependent (D-SymGS)."""
        if not self._entries:
            return 0.0
        dep = sum(1 for e in self._entries if e.dp.is_dependent)
        return dep / len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConfigTable(n={self.n}, omega={self.omega}, "
                f"entries={len(self._entries)}, "
                f"switches={self.switch_count()})")
