"""The paper's primary contribution: the ALRESCHA accelerator model.

Public surface:

* :class:`~repro.core.accelerator.Alrescha` — program + run kernels.
* :func:`~repro.core.convert.convert` — Algorithm 1.
* :class:`~repro.core.config.ConfigTable` and friends — the programmed
  representation of a kernel.
"""

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.binary import (
    decode_program,
    encode_program,
    program_size_bytes,
)
from repro.core.detailed import (
    DEFAULT_FIFO_DEPTH,
    DetailedReport,
    crosscheck_with_analytic,
    fifo_depth_sweep,
    simulate_pass,
)
from repro.core.device_image import (
    decode_image,
    encode_image,
    image_size_bytes,
)
from repro.core.switch import (
    CONFIGURATIONS,
    ConfigurableSwitch,
    SwitchConfiguration,
    switch_distance,
)
from repro.core.statemachine import (
    ACCELERATED,
    HOST,
    KernelState,
    KernelStateMachine,
    pcg_state_machine,
    walk_pcg,
)
from repro.core.config import (
    NO_CACHE_WRITE,
    AccessOrder,
    ConfigEntry,
    ConfigTable,
    DataPathType,
    KernelType,
    OperandPort,
)
from repro.core.convert import ConversionResult, convert
from repro.core.datapaths import DataPathTiming
from repro.core.fcu import FixedComputeUnit
from repro.core.rcu import RCUConfig, ReconfigurableComputeUnit
from repro.core.report import SimReport, combine

__all__ = [
    "AccessOrder",
    "Alrescha",
    "AlreschaConfig",
    "ConfigEntry",
    "ConfigTable",
    "ConversionResult",
    "DataPathTiming",
    "DataPathType",
    "FixedComputeUnit",
    "KernelType",
    "NO_CACHE_WRITE",
    "OperandPort",
    "RCUConfig",
    "ReconfigurableComputeUnit",
    "SimReport",
    "combine",
    "convert",
    "ACCELERATED",
    "HOST",
    "KernelState",
    "KernelStateMachine",
    "DEFAULT_FIFO_DEPTH",
    "DetailedReport",
    "crosscheck_with_analytic",
    "decode_image",
    "fifo_depth_sweep",
    "simulate_pass",
    "CONFIGURATIONS",
    "ConfigurableSwitch",
    "SwitchConfiguration",
    "switch_distance",
    "decode_program",
    "encode_image",
    "image_size_bytes",
    "pcg_state_machine",
    "walk_pcg",
    "encode_program",
    "program_size_bytes",
]
