"""Detailed timing simulation: bounded buffers and backpressure.

The analytic model in :mod:`repro.core.accelerator` assumes the FIFOs in
front of the FCU are deep enough for memory to run ahead of compute
("uninterrupted streaming").  This module drops that assumption: it
replays the exact job sequence of a programmed kernel through an
event-jump simulation with

* a memory channel that streams one block at a time, but only while the
  A-FIFO has a free slot (finite ``fifo_depth``),
* an in-order compute engine whose per-job occupancy follows the same
  data-path costs as the analytic model, and
* explicit drain + reconfigure + fill penalties at data-path switches.

Its two uses: (1) cross-validating the analytic cycle counts (tests
assert agreement within a tolerance at generous depths), and (2) the
FIFO-depth ablation — §4.3's buffers are exactly what lets memory run
ahead, and shrinking them to depth 1 visibly serialises stream and
compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError
from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import DataPathType
from repro.core.datapaths import DataPathTiming

#: Default A-FIFO capacity, in blocks.  A 64-entry, 8-byte-word FIFO
#: holds one 8x8 block; a small bank of them gives the run-ahead window.
DEFAULT_FIFO_DEPTH = 8


@dataclass
class DetailedReport:
    """Outcome of one detailed pass simulation."""

    cycles: float
    mem_busy_cycles: float
    mem_stall_cycles: float
    engine_busy_cycles: float
    engine_idle_cycles: float
    switch_penalty_cycles: float
    n_jobs: int
    fifo_depth: int

    @property
    def memory_utilization(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.mem_busy_cycles / self.cycles

    @property
    def engine_utilization(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.engine_busy_cycles / self.cycles


@dataclass(frozen=True)
class _Job:
    dp: DataPathType
    stream_cycles: float
    compute_cycles: float


def _jobs_from_accelerator(acc: Alrescha,
                           timing: DataPathTiming) -> List[_Job]:
    jobs: List[_Job] = []
    spb = timing.stream_cycles_per_block()
    for group in acc._rows:  # noqa: SLF001 - deliberate white-box access
        for op in group.streaming:
            jobs.append(_Job(op.dp, spb,
                             timing.compute_cycles_per_block(op.dp)))
        if group.diagonal is not None:
            op = group.diagonal
            jobs.append(_Job(op.dp, spb,
                             timing.compute_cycles_per_block(op.dp)))
    return jobs


def simulate_pass(acc: Alrescha, fifo_depth: int = DEFAULT_FIFO_DEPTH,
                  config: Optional[AlreschaConfig] = None
                  ) -> DetailedReport:
    """Event-jump simulation of one pass over the programmed kernel."""
    if fifo_depth < 1:
        raise SimulationError(f"FIFO depth must be >= 1, got {fifo_depth}")
    cfg = config or acc.config
    timing = cfg.timing()
    jobs = _jobs_from_accelerator(acc, timing)
    if not jobs:
        return DetailedReport(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0,
                              fifo_depth)

    reconfig = float(cfg.reconfig_cycles)
    hide = cfg.hide_reconfig_under_drain

    n = len(jobs)
    arrival = [0.0] * n          # when job i has fully streamed
    start = [0.0] * n            # when the engine starts job i
    finish = [0.0] * n           # when the engine finishes job i
    mem_busy = 0.0
    engine_busy = 0.0
    switch_penalty_total = 0.0
    mem_free = 0.0               # memory channel free time
    prev_dp: Optional[DataPathType] = None

    for i, job in enumerate(jobs):
        # Streaming can begin once the channel is free AND the FIFO has
        # a slot: slot frees when job i - fifo_depth *starts* compute.
        gate = start[i - fifo_depth] if i >= fifo_depth else 0.0
        stream_begin = max(mem_free, gate)
        arrival[i] = stream_begin + job.stream_cycles
        mem_free = arrival[i]
        mem_busy += job.stream_cycles

        # Engine: in order, after the previous job, plus the switch
        # penalty when the data path changes.
        ready = finish[i - 1] if i else 0.0
        penalty = 0.0
        if prev_dp is not job.dp:
            if prev_dp is not None:
                drain = timing.drain(prev_dp)
                exposed = max(0.0, reconfig - drain) if hide else reconfig
                penalty += drain + exposed
            penalty += timing.pipeline_fill(job.dp)
            switch_penalty_total += penalty
        prev_dp = job.dp
        start[i] = max(arrival[i], ready + penalty)
        finish[i] = start[i] + job.compute_cycles
        engine_busy += job.compute_cycles

    total = finish[-1] + timing.drain(jobs[-1].dp)
    return DetailedReport(
        cycles=total,
        mem_busy_cycles=mem_busy,
        mem_stall_cycles=max(0.0, total - mem_busy),
        engine_busy_cycles=engine_busy,
        engine_idle_cycles=max(0.0, total - engine_busy
                               - switch_penalty_total),
        switch_penalty_cycles=switch_penalty_total,
        n_jobs=n,
        fifo_depth=fifo_depth,
    )


def fifo_depth_sweep(acc: Alrescha,
                     depths: Optional[List[int]] = None
                     ) -> dict:
    """Detailed cycles across FIFO depths (the §4.3 buffer ablation)."""
    out = {}
    for depth in depths or [1, 2, 4, 8, 16, 32]:
        report = simulate_pass(acc, fifo_depth=depth)
        out[depth] = {
            "cycles": report.cycles,
            "memory_utilization": report.memory_utilization,
            "engine_utilization": report.engine_utilization,
            "mem_stall_cycles": report.mem_stall_cycles,
        }
    return out


def crosscheck_with_analytic(acc: Alrescha, analytic_cycles: float,
                             fifo_depth: int = DEFAULT_FIFO_DEPTH
                             ) -> dict:
    """Compare the detailed simulation against the analytic model."""
    detailed = simulate_pass(acc, fifo_depth=fifo_depth)
    ratio = detailed.cycles / analytic_cycles if analytic_cycles else 0.0
    return {
        "analytic_cycles": analytic_cycles,
        "detailed_cycles": detailed.cycles,
        "ratio": ratio,
        "fifo_depth": fifo_depth,
    }
