"""Reconfigurable compute unit (RCU) — §4.3/§4.4, Figure 9.

The RCU is the small, frequently reconfigured part of the compute
engine: a local cache for the addressable vector operands (``x^{t-1}``,
``x^t``, ``b``, the extracted diagonal), FIFOs for the deterministic
streams, a LIFO *link stack* that carries GEMV partials into the
dependent D-SymGS, LUT-based processing elements (multiply, divide, sum,
subtract), and a configurable switch that rewires them per data path.

Reconfiguration cost model (§4.4): switching data paths requires the
reduction tree to drain, "during which the switch is reconfigured to
prepare it for the next data path.  Therefore, the latency of
configuration is hidden by the latency of draining the adder tree."  The
exposed cost of a switch is therefore ``max(0, reconfig - drain)``; an
ablation can disable the overlap to expose the full latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.errors import ReconfigurationError, SimulationError
from repro.core.config import DataPathType
from repro.sim.buffers import Fifo, LinkStack
from repro.sim.cache import LocalCache
from repro.sim.stats import CounterSet

#: Cycles to rewrite the configurable switch for one data path; the
#: switch is tiny ("a small reconfigurable computation unit"), so this is
#: on the order of the tree-drain it hides under.
DEFAULT_RECONFIG_CYCLES = 8

#: LUT-based PE latency (cycles) per operation class.
DEFAULT_PE_LATENCY = {
    "div": 6,
    "mul": 3,
    "add": 2,
    "sub": 2,
    "min": 1,
    "cmp": 1,
}


@dataclass
class RCUConfig:
    """Static parameters of the RCU."""

    reconfig_cycles: int = DEFAULT_RECONFIG_CYCLES
    pe_latency: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_PE_LATENCY)
    )
    #: When False (ablation), reconfiguration no longer overlaps the
    #: reduction-tree drain and its full latency is exposed.
    hide_under_drain: bool = True


class ReconfigurableComputeUnit:
    """Functional + timing model of the RCU."""

    def __init__(self, config: Optional[RCUConfig] = None,
                 cache: Optional[LocalCache] = None) -> None:
        from repro.core.switch import ConfigurableSwitch

        self.config = config or RCUConfig()
        self.cache = cache or LocalCache()
        self.fifo_a = Fifo("A_fifo")
        self.fifo_b = Fifo("b_fifo")
        self.link = LinkStack("link")
        self.switch = ConfigurableSwitch()
        self.counters = CounterSet()
        self._active: Optional[DataPathType] = None
        #: Named vector operands resident behind the cache ports.
        self._operands: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Operand management (host writes through the data interface)
    # ------------------------------------------------------------------
    def load_operand(self, name: str, vector: np.ndarray) -> None:
        """Place a vector operand behind a named cache port."""
        self._operands[name] = np.asarray(vector, dtype=np.float64).copy()

    def operand(self, name: str) -> np.ndarray:
        if name not in self._operands:
            raise SimulationError(f"operand {name!r} was never loaded")
        return self._operands[name]

    def read_chunk(self, name: str, start: int, width: int) -> np.ndarray:
        """Read ``width`` elements of an operand through the cache.

        Returns the values; the cache-access cycle cost accumulates in
        :attr:`cache_busy_cycles` so the accelerator can overlap it with
        streaming.
        """
        vec = self.operand(name)
        if start < 0 or start + width > vec.size:
            chunk = np.zeros(width, dtype=np.float64)
            hi = min(vec.size, start + width)
            if start < vec.size:
                chunk[: hi - start] = vec[start:hi]
        else:
            chunk = vec[start:start + width].copy()
        self.cache.read(name, max(0, start), width)
        # The SRAM is pipelined: one chunk access occupies one port
        # cycle; the 4-cycle latency hides behind the FIFO run-ahead.
        self.counters.add("cache_busy_cycles", 1.0)
        return chunk

    def write_chunk(self, name: str, start: int,
                    values: np.ndarray) -> None:
        """Write elements of an operand through the cache."""
        vec = self.operand(name)
        values = np.asarray(values, dtype=np.float64)
        hi = min(vec.size, start + values.size)
        if start < vec.size:
            vec[start:hi] = values[: hi - start]
        self.cache.write(name, max(0, start), values.size)
        self.counters.add("cache_busy_cycles", 1.0)

    @property
    def cache_busy_cycles(self) -> float:
        return self.counters.get("cache_busy_cycles")

    # ------------------------------------------------------------------
    # PEs
    # ------------------------------------------------------------------
    def pe(self, op: str, a: float, b: float) -> float:
        """Execute one LUT-based PE operation; returns the value.

        The cycle cost is available via :meth:`pe_latency`; the caller
        accounts for it because PE latency sits on the sequential
        critical path of D-SymGS but off it for other data paths.
        """
        if op not in self.config.pe_latency:
            raise SimulationError(f"unsupported PE operation {op!r}")
        self.counters.add("pe_op")
        if op == "div":
            if b == 0.0:
                raise SimulationError("PE division by zero")
            return a / b
        if op == "mul":
            return a * b
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "min":
            return min(a, b)
        # cmp: 1.0 if a < b else 0.0
        return 1.0 if a < b else 0.0

    def pe_latency(self, op: str) -> int:
        return self.config.pe_latency[op]

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------
    @property
    def active_datapath(self) -> Optional[DataPathType]:
        return self._active

    def reconfigure(self, dp: DataPathType, drain_cycles: int) -> float:
        """Switch the RCU to data path ``dp``; returns *exposed* cycles.

        ``drain_cycles`` is the reduction-tree drain of the data path
        being retired; the switch rewires during the drain, so only the
        excess (if any) stalls the engine.
        """
        if not isinstance(dp, DataPathType):
            raise ReconfigurationError(f"invalid data path {dp!r}")
        if drain_cycles < 0:
            raise ReconfigurationError(
                f"negative drain latency {drain_cycles}"
            )
        if self._active is dp:
            return 0.0
        self._active = dp
        self.counters.add("config_write")
        # Reconfiguration activity = connections actually toggled in the
        # configurable switch (Figure 9's interconnect difference), not
        # a flat per-switch constant.
        toggles = self.switch.install(dp)
        self.counters.add("switch_toggle", float(toggles))
        if self.config.hide_under_drain:
            exposed = max(0.0, float(self.config.reconfig_cycles)
                          - float(drain_cycles))
        else:
            exposed = float(self.config.reconfig_cycles)
        self.counters.add("reconfig_exposed_cycles", exposed)
        return exposed

    def reset(self) -> None:
        """Clear all buffers, cache state and counters."""
        from repro.core.switch import ConfigurableSwitch

        self.fifo_a.clear()
        self.fifo_b.clear()
        self.link.clear()
        self.cache.reset()
        self.switch = ConfigurableSwitch()
        self.counters.reset()
        self._active = None
        self._operands.clear()
