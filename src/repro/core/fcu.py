"""Fixed compute unit (FCU) — §4.3, Figure 9a.

The FCU is the part of the compute engine that never reconfigures: a row
of ALUs whose matrix-side operands stream straight from memory, feeding a
fully pipelined tree of reduce engines (REs).  The interconnections
between the REs "are fixed for all data paths"; what varies per data path
is only the ALU operation (multiply for GEMV/D-SymGS, add for
D-BFS/D-SSSP, AND/divide for D-PR) and the reduction operation (sum or
min), both selected by the RCU's configuration.

Timing parameters come from Table 5: ALU latency 3 cycles, RE latency
3 cycles for sum and 1 cycle for min.  The tree depth is ⌈log2 ω⌉ and the
pipeline "yields the speed of the streaming data from memory".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.errors import CorruptionError, SimulationError
from repro.sim.stats import CounterSet

#: Table 5 latencies (cycles).
DEFAULT_ALU_LATENCY = 3
DEFAULT_RE_SUM_LATENCY = 3
DEFAULT_RE_MIN_LATENCY = 1

#: Number of ALUs in the row.  §5.2 sizes the design so the compute
#: logic keeps up with the 288 GB/s stream at 2.5 GHz (115.2 B/cycle =
#: 14.4 doubles/cycle), which needs 16 lanes at one operand per lane per
#: cycle; 16 also packs two ω=8 dot-product slices per cycle.
DEFAULT_N_ALUS = 16

_VECTOR_OPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "mul": lambda a, b: a * b,
    "add": lambda a, b: a + b,
    # D-PR phase-1: select (AND with the adjacency value) then divide the
    # rank by the out-degree; the caller passes rank/outdeg as operand b.
    "and_div": lambda a, b: np.where(a != 0.0, b, 0.0),
}

_REDUCE_OPS: Dict[str, Callable[[np.ndarray], float]] = {
    "sum": lambda v: float(np.sum(v)),
    "min": lambda v: float(np.min(v)) if v.size else math.inf,
}


@dataclass
class FixedComputeUnit:
    """Functional + timing model of the ALU row and reduction tree."""

    omega: int = 8
    n_alus: int = DEFAULT_N_ALUS
    alu_latency: int = DEFAULT_ALU_LATENCY
    re_sum_latency: int = DEFAULT_RE_SUM_LATENCY
    re_min_latency: int = DEFAULT_RE_MIN_LATENCY
    #: Trap NaN/Inf escaping a *sum* reduction (GEMV/D-SymGS boundaries)
    #: as :class:`~repro.errors.CorruptionError`.  Off by default —
    #: poisoned operands must stay visible in the output unless the user
    #: opts into guarding.  Min-plus paths are exempt: BFS/SSSP use inf
    #: as the legitimate "unreached" distance.
    guard_nonfinite: bool = False
    counters: CounterSet = field(default_factory=CounterSet)

    def __post_init__(self) -> None:
        if self.omega <= 0 or (self.omega & (self.omega - 1)):
            raise SimulationError(
                f"omega must be a positive power of two, got {self.omega}"
            )
        if self.n_alus < self.omega:
            raise SimulationError(
                f"the ALU row ({self.n_alus}) must fit one dot-product "
                f"slice of width omega={self.omega}"
            )

    # ------------------------------------------------------------------
    # Functional layer
    # ------------------------------------------------------------------
    def vector_op(self, a: np.ndarray, b: np.ndarray,
                  op: str = "mul") -> np.ndarray:
        """Phase-1 element-wise operation across the ALU row.

        Energy activity scales with the number of *non-zero* matrix
        operands (§5.4: "the activity of compute units, defined by the
        density of the locally-dense block, impacts energy but not
        performance").
        """
        if op not in _VECTOR_OPS:
            raise SimulationError(f"unsupported ALU operation {op!r}")
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a.shape != b.shape:
            raise SimulationError(
                f"ALU operand shapes differ: {a.shape} vs {b.shape}"
            )
        self.counters.add("alu_op", float(np.count_nonzero(a)))
        return _VECTOR_OPS[op](a, b)

    def reduce(self, v: np.ndarray, op: str = "sum") -> float:
        """Phase-2 reduction through the RE tree."""
        if op not in _REDUCE_OPS:
            raise SimulationError(f"unsupported reduce operation {op!r}")
        v = np.asarray(v, dtype=np.float64)
        # A w-wide reduction activates w-1 reduce engines.
        self.counters.add("re_op", float(max(0, v.size - 1)))
        return _REDUCE_OPS[op](v)

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """A full dot product: multiply row then sum tree."""
        return self.reduce(self.vector_op(a, b, "mul"), "sum")

    def check_finite(self, values: np.ndarray, context: str) -> None:
        """NaN/Inf guard at a sum-reduction boundary.

        Only active with :attr:`guard_nonfinite`; raises
        :class:`~repro.errors.CorruptionError` naming the first bad
        lane so a silently corrupted operand is caught the moment it
        reaches the reduce tree instead of poisoning the solve.
        """
        if not self.guard_nonfinite:
            return
        finite = np.isfinite(values)
        if not np.all(finite):
            lane = int(np.argmin(finite))
            raise CorruptionError(
                f"non-finite value {np.asarray(values).ravel()[lane]!r} "
                f"at {context} (lane {lane})"
            )

    # ------------------------------------------------------------------
    # Timing layer
    # ------------------------------------------------------------------
    @property
    def tree_depth(self) -> int:
        """Number of RE levels for an ω-wide reduction."""
        return int(math.ceil(math.log2(self.omega))) if self.omega > 1 else 1

    def re_latency(self, reduce_op: str) -> int:
        if reduce_op == "min":
            return self.re_min_latency
        return self.re_sum_latency

    def pipeline_latency(self, reduce_op: str = "sum") -> int:
        """Fill latency: ALU stage plus every RE level once."""
        return self.alu_latency + self.tree_depth * self.re_latency(reduce_op)

    def drain_cycles(self, reduce_op: str = "sum") -> int:
        """Cycles to drain the tree at the end of a data path — the
        window in which the RCU switch reconfigures for free (§4.3)."""
        return self.tree_depth * self.re_latency(reduce_op)

    @property
    def compute_bytes_per_cycle(self) -> float:
        """Peak matrix-operand consumption of the ALU row."""
        return self.n_alus * 8.0
