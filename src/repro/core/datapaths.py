"""Dense data-path implementations (§4.2).

Two classes of data paths:

* **Straightforward** (GEMV, D-BFS, D-SSSP, D-PR): operate on a
  locally-dense ω×ω block of the matrix and an ω-chunk of the vector
  operand, fully pipelined behind the memory stream.
* **Data-dependent** (D-SymGS): the Gauss-Seidel recurrence, rewritten
  as the unified dot product of Equation 3 so it reuses the same dot
  engine; each of its ω steps feeds the newly produced ``x_j^t`` back
  into the operand register by a one-slot shift (Figure 10), so the
  steps are inherently serial.

Each data path exposes a *functional* block operation (exact values,
with FCU/RCU event counting) and a *timing* entry (cycles per block for
the streaming-bound paths, cycles per serial step for D-SymGS).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SimulationError
from repro.core.config import DataPathType
from repro.core.fcu import FixedComputeUnit
from repro.core.rcu import ReconfigurableComputeUnit

#: Serial-step latency of D-SymGS in steady state: the forwarding path
#: from a freshly produced ``x_j^t`` through one multiplier, one bypass
#: add and the PE divide before ``x_{j+1}^t`` can issue.  The deep
#: reduction tree is off this path (its inputs not involving ``x_j^t``
#: are pre-accumulated), which is what keeps the reconfigurable design
#: "lightweight" rather than latency-bound.
DEFAULT_DSYMGS_STEP_LATENCY = 4


def _require_square_block(block: np.ndarray, omega: int) -> None:
    if block.shape != (omega, omega):
        raise SimulationError(
            f"expected a ({omega}, {omega}) block, got {block.shape}"
        )


# ---------------------------------------------------------------------
# Functional block operations
# ---------------------------------------------------------------------
def gemv_block(fcu: FixedComputeUnit, block: np.ndarray,
               chunk: np.ndarray, reversed_cols: bool = False) -> np.ndarray:
    """GEMV over one block: ``block @ chunk`` (ω partial dot products).

    ``reversed_cols=True`` handles upper-triangle blocks stored in the
    Alrescha format's reversed column order: the operand chunk is read
    right-to-left (the ``r2l``/shift-register behaviour), which restores
    the original product exactly.
    """
    _require_square_block(block, fcu.omega)
    # The r2l read lands in the PE's operand buffer as a contiguous
    # vector; materialise it the same way here so the product is
    # bit-identical to the compiled plan's gathered operands (BLAS picks
    # a different accumulation order for negative-stride views).
    operand = np.ascontiguousarray(chunk[::-1]) if reversed_cols else chunk
    if operand.shape != (fcu.omega,):
        raise SimulationError(
            f"operand chunk must have {fcu.omega} elements"
        )
    nnz = float(np.count_nonzero(block))
    fcu.counters.add("alu_op", nnz)
    # Each row reduction activates up to omega-1 REs; activity again
    # scales with row occupancy.
    fcu.counters.add("re_op", max(0.0, nnz - np.count_nonzero(
        block.any(axis=1))))
    result = block @ operand
    fcu.check_finite(result, "GEMV sum-reduce output")
    return result


def dsymgs_solve(body: np.ndarray, diag: np.ndarray, b_chunk: np.ndarray,
                 x_old_chunk: np.ndarray, acc: np.ndarray,
                 valid_rows: int, omega: int) -> np.ndarray:
    """The arithmetic of one D-SymGS block, without event counting.

    This is the exact recurrence :func:`dsymgs_block` executes — shared
    with the compiled plan layer (:mod:`repro.core.plan`), which accounts
    events through its captured report template instead of live counters.
    The expressions are kept operation-for-operation identical to the
    counted path so both produce bit-identical iterates.
    """
    x_new = np.zeros(omega, dtype=np.float64)
    for r in range(valid_rows):
        row = body[r]
        lower = row[:r]
        upper = row[r + 1:]
        dot = float(lower @ x_new[:r]) + float(upper @ x_old_chunk[r + 1:])
        s = float(acc[r]) + dot
        if diag[r] == 0.0:
            raise SimulationError(
                f"zero diagonal inside D-SymGS block (local row {r})"
            )
        numer = float(b_chunk[r]) - s
        x_new[r] = numer / float(diag[r])
    return x_new


def dsymgs_block(fcu: FixedComputeUnit, rcu: ReconfigurableComputeUnit,
                 body: np.ndarray, diag: np.ndarray, b_chunk: np.ndarray,
                 x_old_chunk: np.ndarray, acc: np.ndarray,
                 valid_rows: int) -> np.ndarray:
    """The dependent D-SymGS data path over one diagonal block.

    Implements Equation 3 step by step: for local row ``r``,

        x_r = (b_r - acc_r - sum_{c<r} B[r,c] x_c^new
                            - sum_{c>r} B[r,c] x_c^old) / diag_r

    where ``acc`` carries the partial sums of this block-row's GEMVs
    (popped from the link stack), ``body`` is the diagonal block with its
    main diagonal zeroed, and ``diag`` is the separately stored diagonal.
    Rows at ``valid_rows`` and beyond are matrix padding and pass through
    unchanged (zero).
    """
    omega = fcu.omega
    _require_square_block(body, omega)
    for r in range(valid_rows):
        nnz = float(np.count_nonzero(body[r]))
        fcu.counters.add("alu_op", nnz)
        fcu.counters.add("re_op", max(0.0, nnz - 1.0) + 1.0)
        rcu.counters.add("pe_op", 2.0)  # the sub and the div per row
    x_new = dsymgs_solve(body, diag, b_chunk, x_old_chunk, acc,
                         valid_rows, omega)
    fcu.check_finite(x_new[:valid_rows], "D-SymGS solve output")
    return x_new


def dbfs_block(fcu: FixedComputeUnit, block: np.ndarray,
               dist_chunk: np.ndarray,
               with_argmin: bool = False):
    """D-BFS over one block: min-plus with unit edge cost.

    Phase 1 of Table 1 ("sum"): candidate distance ``dist[u] + 1`` for
    every edge in the block; phase 2 ("min"): reduce per destination.
    ``block[r, c]`` is the edge weight/flag from source ``c`` (chunk
    element) to destination ``r``.

    With ``with_argmin`` the min tree also reports which lane won —
    the local column index of the best predecessor — enabling
    Graph500-style parent output at no extra stream cost (the tree
    carries a lane tag beside each value).
    """
    _require_square_block(block, fcu.omega)
    mask = block != 0.0
    nnz = float(np.count_nonzero(mask))
    fcu.counters.add("alu_op", nnz)
    fcu.counters.add("re_op", nnz)
    cand = np.where(mask, dist_chunk[np.newaxis, :] + 1.0, np.inf)
    best = cand.min(axis=1)
    if not with_argmin:
        return best
    lanes = np.where(np.isfinite(best), cand.argmin(axis=1), -1)
    return best, lanes


def dsssp_block(fcu: FixedComputeUnit, block: np.ndarray,
                dist_chunk: np.ndarray) -> np.ndarray:
    """D-SSSP over one block: min-plus with the stored edge weights."""
    _require_square_block(block, fcu.omega)
    mask = block != 0.0
    nnz = float(np.count_nonzero(mask))
    fcu.counters.add("alu_op", nnz)
    fcu.counters.add("re_op", nnz)
    cand = np.where(mask, dist_chunk[np.newaxis, :] + block, np.inf)
    return cand.min(axis=1)


def dpr_block(fcu: FixedComputeUnit, rcu: ReconfigurableComputeUnit,
              block: np.ndarray, rank_chunk: np.ndarray,
              outdeg_chunk: np.ndarray) -> np.ndarray:
    """D-PR over one block: select rank/out-degree where an edge exists
    ("AND/division" in Table 1), then sum per destination."""
    _require_square_block(block, fcu.omega)
    mask = block != 0.0
    nnz = float(np.count_nonzero(mask))
    fcu.counters.add("alu_op", nnz)
    fcu.counters.add("re_op", nnz)
    # The divides happen in the RCU PEs, once per chunk element with
    # out-going edges (the quotient is broadcast to the ALU row).
    safe_deg = np.where(outdeg_chunk > 0.0, outdeg_chunk, 1.0)
    active = np.count_nonzero(mask.any(axis=0))
    rcu.counters.add("pe_op", float(active))
    contrib = rank_chunk / safe_deg
    contrib = np.where(outdeg_chunk > 0.0, contrib, 0.0)
    return (np.where(mask, contrib[np.newaxis, :], 0.0)).sum(axis=1)


# ---------------------------------------------------------------------
# Timing
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class DataPathTiming:
    """Per-data-path cycle costs derived from the engine configuration."""

    omega: int
    n_alus: int
    mem_bytes_per_cycle: float
    alu_latency: int
    re_sum_latency: int
    re_min_latency: int
    dsymgs_step_latency: int = DEFAULT_DSYMGS_STEP_LATENCY
    pe_div_latency: int = 6
    pe_sub_latency: int = 2
    #: Stored element width.  Table 5 uses double precision (8 B);
    #: 4 models an fp32 deployment's memory traffic (numerics are still
    #: simulated at fp64 — the traffic, not the rounding, is the study).
    element_bytes: int = 8

    @property
    def block_bytes(self) -> int:
        return self.omega * self.omega * self.element_bytes

    @property
    def tree_depth(self) -> int:
        return int(math.ceil(math.log2(self.omega))) if self.omega > 1 else 1

    def stream_cycles_per_block(self) -> float:
        """Memory-side cost of streaming one dense block."""
        return self.block_bytes / self.mem_bytes_per_cycle

    def compute_cycles_per_block(self, dp: DataPathType) -> float:
        """Engine-side throughput cost of one block of data path ``dp``.

        Streaming paths consume ω² operands through ``n_alus`` lanes;
        D-SymGS serialises its ω steps on the forwarding path.
        """
        if dp is DataPathType.D_SYMGS:
            return float(self.omega * self.dsymgs_step_latency)
        return self.omega * self.omega / float(self.n_alus)

    def pipeline_fill(self, dp: DataPathType) -> float:
        """One-off fill latency when a data-path segment starts."""
        re = (self.re_min_latency
              if dp in (DataPathType.D_BFS, DataPathType.D_SSSP)
              else self.re_sum_latency)
        fill = self.alu_latency + self.tree_depth * re
        if dp is DataPathType.D_SYMGS:
            fill += self.pe_sub_latency + self.pe_div_latency
        return float(fill)

    def drain(self, dp: DataPathType) -> float:
        """Tree-drain latency when a data-path segment ends — the window
        that hides the RCU reconfiguration (§4.4)."""
        re = (self.re_min_latency
              if dp in (DataPathType.D_BFS, DataPathType.D_SSSP)
              else self.re_sum_latency)
        return float(self.tree_depth * re)
