"""Simulation reports: the measured quantities every figure draws on.

A :class:`SimReport` captures one kernel execution (or one pass of an
iterative kernel); :func:`combine` folds the per-pass reports of an
iterative algorithm into a whole-run report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Optional

from repro.sim.stats import CounterSet


@dataclass
class SimReport:
    """Outcome of one simulated kernel execution."""

    kernel: str
    cycles: float = 0.0
    frequency_hz: float = 2.5e9
    #: Useful payload: bytes of true non-zero values consumed.
    useful_bytes: float = 0.0
    #: All bytes streamed (dense-block zeros and vector refills included).
    streamed_bytes: float = 0.0
    #: Cycles attributable to the serial D-SymGS chains.
    sequential_cycles: float = 0.0
    #: Cycles the local cache was busy (overlapped with streaming).
    cache_busy_cycles: float = 0.0
    #: Reconfiguration cycles that could not hide under the tree drain.
    exposed_reconfig_cycles: float = 0.0
    n_entries: int = 0
    n_switches: int = 0
    counters: CounterSet = field(default_factory=CounterSet)
    energy_j: float = 0.0
    #: Cycles per data-path type, e.g. {"gemv": 1200.0, "d-symgs": 400.0}.
    datapath_cycles: Dict[str, float] = field(default_factory=dict)
    bytes_per_cycle: float = 115.2

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    @property
    def bandwidth_utilization(self) -> float:
        """Useful payload over peak deliverable bytes (Figure 15 lines)."""
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.useful_bytes / (self.cycles
                                             * self.bytes_per_cycle))

    @property
    def stream_utilization(self) -> float:
        """All streamed bytes over peak deliverable bytes."""
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.streamed_bytes / (self.cycles
                                               * self.bytes_per_cycle))

    @property
    def sequential_fraction(self) -> float:
        """Share of cycles spent in the dependent data path."""
        if self.cycles <= 0:
            return 0.0
        return self.sequential_cycles / self.cycles

    @property
    def cache_time_fraction(self) -> float:
        """Cache-busy share of execution (Figure 18 lines)."""
        if self.cycles <= 0:
            return 0.0
        return min(1.0, self.cache_busy_cycles / self.cycles)

    # -- resilience counters (zero on every clean run) -----------------
    @property
    def faults_injected(self) -> float:
        """Stream faults injected by the configured fault model."""
        return self.counters.get("faults_injected")

    @property
    def faults_detected(self) -> float:
        """Injected faults the runtime noticed (checksum, sequencing)."""
        return self.counters.get("faults_detected")

    @property
    def faults_corrected(self) -> float:
        """Detected faults recovered by re-stream / discard."""
        return self.counters.get("faults_corrected")

    @property
    def retry_cycles(self) -> float:
        """Backoff + re-stream cycles charged to fault recovery."""
        return self.counters.get("retry_cycles")

    def clone(self) -> "SimReport":
        """An independent copy of this report.

        Because every timing/energy/counter quantity of a pass depends
        only on the programmed block structure — never on operand values
        — a compiled plan captures one report at compile time and clones
        it per run.  The mutable members (counters, data-path cycles) are
        copied so callers can annotate a clone freely.
        """
        return replace(self, counters=self.counters.copy(),
                       datapath_cycles=dict(self.datapath_cycles))

    def scaled(self, factor: float) -> "SimReport":
        """Extrapolate this report to ``factor`` identical passes."""
        return SimReport(
            kernel=self.kernel,
            cycles=self.cycles * factor,
            frequency_hz=self.frequency_hz,
            useful_bytes=self.useful_bytes * factor,
            streamed_bytes=self.streamed_bytes * factor,
            sequential_cycles=self.sequential_cycles * factor,
            cache_busy_cycles=self.cache_busy_cycles * factor,
            exposed_reconfig_cycles=self.exposed_reconfig_cycles * factor,
            n_entries=int(self.n_entries * factor),
            n_switches=int(self.n_switches * factor),
            counters=self.counters.scaled(factor),
            energy_j=self.energy_j * factor,
            datapath_cycles={k: v * factor
                             for k, v in self.datapath_cycles.items()},
            bytes_per_cycle=self.bytes_per_cycle,
        )


def combine(reports: Iterable[SimReport],
            kernel: Optional[str] = None) -> SimReport:
    """Sum a sequence of per-pass reports into one whole-run report."""
    reports = list(reports)
    if not reports:
        return SimReport(kernel=kernel or "empty")
    total = SimReport(
        kernel=kernel or reports[0].kernel,
        frequency_hz=reports[0].frequency_hz,
        bytes_per_cycle=reports[0].bytes_per_cycle,
    )
    for r in reports:
        total.cycles += r.cycles
        total.useful_bytes += r.useful_bytes
        total.streamed_bytes += r.streamed_bytes
        total.sequential_cycles += r.sequential_cycles
        total.cache_busy_cycles += r.cache_busy_cycles
        total.exposed_reconfig_cycles += r.exposed_reconfig_cycles
        total.n_entries += r.n_entries
        total.n_switches += r.n_switches
        total.energy_j += r.energy_j
        total.counters.merge(r.counters)
        for k, v in r.datapath_cycles.items():
            total.datapath_cycles[k] = total.datapath_cycles.get(k, 0.0) + v
    return total
