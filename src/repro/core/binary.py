"""Binary program interface (§4, Figure 7).

"The host first converts the sparse kernels into a sequence of dense
data paths and generates a *binary file*.  Then, the host writes the
binary file to a configuration table of the accelerator through the
program interface."

This module implements that binary: a small header (magic, kernel type,
n, ω, entry count) followed by the table rows bit-packed at exactly the
paper's ``2*ceil(log2(n/ω)) + 3`` bits per row — two block indices plus
one bit each for the data-path class, the access order and the operand
port.  Because a single kernel's table uses at most two data-path types
(GEMV plus the kernel's own path), one *class* bit suffices; the kernel
type in the header disambiguates, exactly as the paper's one-bit ``DP``
field implies.

``Inx_out`` is not stored per row: it is either "no cache write" (GEMV
rows inside a SymGS program), or recoverable from the row position —
the stream is block-row-major, so the output index advances exactly
when a dependent row (SymGS) or a new input row (other kernels) is
seen.  The decoder reconstructs it, and round-trip equality with the
original table is enforced by tests.
"""

from __future__ import annotations

import math
import struct
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.core.config import (
    NO_CACHE_WRITE,
    AccessOrder,
    ConfigEntry,
    ConfigTable,
    DataPathType,
    KernelType,
    OperandPort,
)

#: File magic: "ALR1".
MAGIC = 0x414C5231

_KERNEL_CODES = {k: i for i, k in enumerate(KernelType)}
_KERNEL_FROM_CODE = {i: k for k, i in _KERNEL_CODES.items()}


class BitWriter:
    """Append-only bit stream, most-significant-bit first."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    def write(self, value: int, width: int) -> None:
        if width < 0:
            raise ConfigError(f"negative field width {width}")
        if value < 0 or (width < 64 and value >= (1 << width)):
            raise ConfigError(
                f"value {value} does not fit in {width} bits"
            )
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def to_bytes(self) -> bytes:
        out = bytearray()
        byte = 0
        for i, bit in enumerate(self._bits):
            byte = (byte << 1) | bit
            if i % 8 == 7:
                out.append(byte)
                byte = 0
        tail = len(self._bits) % 8
        if tail:
            out.append(byte << (8 - tail))
        return bytes(out)

    def __len__(self) -> int:
        return len(self._bits)


class BitReader:
    """Sequential bit reader matching :class:`BitWriter`'s layout."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, width: int) -> int:
        value = 0
        for _ in range(width):
            byte_idx, bit_idx = divmod(self._pos, 8)
            if byte_idx >= len(self._data):
                raise ConfigError("binary truncated")
            bit = (self._data[byte_idx] >> (7 - bit_idx)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value

    @property
    def bits_read(self) -> int:
        return self._pos


def _index_width(table: ConfigTable) -> int:
    m = max(1, table.n_block_rows)
    return math.ceil(math.log2(m)) if m > 1 else 1


def encode_program(kernel: KernelType, table: ConfigTable) -> bytes:
    """Serialise a configuration table into the program binary."""
    if not isinstance(kernel, KernelType):
        raise ConfigError(f"invalid kernel {kernel!r}")
    header = struct.pack(
        ">IBIHI", MAGIC, _KERNEL_CODES[kernel], table.n, table.omega,
        len(table),
    )
    width = _index_width(table)
    writer = BitWriter()
    for entry in table:
        writer.write(1 if entry.dp.is_dependent else 0, 1)
        writer.write(entry.inx_in // table.omega, width)
        writer.write(entry.block_row, width)
        writer.write(1 if entry.order is AccessOrder.R2L else 0, 1)
        writer.write(1 if entry.op is OperandPort.PORT2 else 0, 1)
    return header + writer.to_bytes()


def decode_program(data: bytes) -> Tuple[KernelType, ConfigTable]:
    """Parse a program binary back into (kernel, table)."""
    header_size = struct.calcsize(">IBIHI")
    if len(data) < header_size:
        raise ConfigError("binary too short for header")
    magic, kcode, n, omega, count = struct.unpack(
        ">IBIHI", data[:header_size]
    )
    if magic != MAGIC:
        raise ConfigError(f"bad magic 0x{magic:08x}")
    if kcode not in _KERNEL_FROM_CODE:
        raise ConfigError(f"unknown kernel code {kcode}")
    kernel = _KERNEL_FROM_CODE[kcode]
    table = ConfigTable(n, omega)
    width = _index_width(table)
    # Rows are fixed-width (2*width + 3 bits) and tightly packed, so
    # the whole table unpacks in one vectorized pass instead of five
    # Python-level bit reads per row — this is what keeps loading a
    # stored artifact cheaper than recompiling it.
    row_bits = 2 * width + 3
    payload = np.frombuffer(data, dtype=np.uint8, offset=header_size)
    if payload.size * 8 < count * row_bits:
        raise ConfigError("binary truncated")
    bits = np.unpackbits(payload, count=count * row_bits).reshape(
        count, row_bits).astype(np.int64)
    place = 1 << np.arange(width - 1, -1, -1, dtype=np.int64)
    dependent_col = bits[:, 0] == 1
    block_cols = bits[:, 1:1 + width] @ place
    block_rows = bits[:, 1 + width:1 + 2 * width] @ place
    r2l_col = bits[:, 1 + 2 * width] == 1
    port2_col = bits[:, 2 + 2 * width] == 1
    base_dp = kernel.datapath
    for i in range(count):
        dependent = bool(dependent_col[i])
        block_col = int(block_cols[i])
        block_row = int(block_rows[i])
        r2l = bool(r2l_col[i])
        port2 = bool(port2_col[i])
        if kernel is KernelType.SYMGS:
            dp = DataPathType.D_SYMGS if dependent else DataPathType.GEMV
            inx_out = block_row * omega if dependent else NO_CACHE_WRITE
        else:
            dp = base_dp
            inx_out = block_row * omega
        table.add(ConfigEntry(
            dp=dp,
            inx_in=block_col * omega,
            inx_out=inx_out,
            order=AccessOrder.R2L if r2l else AccessOrder.L2R,
            op=OperandPort.PORT2 if port2 else OperandPort.PORT1,
            block_row=block_row,
            block_col=block_col,
        ))
    return kernel, table


def program_size_bytes(table: ConfigTable) -> int:
    """Size of the encoded binary, header included."""
    header = struct.calcsize(">IBIHI")
    per_entry = 2 * _index_width(table) + 3
    return header + -(-len(table) * per_entry // 8)
