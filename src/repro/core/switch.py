"""The RCU's configurable switch, as explicit interconnect state.

Figure 9 of the paper draws one concrete RCU configuration per dense
data path: which cache ports, FIFOs, PEs and tree taps are wired to
which ALU-row inputs and outputs.  This module makes those
configurations first-class:

* a fixed set of RCU *units* (endpoints the switch can wire),
* one :class:`SwitchConfiguration` (a set of directed connections) per
  data path, transcribed from Figure 9b/c/d,
* a :class:`ConfigurableSwitch` that installs configurations and counts
  the *toggled* connections per switch — the Hamming distance between
  consecutive configurations — which is the physically meaningful
  reconfiguration activity (and what the energy model should charge,
  rather than a flat per-switch constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import ReconfigurationError
from repro.core.config import DataPathType

#: Endpoints the configurable switch can wire together.
UNITS = frozenset({
    "cache_port1",     # x^t (the vector being produced)
    "cache_port2",     # x^{t-1} (the previous iterate)
    "cache_b",         # right-hand side / property vector
    "cache_diag",      # extracted diagonal (SymGS)
    "fifo_a",          # matrix-payload FIFO
    "fifo_b",          # b-operand FIFO
    "link_stack",      # LIFO coupling GEMV partials into D-SymGS
    "alu_in",          # matrix-side ALU-row operand bus
    "alu_vec_in",      # vector-side ALU-row operand bus
    "tree_out",        # reduction-tree output
    "pe_div",
    "pe_sub",
    "pe_add",
    "pe_min",
    "forward_path",    # x_j^t feedback into the operand shift register
    "out_port",        # result write-back port
})

Connection = Tuple[str, str]


def _conn(*pairs: Connection) -> FrozenSet[Connection]:
    for src, dst in pairs:
        if src not in UNITS or dst not in UNITS:
            raise ReconfigurationError(
                f"unknown switch endpoint in ({src!r}, {dst!r})"
            )
    return frozenset(pairs)


@dataclass(frozen=True)
class SwitchConfiguration:
    """One data path's interconnect (a set of directed connections)."""

    datapath: DataPathType
    connections: FrozenSet[Connection]

    def toggles_from(self, other: Optional["SwitchConfiguration"]) -> int:
        """Connections that must change state to get here from
        ``other`` (symmetric difference; from scratch if None)."""
        if other is None:
            return len(self.connections)
        return len(self.connections ^ other.connections)


#: Figure 9b: D-SymGS — the dot-product operands come from the FIFO and
#: the rotating x register (fed by the forward path); the tree output
#: runs through the subtract/divide PEs against b and the diagonal, and
#: the fresh x_j^t re-enters the operand register.
_DSYMGS = SwitchConfiguration(DataPathType.D_SYMGS, _conn(
    ("fifo_a", "alu_in"),
    ("cache_port2", "alu_vec_in"),      # initialisation with x^{t-1}
    ("forward_path", "alu_vec_in"),     # then the shift-in of x^t
    ("link_stack", "pe_add"),           # GEMV partials join the sum
    ("tree_out", "pe_add"),
    ("cache_b", "pe_sub"),
    ("pe_add", "pe_sub"),
    ("pe_sub", "pe_div"),
    ("cache_diag", "pe_div"),
    ("pe_div", "forward_path"),
    ("pe_div", "out_port"),
))

#: Figure 9c: GEMV — pure streaming dot products; partials go to the
#: link stack (SymGS context) or accumulate to the output port.
_GEMV = SwitchConfiguration(DataPathType.GEMV, _conn(
    ("fifo_a", "alu_in"),
    ("cache_port1", "alu_vec_in"),
    ("cache_port2", "alu_vec_in"),
    ("tree_out", "link_stack"),
    ("tree_out", "out_port"),
))

#: Figure 9d: D-PR — the operand is rank/out-degree through the divide
#: PE, reduced by sum, then damped (multiply-add) on write-back.
_DPR = SwitchConfiguration(DataPathType.D_PR, _conn(
    ("fifo_a", "alu_in"),
    ("cache_port1", "pe_div"),          # rank
    ("cache_port2", "pe_div"),          # out-degree
    ("pe_div", "alu_vec_in"),
    ("tree_out", "pe_add"),             # damping update
    ("pe_add", "out_port"),
))

#: D-BFS / D-SSSP: min-plus — the adder row combines dist + weight and
#: the min tree reduces; compare-and-update through the min PE.
_DBFS = SwitchConfiguration(DataPathType.D_BFS, _conn(
    ("fifo_a", "alu_in"),
    ("cache_port1", "alu_vec_in"),
    ("tree_out", "pe_min"),
    ("cache_b", "pe_min"),              # current distance for compare
    ("pe_min", "out_port"),
))

_DSSSP = SwitchConfiguration(DataPathType.D_SSSP, _conn(
    ("fifo_a", "alu_in"),
    ("cache_port1", "alu_vec_in"),
    ("tree_out", "pe_min"),
    ("cache_b", "pe_min"),
    ("pe_min", "out_port"),
))

CONFIGURATIONS: Dict[DataPathType, SwitchConfiguration] = {
    DataPathType.D_SYMGS: _DSYMGS,
    DataPathType.GEMV: _GEMV,
    DataPathType.D_PR: _DPR,
    DataPathType.D_BFS: _DBFS,
    DataPathType.D_SSSP: _DSSSP,
}


@dataclass
class ConfigurableSwitch:
    """Holds the installed configuration and counts toggle activity."""

    current: Optional[SwitchConfiguration] = None
    total_toggles: int = 0
    installs: int = 0
    _history: list = field(default_factory=list, repr=False)

    def install(self, dp: DataPathType) -> int:
        """Install ``dp``'s configuration; returns connections toggled."""
        if dp not in CONFIGURATIONS:
            raise ReconfigurationError(f"no switch configuration for {dp}")
        target = CONFIGURATIONS[dp]
        if self.current is target:
            return 0
        toggles = target.toggles_from(self.current)
        self.current = target
        self.total_toggles += toggles
        self.installs += 1
        self._history.append((dp, toggles))
        return toggles

    @property
    def history(self) -> list:
        return list(self._history)


def switch_distance(a: DataPathType, b: DataPathType) -> int:
    """Connections differing between two data paths' configurations."""
    return CONFIGURATIONS[a].toggles_from(CONFIGURATIONS[b])
