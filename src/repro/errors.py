"""Exception hierarchy for the ALRESCHA reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while tests can
assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class FormatError(ReproError):
    """A sparse-matrix storage format was malformed or misused."""


class ShapeError(FormatError):
    """Operands have incompatible or unsupported shapes."""


class ConfigError(ReproError):
    """An accelerator configuration table or entry is invalid."""


class CapacityError(ConfigError):
    """A device image's resident working set exceeds memory capacity."""


class SimulationError(ReproError):
    """The cycle-level simulation reached an inconsistent state."""


class ReconfigurationError(SimulationError):
    """The RCU was asked to perform an illegal reconfiguration."""


class FaultError(SimulationError):
    """An injected stream fault could not be corrected within the
    configured retry budget."""


class CorruptionError(SimulationError):
    """Payload corruption was detected (checksum, guard, or cross-check
    mismatch) on data that had already left the memory channel."""


class RejectedError(ReproError):
    """The serving runtime refused to admit a job.

    Raised by admission control when the bounded queue is full
    (backpressure) or the job arrived with no cycle budget at all
    (``deadline_cycles <= 0``).  The scheduler converts it into a
    terminal ``REJECTED`` status; it never blocks waiting for room.
    """


class DeadlineError(ReproError):
    """A job's deadline expired, measured in simulated cycles.

    The serving runtime enforces each job's ``deadline_cycles`` against
    the device pool's simulated clock (the same clock
    :class:`~repro.core.report.SimReport` cycles accumulate on); a job
    that cannot complete inside its budget finishes ``TIMEOUT`` instead
    of occupying a device.
    """


class StoreError(ReproError):
    """A content-addressed artifact store operation failed.

    Base class for everything the :mod:`repro.store` layer raises;
    loading code distinguishes :class:`StoreCorruptionError` (damaged
    bytes) from :class:`StoreVersionError` (schema mismatch) so the
    fallback policy can count them separately.
    """


class StoreCorruptionError(StoreError):
    """A stored artifact is structurally damaged or fails a checksum.

    Truncation, bad magic, a CRC mismatch anywhere in the envelope or a
    section, or payload bytes the decoders reject.  Never served: the
    store either raises this or falls back to recompilation, per its
    configured policy.
    """


class StoreVersionError(StoreError):
    """A stored artifact carries an unsupported schema version.

    Artifacts written by a future (or ancient) store schema are refused
    rather than half-parsed — the version check runs before any payload
    is trusted.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge within its budget."""


class DatasetError(ReproError):
    """A dataset could not be generated or looked up."""


class BaselineError(ReproError):
    """A baseline performance/energy model was misconfigured."""
