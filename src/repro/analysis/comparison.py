"""Tables 1 and 2 of the paper, encoded as checkable data.

Table 1 maps each sparse kernel to its three vertex-centric phases and
the dense data path Alrescha lowers it to; Table 2 is the qualitative
feature matrix against the peer accelerators.  Benchmarks assert that
the *implementation* agrees with these tables (e.g. the kernel→data-path
mapping in :mod:`repro.core.config` matches Table 1's column 3).
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import DataPathType, KernelType

#: Table 1: kernel properties and the dense data paths implementing them.
TABLE1: Dict[str, Dict[str, object]] = {
    "symgs": {
        "application": "PDE solving",
        "dense_datapaths": ["d-symgs", "gemv"],
        "phase1_operation": "multiplication",
        "phase2_reduce": "sum",
        "phase3_assign": "apply with A^T and b_j, update vector",
        "operands": ["row of coefficient matrix",
                     "vector from iteration (i-1)",
                     "vector at iteration (i)"],
    },
    "spmv": {
        "application": "PDE solving and graph",
        "dense_datapaths": ["gemv"],
        "phase1_operation": "multiplication",
        "phase2_reduce": "sum",
        "phase3_assign": "sum and update the vector",
        "operands": ["row of coefficient matrix",
                     "vector from iteration (i-1)"],
    },
    "pagerank": {
        "application": "Graph",
        "dense_datapaths": ["d-pr"],
        "phase1_operation": "AND/division",
        "phase2_reduce": "sum",
        "phase3_assign": "rank vector update",
        "operands": ["column of adjacency matrix",
                     "out-degree vector", "rank vector"],
    },
    "bfs": {
        "application": "Graph",
        "dense_datapaths": ["d-bfs"],
        "phase1_operation": "sum",
        "phase2_reduce": "min",
        "phase3_assign": "compare and update distance vector",
        "operands": ["column of adjacency matrix", "frontier vector"],
    },
    "sssp": {
        "application": "Graph",
        "dense_datapaths": ["d-sssp"],
        "phase1_operation": "sum",
        "phase2_reduce": "min",
        "phase3_assign": "compare and update distance vector",
        "operands": ["column of adjacency matrix", "frontier vector"],
    },
}

#: Table 2: qualitative comparison of accelerators.
TABLE2: Dict[str, Dict[str, object]] = {
    "graphr": {
        "domain": "Graph",
        "multi_kernel": False,
        "bw_utilization": "low",
        "no_metadata_transfer": False,
        "reconfigurable": False,
        "storage_format": "4x4 COO",
        "resolves_limited_parallelism": None,
    },
    "outerspace": {
        "domain": "Graph (only SpMV)",
        "multi_kernel": False,
        "bw_utilization": "moderate",
        "no_metadata_transfer": False,
        "reconfigurable": False,  # only for cache hierarchy
        "storage_format": "CSR",
        "resolves_limited_parallelism": None,
    },
    "memristive": {
        "domain": "PDE solver",
        "multi_kernel": False,
        "bw_utilization": "low",
        "no_metadata_transfer": False,
        "reconfigurable": False,
        "storage_format": "multi-size blocks (64..512)",
        "resolves_limited_parallelism": False,
    },
    "row-reordering": {
        "domain": "PDE solver",
        "multi_kernel": False,
        "bw_utilization": "moderate",
        "no_metadata_transfer": False,
        "reconfigurable": None,
        "storage_format": "ELL",
        "resolves_limited_parallelism": True,  # instruction-level, limited
    },
    "alrescha": {
        "domain": "Graph and PDE solver",
        "multi_kernel": True,
        "bw_utilization": "high",
        "no_metadata_transfer": True,
        "reconfigurable": True,
        "storage_format": "8x8 blocking with fine-grained in-block ordering",
        "resolves_limited_parallelism": True,
    },
}

#: The kernel -> default data path mapping Table 1 implies.
KERNEL_DATAPATH_MAPPING = {
    KernelType.SPMV: DataPathType.GEMV,
    KernelType.SYMGS: DataPathType.D_SYMGS,
    KernelType.BFS: DataPathType.D_BFS,
    KernelType.SSSP: DataPathType.D_SSSP,
    KernelType.PAGERANK: DataPathType.D_PR,
}


def implemented_datapaths_for(kernel: KernelType, conversion) -> set:
    """Data-path names a conversion actually emitted, for Table 1 checks."""
    return {entry.dp.value for entry in conversion.table}
