"""Preprocessing amortization (§4's one-time-overhead argument).

"Since the target algorithms are iterative, the preprocessing (i.e.,
conversion and reformatting) is a one-time overhead" — this module
quantifies exactly how one-time it is: host-side conversion cycles
(linear in nnz) against the per-iteration advantage over the GPU, giving
the number of iterations after which the preprocessing has paid for
itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.experiments import alrescha_pcg_iteration
from repro.baselines import GPUModel, MatrixProfile
from repro.core.accelerator import AlreschaConfig
from repro.core.convert import convert
from repro.core.config import KernelType
from repro.errors import BaselineError

#: Host clock for expressing preprocessing cycles in seconds (a
#: Table 4-class Xeon).
HOST_FREQUENCY_HZ = 2.4e9


@dataclass(frozen=True)
class AmortizationResult:
    """Preprocessing cost vs per-iteration savings for one matrix."""

    preprocess_seconds: float
    alrescha_iteration_seconds: float
    gpu_iteration_seconds: float

    @property
    def per_iteration_saving(self) -> float:
        return self.gpu_iteration_seconds - self.alrescha_iteration_seconds

    @property
    def breakeven_iterations(self) -> float:
        """Iterations after which preprocessing has paid for itself."""
        saving = self.per_iteration_saving
        if saving <= 0:
            return float("inf")
        return self.preprocess_seconds / saving

    @property
    def overhead_fraction_at(self) -> float:
        """Preprocessing share of a typical 50-iteration PCG run."""
        run = 50.0 * self.alrescha_iteration_seconds
        total = run + self.preprocess_seconds
        return self.preprocess_seconds / total if total > 0 else 0.0


def pcg_amortization(matrix,
                     config: Optional[AlreschaConfig] = None
                     ) -> AmortizationResult:
    """Amortization of the SymGS+SpMV conversions for a PCG run."""
    profile = MatrixProfile(matrix)
    if profile.n == 0:
        raise BaselineError("empty matrix")
    # Host preprocessing: both kernels' conversions (Algorithm 1 is
    # linear in nnz) plus the reformatting pass over the payload.
    cycles = 0.0
    for kernel in (KernelType.SPMV, KernelType.SYMGS):
        conv = convert(kernel, matrix, omega=8)
        cycles += conv.preprocess_cycles()
        # Writing the reformatted payload once, at host stream rates.
        cycles += conv.matrix.stored_values / 4.0
    preprocess_seconds = cycles / HOST_FREQUENCY_HZ

    t_alr, _report, _backend = alrescha_pcg_iteration(matrix, config)
    t_gpu = GPUModel().pcg_iteration_seconds(profile)
    return AmortizationResult(
        preprocess_seconds=preprocess_seconds,
        alrescha_iteration_seconds=t_alr,
        gpu_iteration_seconds=t_gpu,
    )
