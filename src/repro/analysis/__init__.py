"""Experiment harness, tables and ablations for the paper's evaluation."""

from repro.analysis.amortization import (
    AmortizationResult,
    pcg_amortization,
)
from repro.analysis.energy_breakdown import (
    energy_breakdown,
    spmv_energy_breakdown,
    symgs_energy_breakdown,
)
from repro.analysis.ablations import (
    block_size_sweep,
    reconfiguration_ablation,
    reordering_ablation,
    smoother_ablation,
)
from repro.analysis.roofline import (
    RooflinePoint,
    roofline_summary,
    spmv_roofline,
)
from repro.analysis.sensitivity import (
    bandwidth_sweep,
    cache_sweep,
    dsymgs_latency_sweep,
    omega_bandwidth_matrix,
    precision_sweep,
)
from repro.analysis.dataset_panel import dataset_profiles, panel_diversity
from repro.analysis.comparison import (
    KERNEL_DATAPATH_MAPPING,
    TABLE1,
    TABLE2,
)
from repro.analysis.experiments import (
    GRAPH_SUITE,
    SCIENTIFIC_SUITE,
    alrescha_pcg_iteration,
    alrescha_spmv,
    fig3_pcg_breakdown,
    fig6_hpcg_fraction,
    fig15_pcg_speedup,
    fig16_sequential_fraction,
    fig17_graph_speedup,
    fig18_spmv_speedup,
    fig19_energy,
)
from repro.analysis.parity import full_spmv_comparison, parity_orderings
from repro.analysis.validation import (
    ValidationCase,
    ValidationReport,
    validate,
)
from repro.analysis.tables import (
    arithmetic_mean,
    geometric_mean,
    render_series,
    render_table,
)

__all__ = [
    "GRAPH_SUITE",
    "KERNEL_DATAPATH_MAPPING",
    "SCIENTIFIC_SUITE",
    "TABLE1",
    "TABLE2",
    "alrescha_pcg_iteration",
    "alrescha_spmv",
    "arithmetic_mean",
    "AmortizationResult",
    "energy_breakdown",
    "pcg_amortization",
    "spmv_energy_breakdown",
    "symgs_energy_breakdown",
    "RooflinePoint",
    "bandwidth_sweep",
    "block_size_sweep",
    "cache_sweep",
    "dsymgs_latency_sweep",
    "omega_bandwidth_matrix",
    "precision_sweep",
    "roofline_summary",
    "spmv_roofline",
    "fig15_pcg_speedup",
    "fig16_sequential_fraction",
    "fig17_graph_speedup",
    "fig18_spmv_speedup",
    "fig19_energy",
    "fig3_pcg_breakdown",
    "fig6_hpcg_fraction",
    "geometric_mean",
    "reconfiguration_ablation",
    "render_series",
    "render_table",
    "ValidationCase",
    "ValidationReport",
    "validate",
    "full_spmv_comparison",
    "parity_orderings",
    "dataset_profiles",
    "panel_diversity",
    "reordering_ablation",
    "smoother_ablation",
]
