"""Figure 14: the scientific dataset panel.

The paper's Figure 14 shows the sparsity portraits of its SuiteSparse
suite and argues the evaluation covers "various distributions of
non-zero values".  Our substitute datasets must honour that: this module
profiles every suite matrix and quantifies the spread — block density,
column locality, diagonal-heaviness and Gauss-Seidel depth must span
wide ranges, or the downstream figures would be testing one structure
ten times.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.experiments import SCIENTIFIC_SUITE
from repro.baselines import MatrixProfile
from repro.datasets import load_dataset


def dataset_profiles(datasets: Optional[List[str]] = None,
                     scale: float = 0.1) -> Dict[str, Dict[str, float]]:
    """Structural profile of every suite dataset (Figure 14 panel)."""
    out: Dict[str, Dict[str, float]] = {}
    for name in datasets or SCIENTIFIC_SUITE:
        ds = load_dataset(name, scale=scale)
        profile = MatrixProfile(ds.matrix)
        seq, levels = profile.gpu_seq
        out[name] = {
            "n": float(ds.n),
            "nnz": float(ds.nnz),
            "nnz_per_row": ds.nnz / ds.n,
            "block_density": profile.block_density,
            "column_locality": profile.column_locality,
            "row_imbalance": profile.row_imbalance,
            "gs_levels": float(levels),
            "gpu_seq_fraction": seq,
            "alrescha_seq_fraction": profile.alrescha_seq_fraction,
        }
    return out


def panel_diversity(profiles: Dict[str, Dict[str, float]]
                    ) -> Dict[str, float]:
    """Max/min spread of each structural metric across the panel."""
    def spread(key: str) -> float:
        vals = [p[key] for p in profiles.values() if p[key] > 0]
        if not vals:
            return 1.0
        return max(vals) / min(vals)

    return {
        "block_density_spread": spread("block_density"),
        "locality_spread": spread("column_locality"),
        "nnz_per_row_spread": spread("nnz_per_row"),
        "gs_levels_spread": spread("gs_levels"),
        "gpu_seq_spread": spread("gpu_seq_fraction"),
    }
