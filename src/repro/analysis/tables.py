"""Plain-text rendering of result tables and figure series.

The benchmark harness prints the same rows/series the paper's figures
report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive entries."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def arithmetic_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        return 0.0
    return sum(vals) / len(vals)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table."""
    str_rows: List[List[str]] = [
        [_fmt(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(
            cell.rjust(widths[i]) if _is_numeric(cell) else
            cell.ljust(widths[i])
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


def render_series(series: Dict[str, Dict[str, float]],
                  title: str = "") -> str:
    """Render named series (e.g. speedup per dataset per platform)."""
    datasets = sorted({k for s in series.values() for k in s})
    headers = ["dataset"] + list(series)
    rows = []
    for ds in datasets:
        rows.append([ds] + [series[name].get(ds, float("nan"))
                            for name in series])
    return render_table(headers, rows, title)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False
