"""Grand parity table: Alrescha vs every platform on every dataset.

A capstone view over the whole evaluation: for each dataset, one row
with the SpMV time of every modelled platform (normalised to the GPU)
plus the accelerator's measured utilization figures.  Benchmarks print
it; the CLI exposes it; tests assert its global orderings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.experiments import (
    GRAPH_SUITE,
    SCIENTIFIC_SUITE,
    alrescha_spmv,
)
from repro.baselines import (
    CPUModel,
    GPUModel,
    GraphRModel,
    MatrixProfile,
    MemristiveModel,
    OuterSPACEModel,
)
from repro.core.accelerator import AlreschaConfig
from repro.datasets import load_dataset


def full_spmv_comparison(datasets: Optional[List[str]] = None,
                         scale: float = 0.1,
                         config: Optional[AlreschaConfig] = None
                         ) -> Dict[str, Dict[str, float]]:
    """Per dataset: SpMV speedup over the GPU for every platform.

    Keys per row: cpu, gpu (=1.0), outerspace, graphr, memristive,
    alrescha, plus alrescha_bw_utilization and block_density.
    """
    cpu, gpu = CPUModel(), GPUModel()
    outer, graphr, mem = OuterSPACEModel(), GraphRModel(), \
        MemristiveModel()
    out: Dict[str, Dict[str, float]] = {}
    names = datasets if datasets is not None \
        else SCIENTIFIC_SUITE + GRAPH_SUITE
    for name in names:
        ds = load_dataset(name, scale=scale)
        matrix = ds.matrix if ds.kind == "scientific" \
            else ds.matrix.T.tocsr()
        profile = MatrixProfile(matrix)
        t_gpu = gpu.spmv_seconds(profile)
        t_alr, report = alrescha_spmv(matrix, config)
        out[name] = {
            "kind": 0.0 if ds.kind == "scientific" else 1.0,
            "cpu": t_gpu / cpu.spmv_seconds(profile),
            "gpu": 1.0,
            "outerspace": t_gpu / outer.spmv_seconds(profile),
            "graphr": t_gpu / graphr.spmv_seconds(profile),
            "memristive": t_gpu / mem.spmv_seconds(profile),
            "alrescha": t_gpu / t_alr,
            "alrescha_bw_utilization": report.bandwidth_utilization,
            "block_density": profile.block_density,
        }
    return out


def parity_orderings(table: Dict[str, Dict[str, float]]
                     ) -> Dict[str, float]:
    """Fraction of datasets on which each expected ordering holds."""
    def frac(pred) -> float:
        rows = list(table.values())
        if not rows:
            return 0.0
        return sum(1 for r in rows if pred(r)) / len(rows)

    return {
        "alrescha_beats_gpu": frac(lambda r: r["alrescha"] > r["gpu"]),
        "alrescha_beats_cpu": frac(lambda r: r["alrescha"] > r["cpu"]),
        "alrescha_beats_outerspace": frac(
            lambda r: r["alrescha"] > r["outerspace"]),
        "alrescha_beats_memristive": frac(
            lambda r: r["alrescha"] > r["memristive"]),
        "gpu_beats_cpu": frac(lambda r: r["gpu"] > r["cpu"]),
    }
