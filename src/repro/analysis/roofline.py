"""Roofline analysis: why sparse kernels sit on the bandwidth roof.

The introduction's Figure 6 argument — sparse kernels reach a tiny
fraction of peak FLOPs — is a roofline statement: SpMV's arithmetic
intensity (~2 flops per 12+ streamed bytes) pins it against the memory
roof of every platform, so the *effective* bandwidth (and how much of
it a design wastes on meta-data, padding and gathers) decides
performance.  This module computes the roofline position of each
kernel on each platform model and on the simulated accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.baselines.base import MatrixProfile
from repro.baselines.cpu import CPU_BANDWIDTH, CPU_PEAK_DP_FLOPS, CPUModel
from repro.baselines.gpu import GPU_BANDWIDTH, GPU_PEAK_DP_FLOPS, GPUModel
from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position under a platform's roofline."""

    platform: str
    kernel: str
    arithmetic_intensity: float   # flops per DRAM byte actually moved
    attainable_gflops: float      # min(peak, AI x BW)
    achieved_gflops: float

    @property
    def roof_bound(self) -> str:
        """Which roof caps this point."""
        return "memory" if self.attainable_gflops < 0.999 * 1e30 else "compute"

    @property
    def efficiency(self) -> float:
        """Achieved over attainable."""
        if self.attainable_gflops <= 0:
            return 0.0
        return min(1.0, self.achieved_gflops / self.attainable_gflops)


def _point(platform: str, kernel: str, flops: float, bytes_moved: float,
           seconds: float, peak_flops: float,
           bandwidth: float) -> RooflinePoint:
    ai = flops / bytes_moved if bytes_moved > 0 else 0.0
    attainable = min(peak_flops, ai * bandwidth)
    achieved = flops / seconds if seconds > 0 else 0.0
    return RooflinePoint(platform, kernel, ai, attainable / 1e9,
                         achieved / 1e9)


def spmv_roofline(matrix,
                  config: Optional[AlreschaConfig] = None
                  ) -> Dict[str, RooflinePoint]:
    """SpMV roofline points for CPU, GPU and the simulated Alrescha."""
    profile = MatrixProfile(matrix)
    flops = 2.0 * profile.nnz
    out: Dict[str, RooflinePoint] = {}

    cpu = CPUModel()
    out["cpu"] = _point(
        "cpu", "spmv", flops, cpu.spmv_traffic_bytes(profile),
        cpu.spmv_seconds(profile), CPU_PEAK_DP_FLOPS, CPU_BANDWIDTH,
    )
    gpu = GPUModel()
    out["gpu"] = _point(
        "gpu", "spmv", flops, gpu.spmv_traffic_bytes(profile),
        gpu.spmv_seconds(profile), GPU_PEAK_DP_FLOPS, GPU_BANDWIDTH,
    )
    cfg = config or AlreschaConfig()
    acc = Alrescha.from_matrix(KernelType.SPMV, matrix, config=cfg)
    x = np.random.default_rng(5).normal(size=profile.n)
    _y, report = acc.run_spmv(x)
    # Alrescha's compute peak: the ALU row at the core clock.
    alr_peak = cfg.n_alus * cfg.frequency_hz * 2.0
    out["alrescha"] = _point(
        "alrescha", "spmv", flops, report.streamed_bytes,
        report.seconds, alr_peak, cfg.bandwidth_bytes_per_s,
    )
    return out


def roofline_summary(matrix,
                     config: Optional[AlreschaConfig] = None
                     ) -> Dict[str, Dict[str, float]]:
    """Plain-dict view of :func:`spmv_roofline` for reports/benches."""
    return {
        name: {
            "arithmetic_intensity": p.arithmetic_intensity,
            "attainable_gflops": p.attainable_gflops,
            "achieved_gflops": p.achieved_gflops,
            "efficiency": p.efficiency,
        }
        for name, p in spmv_roofline(matrix, config).items()
    }
