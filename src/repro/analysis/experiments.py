"""Experiment harness: one function per paper table/figure.

Each function measures the quantities a figure plots, over the same
dataset suites the paper uses (synthetic analogues from
:mod:`repro.datasets`), and returns plain dictionaries the benchmarks
assert on and the examples print.  The Alrescha side is *simulated*
(functional + timed execution); the comparison platforms come from the
behavioural models in :mod:`repro.baselines`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.tables import arithmetic_mean, geometric_mean
from repro.baselines import (
    CPUModel,
    GPUModel,
    GraphRModel,
    MatrixProfile,
    MemristiveModel,
    OuterSPACEModel,
)
from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.datasets import load_dataset, out_degrees
from repro.graph import run_bfs, run_pagerank, run_sssp
from repro.solvers import AcceleratorBackend

#: Default dataset suites (paper Figure 14 / Table 3 analogues).
SCIENTIFIC_SUITE = [
    "stencil27", "parabolic_fem", "thermal2", "apache2", "af_shell",
    "offshore", "scircuit", "memplus", "economics", "chem_master",
]
GRAPH_SUITE = [
    "com-orkut", "hollywood-2009", "kron-g500-logn21", "roadNet-CA",
    "LiveJournal", "Youtube", "Pokec", "sx-stackoverflow",
]


@dataclass
class ExperimentRow:
    """One dataset's worth of measurements for a figure."""

    dataset: str
    values: Dict[str, float] = field(default_factory=dict)


def _rng(seed: int = 1234) -> np.random.Generator:
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------
# Alrescha-side measurement helpers
# ---------------------------------------------------------------------
def alrescha_pcg_iteration(matrix,
                           config: Optional[AlreschaConfig] = None):
    """Simulate one PCG iteration's kernels on the accelerator.

    Returns (seconds, report, backend) — one SpMV, one symmetric SymGS
    application and the six vector kernels of the Figure 2 loop.
    """
    backend = AcceleratorBackend(matrix, config=config)
    x = _rng().normal(size=backend.n)
    r = _rng(99).normal(size=backend.n)
    backend.spmv(x)
    backend.precondition(r)
    for _ in range(6):
        backend.vector_op()
    report = backend.report()
    return report.seconds, report, backend


def alrescha_spmv(matrix, config: Optional[AlreschaConfig] = None):
    """Simulate one SpMV; returns (seconds, report)."""
    acc = Alrescha.from_matrix(KernelType.SPMV, matrix, config=config)
    x = _rng().normal(size=acc.n)
    _y, report = acc.run_spmv(x)
    return report.seconds, report


# ---------------------------------------------------------------------
# Figure 3: PCG execution-time breakdown (SymGS + SpMV dominate)
# ---------------------------------------------------------------------
def fig3_pcg_breakdown(dataset: str = "stencil27",
                       scale: float = 0.15) -> Dict[str, Dict[str, float]]:
    """Kernel shares of one PCG iteration on the GPU baseline and on
    Alrescha.  The paper's observation: SymGS + SpMV dominate."""
    matrix = load_dataset(dataset, scale=scale).matrix
    profile = MatrixProfile(matrix)
    gpu = GPUModel()
    gpu_parts = {
        "symgs": 2.0 * gpu.symgs_sweep_seconds(profile),
        "spmv": gpu.spmv_seconds(profile),
        "vector": 6.0 * gpu.vector_kernel_seconds(profile),
    }
    gpu_total = sum(gpu_parts.values())
    _secs, _rep, backend = alrescha_pcg_iteration(matrix)
    cycles = backend.kernel_breakdown()
    alr_total = sum(cycles.values())
    return {
        "gpu": {k: v / gpu_total for k, v in gpu_parts.items()},
        "alrescha": {k: v / alr_total for k, v in cycles.items()},
    }


# ---------------------------------------------------------------------
# Figure 6: HPCG achieves a tiny fraction of peak on CPUs/GPUs
# ---------------------------------------------------------------------
def fig6_hpcg_fraction(datasets: Optional[List[str]] = None,
                       scale: float = 0.15) -> Dict[str, Dict[str, float]]:
    """Fraction-of-peak FLOPs for the PCG iteration, per platform."""
    cpu, gpu = CPUModel(), GPUModel()
    out: Dict[str, Dict[str, float]] = {"cpu": {}, "gpu": {}}
    for name in datasets or SCIENTIFIC_SUITE:
        profile = MatrixProfile(load_dataset(name, scale=scale).matrix)
        out["cpu"][name] = cpu.hpcg_fraction_of_peak(profile)
        out["gpu"][name] = gpu.hpcg_fraction_of_peak(profile)
    return out


# ---------------------------------------------------------------------
# Figure 15: PCG speedup over GPU + bandwidth utilization
# ---------------------------------------------------------------------
def fig15_pcg_speedup(datasets: Optional[List[str]] = None,
                      scale: float = 0.15,
                      config: Optional[AlreschaConfig] = None
                      ) -> Dict[str, Dict[str, float]]:
    """Per scientific dataset: Alrescha and Memristive speedups over the
    GPU PCG, plus both accelerators' bandwidth utilization."""
    gpu, mem = GPUModel(), MemristiveModel()
    speedup_alr: Dict[str, float] = {}
    speedup_mem: Dict[str, float] = {}
    bw_alr: Dict[str, float] = {}
    bw_mem: Dict[str, float] = {}
    for name in datasets or SCIENTIFIC_SUITE:
        matrix = load_dataset(name, scale=scale).matrix
        profile = MatrixProfile(matrix)
        t_gpu = gpu.pcg_iteration_seconds(profile)
        t_mem = mem.pcg_iteration_seconds(profile)
        t_alr, report, _backend = alrescha_pcg_iteration(matrix, config)
        speedup_alr[name] = t_gpu / t_alr
        speedup_mem[name] = t_gpu / t_mem
        bw_alr[name] = report.bandwidth_utilization
        bw_mem[name] = mem.bandwidth_utilization(profile)
    return {
        "alrescha_speedup": speedup_alr,
        "memristive_speedup": speedup_mem,
        "alrescha_bw_utilization": bw_alr,
        "memristive_bw_utilization": bw_mem,
        "summary": {
            "alrescha_mean": arithmetic_mean(speedup_alr.values()),
            "memristive_mean": arithmetic_mean(speedup_mem.values()),
            "alrescha_over_memristive": arithmetic_mean(
                speedup_alr[k] / speedup_mem[k] for k in speedup_alr
            ),
        },
    }


# ---------------------------------------------------------------------
# Figure 16: sequential-operation reduction
# ---------------------------------------------------------------------
def fig16_sequential_fraction(datasets: Optional[List[str]] = None,
                              scale: float = 0.15,
                              omega: int = 8
                              ) -> Dict[str, Dict[str, float]]:
    """Percentage of sequential operations: GPU row-reordering baseline
    vs Alrescha's GEMV/D-SymGS decomposition."""
    gpu_frac: Dict[str, float] = {}
    alr_frac: Dict[str, float] = {}
    for name in datasets or SCIENTIFIC_SUITE:
        matrix = load_dataset(name, scale=scale).matrix
        profile = MatrixProfile(matrix, omega=omega)
        gpu_frac[name], _levels = profile.gpu_seq
        alr_frac[name] = profile.alrescha_seq_fraction
    return {
        "gpu": gpu_frac,
        "alrescha": alr_frac,
        "summary": {
            "gpu_mean": arithmetic_mean(gpu_frac.values()),
            "alrescha_mean": arithmetic_mean(alr_frac.values()),
        },
    }


# ---------------------------------------------------------------------
# Figure 17: graph-algorithm speedups over the CPU
# ---------------------------------------------------------------------
_GRAPH_RUNNERS = {
    "bfs": lambda adj, cfg: run_bfs(adj, 0, config=cfg),
    "sssp": lambda adj, cfg: run_sssp(adj, 0, config=cfg),
    "pagerank": lambda adj, cfg: run_pagerank(adj, tol=1e-7, config=cfg),
}


def fig17_graph_speedup(datasets: Optional[List[str]] = None,
                        algorithms: Optional[List[str]] = None,
                        scale: float = 0.15,
                        config: Optional[AlreschaConfig] = None
                        ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Speedup of GPU, GraphR and Alrescha over the CPU, per algorithm
    and dataset."""
    cpu, gpu, graphr = CPUModel(), GPUModel(), GraphRModel()
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for alg in algorithms or ["bfs", "sssp", "pagerank"]:
        rows: Dict[str, Dict[str, float]] = {
            "gpu": {}, "graphr": {}, "alrescha": {}
        }
        for name in datasets or GRAPH_SUITE:
            ds = load_dataset(name, scale=scale)
            adj = ds.matrix
            if alg == "sssp" and not ds.weighted:
                weighted = adj.copy()
                weighted.data = 1.0 + (np.arange(weighted.nnz) % 7
                                       ).astype(np.float64)
                adj_run = weighted
            else:
                adj_run = adj
            profile = MatrixProfile(adj_run.T.tocsr())
            result = _GRAPH_RUNNERS[alg](adj_run, config)
            t_alr = result.report.seconds
            passes = result.iterations
            # Work-efficient CPU/GPU: BFS/SSSP are single logical
            # traversals; PR pays one pass per iteration.
            framework_passes = passes if alg == "pagerank" else 1
            t_cpu = cpu.graph_pass_seconds(profile, alg) * framework_passes
            t_gpu = gpu.graph_pass_seconds(profile, alg) * framework_passes
            # GraphR processes blocks synchronously, like Alrescha.
            t_graphr = graphr.graph_pass_seconds(profile, alg) * passes
            rows["gpu"][name] = t_cpu / t_gpu
            rows["graphr"][name] = t_cpu / t_graphr
            rows["alrescha"][name] = t_cpu / t_alr
        rows["summary"] = {
            "gpu_mean": arithmetic_mean(rows["gpu"].values()),
            "graphr_mean": arithmetic_mean(rows["graphr"].values()),
            "alrescha_mean": arithmetic_mean(rows["alrescha"].values()),
        }
        out[alg] = rows
    return out


# ---------------------------------------------------------------------
# Figure 18: SpMV speedup over GPU + cache-access time share
# ---------------------------------------------------------------------
def fig18_spmv_speedup(scientific: Optional[List[str]] = None,
                       graph: Optional[List[str]] = None,
                       scale: float = 0.15,
                       config: Optional[AlreschaConfig] = None
                       ) -> Dict[str, Dict[str, float]]:
    """SpMV on both suites: Alrescha and OuterSPACE speedups over the
    GPU, plus cache-time fractions (the Figure 18 line series)."""
    gpu, outer = GPUModel(), OuterSPACEModel()
    speedup_alr: Dict[str, float] = {}
    speedup_os: Dict[str, float] = {}
    cache_alr: Dict[str, float] = {}
    cache_os: Dict[str, float] = {}
    kind: Dict[str, str] = {}
    sci = scientific if scientific is not None else SCIENTIFIC_SUITE
    gra = graph if graph is not None else GRAPH_SUITE
    for name in list(sci) + list(gra):
        ds = load_dataset(name, scale=scale)
        matrix = ds.matrix if ds.kind == "scientific" \
            else ds.matrix.T.tocsr()
        profile = MatrixProfile(matrix)
        t_gpu = gpu.spmv_seconds(profile)
        t_os = outer.spmv_seconds(profile)
        t_alr, report = alrescha_spmv(matrix, config)
        speedup_alr[name] = t_gpu / t_alr
        speedup_os[name] = t_gpu / t_os
        cache_alr[name] = report.cache_time_fraction
        cache_os[name] = outer.cache_time_fraction(profile)
        kind[name] = ds.kind
    sci_vals = [v for k, v in speedup_alr.items() if kind[k] == "scientific"]
    gra_vals = [v for k, v in speedup_alr.items() if kind[k] == "graph"]
    return {
        "alrescha_speedup": speedup_alr,
        "outerspace_speedup": speedup_os,
        "alrescha_cache_fraction": cache_alr,
        "outerspace_cache_fraction": cache_os,
        "summary": {
            "alrescha_scientific_mean": arithmetic_mean(sci_vals),
            "alrescha_graph_mean": arithmetic_mean(gra_vals),
            "alrescha_over_outerspace": arithmetic_mean(
                speedup_alr[k] / speedup_os[k] for k in speedup_alr
            ),
        },
    }


# ---------------------------------------------------------------------
# Figure 19: energy improvement over CPU and GPU
# ---------------------------------------------------------------------
def fig19_energy(datasets: Optional[List[str]] = None,
                 scale: float = 0.15,
                 config: Optional[AlreschaConfig] = None
                 ) -> Dict[str, Dict[str, float]]:
    """SpMV energy: Alrescha improvement factors vs CPU and GPU."""
    cpu, gpu = CPUModel(), GPUModel()
    vs_cpu: Dict[str, float] = {}
    vs_gpu: Dict[str, float] = {}
    names = datasets if datasets is not None \
        else SCIENTIFIC_SUITE + GRAPH_SUITE
    for name in names:
        ds = load_dataset(name, scale=scale)
        matrix = ds.matrix if ds.kind == "scientific" \
            else ds.matrix.T.tocsr()
        profile = MatrixProfile(matrix)
        _t, report = alrescha_spmv(matrix, config)
        e_alr = report.energy_j
        vs_cpu[name] = cpu.spmv_energy(profile) / e_alr
        vs_gpu[name] = gpu.spmv_energy(profile) / e_alr
    return {
        "vs_cpu": vs_cpu,
        "vs_gpu": vs_gpu,
        "summary": {
            "vs_cpu_mean": arithmetic_mean(vs_cpu.values()),
            "vs_gpu_mean": arithmetic_mean(vs_gpu.values()),
            "vs_cpu_gmean": geometric_mean(vs_cpu.values()),
            "vs_gpu_gmean": geometric_mean(vs_gpu.values()),
        },
    }
