"""Energy breakdown by component (§5.4's discussion, quantified).

The paper attributes Alrescha's 74x/14x energy advantage to three
sources: the small reconfigurable fabric, the locally-dense format (no
meta-data decode) and fewer cache/memory accesses.  This module splits a
simulated kernel's energy into named components so those claims are
inspectable: DRAM streaming, compute (ALU/RE/PE), SRAM (cache+buffers),
configuration, and static leakage.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.core.report import SimReport

#: Component grouping of the energy-model event names.
COMPONENT_OF_EVENT = {
    "alu_op": "compute",
    "re_op": "compute",
    "pe_op": "compute",
    "cache_reads": "sram",
    "cache_writes": "sram",
    "cache_writebacks": "sram",
    "dram_bytes": "dram",
    "config_write": "configuration",
    "switch_toggle": "configuration",
}


def energy_breakdown(report: SimReport,
                     config: Optional[AlreschaConfig] = None
                     ) -> Dict[str, float]:
    """Joules per component for one simulation report."""
    cfg = config or AlreschaConfig()
    model = cfg.energy_model
    by_event = model.breakdown_pj(report.counters)
    out: Dict[str, float] = {
        "dram": 0.0, "compute": 0.0, "sram": 0.0,
        "configuration": 0.0, "buffers": 0.0,
    }
    for event, pj in by_event.items():
        tail = event.rsplit(".", 1)[-1]
        if tail.endswith(("_pushes", "_pops")):
            out["buffers"] += pj * 1e-12
            continue
        component = COMPONENT_OF_EVENT.get(tail)
        if component is not None:
            out[component] += pj * 1e-12
    out["static"] = model.static_power_w * report.seconds
    return out


def spmv_energy_breakdown(matrix,
                          config: Optional[AlreschaConfig] = None
                          ) -> Dict[str, float]:
    """Per-component energy of one SpMV over ``matrix``."""
    acc = Alrescha.from_matrix(KernelType.SPMV, matrix, config=config)
    x = np.random.default_rng(3).normal(size=acc.n)
    _y, report = acc.run_spmv(x)
    return energy_breakdown(report, config)


def symgs_energy_breakdown(matrix,
                           config: Optional[AlreschaConfig] = None
                           ) -> Dict[str, float]:
    """Per-component energy of one SymGS sweep over ``matrix``."""
    acc = Alrescha.from_matrix(KernelType.SYMGS, matrix, config=config)
    rng = np.random.default_rng(5)
    _x, report = acc.run_symgs_sweep(rng.normal(size=acc.n),
                                     np.zeros(acc.n))
    return energy_breakdown(report, config)
