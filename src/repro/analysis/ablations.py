"""Ablation studies for the design choices DESIGN.md calls out.

* **Block size** (§5.2): the paper examined ω in {8, 16, 32} and chose 8
  as "a balance between the opportunity for parallelism and the number
  of non-zero values" — i.e. between per-block parallel work and the
  zero-padding streamed per block.
* **Data-path reordering** (§4.1): running all GEMVs of a block row
  before its D-SymGS minimises data-path switches.
* **Reconfiguration hiding** (§4.4): the RCU switch reconfigures during
  the reduction-tree drain; exposing it instead shows what "lightweight"
  buys.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.core.convert import convert


def block_size_sweep(matrix, omegas: Optional[List[int]] = None,
                     kernel: KernelType = KernelType.SYMGS
                     ) -> Dict[int, Dict[str, float]]:
    """Streamed payload, block density and simulated sweep time per ω."""
    out: Dict[int, Dict[str, float]] = {}
    n = matrix.shape[0]
    rng = np.random.default_rng(7)
    b = rng.normal(size=n)
    x = rng.normal(size=n)
    for omega in omegas or [8, 16, 32]:
        config = AlreschaConfig(omega=omega, n_alus=max(16, omega))
        conv = convert(kernel, matrix, omega=omega)
        acc = Alrescha(config)
        acc.program(conv)
        row: Dict[str, float] = {
            "blocks": float(conv.matrix.n_blocks),
            "streamed_slots": float(conv.matrix.stored_values),
            "block_density": conv.matrix.block_density,
            "table_entries": float(len(conv.table)),
            "table_bits": float(conv.table.total_bits()),
        }
        if kernel is KernelType.SYMGS:
            _x, report = acc.run_symgs_sweep(b, x)
            row["sweep_cycles"] = report.cycles
            row["sequential_fraction"] = report.sequential_fraction
        else:
            _y, report = acc.run_spmv(x)
            row["spmv_cycles"] = report.cycles
        out[omega] = row
    return out


def reordering_ablation(matrix, omega: int = 8) -> Dict[str, Dict[str, float]]:
    """Switch counts and sweep cycles with and without Algorithm 1's
    data-path reordering."""
    n = matrix.shape[0]
    rng = np.random.default_rng(11)
    b = rng.normal(size=n)
    x = rng.normal(size=n)
    out: Dict[str, Dict[str, float]] = {}
    for label, reorder in (("reordered", True), ("natural", False)):
        conv = convert(KernelType.SYMGS, matrix, omega=omega,
                       reorder=reorder)
        # Expose reconfiguration fully so ordering differences show up
        # in time, not only in switch counts.
        config = AlreschaConfig(omega=omega,
                                hide_reconfig_under_drain=False)
        acc = Alrescha(config)
        acc.program(conv)
        x_new, report = acc.run_symgs_sweep(b, x)
        out[label] = {
            "switches": float(conv.switch_count),
            "sweep_cycles": report.cycles,
            "exposed_reconfig_cycles": report.exposed_reconfig_cycles,
            "checksum": float(np.sum(x_new)),
        }
    return out


def reconfiguration_ablation(matrix,
                             omega: int = 8) -> Dict[str, Dict[str, float]]:
    """SymGS sweep with reconfiguration hidden under the tree drain
    (the paper's design) vs fully exposed."""
    n = matrix.shape[0]
    rng = np.random.default_rng(13)
    b = rng.normal(size=n)
    x = rng.normal(size=n)
    out: Dict[str, Dict[str, float]] = {}
    for label, hide in (("hidden", True), ("exposed", False)):
        config = AlreschaConfig(omega=omega,
                                hide_reconfig_under_drain=hide)
        acc = Alrescha.from_matrix(KernelType.SYMGS, matrix, config=config)
        _x, report = acc.run_symgs_sweep(b, x)
        out[label] = {
            "sweep_cycles": report.cycles,
            "exposed_reconfig_cycles": report.exposed_reconfig_cycles,
        }
    return out


def smoother_ablation(matrix, tol: float = 1e-8,
                      max_iter: int = 300) -> Dict[str, Dict[str, float]]:
    """PCG iteration counts with the SymGS smoother vs Jacobi vs none.

    Shows why the paper accelerates SymGS rather than replacing it with
    an embarrassingly parallel smoother: SymGS converges in the fewest
    iterations, so resolving its dependencies is worth hardware support.
    """
    from repro.solvers import JacobiBackend, ReferenceBackend, cg, pcg

    n = matrix.shape[0]
    b = np.random.default_rng(17).normal(size=n)
    out: Dict[str, Dict[str, float]] = {}
    res_gs = pcg(ReferenceBackend(matrix), b, tol=tol, max_iter=max_iter)
    out["symgs"] = {"iterations": float(res_gs.iterations),
                    "converged": float(res_gs.converged)}
    res_j = pcg(JacobiBackend(matrix), b, tol=tol, max_iter=max_iter)
    out["jacobi"] = {"iterations": float(res_j.iterations),
                     "converged": float(res_j.converged)}
    res_cg = cg(ReferenceBackend(matrix), b, tol=tol, max_iter=max_iter)
    out["none"] = {"iterations": float(res_cg.iterations),
                   "converged": float(res_cg.converged)}
    return out
