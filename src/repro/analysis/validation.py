"""Cross-validation harness: accelerator vs golden, everywhere.

Runs every kernel on every (or a chosen subset of) registered dataset
and compares the accelerated result to its golden implementation,
producing a machine-checkable validation report.  Used by the test
suite and by ``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.datasets import list_datasets, load_dataset
from repro.graph import (
    bfs_reference,
    pagerank_reference,
    run_bfs,
    run_pagerank,
    run_sssp,
    sssp_reference,
)
from repro.kernels import forward_sweep_vectorized


@dataclass
class ValidationCase:
    """One (kernel, dataset) comparison."""

    kernel: str
    dataset: str
    passed: bool
    max_error: float
    detail: str = ""


@dataclass
class ValidationReport:
    """All comparisons of one validation run."""

    cases: List[ValidationCase] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.cases)

    @property
    def n_passed(self) -> int:
        return sum(1 for c in self.cases if c.passed)

    def summary(self) -> str:
        lines = [f"{self.n_passed}/{len(self.cases)} validations passed"]
        for c in self.cases:
            mark = "ok " if c.passed else "FAIL"
            lines.append(
                f"  [{mark}] {c.kernel:9s} {c.dataset:20s} "
                f"max_err={c.max_error:.2e} {c.detail}"
            )
        return "\n".join(lines)


def _finite_equal(a: np.ndarray, b: np.ndarray, atol: float) -> float:
    """Max abs difference treating inf==inf as equal."""
    a2 = np.nan_to_num(a, posinf=1e300)
    b2 = np.nan_to_num(b, posinf=1e300)
    return float(np.abs(a2 - b2).max()) if a2.size else 0.0


def validate(scale: float = 0.05,
             datasets: Optional[List[str]] = None,
             config: Optional[AlreschaConfig] = None,
             atol: float = 1e-8) -> ValidationReport:
    """Run the full accelerator-vs-golden comparison matrix."""
    report = ValidationReport()
    rng = np.random.default_rng(123)
    sci = datasets or list_datasets("scientific")
    gra = datasets or list_datasets("graph")

    for name in sci:
        ds = load_dataset(name, scale=scale)
        if ds.kind != "scientific":
            continue
        a = ds.matrix
        n = a.shape[0]
        x = rng.normal(size=n)
        b = rng.normal(size=n)
        # SpMV.
        acc = Alrescha.from_matrix(KernelType.SPMV, a, config=config)
        y, _ = acc.run_spmv(x)
        err = _finite_equal(y, a @ x, atol)
        report.cases.append(ValidationCase(
            "spmv", name, err <= atol, err))
        # SymGS sweep.
        acc = Alrescha.from_matrix(KernelType.SYMGS, a, config=config)
        x1, _ = acc.run_symgs_sweep(b, x)
        expected = forward_sweep_vectorized(a, b, x)
        err = _finite_equal(x1, expected, atol)
        report.cases.append(ValidationCase(
            "symgs", name, err <= atol, err))

    for name in gra:
        ds = load_dataset(name, scale=scale)
        if ds.kind != "graph":
            continue
        adj = ds.matrix
        # BFS.
        result = run_bfs(adj, 0, config=config)
        expected = bfs_reference((adj != 0).astype(float), 0)
        err = _finite_equal(result.values, expected, atol)
        report.cases.append(ValidationCase(
            "bfs", name, err <= atol, err,
            detail=f"{result.iterations} passes"))
        # SSSP (synthesise weights for unweighted graphs).
        if ds.weighted:
            weighted = adj
        else:
            weighted = adj.copy()
            weighted.data = 1.0 + (np.arange(weighted.nnz) % 7
                                   ).astype(np.float64)
        result = run_sssp(weighted, 0, config=config)
        expected = sssp_reference(weighted, 0)
        err = _finite_equal(result.values, expected, atol)
        report.cases.append(ValidationCase(
            "sssp", name, err <= atol, err,
            detail=f"{result.iterations} passes"))
        # PageRank.
        result = run_pagerank(adj, tol=1e-10, config=config)
        expected = pagerank_reference(adj, tol=1e-10)
        err = _finite_equal(result.values, expected, max(atol, 1e-7))
        report.cases.append(ValidationCase(
            "pagerank", name, err <= max(atol, 1e-7), err,
            detail=f"{result.iterations} iters"))
    return report
