"""Sensitivity studies: how the design responds to resource scaling.

The conclusion of the paper claims Alrescha "enables using
high-bandwidth memory at low-cost": because the streaming data paths
are memory-bound and the dependent D-SymGS chain is the only
latency-bound component, SpMV-class kernels scale almost linearly with
bandwidth while SymGS saturates at the dependency chain.  These sweeps
quantify that, plus the cache-size and D-SymGS-latency sensitivities.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType

#: Default bandwidth sweep: half, Table 5's 288 GB/s, HBM-class points.
DEFAULT_BANDWIDTHS = (144e9, 288e9, 576e9, 1152e9)


def bandwidth_sweep(matrix,
                    bandwidths: Optional[List[float]] = None
                    ) -> Dict[float, Dict[str, float]]:
    """SpMV and SymGS-sweep time across memory bandwidths.

    Returns per-bandwidth cycles for both kernels plus the speedup each
    kernel gains relative to the slowest point — SpMV's should track
    the bandwidth ratio, SymGS's should saturate.
    """
    n = matrix.shape[0]
    rng = np.random.default_rng(21)
    x = rng.normal(size=n)
    b = rng.normal(size=n)
    out: Dict[float, Dict[str, float]] = {}
    for bw in bandwidths or DEFAULT_BANDWIDTHS:
        # Scale the ALU row with the channel so the sweep isolates the
        # memory system (at 2x+ bandwidth the default 16-lane row would
        # itself become the bottleneck).
        lanes = max(16, int(np.ceil(bw / 2.5e9 / 8.0)))
        config = AlreschaConfig(bandwidth_bytes_per_s=bw, n_alus=lanes)
        spmv_acc = Alrescha.from_matrix(KernelType.SPMV, matrix,
                                        config=config)
        _y, spmv_rep = spmv_acc.run_spmv(x)
        gs_acc = Alrescha.from_matrix(KernelType.SYMGS, matrix,
                                      config=config)
        _x1, gs_rep = gs_acc.run_symgs_sweep(b, x)
        out[bw] = {
            "spmv_cycles": spmv_rep.cycles,
            "symgs_cycles": gs_rep.cycles,
            "spmv_bw_utilization": spmv_rep.bandwidth_utilization,
            "symgs_sequential_fraction": gs_rep.sequential_fraction,
        }
    base = min(out)
    for bw, row in out.items():
        row["spmv_speedup_vs_base"] = \
            out[base]["spmv_cycles"] / row["spmv_cycles"]
        row["symgs_speedup_vs_base"] = \
            out[base]["symgs_cycles"] / row["symgs_cycles"]
    return out


def cache_sweep(matrix,
                sizes: Optional[List[int]] = None
                ) -> Dict[int, Dict[str, float]]:
    """SpMV behaviour across RCU cache sizes (Table 5 default: 1 KB)."""
    n = matrix.shape[0]
    x = np.random.default_rng(23).normal(size=n)
    out: Dict[int, Dict[str, float]] = {}
    for size in sizes or [256, 1024, 4096, 16384]:
        config = AlreschaConfig(cache_bytes=size)
        acc = Alrescha.from_matrix(KernelType.SPMV, matrix, config=config)
        _y, report = acc.run_spmv(x)
        hits = report.counters.get("cache_hits")
        misses = report.counters.get("cache_misses")
        total = hits + misses
        out[size] = {
            "cycles": report.cycles,
            "hit_rate": hits / total if total else 0.0,
            "streamed_bytes": report.streamed_bytes,
            "energy_j": report.energy_j,
        }
    return out


def dsymgs_latency_sweep(matrix,
                         latencies: Optional[List[int]] = None
                         ) -> Dict[int, Dict[str, float]]:
    """SymGS-sweep cost across the D-SymGS forwarding-step latency.

    The step latency is the one microarchitectural parameter the paper
    leaves implicit (§4.2's shift-register forwarding); this sweep shows
    how strongly the dependent chain gates the whole kernel.
    """
    n = matrix.shape[0]
    rng = np.random.default_rng(29)
    b = rng.normal(size=n)
    x = rng.normal(size=n)
    out: Dict[int, Dict[str, float]] = {}
    for lat in latencies or [1, 2, 4, 8, 16]:
        config = AlreschaConfig(dsymgs_step_latency=lat)
        acc = Alrescha.from_matrix(KernelType.SYMGS, matrix, config=config)
        _x1, report = acc.run_symgs_sweep(b, x)
        out[lat] = {
            "sweep_cycles": report.cycles,
            "sequential_fraction": report.sequential_fraction,
        }
    return out


def omega_bandwidth_matrix(matrix,
                           omegas: Optional[List[int]] = None,
                           bandwidths: Optional[List[float]] = None
                           ) -> Dict[int, Dict[float, float]]:
    """SymGS sweep cycles over the (ω, bandwidth) grid — shows how the
    best block width shifts as bandwidth grows (bigger blocks stream
    more padding, which cheap bandwidth forgives)."""
    n = matrix.shape[0]
    rng = np.random.default_rng(31)
    b = rng.normal(size=n)
    x = rng.normal(size=n)
    out: Dict[int, Dict[float, float]] = {}
    for omega in omegas or [8, 16]:
        row: Dict[float, float] = {}
        for bw in bandwidths or [144e9, 288e9, 576e9]:
            config = AlreschaConfig(omega=omega, n_alus=max(16, omega),
                                    bandwidth_bytes_per_s=bw)
            acc = Alrescha.from_matrix(KernelType.SYMGS, matrix,
                                       config=config)
            _x1, report = acc.run_symgs_sweep(b, x)
            row[bw] = report.cycles
        out[omega] = row
    return out


def precision_sweep(matrix) -> Dict[int, Dict[str, float]]:
    """SpMV traffic/energy at 8-byte vs 4-byte stored elements.

    An extension study (the paper is double-precision throughout,
    Table 5): numerics stay fp64, only the streamed element width
    changes — isolating the memory-system benefit of a lower-precision
    deployment.
    """
    n = matrix.shape[0]
    x = np.random.default_rng(37).normal(size=n)
    out: Dict[int, Dict[str, float]] = {}
    for width in (8, 4):
        config = AlreschaConfig(element_bytes=width)
        acc = Alrescha.from_matrix(KernelType.SPMV, matrix, config=config)
        _y, report = acc.run_spmv(x)
        out[width] = {
            "cycles": report.cycles,
            "streamed_bytes": report.streamed_bytes,
            "energy_j": report.energy_j,
            "bandwidth_utilization": report.bandwidth_utilization,
        }
    return out
