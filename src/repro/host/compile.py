"""Compile sparse kernels into shippable accelerator artefacts.

``compile_kernel`` runs Algorithm 1 and serialises the result into the
two binaries of Figure 7 — the program (configuration table) and the
device memory image (stream-ordered payload).  ``load_kernel`` /
``program_accelerator`` perform the inverse: reconstruct the conversion
from bytes and program a fresh :class:`~repro.core.accelerator.Alrescha`
that produces bit-identical results to one programmed directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.binary import decode_program, encode_program
from repro.core.config import KernelType
from repro.core.convert import ConversionResult, convert
from repro.core.device_image import decode_image, encode_image
from repro.errors import ConfigError
from repro.formats import BCSRMatrix


@dataclass(frozen=True)
class CompiledKernel:
    """A serialised (program, image) pair plus identifying metadata."""

    kernel: KernelType
    n: int
    omega: int
    nnz: int
    reordered: bool
    program: bytes
    image: bytes

    @property
    def total_bytes(self) -> int:
        return len(self.program) + len(self.image)

    def save(self, prefix: str) -> Tuple[Path, Path]:
        """Write ``<prefix>.prog`` and ``<prefix>.img``; returns paths."""
        prog_path = Path(f"{prefix}.prog")
        img_path = Path(f"{prefix}.img")
        prog_path.write_bytes(self.program)
        img_path.write_bytes(self.image)
        return prog_path, img_path


def compile_kernel(kernel: KernelType, matrix, omega: int = 8,
                   reorder: bool = True) -> CompiledKernel:
    """Run Algorithm 1 and serialise the outcome."""
    conv = convert(kernel, matrix, omega=omega, reorder=reorder)
    return CompiledKernel(
        kernel=kernel,
        n=conv.table.n,
        omega=omega,
        nnz=conv.bcsr.nnz,
        reordered=conv.reordered,
        program=encode_program(kernel, conv.table),
        image=encode_image(conv.matrix),
    )


def load_kernel(prefix: str) -> CompiledKernel:
    """Read ``<prefix>.prog`` + ``<prefix>.img`` back into an artefact."""
    prog_path = Path(f"{prefix}.prog")
    img_path = Path(f"{prefix}.img")
    if not prog_path.exists() or not img_path.exists():
        raise ConfigError(
            f"missing compiled artefacts {prog_path} / {img_path}"
        )
    program = prog_path.read_bytes()
    image = img_path.read_bytes()
    kernel, table = decode_program(program)
    matrix = decode_image(image)
    return CompiledKernel(
        kernel=kernel,
        n=table.n,
        omega=matrix.omega,
        nnz=matrix.nnz,
        reordered=True,
        program=program,
        image=image,
    )


def program_accelerator(compiled: CompiledKernel,
                        config: Optional[AlreschaConfig] = None
                        ) -> Alrescha:
    """Reconstruct the conversion from bytes and program a device."""
    kernel, table = decode_program(compiled.program)
    matrix = decode_image(compiled.image)
    if kernel is not compiled.kernel:
        raise ConfigError(
            f"artefact metadata ({compiled.kernel}) disagrees with the "
            f"program binary ({kernel})"
        )
    # Rebuild the BCSR view (used for useful-byte accounting and
    # preprocessing-cost estimates) from the reconstructed matrix.
    bcsr = BCSRMatrix.from_dense(matrix.to_dense(), matrix.omega)
    conv = ConversionResult(
        kernel=kernel,
        omega=matrix.omega,
        table=table,
        matrix=matrix,
        bcsr=bcsr,
        reordered=compiled.reordered,
    )
    acc = Alrescha(config or AlreschaConfig(omega=matrix.omega))
    acc.program(conv)
    return acc
