"""Host-side toolchain (Figure 7's left half).

The host owns the one-time work: running Algorithm 1, reformatting the
matrix, serialising both, and writing them through the program and data
interfaces.  :func:`compile_kernel` packages all of it into a
:class:`CompiledKernel` artefact that can be saved to disk, shipped, and
re-loaded into a fresh accelerator with bit-identical behaviour.
"""

from repro.host.compile import (
    CompiledKernel,
    compile_kernel,
    load_kernel,
    program_accelerator,
)

__all__ = [
    "CompiledKernel",
    "compile_kernel",
    "load_kernel",
    "program_accelerator",
]
