"""Diagonal (DIA) storage format.

DIA stores whole (shifted) diagonals; the only meta-data is one offset
per stored diagonal.  §4.5: "when all the non-zeros are located in
diagonals, the diagonal format, which stores the non-zeros sequentially,
could be the best option" — the low end of the Figure 12 spectrum, at the
cost of exploding for scattered sparsity patterns.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat, index_bits
from repro.formats.coo import COOMatrix


class DIAMatrix(SparseFormat):
    """DIA matrix: ``offsets`` plus a ``(n_diags, n_cols)`` value plane.

    Diagonal ``k`` holds elements ``A[i, i + k]``, stored at column
    ``i + k`` of its row in the value plane (scipy's convention, which
    keeps the column coordinate the in-plane index).
    """

    name = "DIA"

    def __init__(self, shape: Tuple[int, int], offsets: np.ndarray,
                 data: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if offsets.ndim != 1 or data.ndim != 2:
            raise FormatError("offsets must be 1-D and data 2-D")
        if data.shape[0] != offsets.size:
            raise FormatError("one data row required per offset")
        if data.shape[1] != shape[1]:
            raise FormatError("data plane width must equal matrix columns")
        if np.unique(offsets).size != offsets.size:
            raise FormatError("duplicate diagonal offsets")
        self._shape = (int(shape[0]), int(shape[1]))
        self.offsets = offsets
        self.data = data

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "DIAMatrix":
        n_rows, n_cols = coo.shape
        if coo.nnz == 0:
            return cls(coo.shape, np.zeros(0, np.int64),
                       np.zeros((0, n_cols), np.float64))
        diffs = coo.cols - coo.rows
        offsets = np.unique(diffs)
        data = np.zeros((offsets.size, n_cols), dtype=np.float64)
        positions = np.searchsorted(offsets, diffs)
        data[positions, coo.cols] = coo.vals
        return cls(coo.shape, offsets, data)

    @classmethod
    def from_dense(cls, dense) -> "DIAMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def n_diagonals(self) -> int:
        return int(self.offsets.size)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.data))

    @property
    def stored_slots(self) -> int:
        """All value slots, including in-diagonal zero padding."""
        n_rows, n_cols = self._shape
        total = 0
        for k in self.offsets:
            k = int(k)
            if k >= 0:
                total += max(0, min(n_rows, n_cols - k))
            else:
                total += max(0, min(n_rows + k, n_cols))
        return total

    def to_dense(self) -> np.ndarray:
        n_rows, n_cols = self._shape
        dense = np.zeros(self._shape, dtype=np.float64)
        for d, k in enumerate(self.offsets):
            k = int(k)
            for i in range(n_rows):
                j = i + k
                if 0 <= j < n_cols:
                    dense[i, j] = self.data[d, j]
        return dense

    def metadata_bits(self) -> int:
        """One signed offset per stored diagonal — nothing per value."""
        offset_bits = index_bits(self._shape[0] + self._shape[1]) + 1
        return self.n_diagonals * offset_bits

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        n_rows, n_cols = self._shape
        y = np.zeros(n_rows, dtype=np.float64)
        for d, k in enumerate(self.offsets):
            k = int(k)
            i_lo = max(0, -k)
            i_hi = min(n_rows, n_cols - k)
            if i_hi <= i_lo:
                continue
            j = np.arange(i_lo + k, i_hi + k)
            y[i_lo:i_hi] += self.data[d, j] * x[j]
        return y
