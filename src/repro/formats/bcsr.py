"""Blocked CSR (BCSR) storage format.

BCSR "assigns the column indices and row pointers to blocks of non-zero
values" (§4.5) — the right meta-data budget for matrices with spatial
locality, and the starting point of the Alrescha format (Figure 13),
which keeps BCSR's meta-data cost but reorders blocks and in-block values
to match the compute order.

Blocks are ω x ω and dense (explicit zeros inside a non-empty block are
stored); matrices whose dimensions are not multiples of ω are logically
zero-padded.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat, index_bits
from repro.formats.coo import COOMatrix


class BCSRMatrix(SparseFormat):
    """Blocked-CSR matrix with square dense blocks of width ``omega``."""

    name = "BCSR"

    def __init__(self, shape: Tuple[int, int], omega: int,
                 block_indptr: np.ndarray, block_cols: np.ndarray,
                 blocks: np.ndarray) -> None:
        if omega <= 0:
            raise FormatError(f"block width must be positive, got {omega}")
        block_indptr = np.asarray(block_indptr, dtype=np.int64)
        block_cols = np.asarray(block_cols, dtype=np.int64)
        blocks = np.asarray(blocks, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        n_block_rows = -(-n_rows // omega)
        n_block_cols = -(-n_cols // omega)
        if block_indptr.size != n_block_rows + 1:
            raise FormatError(
                f"block_indptr must have {n_block_rows + 1} entries"
            )
        if block_indptr[0] != 0 or np.any(np.diff(block_indptr) < 0):
            raise FormatError("block_indptr must start at 0, non-decreasing")
        if blocks.ndim != 3 or blocks.shape[1:] != (omega, omega):
            raise FormatError(
                f"blocks must be (n, {omega}, {omega}), got {blocks.shape}"
            )
        if block_cols.size != blocks.shape[0]:
            raise FormatError("one column index required per block")
        if int(block_indptr[-1]) != blocks.shape[0]:
            raise FormatError("block_indptr[-1] must equal block count")
        if block_cols.size and (
            block_cols.min() < 0 or block_cols.max() >= n_block_cols
        ):
            raise FormatError("block column index out of range")
        self._shape = (n_rows, n_cols)
        self.omega = int(omega)
        self.block_indptr = block_indptr
        self.block_cols = block_cols
        self.blocks = blocks

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, omega: int) -> "BCSRMatrix":
        if omega <= 0:
            raise FormatError(f"block width must be positive, got {omega}")
        n_rows, n_cols = coo.shape
        n_block_rows = -(-n_rows // omega)
        br = coo.rows // omega
        bc = coo.cols // omega
        # Group non-zeros by (block-row, block-col); COO order is already
        # row-major so a lexsort on (bc, br) yields block-row-major order.
        order = np.lexsort((bc, br))
        br_s, bc_s = br[order], bc[order]
        rows_s, cols_s, vals_s = (
            coo.rows[order], coo.cols[order], coo.vals[order]
        )
        n_block_cols = -(-n_cols // omega)
        keys = br_s * n_block_cols + bc_s
        uniq_keys, starts = np.unique(keys, return_index=True)
        n_blocks = uniq_keys.size
        blocks = np.zeros((n_blocks, omega, omega), dtype=np.float64)
        block_of_nnz = np.searchsorted(uniq_keys, keys)
        blocks[
            block_of_nnz, rows_s % omega, cols_s % omega
        ] = vals_s
        block_rows = (uniq_keys // n_block_cols).astype(np.int64)
        block_cols_arr = (uniq_keys % n_block_cols).astype(np.int64)
        counts = np.bincount(block_rows, minlength=n_block_rows)
        block_indptr = np.zeros(n_block_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=block_indptr[1:])
        return cls(coo.shape, omega, block_indptr, block_cols_arr, blocks)

    @classmethod
    def from_dense(cls, dense, omega: int) -> "BCSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), omega)

    @classmethod
    def from_scipy(cls, matrix, omega: int) -> "BCSRMatrix":
        return cls.from_coo(COOMatrix.from_scipy(matrix), omega)

    # ------------------------------------------------------------------
    # SparseFormat API
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def n_block_rows(self) -> int:
        return self.block_indptr.size - 1

    @property
    def n_block_cols(self) -> int:
        return -(-self._shape[1] // self.omega)

    @property
    def n_blocks(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def nnz(self) -> int:
        """True non-zeros (in-block explicit zeros excluded)."""
        return int(np.count_nonzero(self.blocks))

    @property
    def stored_values(self) -> int:
        """All stored slots: blocks are dense, zeros included."""
        return self.n_blocks * self.omega * self.omega

    @property
    def block_density(self) -> float:
        """Mean fill of non-empty blocks — drives streamed-payload waste
        and the "percentage of non-zero values in a block rarely reaches
        a hundred percent" bandwidth-utilization effect of Figure 15."""
        if not self.n_blocks:
            return 0.0
        return self.nnz / self.stored_values

    def to_dense(self) -> np.ndarray:
        n_rows, n_cols = self._shape
        w = self.omega
        padded = np.zeros((self.n_block_rows * w, self.n_block_cols * w))
        for i in range(self.n_block_rows):
            lo, hi = int(self.block_indptr[i]), int(self.block_indptr[i + 1])
            for k in range(lo, hi):
                j = int(self.block_cols[k])
                padded[i * w:(i + 1) * w, j * w:(j + 1) * w] = self.blocks[k]
        return padded[:n_rows, :n_cols]

    def metadata_bits(self) -> int:
        """A block-column index per block + a pointer per block row."""
        col_bits = index_bits(self.n_block_cols)
        ptr_bits = index_bits(max(self.n_blocks, 1) + 1)
        return self.n_blocks * col_bits \
            + (self.n_block_rows + 1) * ptr_bits

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        w = self.omega
        xp = np.zeros(self.n_block_cols * w, dtype=np.float64)
        xp[: x.size] = x
        yp = np.zeros(self.n_block_rows * w, dtype=np.float64)
        for i in range(self.n_block_rows):
            lo, hi = int(self.block_indptr[i]), int(self.block_indptr[i + 1])
            acc = np.zeros(w, dtype=np.float64)
            for k in range(lo, hi):
                j = int(self.block_cols[k])
                acc += self.blocks[k] @ xp[j * w:(j + 1) * w]
            yp[i * w:(i + 1) * w] = acc
        return yp[: self._shape[0]]

    # ------------------------------------------------------------------
    # Block access, used by the conversion algorithm
    # ------------------------------------------------------------------
    def block_row(self, i: int) -> List[Tuple[int, np.ndarray]]:
        """``[(block column, block values)]`` of block-row ``i``."""
        lo, hi = int(self.block_indptr[i]), int(self.block_indptr[i + 1])
        return [
            (int(self.block_cols[k]), self.blocks[k]) for k in range(lo, hi)
        ]

    def block_map(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Mapping of ``(block row, block col) -> block values``."""
        out: Dict[Tuple[int, int], np.ndarray] = {}
        for i in range(self.n_block_rows):
            for j, blk in self.block_row(i):
                out[(i, j)] = blk
        return out

    def diagonal_block_nnz(self) -> int:
        """Non-zeros living in diagonal blocks — the operand of the
        sequential D-SymGS data paths (Figure 16's Alrescha series)."""
        total = 0
        for i in range(self.n_block_rows):
            for j, blk in self.block_row(i):
                if i == j:
                    total += int(np.count_nonzero(blk))
        return total
