"""The Alrescha locally-dense storage format (§4.5, Figure 13).

The format adapts BCSR with three changes, each dictated by the compute
order of the dense data paths:

* **Order of blocks** — all non-diagonal non-zero blocks of a block-row
  are stored together, followed by that row's diagonal block.  This is
  the reordering that lets the accelerator run every GEMV of a block-row
  back-to-back and only then switch (once) to the dependent D-SymGS.
* **Order of values** — the values of non-diagonal blocks in the *upper*
  triangle are stored with their columns reversed ("the opposite order of
  their original locations"), because the D-SymGS pipeline inserts newly
  produced ``x_j^t`` values by shifting the multiplier operands right, so
  the live ``x^t`` chunk sits in reversed order.
* **Diagonal elements** — for SymGS, the main diagonal of ``A`` is
  excluded from the diagonal blocks and stored separately (it is consumed
  by the PE divide, not the dot-product stream).

Meta-data (block indices = ``Inx_in``/``Inx_out``) is *not* streamed at
runtime; it lives in the configuration table written once at programming
time, so the full memory bandwidth carries payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat, index_bits
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix


@dataclass(frozen=True)
class StreamBlock:
    """One locally-dense block, in stream order.

    ``values`` holds the block exactly as laid out in memory: for
    reversed blocks this is the column-flipped image of the original
    block, and for SymGS diagonal blocks the main diagonal has been
    zeroed out (it lives in :attr:`AlreschaMatrix.diagonal` instead).
    """

    block_row: int
    block_col: int
    is_diagonal: bool
    reversed_cols: bool
    values: np.ndarray

    @property
    def original_values(self) -> np.ndarray:
        """The block as it appears in the source matrix (diag still
        excluded for SymGS diagonal blocks)."""
        if self.reversed_cols:
            return self.values[:, ::-1]
        return self.values


class AlreschaMatrix(SparseFormat):
    """Locally-dense Alrescha storage of a square sparse matrix."""

    name = "Alrescha"

    def __init__(self, shape: Tuple[int, int], omega: int,
                 stream: List[StreamBlock], diagonal: np.ndarray | None,
                 symgs_layout: bool) -> None:
        self._shape = (int(shape[0]), int(shape[1]))
        self.omega = int(omega)
        self._stream = list(stream)
        self.diagonal = diagonal
        self.symgs_layout = bool(symgs_layout)
        if symgs_layout and diagonal is None:
            raise FormatError("SymGS layout requires the extracted diagonal")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bcsr(cls, bcsr: BCSRMatrix,
                  symgs_layout: bool = False) -> "AlreschaMatrix":
        """Reformat a BCSR matrix into Alrescha stream order.

        ``symgs_layout=True`` applies all three format changes (block
        reordering with diagonal-last, upper-block column reversal, and
        diagonal extraction).  With ``False`` — the layout used by SpMV
        and the graph kernels — blocks keep BCSR's in-row order and only
        the meta-data-free streaming property applies.
        """
        n_rows, n_cols = bcsr.shape
        if symgs_layout and n_rows != n_cols:
            raise FormatError("SymGS layout requires a square matrix")
        stream: List[StreamBlock] = []
        diagonal = None
        if symgs_layout:
            diagonal = np.zeros(n_rows, dtype=np.float64)
        w = bcsr.omega
        for i in range(bcsr.n_block_rows):
            non_diag: List[StreamBlock] = []
            diag_block: StreamBlock | None = None
            for j, blk in bcsr.block_row(i):
                if symgs_layout and j == i:
                    body = blk.copy()
                    d = np.diag(body).copy()
                    lo = i * w
                    diagonal[lo: lo + min(w, n_rows - lo)] = \
                        d[: min(w, n_rows - lo)]
                    np.fill_diagonal(body, 0.0)
                    diag_block = StreamBlock(i, j, True, False, body)
                elif symgs_layout and j > i:
                    # Upper-triangle block: store columns reversed.
                    non_diag.append(
                        StreamBlock(i, j, False, True, blk[:, ::-1].copy())
                    )
                else:
                    non_diag.append(
                        StreamBlock(i, j, False, False, blk.copy())
                    )
            stream.extend(non_diag)
            if diag_block is not None:
                stream.append(diag_block)
            elif symgs_layout:
                # SymGS needs a diagonal data path per block row even if
                # the source block was empty (diag values may still be
                # implicit zeros -> the solve would be singular; callers
                # validate).  Only create it when the block row is not
                # entirely absent from the matrix.
                if non_diag:
                    stream.append(StreamBlock(
                        i, i, True, False, np.zeros((w, w))
                    ))
        return cls(bcsr.shape, bcsr.omega, stream, diagonal, symgs_layout)

    @classmethod
    def from_coo(cls, coo: COOMatrix, omega: int,
                 symgs_layout: bool = False) -> "AlreschaMatrix":
        return cls.from_bcsr(BCSRMatrix.from_coo(coo, omega), symgs_layout)

    @classmethod
    def from_dense(cls, dense, omega: int,
                   symgs_layout: bool = False) -> "AlreschaMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), omega, symgs_layout)

    # ------------------------------------------------------------------
    # Stream access
    # ------------------------------------------------------------------
    def stream(self) -> Iterator[StreamBlock]:
        """Blocks in the exact order they stream from memory."""
        return iter(self._stream)

    def payload(self) -> np.ndarray:
        """The 1-D value stream as laid out in physical memory."""
        if not self._stream:
            return np.zeros(0, dtype=np.float64)
        return np.concatenate([b.values.ravel() for b in self._stream])

    @property
    def payload_bytes(self) -> int:
        """Bytes streamed per pass over the matrix (8 B doubles)."""
        return self.n_blocks * self.omega * self.omega * 8

    @property
    def n_blocks(self) -> int:
        return len(self._stream)

    @property
    def n_block_rows(self) -> int:
        return -(-self._shape[0] // self.omega)

    @property
    def n_diagonal_blocks(self) -> int:
        return sum(1 for b in self._stream if b.is_diagonal)

    # ------------------------------------------------------------------
    # SparseFormat API
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        in_blocks = int(sum(np.count_nonzero(b.values) for b in self._stream))
        if self.diagonal is not None:
            in_blocks += int(np.count_nonzero(self.diagonal))
        return in_blocks

    @property
    def stored_values(self) -> int:
        """Streamed slots per pass (dense blocks, zeros included)."""
        return self.n_blocks * self.omega * self.omega

    @property
    def block_density(self) -> float:
        if not self.n_blocks:
            return 0.0
        return self.nnz / max(1, self.stored_values +
                              (self._shape[0] if self.diagonal is not None
                               else 0))

    def to_dense(self) -> np.ndarray:
        w = self.omega
        n_rows, n_cols = self._shape
        nbr = -(-n_rows // w)
        nbc = -(-n_cols // w)
        padded = np.zeros((nbr * w, nbc * w), dtype=np.float64)
        for b in self._stream:
            padded[
                b.block_row * w:(b.block_row + 1) * w,
                b.block_col * w:(b.block_col + 1) * w,
            ] += b.original_values
        dense = padded[:n_rows, :n_cols]
        if self.diagonal is not None:
            dense = dense.copy()
            idx = np.arange(min(n_rows, n_cols))
            dense[idx, idx] += self.diagonal[: idx.size]
        return dense

    def metadata_bits(self) -> int:
        """Same budget as BCSR: a block index per block + row pointers.

        The crucial difference is *where* the bits live: they are written
        once into the configuration table (``Inx_in``/``Inx_out``) during
        programming and never streamed with the payload.
        """
        col_bits = index_bits(-(-self._shape[1] // self.omega))
        ptr_bits = index_bits(max(self.n_blocks, 1) + 1)
        return self.n_blocks * col_bits + (self.n_block_rows + 1) * ptr_bits

    def runtime_metadata_bits(self) -> int:
        """Meta-data streamed alongside payload at runtime: none."""
        return 0

    def block_rows(self) -> Iterator[Tuple[int, List[StreamBlock]]]:
        """Group the stream by block-row, preserving stream order."""
        current: List[StreamBlock] = []
        current_row: int | None = None
        for b in self._stream:
            if current_row is None or b.block_row == current_row:
                current.append(b)
                current_row = b.block_row
            else:
                yield current_row, current
                current = [b]
                current_row = b.block_row
        if current_row is not None:
            yield current_row, current
