"""ELLPACK-ITPACK (ELL) storage format.

ELL pads every row to the maximum row length and stores a column index
for every slot, padding included.  §4.5: "ELL is used for implementing
SymGS in GPUs.  However, such a format does not provide enough flexibility
for parallelizing rows because it does not sustain the locality across
rows."  The GPU baseline (Table 4) uses ELL, so its meta-data and padding
overheads feed the GPU timing model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat, index_bits
from repro.formats.coo import COOMatrix

#: Column-index value marking a padded (unused) ELL slot.
PAD = -1


class ELLMatrix(SparseFormat):
    """ELL matrix: dense ``(n_rows, width)`` value and index planes."""

    name = "ELL"

    def __init__(self, shape: Tuple[int, int], col_index: np.ndarray,
                 values: np.ndarray) -> None:
        col_index = np.asarray(col_index, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if col_index.shape != values.shape or col_index.ndim != 2:
            raise FormatError("col_index and values must be equal-shape 2-D")
        if col_index.shape[0] != shape[0]:
            raise FormatError("plane height must equal matrix rows")
        if col_index.size:
            valid = col_index != PAD
            if valid.any():
                used = col_index[valid]
                if used.min() < 0 or used.max() >= shape[1]:
                    raise FormatError("column index out of range")
        self._shape = (int(shape[0]), int(shape[1]))
        self.col_index = col_index
        self.values = values

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "ELLMatrix":
        n_rows, n_cols = coo.shape
        counts = np.bincount(coo.rows, minlength=n_rows)
        width = int(counts.max()) if counts.size and counts.max() else 0
        col_index = np.full((n_rows, width), PAD, dtype=np.int64)
        values = np.zeros((n_rows, width), dtype=np.float64)
        slot = np.zeros(n_rows, dtype=np.int64)
        for r, c, v in zip(coo.rows, coo.cols, coo.vals):
            col_index[r, slot[r]] = c
            values[r, slot[r]] = v
            slot[r] += 1
        return cls(coo.shape, col_index, values)

    @classmethod
    def from_dense(cls, dense) -> "ELLMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def width(self) -> int:
        """Padded row width (maximum non-zeros in any row)."""
        return int(self.col_index.shape[1])

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.col_index != PAD))

    @property
    def padding_ratio(self) -> float:
        """Padded slots as a fraction of all slots (wasted stream)."""
        total = self.col_index.size
        if not total:
            return 0.0
        return 1.0 - self.nnz / total

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        rows, slots = np.nonzero(self.col_index != PAD)
        dense[rows, self.col_index[rows, slots]] = self.values[rows, slots]
        return dense

    def metadata_bits(self) -> int:
        """A column index per *slot* — padding slots carry indices too."""
        return self.col_index.size * index_bits(self._shape[1])

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        gathered = np.where(
            self.col_index != PAD,
            np.asarray(x)[np.clip(self.col_index, 0, None)],
            0.0,
        )
        return (self.values * gathered).sum(axis=1)
