"""Compressed sparse column (CSC) storage format.

The column-major mirror of CSR.  The paper's kernels index columns of
``A^T`` (Equations 1-2), i.e. rows of ``A``; a CSC view of ``A`` gives
exactly those columns without materialising the transpose, which is how
the graph drivers' access pattern ("a column of the adjacency matrix",
Table 1) maps onto storage.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat, index_bits
from repro.formats.coo import COOMatrix


class CSCMatrix(SparseFormat):
    """Compressed sparse column matrix."""

    name = "CSC"

    def __init__(self, shape: Tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.size != n_cols + 1:
            raise FormatError(
                f"indptr must have {n_cols + 1} entries, got {indptr.size}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must start at 0 and be non-decreasing")
        if indices.shape != data.shape or indices.ndim != 1:
            raise FormatError("indices and data must be equal-length 1-D")
        if int(indptr[-1]) != indices.size:
            raise FormatError("indptr[-1] must equal nnz")
        if indices.size and (indices.min() < 0 or indices.max() >= n_rows):
            raise FormatError("row index out of range")
        self._shape = (n_rows, n_cols)
        self.indptr = indptr
        self.indices = indices
        self.data = data

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        n_rows, n_cols = coo.shape
        order = np.lexsort((coo.rows, coo.cols))
        rows = coo.rows[order]
        cols = coo.cols[order]
        vals = coo.vals[order]
        counts = np.bincount(cols, minlength=n_cols)
        indptr = np.zeros(n_cols + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(coo.shape, indptr, rows, vals)

    @classmethod
    def from_dense(cls, dense) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        cols = np.repeat(np.arange(self._shape[1]), np.diff(self.indptr))
        dense[self.indices, cols] = self.data
        return dense

    def metadata_bits(self) -> int:
        """A row index per non-zero plus one pointer per column."""
        row_bits = index_bits(self._shape[0])
        ptr_bits = index_bits(max(self.nnz, 1) + 1)
        return self.nnz * row_bits + (self._shape[1] + 1) * ptr_bits

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        y = np.zeros(self._shape[0], dtype=np.float64)
        cols = np.repeat(np.arange(self._shape[1]), np.diff(self.indptr))
        np.add.at(y, self.indices, self.data * x[cols])
        return y

    def column(self, j: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row indices, values)`` of column ``j``."""
        lo, hi = int(self.indptr[j]), int(self.indptr[j + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def transpose_view_as_csr(self):
        """The transpose as a CSR matrix, sharing array semantics."""
        from repro.formats.csr import CSRMatrix
        return CSRMatrix(
            (self._shape[1], self._shape[0]),
            self.indptr.copy(), self.indices.copy(), self.data.copy(),
        )
