"""Common machinery for sparse-matrix storage formats.

Every format in :mod:`repro.formats` is written from scratch (scipy is
used by callers to *build* matrices, never to represent them here) and
answers the two questions the paper cares about:

1. the functional content — ``to_dense()`` / ``spmv()`` round-trips, and
2. the meta-data cost — ``metadata_bits()``, the quantity behind the
   storage-format spectrum of Figure 12 ("meta-data per non-zero").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from repro.errors import ShapeError


def index_bits(extent: int) -> int:
    """Bits required to address ``extent`` distinct positions.

    A 1-element extent still needs one bit in a real encoding, so the
    result is at least 1 for positive extents.
    """
    if extent <= 0:
        return 0
    return max(1, math.ceil(math.log2(extent))) if extent > 1 else 1


def as_dense(matrix) -> np.ndarray:
    """Coerce a dense array / scipy matrix / SparseFormat to ndarray."""
    if isinstance(matrix, SparseFormat):
        return matrix.to_dense()
    if hasattr(matrix, "toarray"):  # scipy.sparse
        return np.asarray(matrix.toarray(), dtype=np.float64)
    return np.asarray(matrix, dtype=np.float64)


class SparseFormat(ABC):
    """Abstract base for the storage formats implemented in this package."""

    #: Human-readable name used in Figure-12 style reports.
    name: str = "abstract"

    @property
    @abstractmethod
    def shape(self) -> Tuple[int, int]:
        """``(rows, cols)`` of the represented matrix."""

    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored non-zero values."""

    @abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialise the matrix as a dense ``float64`` array."""

    @abstractmethod
    def metadata_bits(self) -> int:
        """Total bits of meta-data (indices, pointers, offsets).

        Payload bits (the values themselves) are excluded; Figure 12
        compares formats by meta-data per non-zero.
        """

    def metadata_bits_per_nnz(self) -> float:
        """Meta-data bits divided by stored non-zeros (Figure 12 metric)."""
        if self.nnz == 0:
            return 0.0
        return self.metadata_bits() / self.nnz

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Reference sparse matrix-vector product ``A @ x``.

        Formats override this with an implementation that follows their
        own layout; the base implementation goes through the dense form
        and exists so every format is at least functionally complete.
        """
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        return self.to_dense() @ x

    def _check_vector(self, x: np.ndarray) -> None:
        if x.ndim != 1 or x.shape[0] != self.shape[1]:
            raise ShapeError(
                f"operand of shape {x.shape} incompatible with matrix "
                f"{self.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        r, c = self.shape
        return (f"{type(self).__name__}(shape=({r}, {c}), nnz={self.nnz}, "
                f"meta={self.metadata_bits_per_nnz():.2f} b/nnz)")
