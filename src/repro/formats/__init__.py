"""Sparse-matrix storage formats, all implemented from scratch.

COO, CSR, ELL, DIA and BCSR are the classical formats the paper surveys
in §4.5 / Figure 12; :class:`AlreschaMatrix` is the paper's locally-dense
format with compute-ordered blocks, reversed upper blocks and an
extracted diagonal.
"""

from repro.formats.alrescha import AlreschaMatrix, StreamBlock
from repro.formats.base import SparseFormat, as_dense, index_bits
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix, blocked_coo_metadata_bits
from repro.formats.csc import CSCMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix, PAD
from repro.formats.hyb import HYBMatrix
from repro.formats.metadata import DEFAULT_OMEGA, format_survey

__all__ = [
    "AlreschaMatrix",
    "BCSRMatrix",
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "DIAMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "PAD",
    "SparseFormat",
    "StreamBlock",
    "DEFAULT_OMEGA",
    "as_dense",
    "blocked_coo_metadata_bits",
    "format_survey",
    "index_bits",
]
