"""Compressed sparse row (CSR) storage format.

CSR "locates all the non-zeros independently" (§4.5): a column index per
non-zero plus a row-pointer array.  It is the format OuterSPACE consumes
(Table 2) and the baseline against which the Alrescha format's zero
runtime meta-data is contrasted.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat, index_bits
from repro.formats.coo import COOMatrix


class CSRMatrix(SparseFormat):
    """Compressed sparse row matrix built from our own arrays."""

    name = "CSR"

    def __init__(self, shape: Tuple[int, int], indptr: np.ndarray,
                 indices: np.ndarray, data: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.size != n_rows + 1:
            raise FormatError(
                f"indptr must have {n_rows + 1} entries, got {indptr.size}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise FormatError("indptr must start at 0 and be non-decreasing")
        if indices.shape != data.shape or indices.ndim != 1:
            raise FormatError("indices and data must be equal-length 1-D")
        if int(indptr[-1]) != indices.size:
            raise FormatError("indptr[-1] must equal nnz")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise FormatError("column index out of range")
        self._shape = (n_rows, n_cols)
        self.indptr = indptr
        self.indices = indices
        self.data = data

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        n_rows, n_cols = coo.shape
        counts = np.bincount(coo.rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # COOMatrix triples are already in row-major order.
        return cls(coo.shape, indptr, coo.cols.copy(), coo.vals.copy())

    @classmethod
    def from_dense(cls, dense) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    @classmethod
    def from_scipy(cls, matrix) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_scipy(matrix))

    # ------------------------------------------------------------------
    # SparseFormat API
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        rows = np.repeat(
            np.arange(self._shape[0]), np.diff(self.indptr)
        )
        dense[rows, self.indices] = self.data
        return dense

    def metadata_bits(self) -> int:
        """A column index per non-zero plus one pointer per row."""
        col_bits = index_bits(self._shape[1])
        ptr_bits = index_bits(max(self.nnz, 1) + 1)
        return self.nnz * col_bits + (self._shape[0] + 1) * ptr_bits

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        products = self.data * x[self.indices]
        y = np.zeros(self._shape[0], dtype=np.float64)
        # reduceat needs non-empty segments; mask out empty rows.
        starts = self.indptr[:-1]
        nonempty = np.diff(self.indptr) > 0
        if products.size:
            sums = np.add.reduceat(products, starts[nonempty])
            y[nonempty] = sums
        return y

    # ------------------------------------------------------------------
    # Row access, used by kernels and baseline models
    # ------------------------------------------------------------------
    def row(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(column indices, values)`` of row ``i``."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def row_nnz(self) -> np.ndarray:
        """Non-zeros per row, as an int array of length n_rows."""
        return np.diff(self.indptr)

    def diagonal(self) -> np.ndarray:
        """Main-diagonal values (zeros where absent)."""
        n = min(self._shape)
        diag = np.zeros(n, dtype=np.float64)
        for i in range(n):
            cols, vals = self.row(i)
            hit = np.nonzero(cols == i)[0]
            if hit.size:
                diag[i] = vals[hit[0]]
        return diag

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self._shape[0]), np.diff(self.indptr))
        return COOMatrix(self._shape, rows, self.indices, self.data)

    def transpose(self) -> "CSRMatrix":
        return CSRMatrix.from_coo(self.to_coo().transpose())
