"""HYB (hybrid ELL + COO) storage format.

cuSPARSE's answer to ELL's padding blow-up on skewed matrices: rows up
to a width threshold live in a regular ELL plane; the long tail
overflows into COO triples.  The GPU baseline's ELL-vs-CSR selection
brackets this; HYB is provided as the faithful middle point and for the
Figure 12 spectrum's completeness.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix


def _default_width(row_counts: np.ndarray) -> int:
    """cuSPARSE-style heuristic: cover ~the mean row, cap the tail."""
    if row_counts.size == 0:
        return 0
    mean = float(row_counts.mean())
    return max(1, int(np.ceil(mean)))


class HYBMatrix(SparseFormat):
    """Hybrid ELL + COO matrix."""

    name = "HYB"

    def __init__(self, ell: ELLMatrix, overflow: COOMatrix) -> None:
        if ell.shape != overflow.shape:
            raise FormatError(
                f"ELL part {ell.shape} and COO part {overflow.shape} differ"
            )
        self.ell = ell
        self.overflow = overflow

    @classmethod
    def from_coo(cls, coo: COOMatrix,
                 ell_width: int | None = None) -> "HYBMatrix":
        n_rows, n_cols = coo.shape
        counts = np.bincount(coo.rows, minlength=n_rows)
        width = ell_width if ell_width is not None \
            else _default_width(counts)
        if width < 0:
            raise FormatError(f"ELL width must be non-negative, got {width}")
        from repro.formats.ell import PAD
        col_index = np.full((n_rows, width), PAD, dtype=np.int64)
        values = np.zeros((n_rows, width), dtype=np.float64)
        slot = np.zeros(n_rows, dtype=np.int64)
        ov_r, ov_c, ov_v = [], [], []
        for r, c, v in zip(coo.rows, coo.cols, coo.vals):
            if slot[r] < width:
                col_index[r, slot[r]] = c
                values[r, slot[r]] = v
                slot[r] += 1
            else:
                ov_r.append(r)
                ov_c.append(c)
                ov_v.append(v)
        ell = ELLMatrix(coo.shape, col_index, values)
        overflow = COOMatrix(coo.shape, np.asarray(ov_r, np.int64),
                             np.asarray(ov_c, np.int64),
                             np.asarray(ov_v, np.float64))
        return cls(ell, overflow)

    @classmethod
    def from_dense(cls, dense, ell_width: int | None = None) -> "HYBMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), ell_width)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.ell.shape

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.overflow.nnz

    @property
    def overflow_fraction(self) -> float:
        """Share of non-zeros living in the COO tail."""
        total = self.nnz
        return self.overflow.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        return self.ell.to_dense() + self.overflow.to_dense()

    def metadata_bits(self) -> int:
        return self.ell.metadata_bits() + self.overflow.metadata_bits()

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        return self.ell.spmv(x) + self.overflow.spmv(x)
