"""Coordinate (COO) storage format.

COO stores one ``(row, col, value)`` triple per non-zero.  It is the
interchange format of this package: every other format can be built from
a :class:`COOMatrix` and lowered back to one.  It is also the building
block of the 4x4-block COO layout GraphR uses (Table 2), which the GraphR
baseline model accounts for via :func:`blocked_coo_metadata_bits`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.formats.base import SparseFormat, as_dense, index_bits


class COOMatrix(SparseFormat):
    """Coordinate-format sparse matrix with sorted, deduplicated triples."""

    name = "COO"

    def __init__(self, shape: Tuple[int, int], rows: np.ndarray,
                 cols: np.ndarray, vals: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
            raise FormatError("rows, cols and vals must be equal-length 1-D")
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows <= 0 or n_cols <= 0:
            raise ShapeError(f"invalid shape {shape}")
        if rows.size:
            if rows.min() < 0 or rows.max() >= n_rows:
                raise FormatError("row index out of range")
            if cols.min() < 0 or cols.max() >= n_cols:
                raise FormatError("column index out of range")
        self._shape = (n_rows, n_cols)
        # Canonical order: row-major, duplicates summed, zeros dropped.
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if rows.size:
            keys = rows * n_cols + cols
            uniq, inverse = np.unique(keys, return_inverse=True)
            summed = np.zeros(uniq.size, dtype=np.float64)
            np.add.at(summed, inverse, vals)
            keep = summed != 0.0
            uniq, summed = uniq[keep], summed[keep]
            rows = uniq // n_cols
            cols = uniq % n_cols
            vals = summed
        self.rows = rows
        self.cols = cols
        self.vals = vals

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense) -> "COOMatrix":
        """Build from any dense array / scipy matrix / SparseFormat."""
        a = as_dense(dense)
        if a.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got ndim={a.ndim}")
        rows, cols = np.nonzero(a)
        return cls(a.shape, rows, cols, a[rows, cols])

    @classmethod
    def from_scipy(cls, matrix) -> "COOMatrix":
        """Build from a scipy.sparse matrix without densifying."""
        coo = matrix.tocoo()
        return cls(coo.shape, coo.row, coo.col, coo.data)

    # ------------------------------------------------------------------
    # SparseFormat API
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self._shape, dtype=np.float64)
        dense[self.rows, self.cols] = self.vals
        return dense

    def metadata_bits(self) -> int:
        """COO carries a full (row, col) pair per non-zero."""
        rbits = index_bits(self._shape[0])
        cbits = index_bits(self._shape[1])
        return self.nnz * (rbits + cbits)

    def spmv(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._check_vector(x)
        y = np.zeros(self._shape[0], dtype=np.float64)
        np.add.at(y, self.rows, self.vals * x[self.cols])
        return y

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def transpose(self) -> "COOMatrix":
        return COOMatrix(
            (self._shape[1], self._shape[0]), self.cols, self.rows, self.vals
        )


def blocked_coo_metadata_bits(matrix: COOMatrix, block: int = 4) -> int:
    """Meta-data bits of a block-COO layout (GraphR stores 4x4 COO blocks).

    One (block-row, block-col) pair per *non-empty block*; values inside a
    block are stored dense, so they need no per-value indices.
    """
    if block <= 0:
        raise FormatError(f"block size must be positive, got {block}")
    n_rows, n_cols = matrix.shape
    block_keys = (matrix.rows // block) * (-(-n_cols // block)) \
        + (matrix.cols // block)
    n_blocks = int(np.unique(block_keys).size) if matrix.nnz else 0
    rbits = index_bits(-(-n_rows // block))
    cbits = index_bits(-(-n_cols // block))
    return n_blocks * (rbits + cbits)
