"""Storage-format meta-data comparison (Figure 12).

Figure 12 of the paper ranks formats by meta-data per non-zero across
sparsity structures: DIA is cheapest for purely diagonal matrices, CSR
for fully scattered ones, with ELL/BCSR in between and the Alrescha
format matching BCSR's budget while streaming none of it at runtime.
"""

from __future__ import annotations

from typing import Dict

from repro.formats.alrescha import AlreschaMatrix
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix

#: Default block width: the paper examines ω ∈ {8, 16, 32} and picks 8.
DEFAULT_OMEGA = 8


def format_survey(matrix, omega: int = DEFAULT_OMEGA) -> Dict[str, float]:
    """Meta-data bits per non-zero for every implemented format.

    ``matrix`` may be dense, scipy.sparse, or any of our formats.  The
    returned mapping has one entry per format name, plus
    ``"Alrescha (runtime)"`` for the bits actually streamed during
    execution (always 0 — the configuration table holds them).
    """
    coo = matrix if isinstance(matrix, COOMatrix) else (
        COOMatrix.from_scipy(matrix) if hasattr(matrix, "tocoo")
        else COOMatrix.from_dense(matrix)
    )
    csr = CSRMatrix.from_coo(coo)
    ell = ELLMatrix.from_coo(coo)
    dia = DIAMatrix.from_coo(coo)
    bcsr = BCSRMatrix.from_coo(coo, omega)
    alr = AlreschaMatrix.from_bcsr(bcsr)
    nnz = max(1, coo.nnz)
    return {
        "COO": coo.metadata_bits() / nnz,
        "CSR": csr.metadata_bits() / nnz,
        "ELL": ell.metadata_bits() / nnz,
        "DIA": dia.metadata_bits() / nnz,
        "BCSR": bcsr.metadata_bits() / nnz,
        "Alrescha": alr.metadata_bits() / nnz,
        "Alrescha (runtime)": alr.runtime_metadata_bits() / nnz,
    }
