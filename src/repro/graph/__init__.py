"""Graph analytics: BFS, SSSP and PageRank.

Reference implementations (:mod:`repro.graph.reference`) plus
accelerator-backed drivers (:mod:`repro.graph.drivers`) following the
vertex-centric three-phase model of Table 1.
"""

from repro.graph.components import (
    ComponentsResult,
    connected_components,
    connected_components_reference,
)
from repro.graph.drivers import GraphResult, run_bfs, run_pagerank, run_sssp
from repro.graph.reference import (
    bellman_ford_passes,
    bfs_reference,
    pagerank_reference,
    sssp_reference,
)

__all__ = [
    "ComponentsResult",
    "GraphResult",
    "connected_components",
    "connected_components_reference",
    "bellman_ford_passes",
    "bfs_reference",
    "pagerank_reference",
    "run_bfs",
    "run_pagerank",
    "run_sssp",
    "sssp_reference",
]
