"""Golden graph algorithms: BFS, SSSP, PageRank.

Straightforward CPU implementations with the same mathematical semantics
as the accelerator's vertex-centric passes (Table 1), used to validate
accelerated runs.  Distances are ``float`` with ``inf`` = unreachable.
"""

from __future__ import annotations

import heapq
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError


def _check_adj(adj: sp.spmatrix, src: int | None = None) -> sp.csr_matrix:
    adj = adj.tocsr()
    if adj.shape[0] != adj.shape[1]:
        raise DatasetError(f"adjacency must be square, got {adj.shape}")
    if src is not None and not 0 <= src < adj.shape[0]:
        raise DatasetError(f"source {src} out of range for n={adj.shape[0]}")
    return adj


def bfs_reference(adj: sp.spmatrix, src: int) -> np.ndarray:
    """Level distances from ``src`` following directed edges."""
    adj = _check_adj(adj, src)
    n = adj.shape[0]
    dist = np.full(n, np.inf)
    dist[src] = 0.0
    frontier = [src]
    level = 0.0
    while frontier:
        level += 1.0
        nxt = []
        for u in frontier:
            lo, hi = adj.indptr[u], adj.indptr[u + 1]
            for v in adj.indices[lo:hi]:
                if dist[v] == np.inf:
                    dist[v] = level
                    nxt.append(int(v))
        frontier = nxt
    return dist


def sssp_reference(adj: sp.spmatrix, src: int) -> np.ndarray:
    """Single-source shortest paths (Dijkstra; weights must be >= 0)."""
    adj = _check_adj(adj, src)
    if adj.nnz and adj.data.min() < 0:
        raise DatasetError("SSSP reference requires non-negative weights")
    n = adj.shape[0]
    dist = np.full(n, np.inf)
    dist[src] = 0.0
    heap: list[Tuple[float, int]] = [(0.0, src)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        lo, hi = adj.indptr[u], adj.indptr[u + 1]
        for v, w in zip(adj.indices[lo:hi], adj.data[lo:hi]):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist


def pagerank_reference(adj: sp.spmatrix, damping: float = 0.85,
                       tol: float = 1e-8,
                       max_iter: int = 200) -> np.ndarray:
    """Power-iteration PageRank with uniform dangling redistribution.

    Matches the accelerator driver's semantics exactly: per iteration,
    ``rank = (1-d)/n + d * (A^T (rank/outdeg) + dangling_mass/n)``.
    """
    adj = _check_adj(adj)
    if not 0.0 < damping < 1.0:
        raise DatasetError(f"damping must be in (0, 1), got {damping}")
    n = adj.shape[0]
    structure = adj.copy()
    structure.data = np.ones_like(structure.data)
    outdeg = np.asarray(structure.sum(axis=1)).ravel()
    rank = np.full(n, 1.0 / n)
    at = structure.T.tocsr()
    for _ in range(max_iter):
        share = np.where(outdeg > 0, rank / np.where(outdeg > 0, outdeg, 1.0),
                         0.0)
        dangling = rank[outdeg == 0].sum()
        new = (1.0 - damping) / n + damping * (at @ share + dangling / n)
        if np.abs(new - rank).sum() < tol:
            return new
        rank = new
    return rank


def bellman_ford_passes(adj: sp.spmatrix, src: int,
                        max_passes: int | None = None
                        ) -> Tuple[np.ndarray, int]:
    """Synchronous Bellman-Ford relaxation — the iteration structure the
    accelerator's D-SSSP passes follow.  Returns (dist, passes)."""
    adj = _check_adj(adj, src)
    n = adj.shape[0]
    at = adj.T.tocsr()
    dist = np.full(n, np.inf)
    dist[src] = 0.0
    limit = max_passes if max_passes is not None else n
    passes = 0
    for _ in range(limit):
        passes += 1
        best = dist.copy()
        for v in range(n):
            lo, hi = at.indptr[v], at.indptr[v + 1]
            us = at.indices[lo:hi]
            ws = at.data[lo:hi]
            if us.size:
                cand = (dist[us] + ws).min()
                if cand < best[v]:
                    best[v] = cand
        if np.array_equal(
            np.nan_to_num(best, posinf=-1.0),
            np.nan_to_num(dist, posinf=-1.0),
        ):
            return dist, passes
        dist = best
    return dist, passes
