"""Connected components on top of the accelerator's BFS data path.

Not one of the paper's five kernels, but a direct demonstration of the
"generic sparse accelerator" claim: weakly connected components compose
out of repeated D-BFS traversals (one per undiscovered component) with
no new hardware path.  The driver symmetrises the adjacency (weak
connectivity), repeatedly BFS-floods from the lowest unlabelled vertex,
and sums the per-flood simulation reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.core.report import SimReport, combine
from repro.errors import DatasetError


@dataclass
class ComponentsResult:
    """Outcome of a connected-components run."""

    labels: np.ndarray
    n_components: int
    iterations: int
    report: SimReport


def _symmetrized_unit(adj: sp.spmatrix) -> sp.csr_matrix:
    adj = adj.tocsr()
    if adj.shape[0] != adj.shape[1]:
        raise DatasetError(f"adjacency must be square, got {adj.shape}")
    sym = (adj + adj.T).tocsr()
    if sym.nnz:
        sym.data = np.ones_like(sym.data)
    return sym


def connected_components_reference(adj: sp.spmatrix) -> np.ndarray:
    """Golden weakly-connected-components labels (lowest member id)."""
    sym = _symmetrized_unit(adj)
    n = sym.shape[0]
    labels = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if labels[start] >= 0:
            continue
        stack = [start]
        labels[start] = start
        while stack:
            u = stack.pop()
            lo, hi = sym.indptr[u], sym.indptr[u + 1]
            for v in sym.indices[lo:hi]:
                if labels[v] < 0:
                    labels[v] = start
                    stack.append(int(v))
    return labels


def connected_components(adj: sp.spmatrix,
                         config: Optional[AlreschaConfig] = None,
                         max_passes_per_flood: Optional[int] = None
                         ) -> ComponentsResult:
    """Weakly connected components via repeated accelerated BFS floods."""
    sym = _symmetrized_unit(adj)
    n = sym.shape[0]
    # Undirected -> A == A^T; program once.
    acc = Alrescha.from_matrix(KernelType.BFS, sym, config=config)
    labels = np.full(n, -1, dtype=np.int64)
    reports: List[SimReport] = []
    total_passes = 0
    limit = max_passes_per_flood or n
    for start in range(n):
        if labels[start] >= 0:
            continue
        dist = np.full(n, np.inf)
        dist[start] = 0.0
        for _ in range(limit):
            total_passes += 1
            new, report = acc.run_bfs_pass(dist)
            reports.append(report)
            if np.array_equal(
                np.nan_to_num(new, posinf=-1.0),
                np.nan_to_num(dist, posinf=-1.0),
            ):
                dist = new
                break
            dist = new
        member = np.isfinite(dist) & (labels < 0)
        labels[member] = start
    n_components = int(np.unique(labels).size)
    return ComponentsResult(
        labels=labels,
        n_components=n_components,
        iterations=total_passes,
        report=combine(reports, kernel="components"),
    )
