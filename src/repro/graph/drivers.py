"""Accelerated graph-algorithm drivers.

Each driver programs the accelerator once with the *transposed*
adjacency matrix — the vertex-centric model processes, per destination
vertex, all of its in-edges (a row of ``A^T``) against the property
vector — and then iterates synchronous passes until a fixpoint:

* BFS / SSSP: min-plus relaxation passes (Bellman-Ford style); a pass
  that changes nothing terminates the run.
* PageRank: damped power iterations to an L1 tolerance.

Every driver returns the result vector together with the combined
:class:`~repro.core.report.SimReport` across passes, which is what the
Figure 17 benchmark consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import ConvergenceError, DatasetError
from repro.core.accelerator import Alrescha, AlreschaConfig
from repro.core.config import KernelType
from repro.core.report import SimReport, combine


@dataclass
class GraphResult:
    """Outcome of an accelerated graph-algorithm run."""

    values: np.ndarray
    iterations: int
    converged: bool
    report: SimReport
    #: BFS-tree parents (Graph500 style), populated only by
    #: ``run_bfs(..., return_parents=True)``.
    parents: Optional[np.ndarray] = None


def _program(kernel: KernelType, adj: sp.spmatrix,
             config: Optional[AlreschaConfig],
             unit_weights: bool) -> Alrescha:
    adj = adj.tocsr()
    if adj.shape[0] != adj.shape[1]:
        raise DatasetError(f"adjacency must be square, got {adj.shape}")
    at = adj.T.tocsr().copy()
    if unit_weights and at.nnz:
        at.data = np.ones_like(at.data)
    return Alrescha.from_matrix(kernel, at, config=config)


def run_bfs(adj: sp.spmatrix, src: int,
            config: Optional[AlreschaConfig] = None,
            max_passes: Optional[int] = None,
            return_parents: bool = False) -> GraphResult:
    """Breadth-first search from ``src`` on the accelerator.

    With ``return_parents`` the min tree's lane tags are used to build a
    Graph500-style BFS tree; the parent vector lands in
    ``GraphResult.parents`` (source's parent is itself, unreached
    vertices are -1).
    """
    acc = _program(KernelType.BFS, adj, config, unit_weights=True)
    n = acc.n
    if not 0 <= src < n:
        raise DatasetError(f"source {src} out of range for n={n}")
    dist = np.full(n, np.inf)
    dist[src] = 0.0
    if not return_parents:
        return _relax_to_fixpoint(acc.run_bfs_pass, dist, max_passes or n,
                                  kernel="bfs")
    parent = np.full(n, -1, dtype=np.int64)
    parent[src] = src
    reports = []
    converged = False
    passes = 0
    for _ in range(max_passes or n):
        passes += 1
        new_dist, new_parent, report = acc.run_bfs_pass_parents(
            dist, parent)
        reports.append(report)
        if np.array_equal(
            np.nan_to_num(new_dist, posinf=-1.0),
            np.nan_to_num(dist, posinf=-1.0),
        ):
            converged = True
            dist, parent = new_dist, new_parent
            break
        dist, parent = new_dist, new_parent
    result = GraphResult(
        values=dist,
        iterations=passes,
        converged=converged,
        report=combine(reports, kernel="bfs"),
    )
    result.parents = parent
    return result


def run_sssp(adj: sp.spmatrix, src: int,
             config: Optional[AlreschaConfig] = None,
             max_passes: Optional[int] = None) -> GraphResult:
    """Single-source shortest paths on the accelerator (weights >= 0)."""
    if adj.nnz and adj.tocsr().data.min() < 0:
        raise DatasetError("SSSP requires non-negative edge weights")
    acc = _program(KernelType.SSSP, adj, config, unit_weights=False)
    n = acc.n
    if not 0 <= src < n:
        raise DatasetError(f"source {src} out of range for n={n}")
    dist = np.full(n, np.inf)
    dist[src] = 0.0
    return _relax_to_fixpoint(acc.run_sssp_pass, dist, max_passes or n,
                              kernel="sssp")


def _relax_to_fixpoint(pass_fn, dist: np.ndarray, max_passes: int,
                       kernel: str) -> GraphResult:
    reports = []
    converged = False
    passes = 0
    for _ in range(max_passes):
        passes += 1
        new, report = pass_fn(dist)
        reports.append(report)
        if np.array_equal(
            np.nan_to_num(new, posinf=-1.0),
            np.nan_to_num(dist, posinf=-1.0),
        ):
            converged = True
            dist = new
            break
        dist = new
    return GraphResult(
        values=dist,
        iterations=passes,
        converged=converged,
        report=combine(reports, kernel=kernel),
    )


def run_pagerank(adj: sp.spmatrix, damping: float = 0.85,
                 tol: float = 1e-8, max_iter: int = 200,
                 config: Optional[AlreschaConfig] = None) -> GraphResult:
    """Damped PageRank on the accelerator.

    Phase 3 of Table 1 (the damping update) and the dangling-mass
    redistribution are scalar host-side steps; the per-edge work — the
    expensive part — runs on the accelerator.
    """
    if not 0.0 < damping < 1.0:
        raise DatasetError(f"damping must be in (0, 1), got {damping}")
    acc = _program(KernelType.PAGERANK, adj, config, unit_weights=True)
    n = acc.n
    structure = adj.tocsr().copy()
    if structure.nnz:
        structure.data = np.ones_like(structure.data)
    outdeg = np.asarray(structure.sum(axis=1)).ravel().astype(np.float64)
    rank = np.full(n, 1.0 / n)
    reports = []
    converged = False
    iterations = 0
    for _ in range(max_iter):
        iterations += 1
        contrib, report = acc.run_pr_pass(rank, outdeg)
        reports.append(report)
        dangling = rank[outdeg == 0].sum()
        new = (1.0 - damping) / n + damping * (contrib + dangling / n)
        if np.abs(new - rank).sum() < tol:
            rank = new
            converged = True
            break
        rank = new
    if not converged and iterations >= max_iter:
        # PageRank always converges for 0 < damping < 1; hitting the
        # iteration cap signals a tolerance too tight for float64.
        if tol < 1e-15:
            raise ConvergenceError(
                f"PageRank did not reach tol={tol} in {max_iter} iterations"
            )
    return GraphResult(
        values=rank,
        iterations=iterations,
        converged=converged,
        report=combine(reports, kernel="pagerank"),
    )
