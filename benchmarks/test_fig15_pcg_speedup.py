"""Figure 15: PCG speedup over the GPU + bandwidth utilization.

Paper's result: Alrescha averages a 15.6x speedup over the row-reordered
GPU implementation across the scientific suite, roughly twice the
Memristive accelerator's speedup, and utilizes bandwidth better than the
Memristive design; diagonal-heavy matrices see the largest gains.
"""

from repro.analysis import fig15_pcg_speedup, render_series

from conftest import run_once, save_and_print

#: Generous bands around the paper's reported factors.
PAPER_MEAN = 15.6
MEAN_BAND = (7.0, 32.0)
OVER_MEMRISTIVE_BAND = (1.3, 3.5)   # paper: "approximately twice"


def test_fig15_pcg_speedup(benchmark, scale, results_dir):
    result = run_once(benchmark, lambda: fig15_pcg_speedup(scale=scale))
    save_and_print(
        results_dir, "fig15_pcg_speedup",
        render_series(
            {
                "alrescha_x": result["alrescha_speedup"],
                "memristive_x": result["memristive_speedup"],
                "alrescha_bw": result["alrescha_bw_utilization"],
                "memristive_bw": result["memristive_bw_utilization"],
            },
            title=(f"Figure 15: PCG speedup over GPU "
                   f"(paper mean {PAPER_MEAN}x)"),
        ),
    )
    summary = result["summary"]
    assert MEAN_BAND[0] < summary["alrescha_mean"] < MEAN_BAND[1]
    assert OVER_MEMRISTIVE_BAND[0] < summary["alrescha_over_memristive"] \
        < OVER_MEMRISTIVE_BAND[1]
    # Alrescha beats the Memristive accelerator on every dataset.
    for name in result["alrescha_speedup"]:
        assert result["alrescha_speedup"][name] > \
            result["memristive_speedup"][name], name
        # And utilizes bandwidth better (the Figure 15 lines).
        assert result["alrescha_bw_utilization"][name] > \
            result["memristive_bw_utilization"][name], name


def test_fig15_diagonal_heavy_matrices_gain_most(benchmark, scale):
    """'when the non-zeros are mostly distributed in the diagonal' the
    speedup over the GPU is larger than for matrices with in-row
    parallelism (§5.3)."""
    result = run_once(
        benchmark,
        lambda: fig15_pcg_speedup(
            datasets=["stencil27", "af_shell", "economics"], scale=scale),
    )
    speed = result["alrescha_speedup"]
    # Banded/stencil (diagonal-heavy) beat the scattered economics matrix.
    assert speed["stencil27"] > speed["economics"]
    assert speed["af_shell"] > speed["economics"]
