"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper's
evaluation: it runs the experiment harness once (via
``benchmark.pedantic``), prints the same rows/series the paper reports,
persists them under ``benchmarks/results/`` and asserts the *shape* of
the result (who wins, by roughly what factor) against the paper within
generous bands — our substrate is a behavioural simulator, not the
authors' testbed.

``REPRO_BENCH_SCALE`` (default 0.1) controls dataset scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: Path, name: str, text: str) -> None:
    """Write a rendered result table to disk and echo it."""
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
