"""Figure 6: HPCG-class workloads reach a tiny fraction of peak FLOPs.

The paper's Figure 6 ranks CPUs and GPUs by the HPCG metric and shows
they "utilize only a tiny fraction of the peak performance".  This
benchmark computes achieved/peak FLOPs for one PCG iteration on the CPU
and GPU baseline models across the scientific suite.
"""

from repro.analysis import SCIENTIFIC_SUITE, fig6_hpcg_fraction, \
    render_series

from conftest import run_once, save_and_print


def test_fig6_hpcg_fraction_of_peak(benchmark, scale, results_dir):
    result = run_once(benchmark,
                      lambda: fig6_hpcg_fraction(scale=max(scale, 0.1)))
    save_and_print(
        results_dir, "fig06_hpcg_fraction",
        render_series(
            {"cpu_frac_of_peak": result["cpu"],
             "gpu_frac_of_peak": result["gpu"]},
            title="Figure 6: HPCG fraction of peak FLOPs",
        ),
    )
    for name in SCIENTIFIC_SUITE:
        # Paper: a few percent of peak at best, often below 1%.
        assert result["cpu"][name] < 0.05
        assert result["gpu"][name] < 0.05
        assert result["cpu"][name] > 0.0
        assert result["gpu"][name] > 0.0
    # The GPU's *fraction* of its (much larger) peak is no better than
    # the CPU's — the effectiveness argument of the introduction.
    cpu_mean = sum(result["cpu"].values()) / len(result["cpu"])
    gpu_mean = sum(result["gpu"].values()) / len(result["gpu"])
    assert gpu_mean < cpu_mean * 2.0
