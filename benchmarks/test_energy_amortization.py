"""Energy breakdown (§5.4) and preprocessing amortization (§4).

Two of the paper's prose claims, quantified: Alrescha's energy goes to
payload streaming rather than meta-data decode or cache churn, and the
one-time host-side conversion pays for itself almost immediately on
iterative algorithms.
"""

from repro.analysis import (
    pcg_amortization,
    render_table,
    spmv_energy_breakdown,
    symgs_energy_breakdown,
)
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_energy_breakdown(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix

    def measure():
        return {
            "spmv": spmv_energy_breakdown(matrix),
            "symgs": symgs_energy_breakdown(matrix),
        }

    parts = run_once(benchmark, measure)
    rows = []
    for kernel, breakdown in parts.items():
        total = sum(breakdown.values())
        for component, joules in sorted(breakdown.items(),
                                        key=lambda kv: -kv[1]):
            rows.append([kernel, component, joules * 1e6,
                         joules / total])
    save_and_print(
        results_dir, "energy_breakdown",
        render_table(["kernel", "component", "uJ", "share"],
                     rows, title="Energy breakdown by component (§5.4)"),
    )
    for kernel, breakdown in parts.items():
        total = sum(breakdown.values())
        # Streaming payload dominates; meta-data decode is literally
        # absent and configuration energy is negligible.
        assert breakdown["dram"] > 0.5 * total, kernel
        assert breakdown["configuration"] < 0.01 * total, kernel


def test_preprocessing_amortization(benchmark, scale, results_dir):
    rows = []
    results = {}

    def measure():
        for name in ("stencil27", "af_shell", "scircuit"):
            matrix = load_dataset(name, scale=max(scale, 0.1)).matrix
            results[name] = pcg_amortization(matrix)
        return results

    run_once(benchmark, measure)
    for name, r in results.items():
        rows.append([
            name, r.preprocess_seconds * 1e6,
            r.alrescha_iteration_seconds * 1e6,
            r.gpu_iteration_seconds * 1e6,
            r.breakeven_iterations,
        ])
    save_and_print(
        results_dir, "amortization",
        render_table(
            ["dataset", "preprocess us", "alrescha iter us",
             "gpu iter us", "break-even iterations"],
            rows, title="Preprocessing amortization (§4)",
        ),
    )
    for name, r in results.items():
        # The one-time conversion pays for itself within a handful of
        # PCG iterations on every dataset.
        assert r.breakeven_iterations < 10.0, name
