"""Ablation: why accelerate SymGS instead of replacing it.

A fully parallel Jacobi smoother (or no preconditioner at all) would
need no dependency-resolving hardware — but costs far more PCG
iterations.  This is the algorithmic justification for the paper's
choice to *keep* the data-dependent kernel and build hardware for it.
"""

from repro.analysis import render_table, smoother_ablation
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_ablation_smoother_choice(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    result = run_once(
        benchmark,
        lambda: smoother_ablation(matrix, tol=1e-8, max_iter=500),
    )
    rows = [
        [name, int(data["iterations"]), bool(data["converged"])]
        for name, data in result.items()
    ]
    save_and_print(
        results_dir, "ablation_smoother",
        render_table(
            ["smoother", "PCG iterations", "converged"],
            rows, title="Ablation: smoother choice",
        ),
    )
    assert result["symgs"]["converged"]
    assert result["symgs"]["iterations"] <= result["jacobi"]["iterations"]
    assert result["symgs"]["iterations"] < result["none"]["iterations"]


def test_ablation_total_time_view(benchmark, scale):
    """Alrescha makes the SymGS preconditioner *affordable*: PCG needs
    far fewer iterations than plain CG, and an accelerated PCG iteration
    (smoother included) costs a fraction of the GPU's.  (On mildly
    conditioned systems plain CG can still win outright in wall-time;
    the preconditioner pays off as conditioning worsens.)"""
    import numpy as np
    from repro.baselines import GPUModel, MatrixProfile
    from repro.datasets import stencil5
    from repro.solvers import AcceleratorBackend, cg, pcg

    # A barely shifted 2-D Laplacian: the ill-conditioned regime where
    # preconditioning matters.
    matrix = stencil5(24, 24, shift=0.02)
    n = matrix.shape[0]
    b = np.random.default_rng(9).normal(size=n)

    def measure():
        pcg_result = pcg(AcceleratorBackend(matrix), b, tol=1e-7,
                         max_iter=300)
        cg_result = cg(AcceleratorBackend(matrix), b, tol=1e-7,
                       max_iter=600)
        return pcg_result, cg_result

    pcg_result, cg_result = run_once(benchmark, measure)
    assert pcg_result.converged and cg_result.converged
    # PCG cuts iterations by at least 2x.
    assert pcg_result.iterations * 2 <= cg_result.iterations

    # And carrying the sequential smoother on Alrescha is still far
    # cheaper in absolute terms than one GPU PCG iteration (Figure 15's
    # point restated per iteration).
    profile = MatrixProfile(matrix)
    gpu_iter = GPUModel().pcg_iteration_seconds(profile)
    alr_iter = pcg_result.report.seconds / pcg_result.iterations
    assert gpu_iter > 3.0 * alr_iter
