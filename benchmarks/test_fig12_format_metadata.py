"""Figure 12: the storage-format spectrum by meta-data per non-zero.

The paper ranks formats by meta-data per non-zero across sparsity
structures: DIA cheapest for purely diagonal matrices, CSR the right
choice for fully scattered ones, BCSR (and the Alrescha format, which
keeps BCSR's budget but moves it into the one-time-programmed
configuration table) for locally-dense matrices.
"""

import numpy as np

from repro.datasets import random_spd, stencil27, structural_like, \
    tridiagonal
from repro.formats import format_survey
from repro.analysis import render_table

from conftest import run_once, save_and_print


def _survey_all():
    return {
        "diagonal (tridiag)": format_survey(tridiagonal(256)),
        "stencil27": format_survey(stencil27(6, 6, 6)),
        "blocked (FEM)": format_survey(structural_like(240)),
        "scattered": format_survey(random_spd(256, density=0.01)),
    }


def test_fig12_format_spectrum(benchmark, results_dir):
    surveys = run_once(benchmark, _survey_all)
    rows = []
    for matrix_kind, survey in surveys.items():
        for fmt, bits in survey.items():
            rows.append([matrix_kind, fmt, bits])
    save_and_print(
        results_dir, "fig12_format_metadata",
        render_table(["matrix", "format", "meta bits / nnz"], rows,
                     title="Figure 12: meta-data per non-zero"),
    )

    diag = surveys["diagonal (tridiag)"]
    scattered = surveys["scattered"]
    blocked = surveys["blocked (FEM)"]

    # DIA wins on diagonal matrices, loses badly on scattered ones.
    assert diag["DIA"] < diag["CSR"]
    assert diag["DIA"] < diag["ELL"]
    # CSR beats ELL and COO on scattered matrices.
    assert scattered["CSR"] <= scattered["COO"]
    # BCSR (and Alrescha) beat CSR when non-zeros cluster into blocks.
    assert blocked["BCSR"] < blocked["CSR"]
    assert blocked["Alrescha"] == blocked["BCSR"]
    # Alrescha streams zero meta-data at runtime, on every structure.
    for survey in surveys.values():
        assert survey["Alrescha (runtime)"] == 0.0


def test_fig12_alrescha_bits_live_in_config_table(benchmark):
    """The bits BCSR streams per non-zero equal the bits Alrescha writes
    once into the configuration table (2*ceil(log2(n/w)) + 3 per entry
    covers the same block indices)."""
    from repro.core import KernelType, convert

    a = stencil27(6, 6, 6)
    conv = run_once(benchmark,
                    lambda: convert(KernelType.SPMV, a, omega=8))
    assert conv.table.total_bits() > 0
    # One table entry per stored block.
    assert len(conv.table) == conv.matrix.n_blocks
    # Entry cost follows the paper's formula.
    m = conv.table.n_block_rows
    expected_bits = 2 * int(np.ceil(np.log2(m))) + 3
    assert conv.table.entry_bits() == expected_bits
