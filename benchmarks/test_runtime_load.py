"""Load/fault sweep over the multi-device serving runtime.

Drives the same 200-request trace through pools of 2 and 4 devices at
per-transfer fault rates from 0 to 0.3 and tables what the runtime's
policies buy: as devices sicken, breakers trip and jobs shift from OK
to DEGRADED (reference-path answers, explicitly marked) while the
answered fraction and throughput fall *gracefully* — load is shed by
explicit rejection at admission, and no job ever FAILs silently.
"""

from repro.analysis import render_table
from repro.runtime import serve

from conftest import run_once, save_and_print

DEVICES = (2, 4)
RATES = (0.0, 0.05, 0.1, 0.2, 0.3)
N_REQUESTS = 200
SEED = 7


def test_runtime_load_sweep(benchmark, results_dir):
    def sweep():
        return {(d, r): serve(n_requests=N_REQUESTS, n_devices=d,
                              fault_rate=r, seed=SEED, scale=0.05)[1]
                for d in DEVICES for r in RATES}

    reports = run_once(benchmark, sweep)

    rows = []
    for d in DEVICES:
        for r in RATES:
            rep = reports[(d, r)]
            rows.append([
                d, f"{r:.2f}", rep.admitted, rep.ok, rep.degraded,
                rep.timeout, rep.rejected, rep.failed, rep.breaker_trips,
                f"{rep.answered / rep.requests:.2f}",
                f"{rep.throughput_per_mcycle:.0f}",
                f"{rep.latency_p99_cycles:,.0f}",
            ])
    save_and_print(results_dir, "runtime_load", render_table(
        ["devices", "fault rate", "admit", "ok", "degr", "t/o", "rej",
         "fail", "trips", "answered", "jobs/Mcy", "p99 cy"],
        rows,
        title=f"Serving runtime under load ({N_REQUESTS} requests, "
              f"seed {SEED})"))

    for d in DEVICES:
        clean = reports[(d, 0.0)]
        worst = reports[(d, max(RATES))]
        # The whole point of the runtime: degrade, never lie or drop.
        assert all(reports[(d, r)].failed == 0 for r in RATES)
        # More faults may slow and shed jobs, but not collapse: the
        # sickest pool still answers most of what the clean pool does.
        assert worst.answered >= 0.5 * clean.answered
        assert worst.throughput_per_mcycle >= \
            0.2 * clean.throughput_per_mcycle
        # Sustained faults at the top rate must actually trip breakers.
        assert worst.breaker_trips >= 1
        # Monotone-ish shed: rejections never decrease by much as the
        # fault rate climbs (explicit backpressure, not queue collapse).
        rej = [reports[(d, r)].rejected for r in RATES]
        assert rej[-1] >= rej[0]
