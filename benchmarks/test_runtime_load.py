"""Load/fault sweep over the multi-device serving runtime.

Drives the same 200-request trace through pools of 2 and 4 devices at
per-transfer fault rates from 0 to 0.3 and tables what the runtime's
policies buy: as devices sicken, breakers trip and jobs shift from OK
to DEGRADED (reference-path answers, explicitly marked) while the
answered fraction and throughput fall *gracefully* — load is shed by
explicit rejection at admission, and no job ever FAILs silently.

The large-trace benchmarks pin down the event engine's complexity
claim: wall-clock grows near-linearly in trace length (the scan-based
scheduler it replaced rescanned queue × devices per wake).  They run in
``execution="model"`` mode — attempts priced from the golden
nominal-cycle caches, identical scheduling decisions, no kernel
numerics — which is what makes 100k jobs a CI fast-lane test and 1M a
``slow``-marked one.
"""

import time

import pytest

from repro.analysis import render_table
from repro.runtime import serve

from conftest import run_once, save_and_print

DEVICES = (2, 4)
RATES = (0.0, 0.05, 0.1, 0.2, 0.3)
N_REQUESTS = 200
SEED = 7

#: Large-trace workload: ~0.85 pool utilisation on 4 devices, deadlines
#: loose enough that the trace exercises throughput, not shedding.
LOAD_KWARGS = dict(n_devices=4, fault_rate=0.02, seed=SEED, scale=0.05,
                   execution="model", mean_interarrival_cycles=300.0,
                   deadline_range=(200_000.0, 400_000.0))


def test_runtime_load_sweep(benchmark, results_dir):
    def sweep():
        return {(d, r): serve(n_requests=N_REQUESTS, n_devices=d,
                              fault_rate=r, seed=SEED, scale=0.05)[1]
                for d in DEVICES for r in RATES}

    reports = run_once(benchmark, sweep)

    rows = []
    for d in DEVICES:
        for r in RATES:
            rep = reports[(d, r)]
            rows.append([
                d, f"{r:.2f}", rep.admitted, rep.ok, rep.degraded,
                rep.timeout, rep.rejected, rep.failed, rep.breaker_trips,
                f"{rep.answered / rep.requests:.2f}",
                f"{rep.throughput_per_mcycle:.0f}",
                f"{rep.latency_p99_cycles:,.0f}",
            ])
    save_and_print(results_dir, "runtime_load", render_table(
        ["devices", "fault rate", "admit", "ok", "degr", "t/o", "rej",
         "fail", "trips", "answered", "jobs/Mcy", "p99 cy"],
        rows,
        title=f"Serving runtime under load ({N_REQUESTS} requests, "
              f"seed {SEED})"))

    for d in DEVICES:
        clean = reports[(d, 0.0)]
        worst = reports[(d, max(RATES))]
        # The whole point of the runtime: degrade, never lie or drop.
        assert all(reports[(d, r)].failed == 0 for r in RATES)
        # More faults may slow and shed jobs, but not collapse: the
        # sickest pool still answers most of what the clean pool does.
        assert worst.answered >= 0.5 * clean.answered
        assert worst.throughput_per_mcycle >= \
            0.2 * clean.throughput_per_mcycle
        # Sustained faults at the top rate must actually trip breakers.
        assert worst.breaker_trips >= 1
        # Monotone-ish shed: rejections never decrease by much as the
        # fault rate climbs (explicit backpressure, not queue collapse).
        rej = [reports[(d, r)].rejected for r in RATES]
        assert rej[-1] >= rej[0]


def _timed_serve(n_requests):
    t0 = time.perf_counter()
    _, report = serve(n_requests=n_requests, **LOAD_KWARGS)
    return time.perf_counter() - t0, report


def _event_rows(timings):
    return [[f"{n:,}", f"{dt:.2f}", rep.ok, rep.rejected,
             f"{rep.events_processed:,}", f"{rep.events_stale:,}",
             f"{rep.events_processed / dt:,.0f}"]
            for n, (dt, rep) in sorted(timings.items())]


def test_event_engine_large_trace(benchmark, results_dir):
    """100k-job trace in the CI fast lane: near-linear scaling.

    Measured locally: 25k ≈ 1s, 100k ≈ 4.5s (ratio ≈ 4.5 for 4× the
    jobs).  The ratio bound of 8 allows 2× super-linearity before
    failing; the absolute ceiling is ~13× the measured wall-clock so a
    loaded CI runner does not flake it.
    """
    sizes = (25_000, 100_000)

    def run():
        return {n: _timed_serve(n) for n in sizes}

    timings = run_once(benchmark, run)
    save_and_print(results_dir, "event_engine_scaling", render_table(
        ["jobs", "wall s", "ok", "rej", "events", "stale", "events/s"],
        _event_rows(timings),
        title="Event-engine scaling (model execution, 4 devices)"))

    (t_small, rep_small), (t_large, rep_large) = (timings[n]
                                                  for n in sizes)
    for rep in (rep_small, rep_large):
        assert rep.failed == 0
        assert rep.ok >= 0.9 * rep.requests
        # Lazy deletion is bounded: at worst one stale deadline-expiry
        # event per admitted job plus a few breaker/retry leftovers.
        assert rep.events_stale <= rep.events_processed
        # Arrival + completion per served job is the engine floor.
        assert rep.events_processed >= 2 * rep.ok
    assert t_large / t_small < 8.0, (
        f"event engine lost near-linearity: {sizes[1]:,} jobs took "
        f"{t_large:.1f}s vs {t_small:.1f}s for {sizes[0]:,}")
    assert t_large < 60.0, f"100k-job trace took {t_large:.1f}s"


@pytest.mark.slow
def test_event_engine_million_jobs(benchmark, results_dir):
    """The EXPERIMENTS.md 1M-job target (measured ≈ 48s locally)."""
    timings = run_once(benchmark,
                       lambda: {1_000_000: _timed_serve(1_000_000)})
    dt, rep = timings[1_000_000]
    save_and_print(results_dir, "event_engine_million", render_table(
        ["jobs", "wall s", "ok", "rej", "events", "stale", "events/s"],
        _event_rows(timings),
        title="Event-engine 1M-job trace (model execution, 4 devices)"))
    assert rep.failed == 0
    assert rep.ok >= 0.9 * rep.requests
    assert rep.events_stale <= rep.events_processed
    assert dt < 600.0, f"1M-job trace took {dt:.1f}s"
