"""Figure 3: PCG execution time is dominated by SymGS and SpMV.

The paper motivates the whole design with the observation that on an
NVIDIA K20-class GPU the PCG loop spends almost all of its time inside
the SymGS smoother and the SpMV, with the remaining vector kernels a
tiny fraction.  This benchmark regenerates the breakdown on the GPU
baseline model and on the simulated accelerator.
"""

from repro.analysis import fig3_pcg_breakdown, render_table

from conftest import run_once, save_and_print


def test_fig3_pcg_breakdown(benchmark, scale, results_dir):
    result = run_once(
        benchmark, lambda: fig3_pcg_breakdown(scale=max(scale, 0.1))
    )
    rows = []
    for platform, parts in result.items():
        for kernel, share in sorted(parts.items()):
            rows.append([platform, kernel, share * 100.0])
    save_and_print(
        results_dir, "fig03_pcg_breakdown",
        render_table(["platform", "kernel", "% of PCG time"], rows,
                     title="Figure 3: PCG kernel breakdown"),
    )
    for platform in ("gpu", "alrescha"):
        parts = result[platform]
        dominant = parts.get("symgs", 0.0) + parts.get("spmv", 0.0)
        # Paper: SymGS + SpMV dominate; the rest is a tiny fraction.
        assert dominant > 0.85, platform
        assert parts["symgs"] > parts["spmv"], platform
        assert parts["vector"] < 0.15, platform
