"""Figure 14: the scientific dataset panel and its structural spread.

The paper picks SuiteSparse matrices whose "non-zero values have various
distributions" — the property every later figure's per-dataset spread
rests on.  This benchmark profiles our substitute suite and asserts the
variety is real, not ten copies of one structure.
"""

from repro.analysis import render_table
from repro.analysis.dataset_panel import dataset_profiles, panel_diversity

from conftest import run_once, save_and_print


def test_fig14_dataset_panel(benchmark, scale, results_dir):
    profiles = run_once(benchmark, lambda: dataset_profiles(scale=scale))
    rows = []
    for name, p in profiles.items():
        rows.append([
            name, int(p["n"]), int(p["nnz"]), p["nnz_per_row"],
            p["block_density"], p["column_locality"],
            p["gpu_seq_fraction"], p["alrescha_seq_fraction"],
        ])
    save_and_print(
        results_dir, "fig14_dataset_panel",
        render_table(
            ["dataset", "n", "nnz", "nnz/row", "blk density",
             "locality", "GPU seq", "Alrescha seq"],
            rows, title="Figure 14: scientific dataset panel",
        ),
    )
    diversity = panel_diversity(profiles)
    # "Various distributions": each structural metric spans a wide range.
    assert diversity["block_density_spread"] > 2.0
    assert diversity["nnz_per_row_spread"] > 3.0
    assert diversity["gs_levels_spread"] > 3.0
    assert diversity["locality_spread"] > 1.5


def test_fig14_every_dataset_loads_and_validates(benchmark, scale):
    """All ten suite matrices are SPD and solvable — the premise of
    running PCG on each."""
    import numpy as np
    from repro.analysis import SCIENTIFIC_SUITE
    from repro.datasets import load_dataset
    from repro.solvers import ReferenceBackend, pcg

    def check():
        for name in SCIENTIFIC_SUITE:
            matrix = load_dataset(name, scale=min(scale, 0.05)).matrix
            n = matrix.shape[0]
            b = np.random.default_rng(1).normal(size=n)
            result = pcg(ReferenceBackend(matrix), b, tol=1e-6,
                         max_iter=200)
            assert result.converged, name
        return True

    assert run_once(benchmark, check)
