"""Table 2: qualitative comparison of accelerators.

Checks that the implemented models actually *exhibit* the properties the
feature matrix claims — e.g. Alrescha streams no runtime meta-data while
the peers do, Alrescha runs multiple kernels while the peers model one
domain, and Alrescha's measured bandwidth utilization exceeds the
Memristive accelerator's.
"""

import numpy as np

from repro.analysis import TABLE2, alrescha_pcg_iteration, render_table
from repro.baselines import GraphRModel, MatrixProfile, MemristiveModel, \
    OuterSPACEModel
from repro.core import Alrescha, KernelType
from repro.datasets import load_dataset
from repro.formats import format_survey

from conftest import run_once, save_and_print


def test_tab2_feature_matrix(benchmark, scale, results_dir):
    def build():
        rows = []
        for name, feat in TABLE2.items():
            rows.append([
                name, feat["domain"],
                "yes" if feat["multi_kernel"] else "no",
                feat["bw_utilization"],
                "yes" if feat["no_metadata_transfer"] else "no",
                feat["storage_format"],
            ])
        return rows

    rows = run_once(benchmark, build)
    save_and_print(
        results_dir, "tab02_accelerator_features",
        render_table(
            ["accelerator", "domain", "multi-kernel", "BW util",
             "no runtime meta-data", "storage format"],
            rows, title="Table 2: accelerator comparison",
        ),
    )
    assert TABLE2["alrescha"]["multi_kernel"]


def test_tab2_metadata_claim_holds(benchmark, scale):
    """Alrescha: zero runtime meta-data; CSR/COO-based peers stream it."""
    matrix = load_dataset("stencil27", scale=max(scale, 0.08)).matrix
    survey = run_once(benchmark, lambda: format_survey(matrix))
    assert survey["Alrescha (runtime)"] == 0.0
    assert survey["CSR"] > 0.0      # OuterSPACE's format
    assert survey["COO"] > 0.0      # GraphR's format (4x4-blocked COO)


def test_tab2_multi_kernel_claim_holds(benchmark, scale):
    """One Alrescha device model runs all five kernels."""
    sci = load_dataset("stencil27", scale=max(scale, 0.08)).matrix
    adj = load_dataset("Youtube", scale=max(scale, 0.08)).matrix
    at = adj.T.tocsr()
    n_sci, n_g = sci.shape[0], at.shape[0]
    rng = np.random.default_rng(0)

    def run_all_kernels():
        Alrescha.from_matrix(KernelType.SPMV, sci).run_spmv(
            rng.normal(size=n_sci))
        Alrescha.from_matrix(KernelType.SYMGS, sci).run_symgs_sweep(
            rng.normal(size=n_sci), np.zeros(n_sci))
        dist = np.full(n_g, np.inf)
        dist[0] = 0.0
        unit = at.copy()
        unit.data = np.ones_like(unit.data)
        Alrescha.from_matrix(KernelType.BFS, unit).run_bfs_pass(dist)
        Alrescha.from_matrix(KernelType.SSSP, at).run_sssp_pass(dist)
        outdeg = np.asarray((adj != 0).sum(axis=1)).ravel().astype(float)
        Alrescha.from_matrix(KernelType.PAGERANK, unit).run_pr_pass(
            np.full(n_g, 1.0 / n_g), outdeg)
        return True

    assert run_once(benchmark, run_all_kernels)


def test_tab2_bw_utilization_ordering(benchmark, scale):
    """'BW Utilization: High' for Alrescha vs 'Low' for Memristive."""
    matrix = load_dataset("stencil27", scale=max(scale, 0.08)).matrix

    def measure():
        _t, report, _b = alrescha_pcg_iteration(matrix)
        mem = MemristiveModel().bandwidth_utilization(
            MatrixProfile(matrix))
        return report.bandwidth_utilization, mem

    alr_util, mem_util = run_once(benchmark, measure)
    assert alr_util > mem_util


def test_tab2_peer_domains_are_single_kernel(benchmark, scale):
    """The peer models expose only their own domain's kernels."""
    import pytest
    from repro.errors import BaselineError

    profile = run_once(benchmark, lambda: MatrixProfile(
        load_dataset("stencil27", scale=max(scale, 0.08)).matrix))
    with pytest.raises(BaselineError):
        OuterSPACEModel().symgs_sweep_seconds(profile)
    with pytest.raises(BaselineError):
        OuterSPACEModel().graph_pass_seconds(profile, "bfs")
    with pytest.raises(BaselineError):
        MemristiveModel().graph_pass_seconds(profile, "bfs")
    with pytest.raises(BaselineError):
        GraphRModel().symgs_sweep_seconds(profile)
