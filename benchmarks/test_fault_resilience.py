"""Resilience study: PCG under seeded payload-stream fault injection.

ALRESCHA's metadata-free payload stream is a robustness hazard: a
flipped bit is a perfectly plausible operand, not a malformed record.
This study sweeps the per-transfer fault rate and shows the knee the
resilience subsystem buys: with per-block checksums, bounded re-stream
retries and solver checkpoint/restart, PCG keeps converging to the same
answer across moderate fault rates — paying only retry cycles — until
the rate is high enough that retry budgets exhaust faster than
checkpoints can roll back.
"""

import numpy as np

from repro.analysis import render_table
from repro.datasets import stencil27
from repro.errors import CorruptionError, FaultError
from repro.sim.faults import FaultModel
from repro.solvers import AcceleratorBackend, pcg
from repro.core import AlreschaConfig

from conftest import run_once, save_and_print

RATES = (0.0, 0.01, 0.05, 0.1, 0.2, 0.3)


def _solve_at_rate(matrix, b, rate):
    fm = FaultModel(rate=rate, seed=17) if rate > 0.0 else None
    config = AlreschaConfig(fault_model=fm) if fm else None
    backend = AcceleratorBackend(matrix, config=config)
    try:
        result = pcg(backend, b, tol=1e-8, max_iter=100,
                     checkpoint_interval=5, max_restarts=3)
    except (FaultError, CorruptionError) as exc:
        # The aborted kernel run never filed its report; reconcile the
        # row from the injection log instead.
        faults = backend.fault_summary()
        faults["faults_injected"] = float(fm.injected)
        faults["faults_corrected"] = float(fm.corrected)
        faults["retry_cycles"] = fm.total_retry_cycles
        return {"converged": False, "survived": False,
                "iterations": 0, "restarts": 0,
                "cycles": float("nan"), "error": type(exc).__name__,
                "faults": faults, "x": None}
    return {"converged": result.converged, "survived": True,
            "iterations": result.iterations, "restarts": result.restarts,
            "cycles": result.report.cycles, "error": "",
            "faults": backend.fault_summary(), "x": result.x}


def test_pcg_fault_rate_knee(benchmark, results_dir):
    matrix = stencil27(6, 6, 6)
    n = matrix.shape[0]
    b = np.random.default_rng(3).normal(size=n)

    def sweep():
        return {rate: _solve_at_rate(matrix, b, rate) for rate in RATES}

    results = run_once(benchmark, sweep)

    clean = results[0.0]
    rows = []
    for rate in RATES:
        r = results[rate]
        f = r["faults"]
        overhead = (r["cycles"] / clean["cycles"] - 1.0
                    if r["survived"] else float("nan"))
        rows.append([
            f"{rate:.2f}",
            "yes" if r["survived"] else f"no ({r['error']})",
            r["iterations"], r["restarts"],
            int(f["faults_injected"]), int(f["faults_corrected"]),
            f"{overhead:+.1%}" if r["survived"] else "-",
        ])
    save_and_print(
        results_dir, "fault_resilience",
        render_table(
            ["fault rate", "survived", "iters", "restarts",
             "injected", "corrected", "cycle overhead"],
            rows, title="PCG under payload-stream fault injection",
        ),
    )

    # Clean baseline: converged, zero faults, zero retry cycles.
    assert clean["converged"]
    assert clean["faults"]["faults_injected"] == 0
    assert clean["faults"]["retry_cycles"] == 0.0

    # Up to the knee the solver survives and produces the *same answer*
    # as the clean run (detected faults are re-streamed, so the
    # arithmetic is untouched) while paying a growing cycle overhead.
    for rate in (0.01, 0.05, 0.1):
        r = results[rate]
        assert r["survived"] and r["converged"], f"rate {rate} failed"
        assert np.allclose(r["x"], clean["x"], atol=1e-12)
        assert r["faults"]["faults_injected"] > 0
        assert r["cycles"] > clean["cycles"]

    # Overhead grows with the rate while the solve survives.
    survived_rates = [rate for rate in RATES
                      if rate > 0.0 and results[rate]["survived"]]
    cycles = [results[rate]["cycles"] for rate in survived_rates]
    assert cycles == sorted(cycles)

    # Past the knee the typed failure surfaces (never a wrong answer):
    # either the run died on an exhausted retry budget, or it survived
    # but still reconciled every injected fault.
    worst = results[RATES[-1]]
    if worst["survived"]:
        f = worst["faults"]
        assert f["faults_corrected"] + f["faults_silent"] <= \
            f["faults_injected"]
        assert np.allclose(worst["x"], clean["x"], atol=1e-12)
    else:
        assert worst["error"] in ("FaultError", "CorruptionError")
