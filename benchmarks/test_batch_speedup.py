"""Batched multi-RHS serving: cycles-per-job and wall-clock win.

The scheduler's coalescing policy exists because the accelerator's
batched kernels stream the one-time-programmed payload once per fused
dispatch.  This benchmark pins both halves of that claim:

* **kernel sweep** — ``run_spmv_batch`` at widths 1..8: stream cycles
  per job collapse with k (the payload appears once) while compute
  scales, so simulated cycles per job fall well below the solo cost;
* **serving sweep** — the same burst workload served with ``--batch``
  1..8: fused dispatches cut the makespan and report the avoided DRAM
  traffic;
* **wall-clock** — one width-k batched call beats k solo calls on the
  host too (shared template replay and delivery).

Not marked slow: the CI fast lane runs this to keep the batching
speedup from regressing silently.
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.core import Alrescha, KernelType
from repro.datasets import load_dataset
from repro.runtime import serve
from repro.sim.memory import StreamingMemory

from conftest import run_once, save_and_print

WIDTHS = (1, 2, 4, 8)


def test_batch_stream_cycles_per_job(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    n = matrix.shape[0]
    rng = np.random.default_rng(23)

    def measure():
        out = {}
        for k in WIDTHS:
            acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
            x = rng.normal(size=(n, k))
            y, report = acc.run_spmv_batch(x)
            assert np.allclose(y, matrix @ x, atol=1e-8)
            out[k] = report
        return out

    reports = run_once(benchmark, measure)
    stream_per_job = {
        k: rep.counters.get("dram_bytes") / rep.bytes_per_cycle / k
        for k, rep in reports.items()}
    rows = [[k, rep.cycles, rep.cycles / k, stream_per_job[k],
             rep.counters.get("dram_requests")]
            for k, rep in reports.items()]
    save_and_print(
        results_dir, "batch_speedup_kernel",
        render_table(
            ["batch k", "cycles", "cycles/job", "stream cy/job",
             "DRAM reqs"],
            rows, title="Batched SpMV: payload streamed once per batch",
        ),
    )
    # The payload stream is issued once regardless of width...
    reqs = {k: rep.counters.get("dram_requests")
            for k, rep in reports.items()}
    assert len(set(reqs.values())) == 1
    # ...so mean stream cycles per job drop at least 2x by k=4 and
    # keep falling, and total cycles per job fall with them.
    assert stream_per_job[4] <= stream_per_job[1] / 2.0
    assert stream_per_job[8] < stream_per_job[4]
    per_job = [reports[k].cycles / k for k in WIDTHS]
    for a, b in zip(per_job, per_job[1:]):
        assert b < a


def test_batch_serving_sweep(benchmark, scale, results_dir):
    # A burst of same-workload requests against one device: a queue
    # forms, and larger max_batch fuses more of it per dispatch.
    kwargs = dict(n_requests=24, n_devices=1, fault_rate=0.0, seed=11,
                  scale=0.05, workloads=(("stencil27", "spmv"),),
                  mean_interarrival_cycles=50.0,
                  deadline_range=(300_000.0, 500_000.0),
                  zero_deadline_prob=0.0)

    def measure():
        return {k: serve(max_batch=k, **kwargs)[1] for k in WIDTHS}

    reports = run_once(benchmark, measure)
    mem = StreamingMemory()  # converts saved bytes to channel cycles
    rows = [[k, rep.makespan_cycles, rep.batches, rep.batched_jobs,
             rep.stream_bytes_saved / 1024.0,
             mem.cost_cycles(rep.stream_bytes_saved)]
            for k, rep in reports.items()]
    save_and_print(
        results_dir, "batch_speedup_serving",
        render_table(
            ["max_batch", "makespan cy", "batches", "fused jobs",
             "saved KiB", "saved stream cy"],
            rows, title="Batched serving: coalesced dispatch sweep",
        ),
    )
    solo = reports[1]
    assert solo.batches == 0 and solo.stream_bytes_saved == 0.0
    fused = reports[4]
    assert fused.batches >= 1 and fused.batched_jobs >= 4
    assert fused.stream_bytes_saved > 0.0
    # Fusing the queue cuts the makespan; wider keeps helping.
    assert fused.makespan_cycles < solo.makespan_cycles
    assert reports[8].makespan_cycles <= fused.makespan_cycles


def test_batch_wall_clock_win(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    n = matrix.shape[0]
    k = 8
    rng = np.random.default_rng(29)
    x = rng.normal(size=(n, k))
    acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
    acc.run_spmv(x[:, 0])  # warm the compiled plan + batch template
    acc.run_spmv_batch(x)

    def clock(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def measure():
        solo = clock(lambda: [acc.run_spmv(x[:, col])
                              for col in range(k)])
        batched = clock(lambda: acc.run_spmv_batch(x))
        return solo, batched

    solo, batched = run_once(benchmark, measure)
    save_and_print(
        results_dir, "batch_speedup_wallclock",
        render_table(
            ["path", "best of 5 (ms)", "per job (ms)"],
            [[f"{k} solo runs", solo * 1e3, solo * 1e3 / k],
             ["1 batched run", batched * 1e3, batched * 1e3 / k]],
            title=f"Host wall-clock, width {k}",
        ),
    )
    # Generous margin: the batched call must at least beat running the
    # k solo simulations back to back.
    assert batched < solo
