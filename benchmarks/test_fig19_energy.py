"""Figure 19: energy-consumption improvement over CPU and GPU.

Paper's result: running SpMV, Alrescha consumes 74x less energy than the
CPU and 14x less than the GPU on average, thanks to the small
reconfigurable fabric, the locally-dense format (no meta-data decode)
and fewer cache/memory accesses.
"""

from repro.analysis import fig19_energy, render_series

from conftest import run_once, save_and_print

VS_CPU_BAND = (35.0, 150.0)   # paper 74x
VS_GPU_BAND = (7.0, 28.0)     # paper 14x


def test_fig19_energy_improvement(benchmark, scale, results_dir):
    result = run_once(benchmark, lambda: fig19_energy(scale=scale))
    save_and_print(
        results_dir, "fig19_energy",
        render_series(
            {"vs_cpu_x": result["vs_cpu"], "vs_gpu_x": result["vs_gpu"]},
            title=("Figure 19: SpMV energy improvement "
                   "(paper: 74x vs CPU, 14x vs GPU)"),
        ),
    )
    summary = result["summary"]
    assert VS_CPU_BAND[0] < summary["vs_cpu_mean"] < VS_CPU_BAND[1]
    assert VS_GPU_BAND[0] < summary["vs_gpu_mean"] < VS_GPU_BAND[1]


def test_fig19_wins_everywhere(benchmark, scale):
    """Alrescha uses less energy than both baselines on every dataset."""
    result = run_once(benchmark, lambda: fig19_energy(scale=scale))
    for name in result["vs_cpu"]:
        assert result["vs_cpu"][name] > 1.0, name
        assert result["vs_gpu"][name] > 1.0, name


def test_fig19_energy_tracks_block_activity(benchmark, scale):
    """§5.4: compute activity scales with block density (energy, not
    performance) — denser blocks mean more energy per streamed slot but
    less streamed waste, so total energy per non-zero drops."""
    from repro.analysis import alrescha_spmv
    from repro.datasets import load_dataset

    def measure():
        dense_ds = load_dataset("apache2", scale=scale)       # dense blocks
        sparse_ds = load_dataset("economics", scale=scale)    # scattered
        _t, dense_rep = alrescha_spmv(dense_ds.matrix)
        _t, sparse_rep = alrescha_spmv(sparse_ds.matrix)
        return (dense_rep.energy_j / dense_ds.nnz,
                sparse_rep.energy_j / sparse_ds.nnz)

    dense_per_nnz, sparse_per_nnz = run_once(benchmark, measure)
    assert dense_per_nnz < sparse_per_nnz
