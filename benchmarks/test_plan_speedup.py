"""Wall-clock speedup of the compiled pass plans over the interpreter.

Not a paper figure: this benchmark guards the simulator's own
performance. The compiled plan layer (:mod:`repro.core.plan`) must make
an accelerator-backend PCG solve at least 3x faster than the per-block
interpreter while producing bit-identical iterates and reports.

Marked ``slow`` — run explicitly (``pytest benchmarks``) or drop the
``-m "not slow"`` filter.
"""

import time

import numpy as np
import pytest

from repro.core import AlreschaConfig
from repro.datasets import load_dataset
from repro.solvers.backends import AcceleratorBackend
from repro.solvers.pcg import pcg

from conftest import run_once, save_and_print

pytestmark = pytest.mark.slow

MIN_SPEEDUP = 3.0
#: Iteration cap; a tolerance no solver reaches keeps both paths
#: iterating until the cap or a (deterministic, shared) stall.
ITERS = 30


def _solve_timed(matrix, b, use_plan):
    backend = AcceleratorBackend(
        matrix, config=AlreschaConfig(use_plan=use_plan))
    # Warm both paths outside the timed region (plans are compiled in
    # the constructor; the first legacy pass pays numpy warmup).
    backend.spmv(b)
    backend.precondition(b)
    backend.reset_reports()
    t0 = time.perf_counter()
    result = pcg(backend, b, tol=1e-30, max_iter=ITERS)
    elapsed = time.perf_counter() - t0
    return result, elapsed


def test_plan_speedup_pcg(benchmark, scale, results_dir):
    ds = load_dataset("stencil27", scale=max(scale, 0.1))
    rng = np.random.default_rng(11)
    b = rng.normal(size=ds.matrix.shape[0])

    def experiment():
        legacy, t_legacy = _solve_timed(ds.matrix, b, use_plan=False)
        plan, t_plan = _solve_timed(ds.matrix, b, use_plan=True)
        return legacy, t_legacy, plan, t_plan

    legacy, t_legacy, plan, t_plan = run_once(benchmark, experiment)

    # Same arithmetic, bit for bit: the plan only reorganises execution.
    np.testing.assert_array_equal(plan.x, legacy.x)
    # Bit-identical iterates mean both paths run the same iteration
    # count, i.e. the timed regions do exactly equal work.
    assert plan.iterations == legacy.iterations
    assert plan.report.cycles == legacy.report.cycles
    assert plan.report.energy_j == legacy.report.energy_j
    assert plan.report.counters.as_dict() == legacy.report.counters.as_dict()

    speedup = t_legacy / t_plan
    save_and_print(
        results_dir, "plan_speedup",
        "\n".join([
            f"Compiled-plan speedup (PCG, stencil27 n={ds.matrix.shape[0]}, "
            f"{plan.iterations} iterations)",
            f"  interpreter : {t_legacy * 1e3:9.1f} ms",
            f"  plan        : {t_plan * 1e3:9.1f} ms",
            f"  speedup     : {speedup:9.2f}x  (floor {MIN_SPEEDUP}x)",
        ]),
    )
    assert speedup >= MIN_SPEEDUP
