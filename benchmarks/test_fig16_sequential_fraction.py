"""Figure 16: reduction of the sequential part of PCG.

Paper's result: row-reordering/coloring on the GPU still leaves 60.9% of
operations sequential on average (more for highly diagonal matrices,
less for matrices with in-row parallelism); Alrescha's GEMV/D-SymGS
decomposition cuts the sequential share to 23.1% on average.
"""

from repro.analysis import fig16_sequential_fraction, render_series

from conftest import run_once, save_and_print

#: Bands: the sequential fraction is scale-sensitive (dependency levels
#: are narrower relative to a warp at reproduction scale), so the GPU
#: side sits above the paper's 60.9% here; the ordering and the roughly
#: 2-3x reduction are the reproduced shape.
GPU_MEAN_BAND = (0.50, 0.95)
ALRESCHA_MEAN_BAND = (0.10, 0.50)


def test_fig16_sequential_reduction(benchmark, scale, results_dir):
    result = run_once(benchmark,
                      lambda: fig16_sequential_fraction(scale=scale))
    save_and_print(
        results_dir, "fig16_sequential_fraction",
        render_series(
            {"gpu_seq_frac": result["gpu"],
             "alrescha_seq_frac": result["alrescha"]},
            title=("Figure 16: sequential-operation fraction "
                   "(paper: GPU 60.9%, Alrescha 23.1%)"),
        ),
    )
    summary = result["summary"]
    assert GPU_MEAN_BAND[0] < summary["gpu_mean"] < GPU_MEAN_BAND[1]
    assert ALRESCHA_MEAN_BAND[0] < summary["alrescha_mean"] \
        < ALRESCHA_MEAN_BAND[1]
    # The headline claim: a large reduction on average.
    assert summary["alrescha_mean"] < 0.6 * summary["gpu_mean"]


def test_fig16_per_dataset_reduction(benchmark, scale):
    result = run_once(benchmark,
                      lambda: fig16_sequential_fraction(scale=scale))
    reduced = sum(
        1 for name in result["gpu"]
        if result["alrescha"][name] < result["gpu"][name]
    )
    # Alrescha reduces the sequential share on (almost) every dataset.
    assert reduced >= len(result["gpu"]) - 1


def test_fig16_diagonal_heavy_stays_high_on_gpu(benchmark, scale):
    """'more than 60% for highly-diagonal matrices and less than 60%
    for matrices with a greater opportunity for in-row parallelism'."""
    result = run_once(
        benchmark,
        lambda: fig16_sequential_fraction(
            datasets=["af_shell", "offshore", "economics"],
            scale=scale),
    )
    assert result["gpu"]["af_shell"] > 0.6
    assert result["gpu"]["offshore"] > 0.6
    assert result["gpu"]["economics"] < result["gpu"]["af_shell"]
