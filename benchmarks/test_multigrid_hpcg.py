"""Multigrid-preconditioned PCG on the accelerator (full HPCG shape).

HPCG's preconditioner is a geometric multigrid V-cycle with SymGS
smoothing at every level — every level of every cycle re-enters the
data-dependent kernel, multiplying the value of accelerating it.  This
benchmark runs MG-PCG entirely on accelerator backends and compares it
against single-level GS-PCG.
"""

import numpy as np

from repro.analysis import render_table
from repro.solvers import (
    AcceleratorBackend,
    MultigridBackend,
    pcg,
)

from conftest import run_once, save_and_print


def test_multigrid_pcg_on_accelerator(benchmark, results_dir):
    def measure():
        mg = MultigridBackend(8, 8, 8, n_levels=3, backend="alrescha")
        b = np.random.default_rng(7).normal(size=mg.n)
        mg_result = pcg(mg, b, tol=1e-8, max_iter=60)
        gs = AcceleratorBackend(mg.matrix)
        gs_result = pcg(gs, b, tol=1e-8, max_iter=60)
        return mg, mg_result, gs_result

    mg, mg_result, gs_result = run_once(benchmark, measure)
    rows = [
        ["MG(3-level)-PCG", mg_result.iterations,
         mg_result.report.seconds * 1e6,
         mg_result.report.sequential_fraction],
        ["GS-PCG", gs_result.iterations,
         gs_result.report.seconds * 1e6,
         gs_result.report.sequential_fraction],
    ]
    save_and_print(
        results_dir, "multigrid_hpcg",
        render_table(
            ["solver", "iterations", "simulated us", "seq fraction"],
            rows, title="HPCG-style multigrid PCG on the accelerator",
        ),
    )
    assert mg_result.converged and gs_result.converged
    # Multigrid cuts the iteration count.
    assert mg_result.iterations <= gs_result.iterations
    # Solutions agree.
    assert np.allclose(mg_result.x, gs_result.x, atol=1e-5)
    # Every MG level's SymGS ran on the accelerator: the combined
    # report carries dependent-path work from multiple levels.
    assert mg_result.report.sequential_cycles > 0
    assert mg_result.report.n_entries > gs_result.report.n_entries / 2


def test_multigrid_smoother_share(benchmark):
    """SymGS stays the dominant kernel inside the V-cycle, at every
    level — the Figure 3 shape, recursively."""
    def measure():
        mg = MultigridBackend(8, 8, 8, n_levels=2, backend="alrescha")
        b = np.random.default_rng(11).normal(size=mg.n)
        pcg(mg, b, tol=1e-7, max_iter=30)
        report = mg.report()
        return report.datapath_cycles

    cycles = run_once(benchmark, measure)
    assert cycles["d-symgs"] > 0
    assert cycles["d-symgs"] + cycles["gemv"] > 0.8 * sum(cycles.values())
