"""Extension study: storage-precision traffic sweep.

The paper evaluates at double precision (Table 5).  Because Alrescha's
SpMV is memory-bound, halving the stored element width cuts the payload
stream in half — until the fixed ALU row becomes the new bottleneck.
This sweep quantifies both effects.
"""

from repro.analysis import precision_sweep, render_table
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_precision_sweep(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    sweep = run_once(benchmark, lambda: precision_sweep(matrix))
    rows = [
        [f"fp{width * 8}", data["cycles"],
         data["streamed_bytes"] / 1024.0, data["energy_j"] * 1e6]
        for width, data in sweep.items()
    ]
    save_and_print(
        results_dir, "precision_sweep",
        render_table(
            ["precision", "cycles", "streamed KiB", "energy uJ"],
            rows, title="Storage-precision sweep (SpMV)",
        ),
    )
    # Halving the element width halves the payload and saves energy...
    assert sweep[4]["streamed_bytes"] < 0.75 * sweep[8]["streamed_bytes"]
    assert sweep[4]["energy_j"] < sweep[8]["energy_j"]
    # ...but the cycle gain is sub-2x: the ALU row becomes the limit.
    gain = sweep[8]["cycles"] / sweep[4]["cycles"]
    assert 1.0 < gain < 2.0
