"""Ablation (§4.1): data-path reordering on/off.

Algorithm 1 reorders each SymGS block row so all GEMVs run before the
D-SymGS.  Without it, the diagonal block streams past before the row's
trailing partials exist, forcing a re-fetch and extra data-path toggles.
"""

from repro.analysis import render_table, reordering_ablation
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_ablation_reordering(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    result = run_once(benchmark, lambda: reordering_ablation(matrix))
    rows = [
        [label, int(data["switches"]), data["sweep_cycles"],
         data["exposed_reconfig_cycles"]]
        for label, data in result.items()
    ]
    save_and_print(
        results_dir, "ablation_reordering",
        render_table(
            ["ordering", "table switches", "sweep cycles",
             "exposed reconfig cycles"],
            rows, title="Ablation: data-path reordering",
        ),
    )
    assert result["reordered"]["sweep_cycles"] < \
        result["natural"]["sweep_cycles"]
    assert result["reordered"]["exposed_reconfig_cycles"] <= \
        result["natural"]["exposed_reconfig_cycles"]
    # Functional results identical: reordering is exact (distributivity).
    assert abs(result["reordered"]["checksum"]
               - result["natural"]["checksum"]) < 1e-9


def test_ablation_reordering_gain_grows_with_offdiag_content(
        benchmark, scale):
    """Matrices with more off-diagonal blocks per row re-fetch more."""
    wide = load_dataset("offshore", scale=max(scale, 0.1)).matrix
    narrow = load_dataset("chem_master", scale=max(scale, 0.1)).matrix

    def measure():
        w = reordering_ablation(wide)
        n = reordering_ablation(narrow)
        gain_wide = w["natural"]["sweep_cycles"] \
            / w["reordered"]["sweep_cycles"]
        gain_narrow = n["natural"]["sweep_cycles"] \
            / n["reordered"]["sweep_cycles"]
        return gain_wide, gain_narrow

    gain_wide, gain_narrow = run_once(benchmark, measure)
    assert gain_wide >= 1.0
    assert gain_narrow >= 1.0
