"""SpMM panel study: amortising the matrix stream across vectors.

The locally-dense format exists to maximise reuse of streamed data
(§5.3 insight ii).  Applying each resident block to a panel of k
operand vectors extends that reuse: the payload streams once while
useful work scales with k — until the ALU row saturates.  This is the
natural block-Krylov / multiple-RHS deployment of the accelerator.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import Alrescha, KernelType
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_spmm_panel_amortization(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
    n = matrix.shape[0]
    rng = np.random.default_rng(17)

    def measure():
        out = {}
        for k in (1, 2, 4, 8, 16):
            x = rng.normal(size=(n, k))
            y, report = acc.run_spmm(x)
            assert np.allclose(y, matrix @ x, atol=1e-8)
            out[k] = report
        return out

    reports = run_once(benchmark, measure)
    rows = []
    for k, report in reports.items():
        rows.append([
            k, report.cycles, report.cycles / k,
            report.counters.get("dram_bytes") / 1024.0,
            report.energy_j * 1e6 / k,
        ])
    save_and_print(
        results_dir, "spmm_amortization",
        render_table(
            ["panel k", "cycles", "cycles/column", "DRAM KiB",
             "uJ/column"],
            rows, title="SpMM: matrix-stream amortization",
        ),
    )
    # Per-column cycle cost falls monotonically with panel width (the
    # gain is bounded: the ALU row saturates almost immediately because
    # single-vector SpMV already balances stream and compute)...
    per_col = [reports[k].cycles / k for k in (1, 2, 4, 8, 16)]
    for a, b in zip(per_col, per_col[1:]):
        assert b <= a * 1.001
    assert per_col[3] < 0.95 * per_col[0]
    # ...while the *energy* per column collapses: the dominant DRAM
    # payload is streamed once regardless of k.
    energy_col = [reports[k].energy_j / k for k in (1, 2, 4, 8, 16)]
    assert energy_col[3] < 0.5 * energy_col[0]
    assert reports[16].counters.get("dram_bytes") \
        < 4.0 * reports[1].counters.get("dram_bytes")
