"""HPCG rating and roofline position of the accelerator.

Complements Figure 6: the HPCG driver rates the simulated accelerator in
GFLOP/s, and the roofline analysis shows *why* the comparison platforms
lose — every SpMV-class kernel is pinned against the memory roof, so
effective-bandwidth efficiency is the whole game.
"""

from repro.analysis import render_table, roofline_summary
from repro.datasets import load_dataset
from repro.solvers import run_hpcg

from conftest import run_once, save_and_print


def test_hpcg_rating(benchmark, scale, results_dir):
    dim = max(5, int(round(16 * max(scale, 0.08) ** (1 / 3))))
    result = run_once(benchmark,
                      lambda: run_hpcg(dim, dim, dim, iterations=10))
    save_and_print(
        results_dir, "hpcg_rating",
        render_table(
            ["grid", "n", "nnz", "iterations", "GFLOP/s", "BW util"],
            [[f"{dim}^3", result.n, result.nnz, result.iterations,
              result.gflops, result.bandwidth_utilization]],
            title="HPCG-style rating on the simulated accelerator",
        ),
    )
    assert result.gflops > 0.5
    # Even Alrescha stays memory-bound: far below the ALU-row peak
    # (16 lanes x 2.5 GHz x 2 flops = 80 GFLOP/s).
    assert result.gflops < 80.0


def test_roofline_positions(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    summary = run_once(benchmark, lambda: roofline_summary(matrix))
    rows = []
    for platform, vals in summary.items():
        rows.append([
            platform,
            vals["arithmetic_intensity"],
            vals["attainable_gflops"],
            vals["achieved_gflops"],
            vals["efficiency"],
        ])
    save_and_print(
        results_dir, "roofline_spmv",
        render_table(
            ["platform", "flops/byte", "attainable GF/s",
             "achieved GF/s", "efficiency"],
            rows, title="SpMV roofline positions",
        ),
    )
    # SpMV's arithmetic intensity is below 1 flop/byte everywhere.
    for vals in summary.values():
        assert vals["arithmetic_intensity"] < 1.0
    # Alrescha runs closest to its roof and achieves the most GFLOP/s.
    assert summary["alrescha"]["efficiency"] > summary["gpu"]["efficiency"]
    assert summary["alrescha"]["achieved_gflops"] > \
        summary["gpu"]["achieved_gflops"] > \
        summary["cpu"]["achieved_gflops"]
