"""Ablation (§4.3): the FIFO buffers in front of the FCU.

"The buffers handle vector operands, which require deterministic
accesses.  For instance, we employ first-in-first-out (FIFO) for A_ij
and b" — the run-ahead window that lets memory stream uninterrupted
while the engine works.  The detailed bounded-buffer simulation shows
what happens as that window shrinks to nothing, and cross-validates the
analytic timing model at generous depths.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import (
    Alrescha,
    KernelType,
    crosscheck_with_analytic,
    fifo_depth_sweep,
)
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_ablation_fifo_depth(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    acc = Alrescha.from_matrix(KernelType.SYMGS, matrix)
    sweep = run_once(benchmark,
                     lambda: fifo_depth_sweep(acc, [1, 2, 4, 8, 32]))
    rows = [
        [depth, data["cycles"], data["memory_utilization"],
         data["engine_utilization"], data["mem_stall_cycles"]]
        for depth, data in sweep.items()
    ]
    save_and_print(
        results_dir, "ablation_fifo_depth",
        render_table(
            ["FIFO depth (blocks)", "cycles", "mem util", "engine util",
             "mem stall cycles"],
            rows, title="Ablation: A-FIFO depth (detailed simulation)",
        ),
    )
    assert sweep[1]["cycles"] > sweep[8]["cycles"]
    assert sweep[8]["cycles"] == sweep[32]["cycles"]


def test_detailed_crosschecks_analytic_model(benchmark, scale,
                                             results_dir):
    """The two timing models agree within tolerance on both kernel
    classes — independent implementations of the same design."""
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix

    def measure():
        out = {}
        acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
        _y, rep = acc.run_spmv(np.ones(acc.n))
        out["spmv"] = crosscheck_with_analytic(acc, rep.cycles)
        acc = Alrescha.from_matrix(KernelType.SYMGS, matrix)
        _x, rep = acc.run_symgs_sweep(np.ones(acc.n), np.zeros(acc.n))
        out["symgs"] = crosscheck_with_analytic(acc, rep.cycles)
        return out

    checks = run_once(benchmark, measure)
    rows = [
        [kernel, c["analytic_cycles"], c["detailed_cycles"], c["ratio"]]
        for kernel, c in checks.items()
    ]
    save_and_print(
        results_dir, "detailed_crosscheck",
        render_table(
            ["kernel", "analytic cycles", "detailed cycles",
             "detailed/analytic"],
            rows, title="Timing-model cross-validation",
        ),
    )
    for kernel, c in checks.items():
        assert 0.7 < c["ratio"] < 1.3, kernel
