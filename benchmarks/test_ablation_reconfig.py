"""Ablation (§4.3/§4.4): hiding reconfiguration under the tree drain.

"The latency of configuration is hidden by the latency of draining the
adder tree."  With the overlap disabled, every data-path switch exposes
the full switch-rewrite latency; this benchmark quantifies what the
lightweight-reconfiguration design buys.
"""

from repro.analysis import reconfiguration_ablation, render_table
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_ablation_reconfiguration_hiding(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    result = run_once(benchmark,
                      lambda: reconfiguration_ablation(matrix))
    rows = [
        [label, data["sweep_cycles"], data["exposed_reconfig_cycles"]]
        for label, data in result.items()
    ]
    save_and_print(
        results_dir, "ablation_reconfig",
        render_table(
            ["mode", "SymGS sweep cycles", "exposed reconfig cycles"],
            rows, title="Ablation: reconfiguration hiding",
        ),
    )
    assert result["hidden"]["exposed_reconfig_cycles"] == 0.0
    assert result["exposed"]["exposed_reconfig_cycles"] > 0.0
    assert result["exposed"]["sweep_cycles"] > \
        result["hidden"]["sweep_cycles"]


def test_ablation_reconfig_cost_scales_with_switches(benchmark, scale):
    """More data-path switches -> more exposed cycles when not hidden."""
    from repro.core import Alrescha, AlreschaConfig, KernelType
    import numpy as np

    matrix = load_dataset("offshore", scale=max(scale, 0.1)).matrix
    n = matrix.shape[0]
    rng = np.random.default_rng(3)
    b, x0 = rng.normal(size=n), rng.normal(size=n)

    def measure():
        out = {}
        for cycles in (4, 16):
            cfg = AlreschaConfig(reconfig_cycles=cycles,
                                 hide_reconfig_under_drain=False)
            acc = Alrescha.from_matrix(KernelType.SYMGS, matrix,
                                       config=cfg)
            _x, report = acc.run_symgs_sweep(b, x0)
            out[cycles] = report.exposed_reconfig_cycles
        return out

    exposed = run_once(benchmark, measure)
    assert exposed[16] > exposed[4] > 0.0
