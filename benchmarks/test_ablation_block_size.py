"""Ablation (§5.2): block width ω in {8, 16, 32}.

The paper examined 8, 16 and 32 and chose 8 because it "provides a
balance between the opportunity for parallelism and the number of
non-zero values" — bigger blocks stream more padding per non-zero,
smaller tables trade against longer sequential chains per diagonal
block.  This benchmark regenerates the trade-off.
"""

from repro.analysis import block_size_sweep, render_table
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_ablation_block_size(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    sweep = run_once(benchmark,
                     lambda: block_size_sweep(matrix, [8, 16, 32]))
    rows = []
    for omega, data in sweep.items():
        rows.append([
            omega, int(data["blocks"]), int(data["streamed_slots"]),
            data["block_density"], int(data["table_entries"]),
            data["sweep_cycles"],
        ])
    save_and_print(
        results_dir, "ablation_block_size",
        render_table(
            ["omega", "blocks", "streamed slots", "block density",
             "table entries", "SymGS sweep cycles"],
            rows, title="Ablation: block width (paper picks 8)",
        ),
    )
    # Bigger blocks always stream at least as much padding.
    assert sweep[8]["streamed_slots"] <= sweep[16]["streamed_slots"]
    assert sweep[16]["streamed_slots"] <= sweep[32]["streamed_slots"]
    # ... while needing fewer configuration-table entries.
    assert sweep[8]["table_entries"] >= sweep[16]["table_entries"]
    # The paper's choice: 8 yields the fastest sweep on stencil data.
    assert sweep[8]["sweep_cycles"] <= sweep[16]["sweep_cycles"]
    assert sweep[8]["sweep_cycles"] <= sweep[32]["sweep_cycles"]


def test_ablation_block_size_density_declines(benchmark, scale):
    matrix = load_dataset("scircuit", scale=max(scale, 0.1)).matrix
    sweep = run_once(benchmark,
                     lambda: block_size_sweep(matrix, [8, 16, 32]))
    assert sweep[8]["block_density"] >= sweep[16]["block_density"] \
        >= sweep[32]["block_density"]
