"""Grand parity table: every platform, every dataset, one view.

The capstone cross-check of the whole evaluation: SpMV time of every
modelled platform on every dataset (normalised to the GPU baseline),
with the global who-beats-whom orderings asserted.
"""

from repro.analysis import render_series
from repro.analysis.parity import full_spmv_comparison, parity_orderings

from conftest import run_once, save_and_print


def test_parity_table(benchmark, scale, results_dir):
    table = run_once(benchmark, lambda: full_spmv_comparison(scale=scale))
    series = {
        platform: {name: row[platform] for name, row in table.items()}
        for platform in ("cpu", "outerspace", "graphr", "memristive",
                         "alrescha")
    }
    save_and_print(
        results_dir, "parity_table",
        render_series(series,
                      title="SpMV speedup over GPU, all platforms"),
    )
    orderings = parity_orderings(table)
    # Alrescha wins against the GPU and the peer accelerators on
    # (essentially) every dataset; the CPU occasionally rivals the GPU
    # on the sparsest power-law graphs (a real effect: irregular
    # gathers hurt SIMT throughput more than an out-of-order core).
    assert orderings["alrescha_beats_gpu"] >= 0.9
    assert orderings["alrescha_beats_outerspace"] >= 0.8
    assert orderings["alrescha_beats_memristive"] >= 0.9
    assert orderings["alrescha_beats_cpu"] == 1.0
    assert orderings["gpu_beats_cpu"] >= 0.75


def test_parity_density_correlation(benchmark, scale):
    """Alrescha's bandwidth utilization tracks block density — the
    §5.3/§5.4 observation that the locally-dense format's waste is the
    dominant loss term."""
    table = run_once(benchmark, lambda: full_spmv_comparison(scale=scale))
    rows = sorted(table.values(), key=lambda r: r["block_density"])
    low = rows[: len(rows) // 3]
    high = rows[-len(rows) // 3:]
    util_low = sum(r["alrescha_bw_utilization"] for r in low) / len(low)
    util_high = sum(r["alrescha_bw_utilization"] for r in high) / len(high)
    assert util_high > util_low
