"""Micro-benchmarks: simulator throughput of the core kernels.

These time the *simulator itself* (wall-clock per simulated kernel),
using pytest-benchmark's statistics properly (multiple rounds) — useful
for tracking performance regressions of the reproduction code base.
"""

import numpy as np
import pytest

from repro.core import Alrescha, KernelType
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def spmv_setup(request):
    matrix = load_dataset("stencil27", scale=0.1).matrix
    acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
    x = np.random.default_rng(0).normal(size=matrix.shape[0])
    return acc, x


@pytest.fixture(scope="module")
def symgs_setup():
    matrix = load_dataset("stencil27", scale=0.1).matrix
    acc = Alrescha.from_matrix(KernelType.SYMGS, matrix)
    rng = np.random.default_rng(1)
    n = matrix.shape[0]
    return acc, rng.normal(size=n), rng.normal(size=n)


def test_bench_spmv_simulation(benchmark, spmv_setup):
    acc, x = spmv_setup
    y, report = benchmark(acc.run_spmv, x)
    assert report.cycles > 0
    assert y.shape == x.shape


def test_bench_symgs_sweep_simulation(benchmark, symgs_setup):
    acc, b, x0 = symgs_setup
    x1, report = benchmark(acc.run_symgs_sweep, b, x0)
    assert report.sequential_cycles > 0
    assert x1.shape == b.shape


def test_bench_conversion(benchmark):
    from repro.core import convert
    matrix = load_dataset("stencil27", scale=0.1).matrix
    conv = benchmark(convert, KernelType.SYMGS, matrix, 8)
    assert len(conv.table) > 0


def test_bench_bfs_pass(benchmark):
    adj = load_dataset("com-orkut", scale=0.08).matrix
    at = adj.T.tocsr().copy()
    at.data = np.ones_like(at.data)
    acc = Alrescha.from_matrix(KernelType.BFS, at)
    dist = np.full(at.shape[0], np.inf)
    dist[0] = 0.0
    new, report = benchmark(acc.run_bfs_pass, dist)
    assert report.cycles > 0
    assert np.isfinite(new).any()
