"""Figure 17: graph-algorithm speedups over the CPU.

Paper's result: Alrescha averages 15.7x (BFS), 7.7x (SSSP) and 27.6x
(PR) over the CPU frameworks, beating the GraphR-class accelerator by
about 1.87x on average, with the GPU a small-single-digit factor over
the CPU.
"""

from repro.analysis import fig17_graph_speedup, render_series

from conftest import run_once, save_and_print

#: Paper means and our acceptance bands.
PAPER = {"bfs": 15.7, "sssp": 7.7, "pagerank": 27.6}
BANDS = {
    "bfs": (7.0, 32.0),
    "sssp": (3.5, 16.0),
    "pagerank": (13.0, 56.0),
}
GRAPHR_RATIO_BAND = (1.2, 3.0)   # paper: 1.87x on average


def test_fig17_graph_speedups(benchmark, scale, results_dir):
    result = run_once(
        benchmark, lambda: fig17_graph_speedup(scale=min(scale, 0.1))
    )
    blocks = []
    ratios = []
    for alg, rows in result.items():
        blocks.append(render_series(
            {"gpu_x": rows["gpu"], "graphr_x": rows["graphr"],
             "alrescha_x": rows["alrescha"]},
            title=(f"Figure 17 [{alg}]: speedup over CPU "
                   f"(paper mean {PAPER[alg]}x)"),
        ))
        summary = rows["summary"]
        lo, hi = BANDS[alg]
        assert lo < summary["alrescha_mean"] < hi, alg
        # Alrescha outruns the GPU and GraphR on average.
        assert summary["alrescha_mean"] > summary["gpu_mean"], alg
        assert summary["alrescha_mean"] > summary["graphr_mean"], alg
        ratios.append(summary["alrescha_mean"] / summary["graphr_mean"])
    save_and_print(results_dir, "fig17_graph_speedup",
                   "\n\n".join(blocks))
    mean_ratio = sum(ratios) / len(ratios)
    assert GRAPHR_RATIO_BAND[0] < mean_ratio < GRAPHR_RATIO_BAND[1]


def test_fig17_ordering_pr_gt_bfs_gt_sssp(benchmark, scale):
    """The paper's per-algorithm ordering: PR gains most, SSSP least."""
    result = run_once(
        benchmark, lambda: fig17_graph_speedup(scale=min(scale, 0.1))
    )
    pr = result["pagerank"]["summary"]["alrescha_mean"]
    bfs = result["bfs"]["summary"]["alrescha_mean"]
    sssp = result["sssp"]["summary"]["alrescha_mean"]
    assert pr > bfs > sssp
