"""Figure 18: SpMV speedup over the GPU + cache-access time share.

Paper's result: Alrescha averages 6.9x (scientific) and 13.6x (graph)
over the GPU for SpMV and about 1.7x over OuterSPACE; OuterSPACE's
execution time is dominated by partial-product cache accesses while
Alrescha's cache share stays low.
"""

from repro.analysis import fig18_spmv_speedup, render_series

from conftest import run_once, save_and_print

SCI_BAND = (3.5, 18.0)      # paper 6.9x
GRAPH_BAND = (5.0, 28.0)    # paper 13.6x
OVER_OUTERSPACE_BAND = (1.2, 3.0)  # paper 1.7x


def test_fig18_spmv_speedup(benchmark, scale, results_dir):
    result = run_once(benchmark, lambda: fig18_spmv_speedup(scale=scale))
    save_and_print(
        results_dir, "fig18_spmv_speedup",
        render_series(
            {
                "alrescha_x": result["alrescha_speedup"],
                "outerspace_x": result["outerspace_speedup"],
                "alr_cache_frac": result["alrescha_cache_fraction"],
                "os_cache_frac": result["outerspace_cache_fraction"],
            },
            title=("Figure 18: SpMV speedup over GPU "
                   "(paper: sci 6.9x, graph 13.6x)"),
        ),
    )
    summary = result["summary"]
    assert SCI_BAND[0] < summary["alrescha_scientific_mean"] < SCI_BAND[1]
    assert GRAPH_BAND[0] < summary["alrescha_graph_mean"] < GRAPH_BAND[1]
    assert OVER_OUTERSPACE_BAND[0] < summary["alrescha_over_outerspace"] \
        < OVER_OUTERSPACE_BAND[1]


def test_fig18_graph_gains_exceed_scientific(benchmark, scale):
    """The paper's ordering: SpMV gains are larger on graph datasets."""
    result = run_once(benchmark, lambda: fig18_spmv_speedup(scale=scale))
    summary = result["summary"]
    assert summary["alrescha_graph_mean"] > \
        summary["alrescha_scientific_mean"]


def test_fig18_cache_share_contrast(benchmark, scale):
    """OuterSPACE spends most of its time in cache accesses; Alrescha's
    chunked, locality-guaranteed accesses keep its share low."""
    result = run_once(benchmark, lambda: fig18_spmv_speedup(scale=scale))
    for name in result["alrescha_cache_fraction"]:
        assert result["alrescha_cache_fraction"][name] < 0.5, name
        assert result["outerspace_cache_fraction"][name] > 0.5, name
