"""Table 1: sparse kernels, their phases and their dense data paths.

Asserts the implementation agrees with Table 1: every kernel lowers to
exactly the dense data paths the table lists, and the phase operations
(multiply/sum, sum/min, AND-div/sum) match the engine configuration the
data paths request.
"""

import numpy as np

from repro.analysis import TABLE1, render_table
from repro.core import DataPathType, KernelType, convert
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def _convert_all(scale):
    sci = load_dataset("stencil27", scale=scale).matrix
    adj = load_dataset("com-orkut", scale=scale).matrix.T.tocsr()
    return {
        "symgs": convert(KernelType.SYMGS, sci, omega=8),
        "spmv": convert(KernelType.SPMV, sci, omega=8),
        "bfs": convert(KernelType.BFS, adj, omega=8),
        "sssp": convert(KernelType.SSSP, adj, omega=8),
        "pagerank": convert(KernelType.PAGERANK, adj, omega=8),
    }


def test_tab1_kernel_to_datapath_mapping(benchmark, scale, results_dir):
    conversions = run_once(benchmark,
                           lambda: _convert_all(max(scale, 0.08)))
    rows = []
    for kernel, conv in conversions.items():
        emitted = sorted({e.dp.value for e in conv.table})
        expected = sorted(TABLE1[kernel]["dense_datapaths"])
        rows.append([kernel, TABLE1[kernel]["application"],
                     "/".join(emitted),
                     TABLE1[kernel]["phase1_operation"],
                     TABLE1[kernel]["phase2_reduce"]])
        assert emitted == expected, kernel
    save_and_print(
        results_dir, "tab01_kernel_datapaths",
        render_table(
            ["kernel", "application", "dense data paths",
             "phase1 op", "phase2 reduce"],
            rows, title="Table 1: kernels and dense data paths",
        ),
    )


def test_tab1_symgs_is_majority_parallel(benchmark, scale):
    sci = load_dataset("stencil27", scale=max(scale, 0.08)).matrix
    conv = run_once(benchmark,
                    lambda: convert(KernelType.SYMGS, sci, omega=8))
    gemv = sum(1 for e in conv.table if e.dp is DataPathType.GEMV)
    dsymgs = sum(1 for e in conv.table if e.dp is DataPathType.D_SYMGS)
    # "a majority of parallelizable GEMV and a minority of sequential
    # D-SymGS data paths" (§4.1).
    assert gemv > dsymgs


def test_tab1_phase_semantics_match(benchmark):
    """The reduce operation per data path matches Table 1 phase 2."""
    from repro.core.datapaths import dbfs_block, dpr_block, dsssp_block
    from repro.core import FixedComputeUnit, ReconfigurableComputeUnit

    fcu = FixedComputeUnit()
    rcu = ReconfigurableComputeUnit()
    block = np.zeros((8, 8))
    block[0, 1] = 1.0
    block[0, 2] = 1.0

    def check():
        # BFS/SSSP reduce with min.
        dist = np.array([9.0, 1.0, 2.0, 9, 9, 9, 9, 9])
        assert dbfs_block(fcu, block, dist)[0] == 2.0       # min(1+1, 2+1)
        assert dsssp_block(fcu, block, dist)[0] == 2.0
        # PR reduces with sum over rank/outdeg.
        rank = np.array([0.0, 0.3, 0.6, 0, 0, 0, 0, 0])
        deg = np.array([1.0, 3.0, 2.0, 1, 1, 1, 1, 1])
        out = dpr_block(fcu, rcu, block, rank, deg)
        assert abs(out[0] - (0.1 + 0.3)) < 1e-12
        return True

    assert run_once(benchmark, check)
