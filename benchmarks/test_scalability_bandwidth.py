"""Scalability study: the paper's concluding claim.

§6: Alrescha "enables using high-bandwidth memory at low-cost for fast
acceleration of sparse problems."  Mechanistically: the streaming data
paths are memory-bound, so SpMV-class kernels scale with the channel,
while the only latency-bound element — the D-SymGS forwarding chain —
is a small fraction of the work after Algorithm 1's decomposition.
"""

from repro.analysis import bandwidth_sweep, render_table
from repro.datasets import load_dataset

from conftest import run_once, save_and_print


def test_bandwidth_scalability(benchmark, scale, results_dir):
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    sweep = run_once(
        benchmark,
        lambda: bandwidth_sweep(matrix, [144e9, 288e9, 576e9, 1152e9]),
    )
    rows = []
    for bw, data in sorted(sweep.items()):
        rows.append([
            f"{bw / 1e9:.0f} GB/s",
            data["spmv_cycles"],
            data["spmv_speedup_vs_base"],
            data["symgs_cycles"],
            data["symgs_speedup_vs_base"],
        ])
    save_and_print(
        results_dir, "scalability_bandwidth",
        render_table(
            ["bandwidth", "spmv cycles", "spmv speedup",
             "symgs cycles", "symgs speedup"],
            rows, title="Scalability: memory-bandwidth sweep (§6 claim)",
        ),
    )
    # SpMV tracks bandwidth: 8x the channel buys most of 8x.
    assert sweep[1152e9]["spmv_speedup_vs_base"] > 4.0
    # SymGS also gains (its GEMV majority is streamed) but saturates
    # against the dependent chain.
    assert 1.0 < sweep[1152e9]["symgs_speedup_vs_base"] \
        < sweep[1152e9]["spmv_speedup_vs_base"]


def test_dsymgs_chain_becomes_the_ceiling(benchmark, scale):
    """At high bandwidth the sequential fraction of SymGS grows —
    everything else got faster, the chain did not."""
    matrix = load_dataset("stencil27", scale=max(scale, 0.1)).matrix
    sweep = run_once(benchmark,
                     lambda: bandwidth_sweep(matrix, [144e9, 1152e9]))
    assert sweep[1152e9]["symgs_sequential_fraction"] > \
        sweep[144e9]["symgs_sequential_fraction"]
