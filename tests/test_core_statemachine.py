"""Tests for the Figure 8 kernel state machine."""

import pytest

from repro.core import (
    ACCELERATED,
    HOST,
    KernelStateMachine,
    pcg_state_machine,
    walk_pcg,
)
from repro.errors import ConfigError


class TestStateMachineBasics:
    def test_add_and_visit(self):
        sm = KernelStateMachine()
        sm.add_state("a", ACCELERATED, "spmv")
        sm.add_state("b", HOST, "dot")
        sm.add_transition("a", "b")
        sm.visit("a")
        sm.visit("b")
        assert sm.walk == ["a", "b"]

    def test_illegal_transition_rejected(self):
        sm = KernelStateMachine()
        sm.add_state("a", ACCELERATED, "spmv")
        sm.add_state("b", HOST, "dot")
        sm.visit("a")
        with pytest.raises(ConfigError):
            sm.visit("b")

    def test_unknown_state_rejected(self):
        sm = KernelStateMachine()
        with pytest.raises(ConfigError):
            sm.visit("ghost")
        sm.add_state("a", HOST, "dot")
        with pytest.raises(ConfigError):
            sm.add_transition("a", "ghost")

    def test_duplicate_state_rejected(self):
        sm = KernelStateMachine()
        sm.add_state("a", HOST, "dot")
        with pytest.raises(ConfigError):
            sm.add_state("a", HOST, "dot")

    def test_invalid_kind_rejected(self):
        sm = KernelStateMachine()
        with pytest.raises(ConfigError):
            sm.add_state("a", "quantum", "dot")

    def test_reset_walk(self):
        sm = KernelStateMachine()
        sm.add_state("a", HOST, "dot")
        sm.visit("a")
        sm.reset_walk()
        assert sm.walk == []


class TestPCGStateMachine:
    def test_figure2_walk_is_legal(self):
        sm = pcg_state_machine()
        walk_pcg(sm, iterations=5)  # raises on any illegal transition
        assert len(sm.walk) == 3 + 5 * 7

    def test_accelerated_states(self):
        sm = pcg_state_machine()
        accelerated = {s.kernel for s in sm.states.values()
                       if s.kind == ACCELERATED}
        # The two kernels launched to the accelerator (Figure 8):
        assert accelerated == {"spmv", "symgs"}

    def test_kernel_switches_per_iteration(self):
        """Each PCG iteration switches the accelerator spmv<->symgs
        twice — the switching Alrescha's reconfigurability targets."""
        sm = pcg_state_machine()
        walk_pcg(sm, iterations=1)
        base = sm.accelerator_switches()
        sm2 = pcg_state_machine()
        walk_pcg(sm2, iterations=4)
        assert sm2.accelerator_switches() - base == 3 * 2

    def test_walk_requires_iterations(self):
        with pytest.raises(ConfigError):
            walk_pcg(pcg_state_machine(), iterations=0)

    def test_matches_backend_switch_count(self, banded_spd, rng):
        """The state-machine prediction equals the backend's measured
        kernel-switch count for the same iteration count."""
        from repro.solvers import AcceleratorBackend, pcg as run_pcg

        backend = AcceleratorBackend(banded_spd)
        result = run_pcg(backend, rng.normal(size=40), tol=1e-10,
                         max_iter=30)
        sm = pcg_state_machine()
        walk_pcg(sm, iterations=result.iterations)
        # The solver breaks out after the convergence check, skipping
        # the final precondition, so it may save exactly one switch.
        assert sm.accelerator_switches() - backend.kernel_switches in (0, 1)
