"""Tests for Graph500-style BFS parent tracking."""

import numpy as np
import pytest

from repro.graph import bfs_reference, run_bfs


def verify_bfs_tree(adj, src, dist, parents) -> None:
    """Graph500-style tree verification: every reached vertex's parent
    is a real predecessor exactly one level closer to the source."""
    adj = adj.tocsr()
    n = adj.shape[0]
    for v in range(n):
        if v == src:
            assert parents[v] == src
            assert dist[v] == 0.0
        elif np.isfinite(dist[v]):
            u = int(parents[v])
            assert u >= 0, f"reached vertex {v} lacks a parent"
            assert adj[u, v] != 0, f"parent edge {u}->{v} missing"
            assert dist[u] == dist[v] - 1.0, \
                f"parent {u} not one level above {v}"
        else:
            assert parents[v] == -1, f"unreached {v} has a parent"


class TestBFSParents:
    def test_tree_valid_on_small_graph(self, small_digraph):
        result = run_bfs(small_digraph, 0, return_parents=True)
        verify_bfs_tree(small_digraph, 0, result.values, result.parents)

    def test_tree_valid_on_random_graph(self, random_digraph):
        result = run_bfs(random_digraph, 0, return_parents=True)
        verify_bfs_tree(random_digraph, 0, result.values, result.parents)

    def test_distances_unchanged_by_parent_tracking(self, random_digraph):
        plain = run_bfs(random_digraph, 0)
        with_parents = run_bfs(random_digraph, 0, return_parents=True)
        np.testing.assert_array_equal(
            np.nan_to_num(plain.values, posinf=-1.0),
            np.nan_to_num(with_parents.values, posinf=-1.0),
        )

    def test_distances_match_reference(self, random_digraph):
        result = run_bfs(random_digraph, 0, return_parents=True)
        expected = bfs_reference((random_digraph != 0).astype(float), 0)
        np.testing.assert_array_equal(
            np.nan_to_num(result.values, posinf=-1.0),
            np.nan_to_num(expected, posinf=-1.0),
        )

    def test_plain_bfs_has_no_parents(self, random_digraph):
        result = run_bfs(random_digraph, 0)
        assert result.parents is None

    def test_parent_report_accounts_extra_writeback(self, random_digraph):
        """Carrying the parent tag costs write-back bytes, visible in
        the report's streamed volume."""
        plain = run_bfs(random_digraph, 0)
        tagged = run_bfs(random_digraph, 0, return_parents=True)
        per_pass_plain = plain.report.streamed_bytes / plain.iterations
        per_pass_tagged = tagged.report.streamed_bytes / tagged.iterations
        assert per_pass_tagged > per_pass_plain

    def test_dataset_scale(self):
        from repro.datasets import load_dataset
        adj = load_dataset("kron-g500-logn21", scale=0.06).matrix
        result = run_bfs(adj, 0, return_parents=True)
        verify_bfs_tree(adj, 0, result.values, result.parents)
