"""ChaosModel: seeded incident draws, spawning, and parse hardening.

The chaos layer's contract is the same as the fault layer's: every
draw is a pure function of the seed, per-device streams are
independent siblings of one base seed, and malformed CLI specs die
with a :class:`~repro.errors.ConfigError` that *names the offending
token* — for ``--chaos`` and ``--inject-faults`` alike, since both
now share :func:`~repro.sim.chaos.parse_rate_spec`.
"""

import math

import pytest

from repro.errors import ConfigError
from repro.sim.chaos import (
    CHAOS_KINDS,
    ChaosModel,
    Incident,
    parse_rate_spec,
)
from repro.sim.faults import FaultModel


class TestIncidentDraws:
    def test_same_seed_same_sequence(self):
        def draw(n):
            m = ChaosModel(rate=0.3, seed=42, device_id=0)
            out = []
            now = 0.0
            for _ in range(n):
                inc = m.next_incident(now)
                out.append(inc)
                now = inc.until
            return out

        assert draw(6) == draw(6)

    def test_incidents_are_strictly_sequential(self):
        m = ChaosModel(rate=0.5, seed=7, device_id=2)
        now = 0.0
        for _ in range(20):
            inc = m.next_incident(now)
            assert inc.at > now  # exponential gap is strictly positive
            assert inc.until > inc.at
            assert inc.duration == inc.until - inc.at
            assert inc.kind in CHAOS_KINDS
            assert inc.device_id == 2
            now = inc.until

    def test_zero_rate_never_draws(self):
        m = ChaosModel(rate=0.0, seed=1)
        assert m.next_incident(0.0) is None
        assert m.drawn == 0

    def test_log_records_every_draw(self):
        m = ChaosModel(rate=0.4, seed=3, device_id=0)
        now = 0.0
        for _ in range(30):
            now = m.next_incident(now).until
        assert m.drawn == 30
        assert m.drawn_of("crash") + m.drawn_of("hang") == 30
        assert all(isinstance(i, Incident) for i in m.log)

    def test_kinds_restriction_is_respected(self):
        m = ChaosModel(rate=0.4, seed=3, kinds=("hang",), device_id=0)
        now = 0.0
        for _ in range(25):
            now = m.next_incident(now).until
        assert m.drawn_of("crash") == 0
        assert m.drawn_of("hang") == 25

    def test_reset_rewinds_stream_and_clears_log(self):
        m = ChaosModel(rate=0.3, seed=11, device_id=0)
        first = m.next_incident(0.0)
        m.reset()
        assert m.drawn == 0
        assert m.next_incident(0.0) == first

    def test_rate_scales_mean_gap(self):
        # Higher rate => shorter gaps, same seeded duration stream
        # shape.  Compare empirical mean gaps across many draws.
        def mean_gap(rate):
            m = ChaosModel(rate=rate, seed=5, device_id=0)
            gaps, now = [], 0.0
            for _ in range(300):
                inc = m.next_incident(now)
                gaps.append(inc.at - now)
                now = inc.until
            return sum(gaps) / len(gaps)

        assert mean_gap(0.4) < mean_gap(0.1)


class TestSpawn:
    def test_spawn_is_deterministic_and_independent(self):
        base = ChaosModel(rate=0.3, seed=9)
        a1 = base.spawn(0)
        a2 = base.spawn(0)
        b = base.spawn(1)
        assert a1.seed == a2.seed
        assert a1.seed != b.seed
        assert a1.device_id == 0 and b.device_id == 1
        assert a1.next_incident(0.0) == a2.next_incident(0.0)
        assert a1.next_incident(0.0) != b.next_incident(0.0)

    def test_spawn_inherits_configuration(self):
        base = ChaosModel(rate=0.2, seed=1, kinds=("crash",),
                          mean_gap_cycles=500.0,
                          mean_crash_cycles=100.0)
        child = base.spawn(3)
        assert child.rate == 0.2
        assert child.kinds == ("crash",)
        assert child.mean_gap_cycles == 500.0
        assert child.mean_crash_cycles == 100.0


class TestConstructionValidation:
    @pytest.mark.parametrize("rate", [-0.1, 1.5, math.nan])
    def test_bad_rate(self, rate):
        with pytest.raises(ConfigError):
            ChaosModel(rate=rate)

    def test_bad_kinds(self):
        with pytest.raises(ConfigError):
            ChaosModel(rate=0.1, kinds=("crash", "meteor"))
        with pytest.raises(ConfigError):
            ChaosModel(rate=0.1, kinds=())

    @pytest.mark.parametrize("field", ["mean_gap_cycles",
                                       "mean_crash_cycles",
                                       "mean_hang_cycles"])
    def test_bad_means(self, field):
        with pytest.raises(ConfigError):
            ChaosModel(rate=0.1, **{field: 0.0})


class TestParseRateSpec:
    """Shared ``RATE[:SEED[:KINDS]]`` parser: every malformed token is
    a ConfigError naming the token, never a half-accepted spec or a
    bare traceback (ValueError)."""

    def test_full_spec(self):
        assert parse_rate_spec("--chaos", "0.2:7:crash,hang",
                               CHAOS_KINDS) == (0.2, 7,
                                                ("crash", "hang"))

    def test_rate_only_and_rate_seed(self):
        assert parse_rate_spec("--chaos", "0.5", CHAOS_KINDS) \
            == (0.5, 0, None)
        assert parse_rate_spec("--chaos", "0.5:31", CHAOS_KINDS) \
            == (0.5, 31, None)

    @pytest.mark.parametrize("spec,needle", [
        ("", "empty"),
        ("   ", "empty"),
        ("nope", "'nope'"),
        ("0.5:x", "'x'"),
        ("0.5:1.5", "'1.5'"),
        ("-0.1", "'-0.1'"),
        ("1.01", "'1.01'"),
        ("nan", "'nan'"),
        ("inf", "'inf'"),
        ("0.2:1:meteor", "'meteor'"),
        ("0.2:1:crash:extra", "4"),
    ])
    def test_malformed_specs_name_the_token(self, spec, needle):
        with pytest.raises(ConfigError) as exc:
            parse_rate_spec("--chaos", spec, CHAOS_KINDS)
        assert needle in str(exc.value)

    def test_non_string_spec_rejected(self):
        with pytest.raises(ConfigError):
            parse_rate_spec("--chaos", None, CHAOS_KINDS)


class TestModelParse:
    def test_chaos_parse_round_trip(self):
        m = ChaosModel.parse("0.25:13:hang")
        assert m.rate == 0.25
        assert m.seed == 13
        assert m.kinds == ("hang",)

    def test_chaos_parse_defaults(self):
        m = ChaosModel.parse("0.1")
        assert (m.rate, m.seed, m.kinds) == (0.1, 0, CHAOS_KINDS)

    def test_fault_parse_still_works_and_gains_kinds(self):
        fm = FaultModel.parse("0.05:7")
        assert (fm.rate, fm.seed) == (0.05, 7)
        fm2 = FaultModel.parse("0.05:7:bitflip")
        assert fm2.kinds == ("bitflip",)

    @pytest.mark.parametrize("spec", ["junk", "0.5:", "2.0", "-1",
                                      "0.1:1:unknown"])
    def test_fault_parse_hardened(self, spec):
        # "0.5:" has an empty seed field — allowed (defaults to 0);
        # everything else raises.
        if spec == "0.5:":
            assert FaultModel.parse(spec).seed == 0
            return
        with pytest.raises(ConfigError):
            FaultModel.parse(spec)

    def test_chaos_parse_errors_name_the_flag(self):
        with pytest.raises(ConfigError) as exc:
            ChaosModel.parse("oops")
        assert "--chaos" in str(exc.value)
        with pytest.raises(ConfigError) as exc:
            FaultModel.parse("oops")
        assert "--inject-faults" in str(exc.value)


class TestPoolChaosModel:
    """Fleet-scoped outages share the exponential machinery."""

    def _model(self, **kw):
        from repro.sim.chaos import PoolChaosModel
        return PoolChaosModel(**kw)

    def test_same_seed_same_sequence(self):
        a = self._model(rate=0.5, seed=3)
        b = self._model(rate=0.5, seed=3)
        for _ in range(5):
            ia, ib = a.next_incident(0.0), b.next_incident(0.0)
            assert (ia.at, ia.until) == (ib.at, ib.until)
            assert ia.kind == "outage"

    def test_outages_are_strictly_sequential(self):
        m = self._model(rate=1.0, seed=1)
        now = 0.0
        for _ in range(10):
            inc = m.next_incident(now)
            assert inc.at > now
            assert inc.until > inc.at
            now = inc.until

    def test_zero_rate_never_draws(self):
        assert self._model(rate=0.0).next_incident(0.0) is None

    def test_spawn_is_deterministic_and_independent(self):
        base = self._model(rate=0.8, seed=7)
        p0a = base.spawn(0).next_incident(0.0)
        p0b = base.spawn(0).next_incident(0.0)
        p1 = base.spawn(1).next_incident(0.0)
        assert (p0a.at, p0a.until) == (p0b.at, p0b.until)
        assert (p0a.at, p0a.until) != (p1.at, p1.until)
        assert base.spawn(2).pool_id == 2

    @pytest.mark.parametrize("rate", [-0.1, 1.5, float("nan")])
    def test_bad_rate(self, rate):
        with pytest.raises(ConfigError, match="pool-chaos rate"):
            self._model(rate=rate)

    def test_parse_round_trip(self):
        from repro.sim.chaos import PoolChaosModel
        m = PoolChaosModel.parse("0.3:17")
        assert (m.rate, m.seed) == (0.3, 17)
        assert PoolChaosModel.parse("0.3").seed == 0


class TestRateSpecConsumersAgree:
    """Every RATE[:SEED[:KINDS]] flag fails the same way.

    ``--chaos``, ``--inject-faults`` and ``--pool-chaos`` all parse
    through :func:`~repro.sim.chaos.parse_rate_spec`; a malformed
    token must produce the same message shape from each — naming the
    flag, the bad token, and the spec — so an operator's muscle memory
    transfers between them.
    """

    def _consumers(self):
        from repro.sim.chaos import PoolChaosModel
        return [
            ("--chaos", ChaosModel.parse),
            ("--inject-faults", FaultModel.parse),
            ("--pool-chaos", PoolChaosModel.parse),
        ]

    @pytest.mark.parametrize("spec,token", [
        ("junk", "'junk'"),
        ("2.0", "'2.0'"),
        ("0.5:x", "'x'"),
        ("0.5:1:2:3", None),
    ])
    def test_malformed_tokens_fail_uniformly(self, spec, token):
        for flag, parse in self._consumers():
            with pytest.raises(ConfigError) as exc:
                parse(spec)
            msg = str(exc.value)
            assert flag in msg, f"{flag} missing from: {msg}"
            assert f"{spec!r}" in msg or "expects RATE" in msg
            if token is not None:
                assert token in msg, f"token not named in: {msg}"

    def test_pool_chaos_rejects_foreign_kinds(self):
        from repro.sim.chaos import PoolChaosModel
        with pytest.raises(ConfigError, match="crash"):
            PoolChaosModel.parse("0.5:1:crash")
        # The one legal kind is accepted (and is the default anyway).
        assert PoolChaosModel.parse("0.5:1:outage").rate == 0.5
