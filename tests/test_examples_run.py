"""The examples must actually run — guarded against rot.

Each example executes in-process (runpy) with small arguments; any
exception or failed internal assertion fails the test.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list) -> None:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize("name,argv", [
    ("quickstart.py", []),
    ("pcg_scientific.py", ["af_shell", "0.06"]),
    ("graph_analytics.py", ["Youtube", "0.06"]),
    ("storage_formats.py", []),
    ("reconfiguration_trace.py", []),
    ("hpcg_multigrid.py", ["8"]),
    ("spmm_panel.py", ["af_shell", "0.06"]),
    ("compile_and_run.py", ["af_shell", "0.06"]),
])
def test_example_runs(name, argv, capsys):
    run_example(name, argv)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_pcg_example_rejects_graph_dataset():
    with pytest.raises(SystemExit):
        run_example("pcg_scientific.py", ["Youtube", "0.06"])


def test_mg_example_rejects_bad_grid():
    with pytest.raises(SystemExit):
        run_example("hpcg_multigrid.py", ["7"])
