"""Fleet serving: routing, pool-outage failover, probe-gated recovery.

The contracts under test:

* **Single-pool identity** — a 1-pool fleet without pool chaos is the
  plain scheduler with a fleet-shaped report wrapper: per-job results
  and the nested :class:`~repro.runtime.PoolReport` are field-identical
  to :func:`repro.runtime.serve` (the fingerprint corpus pins the solo
  path; this pins the wrapper against it).
* **Outage storms never lose work** — with at least one healthy
  replica, a seeded pool-outage storm finishes with ``failed == 0``:
  every evicted job is re-routed (charged real transfer cycles) or
  answered degraded, never dropped.
* **Probe-gated readmission** — a pool that served traffic is
  readmitted only after a probe job succeeds on it, so every closed
  outage of a loaded pool shows at least one probe.
* **Determinism** — same trace + seeds + fleet config ⇒ byte-identical
  :func:`~repro.runtime.fleet_report_json` from two fresh fleets.
* **Cross-pool bit-reproducibility** — a job re-routed to a different
  pool streams a bit-identical operand (the operand cache keys on the
  job, never the pool), so its answer CRC matches a chaos-free run.
"""

from dataclasses import fields

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.observe import Tracer, check_trace
from repro.runtime import (
    DevicePool,
    Fleet,
    FleetConfig,
    PoolChaosModel,
    PoolReport,
    fleet_report_json,
    make_trace,
    serve,
    serve_fleet,
)
from repro.runtime.fleet import content_key, home_pool
from repro.runtime.jobs import TraceSpec
from repro.sim.chaos import ChaosModel

STORM = dict(
    pool_chaos=PoolChaosModel(rate=1.0, seed=0, mean_gap_cycles=15_000,
                              mean_outage_cycles=8_000),
    fleet_config=FleetConfig(n_pools=4, replicas=2),
)


def storm_chaos(seed):
    return PoolChaosModel(rate=1.0, seed=seed, mean_gap_cycles=15_000,
                          mean_outage_cycles=8_000)


class TestSinglePoolIdentity:
    def test_results_and_report_match_serve(self):
        solo_res, solo_rep = serve(150, n_devices=4, fault_rate=0.1,
                                   seed=13)
        fleet_res, fleet_rep = serve_fleet(150, n_devices=4,
                                           fault_rate=0.1, seed=13)
        assert fleet_res == solo_res
        for f in fields(PoolReport):
            assert (getattr(fleet_rep.pool_stats[0].report, f.name)
                    == getattr(solo_rep, f.name)), f.name

    def test_identity_holds_under_device_chaos(self):
        kwargs = dict(n_requests=120, n_devices=3, fault_rate=0.1,
                      seed=7, chaos=ChaosModel(rate=0.4, seed=7))
        solo_res, solo_rep = serve(**kwargs)
        fleet_res, fleet_rep = serve_fleet(**kwargs)
        assert fleet_res == solo_res
        assert fleet_rep.pool_stats[0].report == solo_rep

    def test_fleet_rollups_match_the_one_pool(self):
        _, rep = serve_fleet(100, n_devices=2, fault_rate=0.05, seed=3)
        inner = rep.pool_stats[0].report
        assert rep.ok == inner.ok
        assert rep.failed == inner.failed
        assert rep.reroutes == 0
        assert rep.outages == 0
        assert rep.downtime_cycles == 0.0


class TestRouting:
    def test_replicas_are_consecutive_from_home(self):
        trace = make_trace(TraceSpec(n_requests=60, seed=1))
        fleet = Fleet(2, FleetConfig(n_pools=3, replicas=2), seed=1)
        fleet.run(trace)
        for rec in fleet._records.values():
            key = content_key(rec.origin)
            home = home_pool(key, 3)
            assert home in rec.replicas
            if len(rec.replicas) == 2:
                assert (home + 1) % 3 in rec.replicas

    def test_cold_keys_are_not_replicated(self):
        # One dominant key plus a single cold job: the cold key stays
        # on its home pool only.
        from repro.runtime import Job
        jobs = [Job(job_id=i, kernel="spmv", dataset="stencil27",
                    scale=0.05, arrival_cycle=float(i * 100),
                    deadline_cycles=50_000.0) for i in range(20)]
        jobs.append(Job(job_id=99, kernel="symgs", dataset="af_shell",
                        scale=0.05, arrival_cycle=50.0,
                        deadline_cycles=50_000.0))
        fleet = Fleet(2, FleetConfig(n_pools=3, replicas=3,
                                     hot_fraction=0.5), seed=0)
        fleet.run(jobs)
        assert len(fleet._records[0].replicas) == 3
        assert len(fleet._records[99].replicas) == 1

    def test_hot_fraction_zero_replicates_nothing(self):
        # Regression: a zero hot floor used to make *every* key "hot"
        # (all counts are >= 0), silently replicating the whole trace.
        # 0.0 must disable replication outright.
        from repro.runtime import Job
        jobs = [Job(job_id=i, kernel="spmv", dataset="stencil27",
                    scale=0.05, arrival_cycle=float(i * 100),
                    deadline_cycles=50_000.0) for i in range(20)]
        fleet = Fleet(2, FleetConfig(n_pools=3, replicas=3,
                                     hot_fraction=0.0), seed=0)
        fleet.run(jobs)
        assert all(len(rec.replicas) == 1
                   for rec in fleet._records.values())

    def test_hot_fraction_one_needs_the_whole_trace(self):
        # At the other end, 1.0 replicates only a key carrying every
        # job of the trace — a 95% key must stay unreplicated.
        from repro.runtime import Job
        jobs = [Job(job_id=i, kernel="spmv", dataset="stencil27",
                    scale=0.05, arrival_cycle=float(i * 100),
                    deadline_cycles=50_000.0) for i in range(19)]
        jobs.append(Job(job_id=99, kernel="symgs", dataset="af_shell",
                        scale=0.05, arrival_cycle=50.0,
                        deadline_cycles=50_000.0))
        mixed = Fleet(2, FleetConfig(n_pools=3, replicas=3,
                                     hot_fraction=1.0), seed=0)
        mixed.run(jobs)
        assert all(len(rec.replicas) == 1
                   for rec in mixed._records.values())
        pure = Fleet(2, FleetConfig(n_pools=3, replicas=3,
                                    hot_fraction=1.0), seed=0)
        pure.run(jobs[:19])  # one key carries 100% of the trace
        assert all(len(rec.replicas) == 3
                   for rec in pure._records.values())

    def test_duplicate_job_ids_rejected(self):
        from repro.runtime import Job
        j = Job(job_id=1, kernel="spmv", dataset="stencil27",
                scale=0.05, arrival_cycle=0.0, deadline_cycles=1e4)
        fleet = Fleet(2, FleetConfig(n_pools=2), seed=0)
        with pytest.raises(ConfigError, match="duplicate job_id 1"):
            fleet.run([j, j])


class TestOutageStorm:
    def test_storm_with_replicas_never_fails_jobs(self):
        for seed in range(4):
            _, rep = serve_fleet(
                300, n_devices=3, fault_rate=0.1, seed=seed,
                pool_chaos=storm_chaos(seed),
                fleet_config=FleetConfig(n_pools=3, replicas=2))
            assert rep.outages > 0, f"storm seed {seed} drew nothing"
            assert rep.failed == 0, f"lost jobs under seed {seed}"
            assert (rep.ok + rep.timeout + rep.degraded + rep.rejected
                    == rep.requests)

    def test_every_reroute_is_charged(self):
        cfg = FleetConfig(n_pools=4, replicas=2, reroute_cycles=750.0)
        res, rep = serve_fleet(400, n_devices=3, fault_rate=0.1,
                               seed=2, pool_chaos=storm_chaos(2),
                               fleet_config=cfg)
        assert rep.reroutes > 0
        assert rep.reroute_cycles_charged == rep.reroutes * 750.0
        assert rep.reroutes == sum(r.reroutes for r in res)
        assert rep.reroutes == sum(
            p.reroutes_out for p in rep.pool_stats) + sum(
            1 for r in res if r.reroutes and r.pool_id == -1)

    def test_rerouted_jobs_name_both_pools(self):
        res, rep = serve_fleet(400, n_devices=3, fault_rate=0.1,
                               seed=2, pool_chaos=storm_chaos(2),
                               fleet_config=FleetConfig(n_pools=4,
                                                        replicas=2))
        moved = [r for r in res if r.reroutes > 0]
        assert moved, "storm produced no re-routes"
        for r in moved:
            assert r.answered or r.status.value == "rejected"

    def test_downtime_and_outages_aggregate_pool_stats(self):
        _, rep = serve_fleet(300, n_devices=3, fault_rate=0.1, seed=5,
                             pool_chaos=storm_chaos(5),
                             fleet_config=FleetConfig(n_pools=3,
                                                      replicas=2))
        assert rep.outages == sum(p.outages for p in rep.pool_stats)
        assert rep.downtime_cycles == pytest.approx(
            sum(p.downtime_cycles for p in rep.pool_stats))
        assert rep.probes == sum(p.probes for p in rep.pool_stats)


class TestProbeGatedReadmission:
    def test_loaded_pools_readmit_only_at_probe_completion(self):
        """With one hot key replicated over both pools, every pool
        holds a probe key — so every closed outage window must end
        exactly where a probe attempt on that pool's device 0 ends:
        readmission happens at probe completion, never at the drawn
        window edge."""
        from repro.runtime import Job
        jobs = [Job(job_id=i, kernel="spmv", dataset="stencil27",
                    scale=0.05, arrival_cycle=float(i * 300),
                    deadline_cycles=60_000.0, seed=i)
                for i in range(200)]
        tracer = Tracer()
        _, rep = serve_fleet(
            0, n_devices=2, fault_rate=0.0, seed=4, trace=jobs,
            tracer=tracer,
            pool_chaos=PoolChaosModel(rate=1.0, seed=4,
                                      mean_gap_cycles=8_000,
                                      mean_outage_cycles=4_000),
            fleet_config=FleetConfig(n_pools=2, replicas=2,
                                     hot_fraction=0.0))
        closed = [s for s in tracer.spans
                  if s.track == "fleet" and s.cat == "outage"
                  and not s.instant]
        assert closed, "no outage closed during the storm"
        assert rep.probes > 0
        probe_ends = {}
        for s in tracer.spans:
            if s.cat == "probe":
                probe_ends.setdefault(s.track, set()).add(
                    round(s.end, 6))
        for out in closed:
            pool = int(out.args["pool"])
            ends = probe_ends.get(f"p{pool}.device0", set())
            assert round(out.end, 6) in ends, (
                f"pool {pool} readmitted at {out.end} without a probe "
                f"completing there")

    def test_probe_spans_are_recorded_on_the_pool(self):
        tracer = Tracer()
        serve_fleet(400, n_devices=3, fault_rate=0.1, seed=4,
                    tracer=tracer, pool_chaos=storm_chaos(4),
                    fleet_config=FleetConfig(n_pools=3, replicas=2))
        probes = [s for s in tracer.spans if s.cat == "probe"]
        assert probes, "no probe spans recorded"
        for s in probes:
            assert s.track.endswith(".device0")

    def test_outage_windows_bound_probe_free_service(self):
        tracer = Tracer()
        serve_fleet(400, n_devices=3, fault_rate=0.15, seed=6,
                    tracer=tracer, pool_chaos=storm_chaos(6),
                    chaos=ChaosModel(rate=0.3, seed=6),
                    fleet_config=FleetConfig(n_pools=4, replicas=2))
        violations = check_trace(tracer)
        assert violations == []


class TestDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16),
           n_pools=st.integers(min_value=1, max_value=4),
           replicas=st.integers(min_value=1, max_value=3))
    def test_same_inputs_byte_identical_fleet_report(
            self, seed, n_pools, replicas):
        def run():
            return serve_fleet(
                60, n_devices=2, fault_rate=0.1, seed=seed,
                scale=0.04,
                pool_chaos=PoolChaosModel(rate=0.8, seed=seed,
                                          mean_gap_cycles=10_000,
                                          mean_outage_cycles=5_000),
                fleet_config=FleetConfig(n_pools=n_pools,
                                         replicas=replicas))[1]
        assert fleet_report_json(run()) == fleet_report_json(run())

    def test_report_json_is_canonical(self):
        _, rep = serve_fleet(50, n_devices=2, seed=0)
        payload = fleet_report_json(rep)
        assert payload.endswith("\n")
        assert ": " not in payload  # fixed separators, no pretty print


class TestCrossPoolBitReproducibility:
    def test_operand_is_pool_independent(self):
        """The operand cache keys on (dataset, scale, seed) — two pools
        with different fault seeds stream bit-identical operands."""
        from repro.runtime import Job
        job = Job(job_id=0, kernel="spmv", dataset="stencil27",
                  scale=0.05, arrival_cycle=0.0,
                  deadline_cycles=1e5, seed=42)
        pool_a = DevicePool(2, fault_rate=0.3, seed=1,
                            track_prefix="p0.")
        pool_b = DevicePool(2, fault_rate=0.3, seed=999_983,
                            track_prefix="p1.")
        np.testing.assert_array_equal(pool_a.operand(job),
                                      pool_b.operand(job))

    def test_rerouted_answers_match_the_chaos_free_run(self):
        """A job that failed over to another pool returns the same
        answer CRC a chaos-free single-pool run produces for it."""
        trace = make_trace(TraceSpec(n_requests=300, seed=8))
        clean_res, _ = serve(0, n_devices=4, seed=8, trace=trace)
        clean_crc = {r.job_id: r.value_crc for r in clean_res
                     if r.answered}
        storm_res, rep = serve_fleet(
            0, n_devices=3, fault_rate=0.1, seed=8, trace=trace,
            pool_chaos=storm_chaos(8),
            fleet_config=FleetConfig(n_pools=3, replicas=2))
        # Device-served statuses only: a DEGRADED answer comes from the
        # host reference path, whose CRC legitimately differs from the
        # accelerator's (true of the solo scheduler as well).
        moved = [r for r in storm_res
                 if r.reroutes > 0 and r.device_id >= 0
                 and r.answered]
        assert moved, "storm produced no device-answered re-routes"
        for r in moved:
            assert r.value_crc == clean_crc[r.job_id], (
                f"job {r.job_id} answer changed across pools")


class TestFleetConfigValidation:
    @pytest.mark.parametrize("kwargs,needle", [
        (dict(n_pools=0), "n_pools"),
        (dict(replicas=0), "replicas"),
        (dict(reroute_cycles=0.0), "reroute_cycles"),
        (dict(hot_fraction=1.5), "hot_fraction"),
        (dict(probe_retry_cycles=-1.0), "probe_retry_cycles"),
        (dict(max_probes_per_outage=0), "max_probes_per_outage"),
    ])
    def test_bad_knobs_name_the_field(self, kwargs, needle):
        with pytest.raises(ConfigError, match=needle):
            FleetConfig(**kwargs)
