"""Tests for the synthetic dataset generators and registry."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import (
    banded,
    circuit_like,
    clear_dataset_cache,
    clustered_power_law,
    list_datasets,
    load_dataset,
    out_degrees,
    preferential_attachment,
    random_spd,
    rmat,
    road_grid,
    stencil5,
    stencil7,
    stencil27,
    structural_like,
    thermal_like,
    tridiagonal,
)
from repro.errors import DatasetError


def assert_spd_like(a: sp.csr_matrix):
    """Symmetric with strictly dominant positive diagonal."""
    assert (abs(a - a.T)).max() < 1e-12
    diag = a.diagonal()
    assert (diag > 0).all()
    off_row_sum = np.asarray(abs(a).sum(axis=1)).ravel() - abs(diag)
    assert (diag >= off_row_sum - 1e-9).all()


class TestScientificGenerators:
    def test_stencil27_structure(self):
        a = stencil27(4, 4, 4)
        assert a.shape == (64, 64)
        # Interior point has 26 neighbours + diagonal.
        interior = 1 + 1 * 4 + 1 * 16  # (1,1,1)
        assert a[interior].getnnz() == 27
        assert_spd_like(a)

    def test_stencil7_structure(self):
        a = stencil7(4, 4, 4)
        interior = 1 + 4 + 16
        assert a[interior].getnnz() == 7
        assert_spd_like(a)

    def test_stencil5_structure(self):
        a = stencil5(5, 5)
        assert a[12].getnnz() == 5  # interior of 5x5 grid
        assert_spd_like(a)

    def test_tridiagonal(self):
        a = tridiagonal(10)
        assert a.nnz == 28
        assert_spd_like(a)

    @pytest.mark.parametrize("gen,kwargs", [
        (banded, {"n": 100, "bandwidth": 5}),
        (circuit_like, {"n": 100}),
        (structural_like, {"n": 96}),
        (random_spd, {"n": 100, "density": 0.02}),
        (thermal_like, {"nx": 10, "ny": 10}),
    ])
    def test_generators_produce_spd(self, gen, kwargs):
        assert_spd_like(gen(**kwargs))

    def test_generators_deterministic(self):
        a = circuit_like(80, seed=5)
        b = circuit_like(80, seed=5)
        assert (a != b).nnz == 0

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            banded(10, bandwidth=10)
        with pytest.raises(DatasetError):
            random_spd(10, density=0.0)
        with pytest.raises(DatasetError):
            stencil27(0, 4, 4)


class TestGraphGenerators:
    def test_rmat_shape_and_degree_skew(self):
        adj = rmat(8, edge_factor=8, seed=1)
        assert adj.shape == (256, 256)
        deg = out_degrees(adj)
        assert deg.max() > 4 * max(1.0, np.median(deg[deg > 0]))

    def test_rmat_no_self_loops(self):
        adj = rmat(6, seed=2)
        assert adj.diagonal().sum() == 0.0

    def test_preferential_attachment_power_law_head(self):
        adj = preferential_attachment(400, m=4, seed=3)
        indeg = np.asarray((adj != 0).sum(axis=0)).ravel()
        # Early vertices act as hubs.
        assert indeg[:10].mean() > indeg[200:].mean()

    def test_road_grid_degree_bounded(self):
        adj = road_grid(10, 10, seed=4)
        deg = out_degrees(adj)
        assert deg.max() <= 8
        # Bidirectional lattice.
        assert (abs((adj != 0).astype(int)
                    - (adj != 0).astype(int).T)).nnz == 0

    def test_road_grid_weighted(self):
        adj = road_grid(6, 6, weighted=True)
        assert adj.data.min() >= 1.0

    def test_clustered_power_law_clusters(self):
        adj = clustered_power_law(256, cluster_size=16, seed=5)
        coo = adj.tocoo()
        same_cluster = (coo.row // 16) == (coo.col // 16)
        assert same_cluster.mean() > 0.5

    def test_validation(self):
        with pytest.raises(DatasetError):
            rmat(0)
        with pytest.raises(DatasetError):
            preferential_attachment(4, m=4)
        with pytest.raises(DatasetError):
            road_grid(1, 5)
        with pytest.raises(DatasetError):
            clustered_power_law(8, cluster_size=16)


class TestRegistry:
    def test_catalog_sizes(self):
        # 10 Figure-14 suite matrices + 4 registry extras.
        assert len(list_datasets("scientific")) == 14
        assert len(list_datasets("graph")) == 8
        assert len(list_datasets()) == 22

    def test_table3_names_present(self):
        for name in ("com-orkut", "hollywood-2009", "kron-g500-logn21",
                     "roadNet-CA", "LiveJournal", "Youtube", "Pokec",
                     "sx-stackoverflow"):
            assert name in list_datasets("graph")

    def test_load_scientific(self):
        ds = load_dataset("stencil27", scale=0.1)
        assert ds.kind == "scientific"
        assert ds.n > 0
        assert_spd_like(ds.matrix)

    def test_load_graph(self):
        ds = load_dataset("roadNet-CA", scale=0.1)
        assert ds.kind == "graph"
        assert ds.weighted
        assert ds.nnz > 0

    def test_scale_changes_size(self):
        small = load_dataset("com-orkut", scale=0.1)
        large = load_dataset("com-orkut", scale=0.3)
        assert large.n > small.n

    def test_deterministic_loading(self):
        a = load_dataset("Pokec", scale=0.1).matrix
        b = load_dataset("Pokec", scale=0.1).matrix
        assert (a != b).nnz == 0

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("twitter")

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("Pokec", scale=0.0)

    def test_all_scientific_datasets_spd(self):
        for name in list_datasets("scientific"):
            assert_spd_like(load_dataset(name, scale=0.05).matrix)

    def test_all_graph_datasets_loadable(self):
        for name in list_datasets("graph"):
            ds = load_dataset(name, scale=0.05)
            assert ds.nnz > 0
            assert ds.matrix.diagonal().sum() == 0.0


class TestDatasetCache:
    def test_repeat_load_returns_cached_instance(self):
        clear_dataset_cache()
        a = load_dataset("stencil27", scale=0.07)
        b = load_dataset("stencil27", scale=0.07)
        assert a is b

    def test_cache_keyed_by_name_and_scale(self):
        clear_dataset_cache()
        a = load_dataset("stencil27", scale=0.07)
        assert load_dataset("stencil27", scale=0.08) is not a
        assert load_dataset("chem_master", scale=0.07) is not a

    def test_clear_cache_forces_regeneration(self):
        a = load_dataset("af_shell", scale=0.1)
        clear_dataset_cache()
        b = load_dataset("af_shell", scale=0.1)
        assert a is not b
        assert (a.matrix != b.matrix).nnz == 0

    def test_cached_matrix_is_read_only(self):
        # Cached instances are shared: in-place mutation would corrupt
        # every later caller, so the buffers are frozen.
        ds = load_dataset("stencil27", scale=0.05)
        with pytest.raises(ValueError):
            ds.matrix.data[0] = 123.0
        with pytest.raises(ValueError):
            ds.matrix.indices[0] = 0

    def test_copy_is_writeable(self):
        ds = load_dataset("stencil27", scale=0.05)
        m = ds.matrix.copy()
        m.data[0] = 123.0  # the documented mutation path
        assert m.data[0] == 123.0
