"""Determinism and snapshot tests for the tracing layer.

Three contracts:

* **Byte determinism** — the exported Chrome-trace JSON is a pure
  function of (seed, config): re-running the same simulation produces
  byte-identical output, in-process (hypothesis property) and across
  processes with different ``PYTHONHASHSEED`` (subprocess test).
* **Interpreter/plan agreement** — the compiled-plan executor replays
  the span layout the interpreter would have produced: per-phase cycle
  totals match exactly.
* **Golden snapshot** — one pinned run's exported bytes live in
  ``tests/data/golden_trace.json``; the regen script documents how to
  refresh after an intentional layout change.
"""

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alrescha, AlreschaConfig, KernelType
from repro.datasets import load_dataset
from repro.errors import FaultError
from repro.observe import (
    Tracer,
    dumps_chrome_trace,
    phase_cycle_totals,
)
from repro.sim.faults import FaultModel

DATA_DIR = Path(__file__).parent / "data"
REPO_ROOT = Path(__file__).parent.parent


def _run_symgs(seed: int, hide: bool, use_plan: bool,
               fault_rate: float) -> tuple:
    # Returns (tracer, error_repr).  A seeded fault stream can
    # legitimately exhaust its retry budget (FaultError) — that outcome
    # is part of the run and must itself reproduce byte-for-byte.
    tracer = Tracer()
    config = AlreschaConfig(
        tracer=tracer,
        hide_reconfig_under_drain=hide,
        use_plan=use_plan,
        fault_model=(FaultModel(rate=fault_rate, seed=seed)
                     if fault_rate > 0.0 else None))
    matrix = load_dataset("stencil27", scale=0.04).matrix
    acc = Alrescha.from_matrix(KernelType.SYMGS, matrix, config=config)
    rhs = np.random.default_rng(seed).normal(size=matrix.shape[0])
    error = ""
    try:
        acc.run_symgs_sweep(rhs, np.zeros(rhs.size))
    except FaultError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return tracer, error


class TestByteDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=999),
           hide=st.booleans(),
           use_plan=st.booleans(),
           faulty=st.booleans())
    def test_same_run_same_bytes(self, seed, hide, use_plan, faulty):
        rate = 0.05 if faulty else 0.0
        tracer_a, error_a = _run_symgs(seed, hide, use_plan, rate)
        tracer_b, error_b = _run_symgs(seed, hide, use_plan, rate)
        assert dumps_chrome_trace(tracer_a) == dumps_chrome_trace(tracer_b)
        assert error_a == error_b

    def test_hashseed_invariant_across_processes(self, tmp_path):
        """The CLI exports identical bytes under different hash seeds —
        no dict-order or set-order dependence anywhere in the path."""
        outputs = []
        for hashseed in ("0", "1"):
            out = tmp_path / f"trace_{hashseed}.json"
            env = dict(os.environ,
                       PYTHONHASHSEED=hashseed,
                       PYTHONPATH=str(REPO_ROOT / "src"))
            subprocess.run(
                [sys.executable, "-m", "repro", "trace", "symgs",
                 "--dataset", "stencil27", "--scale", "0.04",
                 "--out", str(out)],
                check=True, env=env, cwd=REPO_ROOT,
                stdout=subprocess.DEVNULL)
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]


class TestInterpreterPlanAgreement:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=99),
           hide=st.booleans())
    def test_phase_totals_agree(self, seed, hide):
        interp, _ = _run_symgs(seed, hide, use_plan=False,
                               fault_rate=0.0)
        planned, _ = _run_symgs(seed, hide, use_plan=True,
                                fault_rate=0.0)
        ti = phase_cycle_totals(interp)
        tp = phase_cycle_totals(planned)
        assert set(ti) == set(tp)
        for key in ti:
            assert ti[key] == pytest.approx(tp[key]), key

    def test_spmv_phase_totals_agree(self):
        matrix = load_dataset("stencil27", scale=0.05).matrix
        rhs = np.random.default_rng(0).normal(size=matrix.shape[0])
        totals = []
        for use_plan in (False, True):
            tracer = Tracer()
            acc = Alrescha.from_matrix(
                KernelType.SPMV, matrix,
                config=AlreschaConfig(tracer=tracer, use_plan=use_plan))
            acc.run_spmv(rhs)
            totals.append(phase_cycle_totals(tracer))
        assert set(totals[0]) == set(totals[1])
        for key in totals[0]:
            assert totals[0][key] == pytest.approx(totals[1][key]), key


class TestGoldenSnapshot:
    def _regen_module(self):
        spec = importlib.util.spec_from_file_location(
            "regen_golden_trace", DATA_DIR / "regen_golden_trace.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_matches_golden_trace(self):
        regen = self._regen_module()
        current = dumps_chrome_trace(regen.build_golden_tracer())
        golden = (DATA_DIR / "golden_trace.json").read_text()
        assert current == golden, (
            "exported trace diverged from tests/data/golden_trace.json; "
            "if the span layout or cost model changed intentionally, "
            "refresh the snapshot with "
            "`PYTHONPATH=src python tests/data/regen_golden_trace.py` "
            "and commit it with the change")

    def test_golden_trace_is_valid_chrome_trace(self):
        doc = json.loads((DATA_DIR / "golden_trace.json").read_text())
        events = doc["traceEvents"]
        assert doc["otherData"]["clock"] == "simulated-cycles"
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0.0
                assert "ts" in e

    def test_exported_json_reconfig_containment(self):
        """The §4.4 claim, checked from the exported document alone:
        every reconfig event lies inside a reduce_drain event on the
        same thread (what a Perfetto user would see)."""
        doc = json.loads((DATA_DIR / "golden_trace.json").read_text())
        events = doc["traceEvents"]
        drains = [(e["tid"], e["ts"], e["ts"] + e["dur"])
                  for e in events
                  if e["ph"] == "X" and e["cat"] == "reduce_drain"]
        reconfigs = [(e["tid"], e["ts"], e["ts"] + e["dur"])
                     for e in events
                     if e["ph"] == "X" and e["cat"] == "reconfig"]
        assert reconfigs, "golden SymGS trace must contain reconfigs"
        eps = 1e-6
        for tid, begin, end in reconfigs:
            assert any(d_tid == tid and d0 <= begin + eps
                       and end <= d1 + eps
                       for d_tid, d0, d1 in drains), (
                f"reconfig [{begin}, {end}] on tid {tid} escapes every "
                f"reduce_drain")
