"""Tests for the energy breakdown and preprocessing amortization."""

import numpy as np
import pytest

from repro.analysis import (
    AmortizationResult,
    energy_breakdown,
    pcg_amortization,
    spmv_energy_breakdown,
    symgs_energy_breakdown,
)
from repro.datasets import load_dataset, stencil27


@pytest.fixture(scope="module")
def matrix():
    return stencil27(6, 6, 6)


class TestEnergyBreakdown:
    def test_components_sum_to_report_energy(self, matrix):
        from repro.core import Alrescha, KernelType
        acc = Alrescha.from_matrix(KernelType.SPMV, matrix)
        x = np.random.default_rng(3).normal(size=acc.n)
        _y, report = acc.run_spmv(x)
        parts = energy_breakdown(report)
        assert sum(parts.values()) == pytest.approx(report.energy_j,
                                                    rel=1e-6)

    def test_dram_dominates_spmv(self, matrix):
        """Streaming dominates: the design trades compute for fewer
        memory/cache accesses (§5.4)."""
        parts = spmv_energy_breakdown(matrix)
        total = sum(parts.values())
        assert parts["dram"] > 0.5 * total
        assert parts["configuration"] < 0.01 * total

    def test_symgs_has_more_pe_share_than_spmv(self, matrix):
        spmv = spmv_energy_breakdown(matrix)
        symgs = symgs_energy_breakdown(matrix)
        spmv_compute = spmv["compute"] / sum(spmv.values())
        symgs_compute = symgs["compute"] / sum(symgs.values())
        assert symgs_compute > 0.0
        assert spmv_compute > 0.0

    def test_all_components_nonnegative(self, matrix):
        for parts in (spmv_energy_breakdown(matrix),
                      symgs_energy_breakdown(matrix)):
            assert all(v >= 0.0 for v in parts.values())


class TestAmortization:
    def test_breakeven_is_fast(self):
        """§4: preprocessing is a one-time overhead — it pays for
        itself within the first few PCG iterations."""
        m = load_dataset("stencil27", scale=0.1).matrix
        result = pcg_amortization(m)
        assert result.breakeven_iterations < 5.0
        assert result.per_iteration_saving > 0.0

    def test_overhead_small_over_a_run(self):
        m = load_dataset("af_shell", scale=0.1).matrix
        result = pcg_amortization(m)
        assert result.overhead_fraction_at < 0.5

    def test_preprocess_scales_with_nnz(self):
        small = pcg_amortization(load_dataset("stencil27",
                                              scale=0.05).matrix)
        large = pcg_amortization(load_dataset("stencil27",
                                              scale=0.2).matrix)
        assert large.preprocess_seconds > small.preprocess_seconds

    def test_result_fields(self):
        r = AmortizationResult(preprocess_seconds=1.0,
                               alrescha_iteration_seconds=0.1,
                               gpu_iteration_seconds=0.6)
        assert r.per_iteration_saving == pytest.approx(0.5)
        assert r.breakeven_iterations == pytest.approx(2.0)

    def test_no_saving_means_never(self):
        r = AmortizationResult(preprocess_seconds=1.0,
                               alrescha_iteration_seconds=0.6,
                               gpu_iteration_seconds=0.5)
        assert r.breakeven_iterations == float("inf")
