"""Properties: determinism per seed, batching transparency, percentiles.

Same seed + same trace parameters ⇒ two completely fresh runs (new
pool, new fault models, new breakers) produce identical results and a
field-for-field identical :class:`~repro.runtime.PoolReport`.  This is
the contract that makes the whole layer debuggable: any incident
observed once can be replayed exactly.

Batching adds a second contract: a fused multi-RHS dispatch is an
*optimisation*, never a semantic change — per-job answers (CRCs) and
statuses match the unbatched run, and ``max_batch=1`` is bit-identical
to not mentioning batching at all.
"""

import math
from dataclasses import fields
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.runtime import PoolReport, percentile, serve


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_devices=st.integers(min_value=1, max_value=3),
    fault_rate=st.sampled_from([0.0, 0.1, 0.3]),
    n_requests=st.integers(min_value=4, max_value=14),
)
def test_same_seed_same_trace_identical_report(seed, n_devices,
                                               fault_rate, n_requests):
    run = lambda: serve(n_requests=n_requests, n_devices=n_devices,
                        fault_rate=fault_rate, seed=seed, scale=0.04)
    results_a, report_a = run()
    results_b, report_b = run()
    # Field-for-field, not just __eq__: a failure names the field.
    for f in fields(PoolReport):
        assert getattr(report_a, f.name) == getattr(report_b, f.name), \
            f"PoolReport.{f.name} differs under seed {seed}"
    assert results_a == results_b


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_different_fault_rates_share_the_trace(seed):
    """The workload trace depends only on the seed, never on the pool:
    admission decisions about zero-deadline jobs line up across rates."""
    res_clean, _ = serve(n_requests=10, n_devices=2, fault_rate=0.0,
                         seed=seed, scale=0.04)
    res_faulty, _ = serve(n_requests=10, n_devices=2, fault_rate=0.3,
                          seed=seed, scale=0.04)
    zero_clean = {r.job_id for r in res_clean
                  if r.attempts == 0 and "deadline" in r.error}
    zero_faulty = {r.job_id for r in res_faulty
                   if r.attempts == 0 and "deadline" in r.error}
    assert zero_clean == zero_faulty


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    k=st.sampled_from([2, 4]),
)
def test_batched_serve_matches_unbatched_answers(seed, k):
    """Coalescing is transparent: with slack deadlines and a clean
    pool, every job's status and bit-exact answer CRC are identical
    whether the scheduler fused dispatches or served each job solo."""
    kwargs = dict(n_requests=12, n_devices=2, fault_rate=0.0, seed=seed,
                  scale=0.04, deadline_range=(300_000.0, 500_000.0))
    res_solo, _ = serve(**kwargs)
    res_batch, rep_batch = serve(max_batch=k, **kwargs)
    for a, b in zip(res_solo, res_batch):
        assert a.job_id == b.job_id
        assert a.status == b.status
        assert a.value_crc == b.value_crc
    fused = [r for r in res_batch if r.batch_size > 1]
    assert rep_batch.batched_jobs == len(fused)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_max_batch_one_is_bit_identical_to_default(seed):
    """``max_batch=1`` must leave the scheduler exactly as it was
    before batching existed — results and report field for field."""
    kwargs = dict(n_requests=10, n_devices=2, fault_rate=0.1, seed=seed,
                  scale=0.04)
    res_a, rep_a = serve(**kwargs)
    res_b, rep_b = serve(max_batch=1, **kwargs)
    assert res_a == res_b
    for f in fields(PoolReport):
        assert getattr(rep_a, f.name) == getattr(rep_b, f.name), \
            f"PoolReport.{f.name} differs under seed {seed}"


# ---------------------------------------------------------------------------
# Nearest-rank percentile: exact rational rank
# ---------------------------------------------------------------------------
def reference_percentile(values, q):
    """Independent nearest-rank formulation: the smallest ordered value
    with at least ``q`` percent of the samples at or below it."""
    ordered = sorted(values)
    n = len(ordered)
    target = Fraction(str(q)) * n  # compare r*100 >= q*n exactly
    for r in range(1, n + 1):
        if r * 100 >= target:
            return ordered[r - 1]
    return ordered[-1]


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200),
    q=st.one_of(
        st.integers(min_value=0, max_value=100).map(float),
        st.decimals(min_value=0, max_value=100, places=2).map(float),
    ),
)
def test_percentile_matches_counting_reference(values, q):
    assert percentile(values, q) == reference_percentile(values, q)


def test_percentile_float_product_regression():
    # 64.4% of 250 samples is exactly rank 161, but the float product
    # 64.4 * 250 lands at 16100.000000000002 and a float-only ceiling
    # overshot to rank 162.  Pin the exact-arithmetic rank.
    values = list(range(250))
    assert math.ceil(64.4 * 250 / 100) == 162  # the float trap itself
    assert percentile(values, 64.4) == 160  # rank 161, zero-based 160


def test_percentile_bounds_and_validation():
    values = [5.0, 1.0, 3.0]
    assert percentile(values, 0.0) == 1.0  # rank clamps to 1
    assert percentile(values, 100.0) == 5.0
    assert percentile([], 50.0) == 0.0
    with pytest.raises(ConfigError):
        percentile(values, -0.1)
    with pytest.raises(ConfigError):
        percentile(values, 100.1)
