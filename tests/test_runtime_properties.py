"""Property: the serving runtime is deterministic per seed.

Same seed + same trace parameters ⇒ two completely fresh runs (new
pool, new fault models, new breakers) produce identical results and a
field-for-field identical :class:`~repro.runtime.PoolReport`.  This is
the contract that makes the whole layer debuggable: any incident
observed once can be replayed exactly.
"""

from dataclasses import fields

from hypothesis import given, settings, strategies as st

from repro.runtime import PoolReport, serve


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_devices=st.integers(min_value=1, max_value=3),
    fault_rate=st.sampled_from([0.0, 0.1, 0.3]),
    n_requests=st.integers(min_value=4, max_value=14),
)
def test_same_seed_same_trace_identical_report(seed, n_devices,
                                               fault_rate, n_requests):
    run = lambda: serve(n_requests=n_requests, n_devices=n_devices,
                        fault_rate=fault_rate, seed=seed, scale=0.04)
    results_a, report_a = run()
    results_b, report_b = run()
    # Field-for-field, not just __eq__: a failure names the field.
    for f in fields(PoolReport):
        assert getattr(report_a, f.name) == getattr(report_b, f.name), \
            f"PoolReport.{f.name} differs under seed {seed}"
    assert results_a == results_b


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_different_fault_rates_share_the_trace(seed):
    """The workload trace depends only on the seed, never on the pool:
    admission decisions about zero-deadline jobs line up across rates."""
    res_clean, _ = serve(n_requests=10, n_devices=2, fault_rate=0.0,
                         seed=seed, scale=0.04)
    res_faulty, _ = serve(n_requests=10, n_devices=2, fault_rate=0.3,
                          seed=seed, scale=0.04)
    zero_clean = {r.job_id for r in res_clean
                  if r.attempts == 0 and "deadline" in r.error}
    zero_faulty = {r.job_id for r in res_faulty
                   if r.attempts == 0 and "deadline" in r.error}
    assert zero_clean == zero_faulty
