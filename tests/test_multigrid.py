"""Tests for the HPCG-style multigrid preconditioner."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.solvers import (
    MultigridBackend,
    MultigridPreconditioner,
    ReferenceBackend,
    pcg,
    prolong_constant,
    restrict_injection,
)


class TestGridTransfers:
    def test_restriction_samples_even_points(self):
        fine = np.arange(4 * 4 * 4, dtype=float)
        coarse = restrict_injection(fine, (4, 4, 4))
        assert coarse.size == 8
        f = fine.reshape(4, 4, 4)
        np.testing.assert_array_equal(
            coarse.reshape(2, 2, 2), f[::2, ::2, ::2]
        )

    def test_prolongation_is_piecewise_constant(self):
        coarse = np.arange(8, dtype=float)
        fine = prolong_constant(coarse, (4, 4, 4))
        assert fine.size == 64
        f = fine.reshape(4, 4, 4)
        c = coarse.reshape(2, 2, 2)
        for iz in range(4):
            for iy in range(4):
                for ix in range(4):
                    assert f[iz, iy, ix] == c[iz // 2, iy // 2, ix // 2]

    def test_transfer_round_trip(self):
        """Restriction after prolongation is the identity (injection
        picks exactly the parent values)."""
        coarse = np.random.default_rng(0).normal(size=27)
        fine = prolong_constant(coarse, (6, 6, 6))
        back = restrict_injection(fine, (6, 6, 6))
        np.testing.assert_array_equal(back, coarse)


class TestConstruction:
    def test_level_dims_halve(self):
        mg = MultigridPreconditioner(8, 8, 8, n_levels=3)
        assert [lvl.dims for lvl in mg.levels] == [
            (8, 8, 8), (4, 4, 4), (2, 2, 2)
        ]

    def test_dims_must_support_coarsening(self):
        with pytest.raises(ConfigError):
            MultigridPreconditioner(6, 6, 6, n_levels=3)  # 6 % 4 != 0

    def test_single_level_allowed(self):
        mg = MultigridPreconditioner(4, 4, 4, n_levels=1)
        assert len(mg.levels) == 1

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigError):
            MultigridPreconditioner(4, 4, 4, backend="asic")


class TestConvergence:
    def test_vcycle_reduces_residual(self):
        mg = MultigridPreconditioner(8, 8, 8, n_levels=3)
        a = mg.fine_matrix
        rng = np.random.default_rng(1)
        x_true = rng.normal(size=a.shape[0])
        b = a @ x_true
        x = mg.apply(b)
        assert np.linalg.norm(b - a @ x) < np.linalg.norm(b)

    def test_mg_pcg_beats_single_level_iterations(self):
        backend = MultigridBackend(8, 8, 8, n_levels=3)
        b = np.random.default_rng(2).normal(size=backend.n)
        mg_result = pcg(backend, b, tol=1e-8, max_iter=60)
        gs_result = pcg(ReferenceBackend(backend.matrix), b, tol=1e-8,
                        max_iter=60)
        assert mg_result.converged
        assert mg_result.iterations <= gs_result.iterations
        np.testing.assert_allclose(mg_result.x, gs_result.x, atol=1e-5)

    def test_accelerated_multigrid_matches_reference(self):
        rng = np.random.default_rng(3)
        ref = MultigridBackend(8, 8, 8, n_levels=2, backend="reference")
        acc = MultigridBackend(8, 8, 8, n_levels=2, backend="alrescha")
        b = rng.normal(size=ref.n)
        z_ref = ref.precondition(b)
        z_acc = acc.precondition(b)
        np.testing.assert_allclose(z_acc, z_ref, atol=1e-9)

    def test_accelerated_multigrid_reports(self):
        backend = MultigridBackend(8, 8, 8, n_levels=2,
                                   backend="alrescha")
        b = np.random.default_rng(4).normal(size=backend.n)
        result = pcg(backend, b, tol=1e-7, max_iter=40)
        assert result.converged
        report = result.report
        assert report is not None
        assert report.cycles > 0
        # All levels' SymGS work appears in the combined report.
        assert report.sequential_cycles > 0

    def test_reference_backend_has_no_report(self):
        backend = MultigridBackend(4, 4, 4, n_levels=1,
                                   backend="reference")
        assert backend.report() is None
