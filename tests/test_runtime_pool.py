"""Breaker state machine, health window, and device pool plumbing."""

import pytest

from repro.errors import ConfigError
from repro.runtime import CircuitBreaker, Device, DevicePool, HealthWindow
from repro.sim.faults import FaultModel


def make_breaker(**kwargs):
    kwargs.setdefault("failure_threshold", 0.5)
    kwargs.setdefault("min_samples", 4)
    kwargs.setdefault("cooldown_cycles", 1000.0)
    return CircuitBreaker(HealthWindow(8), **kwargs)


class TestHealthWindow:
    def test_rolling_failure_rate(self):
        h = HealthWindow(4)
        assert h.failure_rate == 0.0
        for ok in (True, False, False, True):
            h.record(ok)
        assert h.failure_rate == 0.5
        # Window rolls: the two oldest outcomes fall out.
        h.record(False)
        h.record(False)
        assert h.failure_rate == 0.75
        assert h.samples == 4
        # Lifetime totals keep counting past the window.
        assert h.successes == 2
        assert h.failures == 4

    def test_reset_clears_window_not_totals(self):
        h = HealthWindow(4)
        h.record(False)
        h.reset()
        assert h.samples == 0
        assert h.failure_rate == 0.0
        assert h.failures == 1

    def test_zero_window_rejected(self):
        with pytest.raises(ConfigError):
            HealthWindow(0)


class TestCircuitBreaker:
    def test_closed_until_threshold(self):
        b = make_breaker()
        # Three failures: below min_samples, stays closed.
        for _ in range(3):
            b.on_failure(now=0.0)
        assert b.state == "closed"
        assert b.allows(0.0)
        # Fourth failure reaches min_samples at 100% failure: opens.
        b.on_failure(now=50.0)
        assert b.state == "open"
        assert b.trips == 1
        assert not b.allows(51.0)

    def test_below_threshold_never_opens(self):
        b = make_breaker()
        for i in range(20):
            b.on_success()
            if i % 3 == 0:  # 1-in-3 failures < 0.5 threshold
                b.on_failure(now=float(i))
        assert b.state == "closed"
        assert b.trips == 0

    def test_cooldown_measured_in_cycles(self):
        b = make_breaker(cooldown_cycles=1000.0)
        for _ in range(4):
            b.on_failure(now=200.0)
        assert b.state == "open"
        assert b.reopen_at == 1200.0
        assert not b.allows(1199.9)
        assert b.state == "open"
        # Querying at/after the reopen cycle answers True but does not
        # transition — only dispatching does.
        assert b.allows(1200.0)
        assert b.state == "open"
        b.on_dispatch(1200.0)
        assert b.state == "half_open"

    def test_allows_is_pure(self):
        b = make_breaker(cooldown_cycles=1000.0)
        for _ in range(4):
            b.on_failure(now=0.0)
        # Repeated queries past the reopen cycle are idempotent: no
        # state change, no probe claimed.
        for _ in range(3):
            assert b.allows(1000.0)
            assert b.state == "open"
        b.on_dispatch(1000.0)
        assert b.state == "half_open"
        assert not b.allows(1000.0)  # probe in flight

    def test_half_open_single_probe(self):
        b = make_breaker()
        for _ in range(4):
            b.on_failure(now=0.0)
        assert b.allows(1000.0)
        b.on_dispatch(1000.0)  # open -> half_open, probe claimed
        assert not b.allows(1000.0)  # second job must wait

    def test_release_probe_unclaims_without_verdict(self):
        b = make_breaker()
        for _ in range(4):
            b.on_failure(now=0.0)
        b.on_dispatch(1000.0)
        assert not b.allows(1000.0)
        # The dispatch died before any device verdict (e.g. a config
        # error): releasing the probe re-opens the half-open slot.
        b.release_probe()
        assert b.state == "half_open"
        assert b.allows(1000.0)

    def test_probe_success_closes_and_resets_window(self):
        b = make_breaker()
        for _ in range(4):
            b.on_failure(now=0.0)
        b.on_dispatch(1000.0)
        b.on_success()
        assert b.state == "closed"
        # The pre-outage failures were forgotten: one new failure must
        # not immediately re-trip.
        b.on_failure(now=1100.0)
        assert b.state == "closed"
        assert b.trips == 1

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        b = make_breaker(cooldown_cycles=1000.0)
        for _ in range(4):
            b.on_failure(now=0.0)
        b.on_dispatch(1000.0)
        b.on_failure(now=1000.0)
        assert b.state == "open"
        assert b.trips == 2
        assert b.reopen_at == 2000.0
        assert not b.allows(1500.0)
        assert b.allows(2000.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            make_breaker(failure_threshold=0.0)
        with pytest.raises(ConfigError):
            make_breaker(cooldown_cycles=0.0)


class TestFaultModelSpawn:
    def test_spawn_is_independent_and_deterministic(self):
        base = FaultModel(rate=0.5, seed=3, max_retries=7)
        a1, a2 = base.spawn(0), base.spawn(0)
        b = base.spawn(1)
        assert a1.seed == a2.seed != b.seed != base.seed
        assert a1.max_retries == 7
        draws_a = [a1._rng.random() for _ in range(5)]
        assert draws_a == [a2._rng.random() for _ in range(5)]
        assert draws_a != [b._rng.random() for _ in range(5)]


class TestDevicePool:
    def test_devices_get_distinct_fault_seeds(self):
        pool = DevicePool(3, fault_rate=0.2, seed=11)
        seeds = {d.fault_model.seed for d in pool.devices}
        assert len(seeds) == 3

    def test_zero_rate_means_no_fault_models(self):
        pool = DevicePool(2, fault_rate=0.0, seed=1)
        assert all(d.fault_model is None for d in pool.devices)

    def test_needs_a_device(self):
        with pytest.raises(ConfigError):
            DevicePool(0)


class TestOperandCache:
    def job(self, job_id=0, seed=123):
        from repro.runtime import Job
        return Job(job_id=job_id, kernel="spmv", dataset="stencil27",
                   scale=0.05, arrival_cycle=0.0,
                   deadline_cycles=50_000.0, seed=seed)

    def test_same_job_returns_identical_array_object(self):
        # Perf regression guard: every attempt used to redraw the full
        # (n,) RNG vector; now it is served from the pool's LRU.
        pool = DevicePool(1)
        a = pool.operand(self.job())
        b = pool.operand(self.job())
        assert a is b

    def test_distinct_seeds_distinct_vectors(self):
        pool = DevicePool(1)
        a = pool.operand(self.job(seed=1))
        b = pool.operand(self.job(seed=2))
        assert a is not b
        assert (a != b).any()

    def test_cache_bound_evicts_lru(self):
        pool = DevicePool(1, operand_cache=2)
        first = pool.operand(self.job(seed=1))
        pool.operand(self.job(seed=2))
        pool.operand(self.job(seed=3))  # evicts seed=1
        again = pool.operand(self.job(seed=1))
        assert again is not first
        assert (again == first).all()  # same values, fresh draw

    def test_cache_bound_validated(self):
        with pytest.raises(ConfigError):
            DevicePool(1, operand_cache=0)

    def test_cached_operand_is_read_only(self):
        # Regression: the cached array is shared by every retry/batch/
        # hedge attempt of the job, so an in-place write would silently
        # corrupt all of them.  Writes must raise instead of aliasing.
        pool = DevicePool(1)
        values = pool.operand(self.job())
        assert not values.flags.writeable
        with pytest.raises(ValueError):
            values[0] = 1.0

    def test_retried_job_reuses_operand_and_crc_is_unchanged(self):
        # A job that faults on device 0 and retries on device 1 must
        # stream the *identical* operand array on both attempts, and
        # the caching must not change the served answer bit-for-bit.
        from repro.runtime import Job, JobStatus, Scheduler, SchedulerConfig

        def one_job():
            return [Job(job_id=0, kernel="spmv", dataset="stencil27",
                        scale=0.05, arrival_cycle=0.0,
                        deadline_cycles=200_000.0, seed=77)]

        clean_pool = DevicePool(2, fault_rate=0.0, seed=0)
        clean, _ = Scheduler(clean_pool, SchedulerConfig()).run(one_job())
        assert clean[0].status is JobStatus.OK

        pool = DevicePool(2, fault_rate=0.0, seed=0)
        pool.devices[0].fault_model = FaultModel(
            rate=1.0, seed=5, persistent=True)
        served = []
        orig = pool.operand
        pool.operand = lambda job: served.append(orig(job)) or served[-1]
        results, _ = Scheduler(pool, SchedulerConfig()).run(one_job())
        assert results[0].status is JobStatus.OK
        assert results[0].attempts == 2
        assert len(served) >= 2
        assert all(v is served[0] for v in served)
        assert results[0].value_crc == clean[0].value_crc


class TestModelExecution:
    def job(self, job_id=0):
        from repro.runtime import Job
        return Job(job_id=job_id, kernel="spmv", dataset="stencil27",
                   scale=0.05, arrival_cycle=0.0,
                   deadline_cycles=50_000.0, seed=job_id)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            DevicePool(1, execution="telepathy")

    def test_model_attempt_prices_from_golden_cache(self):
        pool = DevicePool(1, execution="model")
        att = pool.devices[0].attempt(self.job(), pool)
        assert att.ok
        assert att.values is None  # no answer materialised
        assert att.cycles == pool.nominal_cycles(self.job())
        assert att.dram_bytes == pool.nominal_dram_bytes(self.job())

    def test_model_and_simulate_agree_on_cycles(self):
        # The model mode is a pricing shortcut, not a different cost
        # model: a fault-free solo attempt costs exactly the golden
        # nominal cycles in both modes.
        sim = DevicePool(1, execution="simulate")
        mod = DevicePool(1, execution="model")
        att_sim = sim.devices[0].attempt(self.job(), sim)
        att_mod = mod.devices[0].attempt(self.job(), mod)
        assert att_mod.cycles == att_sim.cycles

    def test_model_mode_faults_feed_breakers(self):
        from dataclasses import replace

        from repro.runtime import Scheduler, SchedulerConfig
        pool = DevicePool(2, fault_rate=1.0, seed=3, execution="model")
        jobs = [replace(self.job(i), arrival_cycle=i * 8000.0,
                        deadline_cycles=500_000.0) for i in range(6)]
        results, report = Scheduler(pool, SchedulerConfig()).run(jobs)
        assert report.failed == 0
        assert report.degraded + report.timeout == len(jobs)
        assert pool.devices[0].health.failures > 0


class TestBreakerEdges:
    """Edge-of-the-state-machine audit that rode along with the chaos
    PR: zero-sample windows, verdicts landing while open, min_samples
    validation, and the quarantine hold a crashed device puts on its
    breaker."""

    def test_failure_rate_zero_at_zero_samples(self):
        h = HealthWindow(4)
        assert h.samples == 0
        assert h.failure_rate == 0.0
        h.record(False)
        h.reset()
        assert h.failure_rate == 0.0  # reset window, not 1.0 or NaN

    def test_tally_skips_the_window(self):
        h = HealthWindow(4)
        h.tally(True)
        h.tally(False)
        assert h.samples == 0
        assert h.failure_rate == 0.0
        assert (h.successes, h.failures) == (1, 1)

    def test_min_samples_zero_rejected(self):
        with pytest.raises(ConfigError):
            make_breaker(min_samples=0)
        with pytest.raises(ConfigError):
            make_breaker(min_samples=-3)
        make_breaker(min_samples=1)  # the boundary is fine

    def test_straggler_verdicts_while_open_do_not_poison(self):
        b = make_breaker(min_samples=2, cooldown_cycles=1000.0)
        for _ in range(2):
            b.on_failure(50.0)
        assert b.state == "open"
        opened = b.opened_at
        window_before = b.health.samples
        # Verdicts landing while open (e.g. voided work resolving
        # late): lifetime totals move, window and cooldown do not.
        b.on_failure(900.0)
        b.on_success()
        assert b.health.samples == window_before
        assert b.opened_at == opened       # cooldown not extended
        assert b.state == "open"
        assert b.health.failures == 3      # totals still counted
        assert b.health.successes == 1

    def test_open_failure_does_not_push_probe_out(self):
        b = make_breaker(min_samples=2, cooldown_cycles=1000.0)
        b.on_failure(0.0)
        b.on_failure(0.0)
        assert not b.allows(999.0)
        b.on_failure(999.0)      # straggler just before cooldown ends
        assert b.allows(1000.0)  # probe window still opens on time

    def test_force_open_is_not_a_trip(self):
        b = make_breaker()
        assert b.trips == 0
        b.force_open(42.0)
        assert b.trips == 0
        assert b.state == "open"
        assert b.quarantined

    def test_quarantine_outlasts_cooldown(self):
        b = make_breaker(cooldown_cycles=100.0)
        b.force_open(0.0)
        assert not b.allows(99.0)
        assert not b.allows(101.0)   # cooldown elapsed: still held
        assert not b.allows(1e12)
        assert b.reopen_at is None   # recovery cycle is unknowable

    def test_end_quarantine_is_immediately_probeable(self):
        b = make_breaker(cooldown_cycles=1000.0)
        b.force_open(0.0)
        b.end_quarantine(500.0)
        assert not b.quarantined
        assert b.state == "open"
        assert b.allows(500.0)       # no fresh cooldown to wait out
        b.on_dispatch(500.0)
        assert b.state == "half_open"
        # Single probe slot: a second dispatch is refused until the
        # probe's verdict (or release) frees it.
        assert not b.allows(500.0)
        b.on_success()
        assert b.state == "closed"

    def test_end_quarantine_without_hold_is_a_noop(self):
        b = make_breaker()
        b.on_failure(0.0)
        state_before = (b.state, b.opened_at)
        b.end_quarantine(123.0)
        assert (b.state, b.opened_at) == state_before


class TestDeviceAvailability:
    def make_device(self):
        return Device(0, None)

    def test_up_and_idle_is_available(self):
        d = self.make_device()
        assert d.available(0.0)

    def test_crashed_device_is_unavailable(self):
        d = self.make_device()
        d.up = False
        assert not d.available(0.0)
        d.up = True
        assert d.available(0.0)

    def test_hanging_device_is_unavailable_until_the_stall_clears(self):
        d = self.make_device()
        d.hang_until = 500.0
        assert not d.available(499.0)
        assert d.available(500.0)

    def test_quarantined_breaker_makes_device_unavailable(self):
        d = self.make_device()
        d.breaker.force_open(0.0)
        assert not d.available(1e9)
        d.breaker.end_quarantine(10.0)
        assert d.available(10.0)
